"""Fig. 7a/7b — Average running time across iterations.

* **7a** KMeans, cluster of 3 slaves, 210 M points: first iteration slow
  (HDFS read + job start), middle iterations flat and fast, last iteration
  slower again (writing results) — in both modes, with the GPU mode faster.
* **7b** SpMV on a single machine, 1.0 GB matrix + 123 MB vector: first
  iteration GFlink-on-1-GPU is ~2.5x over 1 CPU; following iterations ~10x
  (matrix cached); the second GPU cuts GPU iteration time further (the paper
  measures 30 s → 17 s).
"""

from repro.common.units import GB

from conftest import run_once
from harness import fresh_session, paper_cluster_config
from repro.flink import ClusterConfig, CPUSpec
from repro.workloads import KMeansWorkload, SpMVWorkload

SPMV_1GB_ROWS = (1 * GB) / 192.0  # ELL rows of the paper's 1.0 GB matrix


def test_fig7a_kmeans_iteration_profile(benchmark):
    config = paper_cluster_config(n_workers=3)

    def measure():
        out = {}
        for mode in ("cpu", "gpu"):
            wl = KMeansWorkload(nominal_elements=210e6, real_elements=12_000,
                                iterations=8)
            out[mode] = wl.run(fresh_session(config), mode).iteration_seconds
        return out

    times = run_once(benchmark, measure)
    print("\n== Fig 7a: KMeans per-iteration time, 3 slaves, 210M points ==")
    for mode in ("cpu", "gpu"):
        row = "  ".join(f"{t:7.2f}" for t in times[mode])
        print(f"{mode:4s} {row}")
    benchmark.extra_info["iterations"] = times

    for mode in ("cpu", "gpu"):
        t = times[mode]
        mids = t[1:-1]
        assert t[0] > max(mids), f"{mode}: first iteration not slowest"
        assert t[-1] > max(mids), f"{mode}: last iteration not slow (write)"
        spread = (max(mids) - min(mids)) / min(mids)
        assert spread < 0.05, f"{mode}: middle iterations not flat"
    # GPU beats CPU at every iteration.
    assert all(g < c for c, g in zip(times["cpu"], times["gpu"]))


def test_fig7b_spmv_single_machine_iterations(benchmark):
    def single_machine(gpus):
        return ClusterConfig(n_workers=1, cpu=CPUSpec(cores=4),
                             gpus_per_worker=gpus)

    def measure():
        out = {}
        wl_kw = dict(nominal_elements=SPMV_1GB_ROWS, real_elements=8_000,
                     iterations=8)
        out["cpu"] = SpMVWorkload(**wl_kw).run(
            fresh_session(single_machine(())), "cpu").iteration_seconds
        out["gpu1"] = SpMVWorkload(**wl_kw).run(
            fresh_session(single_machine(("c2050",))), "gpu"
        ).iteration_seconds
        out["gpu2"] = SpMVWorkload(**wl_kw).run(
            fresh_session(single_machine(("c2050", "c2050"))), "gpu"
        ).iteration_seconds
        return out

    times = run_once(benchmark, measure)
    print("\n== Fig 7b: SpMV per-iteration, single machine, 1 GB matrix ==")
    for label in ("cpu", "gpu1", "gpu2"):
        row = "  ".join(f"{t:7.2f}" for t in times[label])
        print(f"{label:5s} {row}")
    benchmark.extra_info["iterations"] = times

    cpu, gpu1, gpu2 = times["cpu"], times["gpu1"], times["gpu2"]
    # First iteration: ~2.5x (reading + transferring the matrix damps it).
    first = cpu[0] / gpu1[0]
    assert 1.5 <= first <= 4.5, f"first-iteration speedup {first:.2f}"
    # Middle iterations: order-10x (matrix cached in the GPU).  The paper
    # measures ~10x; our model lands somewhat higher because its per-
    # iteration framework overhead is leaner than real Flink's.
    mid = cpu[3] / gpu1[3]
    assert 6.0 <= mid <= 25.0, f"mid-iteration speedup {mid:.2f}"
    assert mid > 2 * first
    # After the first iteration, GPU time drops sharply; the last rises
    # again (the vector is written to HDFS).
    assert gpu1[1] < 0.8 * gpu1[0]
    assert gpu1[-1] > gpu1[-2]
    # The second GPU helps (Fig 7b: 30 s -> 17 s), at least on the upload-
    # heavy first iteration and in total.
    assert gpu2[0] < gpu1[0]
    assert sum(gpu2) < sum(gpu1)
