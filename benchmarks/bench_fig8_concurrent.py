"""Fig. 8c/8d — Concurrent multi-application execution (§6.6.4).

Three applications — KMeans, SpMV and PointAdd — are submitted
simultaneously; their Flink tasks *produce* GWork while the shared GPUs'
GStreams *consume* it (the producer–consumer scheme that lets "a GPU be
shared among multiple task slots").

* **8c** single node, parallelism 1 per app: "the running time of concurrent
  execution is slightly more than three times of that of exclusive
  executions" — three apps time-share the node, plus contention overhead.
* **8d** 10-node cluster, parallelism 10: concurrency still costs, because
  "reading and writing from HDFS, as well as transferring data over networks
  affect the performance".
"""

from conftest import run_once
from harness import fresh_session
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.workloads import (
    KMeansWorkload,
    PointAddWorkload,
    SpMVWorkload,
    run_concurrent,
)

ITERS = 4


def _apps(parallelism_hint):
    # Sizes scaled so each app does comparable work.
    return [
        (KMeansWorkload(nominal_elements=40e6, real_elements=6_000,
                        iterations=ITERS), "gpu"),
        (SpMVWorkload(nominal_elements=4e6, real_elements=6_000,
                      iterations=ITERS), "gpu"),
        (PointAddWorkload(nominal_elements=40e6, real_elements=6_000,
                          iterations=ITERS), "gpu"),
    ]


def _exclusive_walls(config):
    walls = {}
    for workload, mode in _apps(1):
        session = fresh_session(config)
        result = workload.run(session, mode)
        walls[workload.name] = result.total_seconds
    return walls


def _concurrent_walls(config):
    cluster = GFlinkCluster(config)
    results = run_concurrent(cluster, _apps(1))
    return {r.name: r.total_seconds for r in results}


def _report(title, exclusive, concurrent, benchmark):
    print(f"\n== {title} ==")
    print(f"{'app':10s} {'exclusive':>10} {'concurrent':>11} {'ratio':>7}")
    for name in exclusive:
        e, c = exclusive[name], concurrent[name]
        print(f"{name:10s} {e:>9.2f}s {c:>10.2f}s {c / e:>6.2f}x")
    benchmark.extra_info["walls"] = {
        "exclusive": {k: round(v, 3) for k, v in exclusive.items()},
        "concurrent": {k: round(v, 3) for k, v in concurrent.items()},
    }


def test_fig8c_concurrent_apps_single_node(benchmark):
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=4),
                           gpus_per_worker=("c2050", "c2050"))

    def measure():
        return _exclusive_walls(config), _concurrent_walls(config)

    exclusive, concurrent = run_once(benchmark, measure)
    _report("Fig 8c: three concurrent applications, single node",
            exclusive, concurrent, benchmark)

    # Every app slows down under sharing...
    for name in exclusive:
        assert concurrent[name] > exclusive[name]
    # ...and the joint makespan is ~the serialized sum (plus contention):
    # three apps share two GPUs and four slots.
    total_exclusive = sum(exclusive.values())
    joint_makespan = max(concurrent.values())
    avg_exclusive = total_exclusive / 3
    ratio = joint_makespan / avg_exclusive
    print(f"joint makespan / single exclusive run: {ratio:.2f}x "
          f"(paper: 'slightly more than three times')")
    assert 2.0 <= ratio <= 5.0


def test_fig8d_concurrent_apps_cluster(benchmark):
    config = ClusterConfig(n_workers=10, cpu=CPUSpec(cores=4),
                           gpus_per_worker=("c2050", "c2050"))

    def measure():
        return _exclusive_walls(config), _concurrent_walls(config)

    exclusive, concurrent = run_once(benchmark, measure)
    _report("Fig 8d: three concurrent applications, 10-node cluster",
            exclusive, concurrent, benchmark)

    # Contention exists but the cluster absorbs it better than one node:
    # per-app slowdown factors stay below the single-node worst case.
    slowdowns = [concurrent[n] / exclusive[n] for n in exclusive]
    assert all(s > 1.0 for s in slowdowns)
    assert max(slowdowns) < 4.0


def test_fig8cd_gpu_sharing_is_safe(benchmark):
    """Concurrent apps must still compute correct results (isolation of
    cache regions per app_id, no cross-app data mixing)."""
    import numpy as np

    def measure():
        config = ClusterConfig(n_workers=2, cpu=CPUSpec(cores=2),
                               gpus_per_worker=("c2050",))
        cluster = GFlinkCluster(config)
        apps = [
            (SpMVWorkload(nominal_elements=3_000, real_elements=3_000,
                          iterations=3), "gpu"),
            (PointAddWorkload(nominal_elements=3_000, real_elements=3_000,
                              iterations=2), "gpu"),
        ]
        concurrent = run_concurrent(cluster, apps)

        solo_cluster = GFlinkCluster(config)
        solo = SpMVWorkload(nominal_elements=3_000, real_elements=3_000,
                            iterations=3).run(
            GFlinkSession(solo_cluster), "gpu")
        return (np.asarray(concurrent[0].value, float),
                np.asarray(solo.value, float))

    concurrent_x, solo_x = run_once(benchmark, measure)
    assert np.allclose(concurrent_x, solo_x, atol=1e-6)
