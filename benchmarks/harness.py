"""Shared benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper.
The *measurement* is simulated cluster time (the quantity the paper plots);
pytest-benchmark additionally records the host-side cost of running the
simulation.  Every bench

* prints the paper-style rows/series (visible with ``pytest -s`` and stored
  in ``benchmark.extra_info`` for the JSON report), and
* asserts the qualitative shape the paper reports (who wins, by roughly what
  factor, where the crossovers are), so a regression in the model fails CI.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.obs.export import (
    collect_cluster,
    write_chrome_trace,
    write_metrics,
)
from repro.workloads.base import WorkloadResult

#: Consolidated results of one benchmark run of this PR's suite: each bench
#: records its workload's simulated seconds and speedup here, so CI (and a
#: reviewer) reads one file instead of scraping pytest-benchmark JSON.
BENCH_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"

#: Consolidated GProfiler briefs (critical path, bottleneck classes,
#: copy/compute overlap) from the profiling bench suite.
BENCH_PROFILE_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"


def record_bench(name: str, payload: dict,
                 path: Optional[Path] = None) -> None:
    """Merge one bench's summary into a consolidated results file.

    Load-merge-write keeps entries from the other benches of the same run;
    a fresh run simply overwrites stale entries name by name.  ``path``
    defaults to this PR suite's :data:`BENCH_RESULTS_PATH`; later suites
    (e.g. ``bench_resilience``) pass their own consolidated file.
    """
    path = path or BENCH_RESULTS_PATH
    results: Dict[str, dict] = {}
    if path.exists():
        try:
            results = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            results = {}
    results[name] = payload
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

#: The paper's testbed: 10 slaves, each an i5-4590 (4 cores @3.3 GHz) with
#: two Tesla C2050 GPUs (§6.1, §6.5).
PAPER_GPUS = ("c2050", "c2050")


def paper_cluster_config(n_workers: int = 10,
                         gpus: Sequence[str] = PAPER_GPUS) -> ClusterConfig:
    """The evaluation cluster of §6.5 (scaled by ``n_workers``).

    Benchmarks run with tracing on (tests keep the default off): it never
    touches the simulated clock, and setting ``REPRO_BENCH_TRACE_DIR`` makes
    every :func:`run_workload` drop its Chrome trace + metrics there.
    """
    return ClusterConfig(n_workers=n_workers, cpu=CPUSpec(),
                         gpus_per_worker=tuple(gpus),
                         flink=FlinkConfig(enable_tracing=True))


def fresh_session(config: ClusterConfig) -> GFlinkSession:
    """A new cluster + session (no state shared between experiment points)."""
    return GFlinkSession(GFlinkCluster(config))


@dataclass
class Row:
    """One line of a paper-style results table."""

    label: str
    cpu_s: float
    gpu_s: float

    @property
    def speedup(self) -> float:
        return self.cpu_s / self.gpu_s if self.gpu_s > 0 else float("inf")


@dataclass
class FigureReport:
    """Collected rows for one table/figure, with pretty printing."""

    title: str
    rows: List[Row] = field(default_factory=list)

    def add(self, label: str, cpu_s: float, gpu_s: float) -> Row:
        row = Row(label, cpu_s, gpu_s)
        self.rows.append(row)
        return row

    def speedups(self) -> List[float]:
        return [r.speedup for r in self.rows]

    def render(self) -> str:
        width = max((len(r.label) for r in self.rows), default=10)
        lines = [f"\n== {self.title} ==",
                 f"{'input':<{width}}  {'Flink (CPU)':>12}  "
                 f"{'GFlink (GPU)':>12}  {'speedup':>8}"]
        for r in self.rows:
            lines.append(f"{r.label:<{width}}  {r.cpu_s:>10.2f} s  "
                         f"{r.gpu_s:>10.2f} s  {r.speedup:>7.2f}x")
        return "\n".join(lines)

    def emit(self, benchmark=None) -> None:
        print(self.render())
        table = [
            {"label": r.label, "cpu_s": round(r.cpu_s, 3),
             "gpu_s": round(r.gpu_s, 3),
             "speedup": round(r.speedup, 3)}
            for r in self.rows
        ]
        if benchmark is not None:
            benchmark.extra_info["table"] = table
        record_bench(self.title, {"rows": table})


def profile_brief(session: GFlinkSession) -> Optional[dict]:
    """A compact GProfiler digest of one traced run (None when untraced).

    The full summary (:func:`repro.obs.profile.summarize_tracer`) is large;
    benches attach just the headline numbers to each record: makespan,
    critical-path split, each operator's bottleneck class, and the
    cluster-wide copy/compute overlap.
    """
    cluster = session.cluster
    if not cluster.obs.enabled:
        return None
    from repro.obs.profile import summarize_tracer
    summary = summarize_tracer(cluster.obs.tracer)
    cats = summary["critical_path"]["categories"]
    return {
        "makespan_s": round(summary["makespan_s"], 4),
        "critical_path_s": round(summary["critical_path"]["length_s"], 4),
        "critical_path_categories": {
            k: round(v, 4) for k, v in cats.items() if v > 0},
        "bottlenecks": {
            op: entry["class"]
            for op, entry in summary["operators"].items()},
        "copy_compute_overlap_pct": round(
            summary["totals"]["copy_compute_overlap_pct"], 4),
    }


_trace_seq = itertools.count()


def _maybe_dump_trace(session: GFlinkSession, label: str) -> None:
    """Drop this run's trace + metrics into ``$REPRO_BENCH_TRACE_DIR``."""
    out_dir = os.environ.get("REPRO_BENCH_TRACE_DIR")
    cluster = session.cluster
    if not out_dir or not cluster.obs.enabled:
        return
    collect_cluster(cluster.obs.registry, cluster)
    base = Path(out_dir) / f"{next(_trace_seq):03d}-{label}"
    write_chrome_trace(cluster.obs.tracer,
                       base.with_suffix(".trace.json"))
    write_metrics(cluster.obs.registry, base.with_suffix(".metrics.json"))


def run_workload(workload_factory: Callable[[], object], mode: str,
                 config: ClusterConfig,
                 session: Optional[GFlinkSession] = None) -> WorkloadResult:
    """Run one workload in one mode on a fresh (or given) cluster."""
    session = session or fresh_session(config)
    workload = workload_factory()
    result = workload.run(session, mode)
    result.profile = profile_brief(session)
    _maybe_dump_trace(session, f"{type(workload).__name__}-{mode}")
    return result


def sweep(workload_factory: Callable[[object], object],
          sizes: Sequence[object], config: ClusterConfig,
          title: str) -> FigureReport:
    """CPU-vs-GPU sweep over Table 1 sizes → one figure report."""
    report = FigureReport(title)
    for size in sizes:
        cpu = run_workload(lambda: workload_factory(size), "cpu", config)
        gpu = run_workload(lambda: workload_factory(size), "gpu", config)
        report.add(size.label, cpu.total_seconds, gpu.total_seconds)
    return report


def assert_speedups_in_band(report: FigureReport, low: float, high: float,
                            paper_value: float) -> None:
    """The sweep's speedups must bracket the paper's reported factor."""
    speedups = report.speedups()
    assert all(low <= s <= high for s in speedups), (
        f"{report.title}: speedups {speedups} outside [{low}, {high}] "
        f"(paper reports ~{paper_value}x)")


def assert_mid_size_speedup(report: FigureReport, paper_value: float,
                            rel: float = 0.30) -> None:
    """The middle input size must land within ``rel`` of the paper's factor.

    (The paper quotes a single per-benchmark number; its sweeps also fan out
    around it, smallest inputs being overhead-bound per Observation 3.)
    """
    mid = report.rows[len(report.rows) // 2].speedup
    assert abs(mid - paper_value) / paper_value <= rel, (
        f"{report.title}: mid-size speedup {mid:.2f}x vs paper "
        f"~{paper_value}x (tolerance {rel:.0%})")


def assert_speedup_grows_with_size(report: FigureReport,
                                   tolerance: float = 0.98) -> None:
    """Observation 3: larger inputs amortize fixed overheads."""
    speedups = report.speedups()
    for smaller, larger in zip(speedups, speedups[1:]):
        assert larger >= smaller * tolerance, (
            f"{report.title}: speedup fell from {smaller:.2f} to "
            f"{larger:.2f} as input grew")
    assert speedups[-1] > speedups[0], (
        f"{report.title}: speedup did not grow with input size")
