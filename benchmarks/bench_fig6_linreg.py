"""Fig. 6b — LinearRegression: running time and speedup on the cluster.

Inputs 150–270 M samples.  The paper's largest factor (~9.2x): the workload
"is bounded by calculations on each data point", all of which move to the
GPU, and only a DIM-sized gradient returns per partition.
"""

from conftest import run_once
from harness import (
    assert_mid_size_speedup,
    assert_speedup_grows_with_size,
    assert_speedups_in_band,
    paper_cluster_config,
    sweep,
)
from repro.workloads import LinearRegressionWorkload, table1_sizes

REAL_SAMPLES = 12_000
ITERATIONS = 10


def test_fig6b_linear_regression_cluster(benchmark):
    config = paper_cluster_config()

    def factory(size):
        return LinearRegressionWorkload(
            nominal_elements=size.nominal_elements,
            real_elements=REAL_SAMPLES, iterations=ITERATIONS)

    report = run_once(benchmark, lambda: sweep(
        factory, table1_sizes("linear_regression"), config,
        "Fig 6b: LinearRegression on the cluster (paper: ~9.2x)"))
    report.emit(benchmark)

    assert_speedups_in_band(report, low=6.5, high=11.0, paper_value=9.2)
    assert_mid_size_speedup(report, 9.2)
    assert_speedup_grows_with_size(report)


def test_fig6b_linreg_is_the_best_case(benchmark):
    """LinearRegression's speedup exceeds KMeans' at the same input size
    (Fig. 5a vs 6b), because its reduce side is a single DIM-vector."""
    from harness import run_workload
    from repro.workloads import KMeansWorkload

    config = paper_cluster_config()

    def measure():
        n = 210e6
        lr = {m: run_workload(lambda: LinearRegressionWorkload(
            nominal_elements=n, real_elements=REAL_SAMPLES, iterations=5),
            m, config).total_seconds for m in ("cpu", "gpu")}
        km = {m: run_workload(lambda: KMeansWorkload(
            nominal_elements=n, real_elements=REAL_SAMPLES, iterations=5),
            m, config).total_seconds for m in ("cpu", "gpu")}
        return lr["cpu"] / lr["gpu"], km["cpu"] / km["gpu"]

    lr_speedup, km_speedup = run_once(benchmark, measure)
    print(f"\nlinreg {lr_speedup:.2f}x vs kmeans {km_speedup:.2f}x")
    assert lr_speedup > km_speedup
