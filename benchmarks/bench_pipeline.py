"""Pipelined-executor benchmark: staged vs streaming A/B + knob sweep.

Two experiments, consolidated into ``BENCH_PR6.json``:

* **A/B** — the same workloads run under the barriered staged executor and
  the streaming block-pipelined one.  Results must be *bit-identical* (the
  data plane is untouched; only the clock changes) and the pipelined clock
  must never lose: overlapping HDFS reads with deserialization, H2D copies
  and kernels can only hide latency, never add it.
* **Knob sweep** — block size (``pipeline_block_nbytes``) × queue depth
  (``pipeline_queue_blocks``) on the I/O-bound WordCount.  Finer blocks
  expose more of the read window to downstream stages; deeper queues buy
  more read-ahead before backpressure stalls the producer.

The paper's point (§6.5) survives intact: WordCount stays I/O-bound, so
the win is a few percent of makespan — exactly the HDFS tail the pipeline
hides — not a step change.
"""

from pathlib import Path

from conftest import run_once
from harness import record_bench
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.chaos import values_equal
from repro.workloads import KMeansWorkload, WordCountWorkload

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"

N_WORKERS = 10
REAL_WORDS = 40_000
REAL_POINTS = 12_000

#: (label, mode, factory) — the A/B matrix.  Sizes are chosen so the HDFS
#: scan is multiple blocks per subtask (else there is nothing to overlap).
WORKLOADS = (
    ("wordcount-cpu-1e8", "cpu",
     lambda: WordCountWorkload(nominal_elements=1e8,
                               real_elements=REAL_WORDS)),
    ("wordcount-gpu-1e8", "gpu",
     lambda: WordCountWorkload(nominal_elements=1e8,
                               real_elements=REAL_WORDS)),
    ("kmeans-gpu-1e9", "gpu",
     lambda: KMeansWorkload(nominal_elements=1e9,
                            real_elements=REAL_POINTS, iterations=3)),
)

#: Knob grid for the sweep (block size in MiB, queue depth in blocks).
BLOCK_MIB = (2, 8, 32)
QUEUE_BLOCKS = (2, 4, 8)


def _config(executor: str, block_mib: float = None,
            queue_blocks: int = None) -> ClusterConfig:
    flink_kwargs = {"executor": executor}
    if block_mib is not None:
        flink_kwargs["pipeline_block_nbytes"] = block_mib * 2 ** 20
    if queue_blocks is not None:
        flink_kwargs["pipeline_queue_blocks"] = queue_blocks
    return ClusterConfig(n_workers=N_WORKERS, cpu=CPUSpec(),
                         gpus_per_worker=("c2050", "c2050"),
                         flink=FlinkConfig(**flink_kwargs))


def _run(factory, mode: str, config: ClusterConfig):
    return factory().run(GFlinkSession(GFlinkCluster(config)), mode)


def test_pipeline_staged_vs_pipelined(benchmark):
    def measure():
        points = []
        for label, mode, factory in WORKLOADS:
            staged = _run(factory, mode, _config("staged"))
            piped = _run(factory, mode, _config("pipelined"))
            points.append({
                "workload": label,
                "staged_s": round(staged.total_seconds, 4),
                "pipelined_s": round(piped.total_seconds, 4),
                "speedup": round(staged.total_seconds
                                 / piped.total_seconds, 4),
                "identical": values_equal(staged.value, piped.value),
            })
        return points

    points = run_once(benchmark, measure)

    print("\n== Staged vs pipelined executor "
          f"({N_WORKERS} workers) ==")
    print(f"{'workload':<18} {'staged':>9} {'pipelined':>10} "
          f"{'speedup':>8} {'same':>5}")
    for p in points:
        print(f"{p['workload']:<18} {p['staged_s']:>8.2f}s "
              f"{p['pipelined_s']:>9.2f}s {p['speedup']:>7.3f}x "
              f"{'yes' if p['identical'] else 'NO':>5}")

    summary = {p["workload"]: p for p in points}
    benchmark.extra_info["table"] = summary
    record_bench("pipeline_staged_vs_pipelined", summary, path=RESULTS_PATH)
    print(f"consolidated results written to {RESULTS_PATH.name}")

    # The two executors share one data plane: results are bit-identical.
    assert all(p["identical"] for p in points)
    # Overlap can only hide latency; the pipelined clock never loses.
    assert all(p["speedup"] >= 1.0 for p in points)
    # And it visibly wins somewhere: the I/O tail is real.
    assert max(p["speedup"] for p in points) >= 1.02


def test_pipeline_block_queue_sweep(benchmark):
    factory = WORKLOADS[1][2]  # wordcount-gpu-1e8: I/O-bound, single pass

    def measure():
        staged = _run(factory, "gpu", _config("staged"))
        grid = []
        for block_mib in BLOCK_MIB:
            for queue in QUEUE_BLOCKS:
                piped = _run(factory, "gpu",
                             _config("pipelined", block_mib, queue))
                grid.append({
                    "block_mib": block_mib, "queue_blocks": queue,
                    "pipelined_s": round(piped.total_seconds, 4),
                    "speedup": round(staged.total_seconds
                                     / piped.total_seconds, 4),
                    "identical": values_equal(staged.value, piped.value),
                })
        return staged.total_seconds, grid

    staged_s, grid = run_once(benchmark, measure)

    print("\n== Pipeline knobs: block size x queue depth "
          f"(wordcount-gpu-1e8, staged {staged_s:.2f} s) ==")
    print(f"{'block':>6} {'queue':>6} {'pipelined':>10} {'speedup':>8} "
          f"{'same':>5}")
    for g in grid:
        print(f"{g['block_mib']:>4}MB {g['queue_blocks']:>6} "
              f"{g['pipelined_s']:>9.2f}s {g['speedup']:>7.3f}x "
              f"{'yes' if g['identical'] else 'NO':>5}")

    summary = {f"block{g['block_mib']}MB-queue{g['queue_blocks']}": g
               for g in grid}
    summary["staged_s"] = round(staged_s, 4)
    benchmark.extra_info["table"] = summary
    record_bench("pipeline_block_queue_sweep", summary, path=RESULTS_PATH)
    print(f"consolidated results written to {RESULTS_PATH.name}")

    # Correctness is knob-independent: every grid point is bit-identical.
    assert all(g["identical"] for g in grid)
    # No knob setting may make the pipeline slower than the barrier.
    assert all(g["speedup"] >= 1.0 for g in grid)
    # Finer blocks expose more overlap on an I/O-bound scan: the best
    # fine-block point is at least as good as the best coarse-block one.
    best = {b: max(g["speedup"] for g in grid if g["block_mib"] == b)
            for b in BLOCK_MIB}
    assert best[min(BLOCK_MIB)] >= best[max(BLOCK_MIB)] - 1e-9
