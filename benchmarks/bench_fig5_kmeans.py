"""Fig. 5a — KMeans: average running time and speedup on the cluster.

10 slave nodes, 4 CPUs + 2 Tesla C2050 each; inputs 150–270 M points
(Table 1).  The paper reports ~5x overall, improving with input size, because
KMeans is compute-intensive and "only shuffles centers in each iteration".
"""

from conftest import run_once
from harness import (
    assert_mid_size_speedup,
    assert_speedup_grows_with_size,
    assert_speedups_in_band,
    paper_cluster_config,
    sweep,
)
from repro.workloads import KMeansWorkload, table1_sizes

REAL_POINTS = 12_000
ITERATIONS = 10


def test_fig5a_kmeans_cluster(benchmark):
    config = paper_cluster_config()

    def factory(size):
        return KMeansWorkload(nominal_elements=size.nominal_elements,
                              real_elements=REAL_POINTS,
                              iterations=ITERATIONS)

    report = run_once(benchmark, lambda: sweep(
        factory, table1_sizes("kmeans"), config,
        "Fig 5a: KMeans on the cluster (paper: ~5x)"))
    report.emit(benchmark)

    assert_speedups_in_band(report, low=3.0, high=7.5, paper_value=5.0)
    assert_mid_size_speedup(report, 5.0)
    assert_speedup_grows_with_size(report)
    # CPU time grows roughly linearly with input (compute-bound).
    cpu = [r.cpu_s for r in report.rows]
    assert cpu[-1] / cpu[0] > 1.5
