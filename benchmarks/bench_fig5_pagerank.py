"""Fig. 5b — PageRank: average running time and speedup on the cluster.

Inputs 5–25 M pages.  The paper reports ~3.5x: the per-edge contribution
computation accelerates, but the per-iteration contribution shuffle does not
(Observation 1 caps the overall factor).
"""

from conftest import run_once
from harness import (
    assert_mid_size_speedup,
    assert_speedup_grows_with_size,
    assert_speedups_in_band,
    paper_cluster_config,
    sweep,
)
from repro.workloads import PageRankWorkload, table1_sizes

REAL_PAGES = 2_000
ITERATIONS = 10


def test_fig5b_pagerank_cluster(benchmark):
    config = paper_cluster_config()

    def factory(size):
        return PageRankWorkload(nominal_pages=size.nominal_elements,
                                real_pages=REAL_PAGES,
                                iterations=ITERATIONS)

    report = run_once(benchmark, lambda: sweep(
        factory, table1_sizes("pagerank"), config,
        "Fig 5b: PageRank on the cluster (paper: ~3.5x)"))
    report.emit(benchmark)

    # The spread across sizes is wide (Observation 3): the smallest input
    # is overhead-bound.  The mid-size point sits at the paper's ~3.5x.
    assert_speedups_in_band(report, low=1.7, high=4.8, paper_value=3.5)
    assert_mid_size_speedup(report, 3.5)
    assert_speedup_grows_with_size(report)


def test_fig5b_pagerank_shuffle_caps_speedup(benchmark):
    """Observation 1: PageRank shuffles real data every iteration, unlike
    KMeans — its shuffle bytes per iteration are far higher."""
    from harness import run_workload
    from repro.workloads import KMeansWorkload

    config = paper_cluster_config(n_workers=3)

    def measure():
        pr = run_workload(lambda: PageRankWorkload(
            nominal_pages=10e6, real_pages=REAL_PAGES, iterations=3),
            "cpu", config)
        km = run_workload(lambda: KMeansWorkload(
            nominal_elements=10e6 * 8, real_elements=REAL_PAGES * 8,
            iterations=3), "cpu", config)
        pr_shuffle = sum(m.shuffle_bytes for m in pr.job_metrics)
        km_shuffle = sum(m.shuffle_bytes for m in km.job_metrics)
        return pr_shuffle, km_shuffle

    pr_shuffle, km_shuffle = run_once(benchmark, measure)
    print(f"\nshuffle bytes: pagerank={pr_shuffle:.3g}, "
          f"kmeans={km_shuffle:.3g}")
    assert pr_shuffle > 10 * km_shuffle
