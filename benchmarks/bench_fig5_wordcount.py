"""Fig. 5c — WordCount: average running time and speedup on the cluster.

Inputs 24–56 GB of text.  The paper reports only ~1.1x: WordCount is a
one-pass batch job whose HDFS I/O is the bottleneck, so GPU acceleration of
the counting barely moves the total.
"""

from conftest import run_once
from harness import assert_speedups_in_band, paper_cluster_config, sweep
from repro.workloads import WordCountWorkload, table1_sizes

REAL_WORDS = 40_000


def test_fig5c_wordcount_cluster(benchmark):
    config = paper_cluster_config()

    def factory(size):
        return WordCountWorkload(nominal_elements=size.nominal_elements,
                                 real_elements=REAL_WORDS)

    report = run_once(benchmark, lambda: sweep(
        factory, table1_sizes("wordcount"), config,
        "Fig 5c: WordCount on the cluster (paper: ~1.1x)"))
    report.emit(benchmark)

    assert_speedups_in_band(report, low=1.0, high=1.35, paper_value=1.1)
    # The GPU path must still not lose.
    assert all(r.speedup >= 1.0 for r in report.rows)


def test_fig5c_wordcount_io_is_bottleneck(benchmark):
    """§6.5: 'the I/O overhead of WordCount is the bottleneck'."""
    from harness import run_workload

    config = paper_cluster_config()

    def measure():
        result = run_workload(lambda: WordCountWorkload(
            nominal_elements=2.4e9, real_elements=REAL_WORDS), "gpu", config)
        metrics = result.job_metrics[0]
        io_bytes = metrics.hdfs_read_bytes + metrics.hdfs_write_bytes
        return io_bytes, metrics.gpu_kernel_s, result.total_seconds

    io_bytes, kernel_s, total_s = run_once(benchmark, measure)
    disk_seconds = io_bytes / (10 * 150e6)  # cluster aggregate read rate
    print(f"\nI/O-bound check: disk~{disk_seconds:.1f}s of "
          f"{total_s:.1f}s total; GPU kernels {kernel_s:.2f}s")
    assert disk_seconds > 0.3 * total_s
    assert kernel_s < 0.1 * total_s
