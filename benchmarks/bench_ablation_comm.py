"""Ablation — JVM↔GPU communication paths (§2.3, §4.1).

End-to-end comparison of the three strategies the paper discusses:

* **GFlink** — GStruct bytes in off-heap direct buffers, zero-copy DMA;
* **JNI-heap** — the naive path of SWAT/Spark-GPU-style systems: convert
  JVM objects to a heap buffer, copy heap→native, pageable DMA;
* **RPC** — the HeteroSpark path: serialize through the local TCP/IP stack.

The paper's claim: the naive paths' "overhead of transformation is
significant compared with the actual useful computation".
"""

import numpy as np

from conftest import run_once
from harness import fresh_session, paper_cluster_config
from repro.core.channels import CommMode
from repro.gpu import KernelSpec


def _run_mode(mode: CommMode) -> float:
    session = fresh_session(paper_cluster_config(n_workers=2))
    session.register_kernel(KernelSpec(
        "scale", lambda i, p: {"out": i["in"] * 2.0},
        flops_per_element=4.0, bytes_per_element=16.0, efficiency=0.5))
    data = np.arange(20_000, dtype=np.float64)
    ds = session.from_collection(data, element_nbytes=8.0, scale=5_000.0,
                                 parallelism=4).persist()
    ds.materialize()
    result = ds.gpu_map_partition("scale", comm_mode=mode, name="m").count()
    return result.metrics.span_of("m").seconds


def test_ablation_communication_paths(benchmark):
    def measure():
        return {mode.value: _run_mode(mode)
                for mode in (CommMode.GFLINK, CommMode.JNI_HEAP,
                             CommMode.RPC)}

    times = run_once(benchmark, measure)
    print("\n== Ablation: JVM->GPU communication path (map phase, 100M "
          "elements) ==")
    for mode, t in times.items():
        print(f"{mode:10s} {t:8.3f} s  "
              f"({t / times['gflink']:.2f}x of GFlink)")
    benchmark.extra_info["seconds"] = {k: round(v, 4)
                                       for k, v in times.items()}

    assert times["gflink"] < times["jni-heap"] < times["rpc"]
    # The conversion overhead dwarfs the useful transfer: the naive path
    # costs several times the GFlink path on a transfer-bound map.
    assert times["jni-heap"] > 2.0 * times["gflink"]
    assert times["rpc"] > 3.0 * times["gflink"]
