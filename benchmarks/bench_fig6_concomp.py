"""Fig. 6c — ConnectedComponents: running time and speedup on the cluster.

Inputs 5–25 M pages.  The paper reports ~4.8x — between PageRank (more
shuffle per iteration) and KMeans (almost none).
"""

from conftest import run_once
from harness import (
    assert_mid_size_speedup,
    assert_speedup_grows_with_size,
    assert_speedups_in_band,
    paper_cluster_config,
    sweep,
)
from repro.workloads import ConnectedComponentsWorkload, table1_sizes

REAL_PAGES = 2_000
ITERATIONS = 10


def test_fig6c_connected_components_cluster(benchmark):
    config = paper_cluster_config()

    def factory(size):
        return ConnectedComponentsWorkload(
            nominal_pages=size.nominal_elements, real_pages=REAL_PAGES,
            iterations=ITERATIONS)

    report = run_once(benchmark, lambda: sweep(
        factory, table1_sizes("connected_components"), config,
        "Fig 6c: ConnectedComponents on the cluster (paper: ~4.8x)"))
    report.emit(benchmark)

    assert_speedups_in_band(report, low=2.1, high=6.6, paper_value=4.8)
    assert_mid_size_speedup(report, 4.8)
    assert_speedup_grows_with_size(report)


def test_fig6c_ordering_between_pagerank_and_kmeans(benchmark):
    """Fig. 5/6 ordering: PageRank < ConnectedComponents < LinearRegression."""
    from harness import run_workload
    from repro.workloads import LinearRegressionWorkload, PageRankWorkload

    config = paper_cluster_config()

    def measure():
        def speedup(factory):
            cpu = run_workload(factory, "cpu", config).total_seconds
            gpu = run_workload(factory, "gpu", config).total_seconds
            return cpu / gpu

        cc = speedup(lambda: ConnectedComponentsWorkload(
            nominal_pages=15e6, real_pages=REAL_PAGES, iterations=5))
        pr = speedup(lambda: PageRankWorkload(
            nominal_pages=15e6, real_pages=REAL_PAGES, iterations=5))
        lr = speedup(lambda: LinearRegressionWorkload(
            nominal_elements=210e6, real_elements=12_000, iterations=5))
        return pr, cc, lr

    pr, cc, lr = run_once(benchmark, measure)
    print(f"\npagerank {pr:.2f}x < concomp {cc:.2f}x < linreg {lr:.2f}x")
    assert pr < cc < lr
