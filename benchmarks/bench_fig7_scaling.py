"""Fig. 7c/7d — Average running time vs number of slave nodes.

Fixed 10 GB input, slaves varying 1..10: "The running time on CPUs decreases
rapidly along with the increase of the number of slave nodes, while the
running time on GPUs decreases slowly ... the overhead caused by I/O,
communication over networks, task scheduling and system invoking rather than
the computation has become the bottleneck [for GPUs]."
"""

from repro.common.units import GB

from conftest import run_once
from harness import FigureReport, fresh_session, paper_cluster_config
from repro.workloads import KMeansWorkload, SpMVWorkload

NODE_COUNTS = [1, 2, 4, 6, 8, 10]


def _scaling_curves(factory, iterations):
    """Average *per-iteration* time (the figures' y-axis: "average running
    time ... for an iteration"), taken over the steady middle iterations."""
    curves = {"cpu": [], "gpu": []}
    for n in NODE_COUNTS:
        config = paper_cluster_config(n_workers=n)
        for mode in ("cpu", "gpu"):
            result = factory().run(fresh_session(config), mode)
            mids = result.iteration_seconds[1:-1]
            curves[mode].append(sum(mids) / len(mids))
    return curves


def _check_fig7cd_shape(curves):
    cpu, gpu = curves["cpu"], curves["gpu"]
    # CPU falls rapidly with nodes; GPU only slowly.
    cpu_gain = cpu[0] / cpu[-1]
    gpu_gain = gpu[0] / gpu[-1]
    assert cpu_gain > 3.0, f"CPU should scale well, got {cpu_gain:.2f}x"
    assert gpu_gain < cpu_gain / 2, (
        f"GPU curve should be much flatter: {gpu_gain:.2f} vs {cpu_gain:.2f}")
    # Monotone non-increasing curves (within 2% noise).
    for series in (cpu, gpu):
        for a, b in zip(series, series[1:]):
            assert b <= a * 1.02
    # GPU under CPU at every point.
    assert all(g < c for c, g in zip(cpu, gpu))


def _emit(title, curves, benchmark):
    print(f"\n== {title} ==")
    print("nodes " + "  ".join(f"{n:>8d}" for n in NODE_COUNTS))
    for mode in ("cpu", "gpu"):
        print(f"{mode:5s} " + "  ".join(f"{t:8.2f}" for t in curves[mode]))
    benchmark.extra_info["curves"] = {
        "nodes": NODE_COUNTS,
        "cpu_s": [round(t, 3) for t in curves["cpu"]],
        "gpu_s": [round(t, 3) for t in curves["gpu"]],
    }


def test_fig7c_kmeans_scaling(benchmark):
    # "the same matrix data size (10 GB)": 10 GB of 8-byte points.
    n_points = 10 * GB / 8.0

    curves = run_once(benchmark, lambda: _scaling_curves(
        lambda: KMeansWorkload(nominal_elements=n_points,
                               real_elements=12_000, iterations=5), 5))
    _emit("Fig 7c: KMeans vs #slave nodes (10 GB)", curves, benchmark)
    _check_fig7cd_shape(curves)


def test_fig7d_spmv_scaling(benchmark):
    n_rows = 10 * GB / 192.0

    curves = run_once(benchmark, lambda: _scaling_curves(
        lambda: SpMVWorkload(nominal_elements=n_rows, real_elements=8_000,
                             iterations=5), 5))
    _emit("Fig 7d: SpMV vs #slave nodes (10 GB)", curves, benchmark)
    _check_fig7cd_shape(curves)
