"""Ablation — adaptive locality-aware scheduling (Algorithms 5.1/5.2).

The scheme's value case (§5.3): heterogeneous GPUs shared by multiple
applications.  Each round, an interfering application's (uncached) work
grabs a GPU first; then the iterative application's cached work arrives.
Blind balancing sends it to whatever stream is free — often the *other*
GPU, where its blocks are not cached, forcing a PCIe re-upload.  Algorithm
5.1's GID step instead targets the GPU holding the data (queueing on it if
necessary), and Algorithm 5.2's stealing still drains the pool.

Measured at the GStreamManager level so the placement decision, not
job-level noise, is what differs between the two runs.
"""

import numpy as np

from conftest import run_once
from repro.common import Environment
from repro.core.channels import CommCosts, CUDAWrapper
from repro.core.gmemory import GMemoryManager
from repro.core.gstream import GStreamManager
from repro.core.gwork import GWork
from repro.core.hbuffer import HBuffer
from repro.gpu import (
    CUDARuntime,
    GPUDevice,
    KernelRegistry,
    KernelSpec,
    TESLA_C2050,
    TESLA_K20,
)

ROUNDS = 10
N_REAL = 20_000
SCALE = 500.0  # 10M nominal elements = 80 MB per cached buffer


def _build(locality_aware):
    env = Environment()
    registry = KernelRegistry()
    registry.register(KernelSpec(
        "scale", lambda i, p: {"out": i["in"] * 2.0},
        flops_per_element=2000.0, efficiency=0.5))
    # Device 0 is the *fast* K20: blind balancing's tie-breaks favour it,
    # which is exactly wrong for data cached on the slower C2050.
    devices = [GPUDevice(env, TESLA_K20, index=0),
               GPUDevice(env, TESLA_C2050, index=1)]
    runtime = CUDARuntime(env, devices, registry)
    wrapper = CUDAWrapper(env, runtime, CommCosts())
    gmm = GMemoryManager(devices, cache_capacity_per_device=1 << 28)
    manager = GStreamManager(env, devices, wrapper, gmm, streams_per_gpu=1,
                             locality_aware=locality_aware)
    return env, manager, devices


def _work(cache_key=None, size_mult=1.0):
    n = int(N_REAL * size_mult)
    h = HBuffer(np.arange(n, dtype=np.float64), element_nbytes=8.0,
                scale=SCALE, off_heap=True, pinned=True)
    return GWork("scale", {"in": h}, HBuffer([], 8.0, pinned=True),
                 size=n * SCALE,
                 cache=cache_key is not None, cache_key=cache_key,
                 app_id="victim" if cache_key else "noise")


def _run(locality_aware):
    """Contended rounds on heterogeneous GPUs.

    Bootstrap: an interferer holds the K20, so the victim's data lands in
    the C2050's cache.  Each following round, a long interferer occupies
    the K20 and a short one the C2050; the victim and a noise work arrive
    with no idle stream and park in the GWork pool.  The C2050 frees first
    and the K20 second — Algorithm 5.1's GID queue step is the only thing
    that routes the victim back to the C2050 (where its blocks are hot);
    blind shortest-queue placement hands it to the K20, which must
    re-upload everything over PCIe.
    """
    env, manager, devices = _build(locality_aware)
    t0 = env.now
    # Bootstrap: cache the victim's blocks on device 1 (the C2050).
    boot = [manager.submit(_work(size_mult=2.0)),
            manager.submit(_work(cache_key=("part", 0), size_mult=0.5))]
    env.run(until=env.all_of(boot))
    env.run()
    for _ in range(ROUNDS):
        jobs = [manager.submit(_work(size_mult=4.0)),  # long: K20
                manager.submit(_work(size_mult=1.0)),  # short: C2050
                manager.submit(_work(cache_key=("part", 0),
                                     size_mult=0.5)),  # victim: queued
                manager.submit(_work(size_mult=0.5))]  # noise: queued
        env.run(until=env.all_of(jobs))
        env.run()  # drain stream idle transitions between rounds
    wall = env.now - t0
    region_stats = manager.gmm.stats("victim")
    hits = sum(h for h, m, e in region_stats.values())
    misses = sum(m for h, m, e in region_stats.values())
    return wall, hits, misses


def test_ablation_locality_aware_scheduling(benchmark):
    def measure():
        return {"locality": _run(True), "blind": _run(False)}

    out = run_once(benchmark, measure)
    loc_t, loc_hits, loc_misses = out["locality"]
    blind_t, blind_hits, blind_misses = out["blind"]
    print("\n== Ablation: locality-aware scheduling under interference ==")
    print(f"locality-aware: {loc_t:7.3f} s, cache hits {loc_hits:3d}, "
          f"misses {loc_misses:3d}")
    print(f"blind balance : {blind_t:7.3f} s, cache hits {blind_hits:3d}, "
          f"misses {blind_misses:3d}")
    benchmark.extra_info["results"] = {
        "locality": {"seconds": round(loc_t, 4), "hits": loc_hits,
                     "misses": loc_misses},
        "blind": {"seconds": round(blind_t, 4), "hits": blind_hits,
                  "misses": blind_misses},
    }

    # The victim's blocks stay hot under locality-aware scheduling...
    assert loc_hits > blind_hits
    assert loc_misses < blind_misses
    # ...which removes re-uploads and shortens the run.
    assert loc_t < blind_t
