"""Ablation — native bulk iterations vs per-job driver loops.

Flink's iteration operator runs the whole loop inside one job; a driver
that resubmits a job per iteration (the Spark-style pattern, and what a
GPU driver with Python-side state must do) pays ``T_submit`` and
per-task scheduling every round.  Observation 3's fixed-overhead term is
exactly what the native iteration removes.
"""

from conftest import run_once
from harness import fresh_session, paper_cluster_config
from repro.flink import OpCost

ITERS = 10


def _work_step(ds):
    return ds.map(lambda x: 0.5 * (x + 2.0 / x),
                  cost=OpCost(flops_per_element=50.0), name="newton")


def test_ablation_native_iteration_vs_per_job_loop(benchmark):
    def measure():
        config = paper_cluster_config(n_workers=2)

        # Native bulk iteration: one job, unrolled plan.
        session = fresh_session(config)
        ds = session.from_collection([1.0] * 1000, element_nbytes=8.0,
                                     scale=1e4)
        native = ds.iterate(ITERS, _work_step).count().seconds

        # Per-job loop: resubmit every iteration (persist between).
        session2 = fresh_session(config)
        current = session2.from_collection([1.0] * 1000, element_nbytes=8.0,
                                           scale=1e4).persist()
        current.materialize()
        per_job = 0.0
        for _ in range(ITERS):
            current = _work_step(current).persist()
            per_job += current.materialize().seconds
        return native, per_job

    native, per_job = run_once(benchmark, measure)
    submit = 0.6
    print("\n== Ablation: native bulk iteration vs per-job loop "
          f"({ITERS} iterations) ==")
    print(f"native iteration : {native:6.2f} s (one submit)")
    print(f"per-job loop     : {per_job:6.2f} s ({ITERS} submits)")
    benchmark.extra_info["seconds"] = {"native": round(native, 3),
                                       "per_job": round(per_job, 3)}

    assert native < per_job
    # The saving is at least the avoided submit overheads.
    assert per_job - native > (ITERS - 1) * submit * 0.8
