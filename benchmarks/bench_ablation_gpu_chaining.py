"""Ablation — GPU operator chaining (fused GWork, device-resident
intermediates).

A pipeline of element-wise GPU operators either submits one GWork per
operator (chaining off: every boundary pays a D2H + H2D round-trip over
PCIe) or fuses into a single GWork whose kernel stages run back-to-back
against device-resident buffers (chaining on).  A *d*-deep chain moves
``2d x input`` bytes unfused but only ``2 x input`` fused, so the saving
grows linearly with depth — and is largest on one-copy-engine GPUs
(C2050), where H2D and D2H serialize on the same DMA engine (§4.1.2).
"""

import numpy as np

from conftest import run_once
from harness import record_bench
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.gpu import KernelSpec

DEPTHS = (2, 3, 4, 5, 6)
#: 1- vs 2-copy-engine devices: half- vs full-duplex PCIe.
GPUS = ("c2050", "k20")
REAL_ELEMENTS = 5_000
SCALE = 1e3  # 5M nominal elements = 40 MB through the pipeline


def _session(fused: bool, gpu: str) -> GFlinkSession:
    config = ClusterConfig(
        n_workers=1, cpu=CPUSpec(cores=2), gpus_per_worker=(gpu,),
        flink=FlinkConfig(enable_gpu_chaining=fused))
    session = GFlinkSession(GFlinkCluster(config))
    session.register_kernel(KernelSpec(
        "double", lambda i, p: {"out": i["in"] * 2.0},
        flops_per_element=2.0, efficiency=0.5))
    session.register_kernel(KernelSpec(
        "inc", lambda i, p: {"out": i["in"] + 1.0},
        flops_per_element=1.0, efficiency=0.5))
    return session


def _run(fused: bool, depth: int, gpu: str) -> dict:
    session = _session(fused, gpu)
    data = np.arange(REAL_ELEMENTS, dtype=np.float64)
    ds = session.from_collection(data, element_nbytes=8, scale=SCALE,
                                 parallelism=2)
    for i in range(depth):
        ds = ds.gpu_map("double" if i % 2 == 0 else "inc")
    result = ds.collect()
    return {
        "seconds": result.metrics.makespan,
        "pcie": result.metrics.pcie_bytes,
        "values": sorted(result.value),
        "stage_seconds": dict(result.metrics.gpu_stage_seconds),
    }


def test_ablation_gpu_operator_chaining(benchmark):
    def measure():
        return {(gpu, depth, fused): _run(fused, depth, gpu)
                for gpu in GPUS
                for depth in DEPTHS
                for fused in (True, False)}

    out = run_once(benchmark, measure)

    print("\n== Ablation: GPU operator chaining (gpu_map pipeline) ==")
    print(f"{'gpu':>6} {'depth':>5}  {'fused s':>9} {'unfused s':>9} "
          f"{'speedup':>7}  {'PCIe MB fused':>13} {'unfused':>9} {'x':>5}")
    summary = {}
    for gpu in GPUS:
        for depth in DEPTHS:
            f, u = out[(gpu, depth, True)], out[(gpu, depth, False)]
            pcie_ratio = u["pcie"] / f["pcie"]
            speedup = u["seconds"] / f["seconds"]
            print(f"{gpu:>6} {depth:>5}  {f['seconds']:>9.3f} "
                  f"{u['seconds']:>9.3f} {speedup:>6.2f}x  "
                  f"{f['pcie'] / 1e6:>13.1f} {u['pcie'] / 1e6:>9.1f} "
                  f"{pcie_ratio:>4.1f}x")
            summary[f"{gpu}-depth{depth}"] = {
                "fused_s": round(f["seconds"], 4),
                "unfused_s": round(u["seconds"], 4),
                "speedup": round(speedup, 3),
                "pcie_fused_bytes": f["pcie"],
                "pcie_unfused_bytes": u["pcie"],
                "pcie_reduction": round(pcie_ratio, 2),
            }
    benchmark.extra_info["table"] = summary
    record_bench("ablation_gpu_chaining", summary)

    for gpu in GPUS:
        for depth in DEPTHS:
            f, u = out[(gpu, depth, True)], out[(gpu, depth, False)]
            # Chained results are byte-identical to unfused.
            assert f["values"] == u["values"], (gpu, depth)
            # A d-deep chain saves (d-1) round-trips: PCIe ratio ~= d.
            assert u["pcie"] >= (depth - 0.5) * f["pcie"], (gpu, depth)
            # Per-stage timings stay visible through the fused submission.
            expected = {"double", "inc"} if depth > 1 else {"double"}
            assert set(f["stage_seconds"]) == expected, (gpu, depth)

    # The acceptance bar: a 4-deep chain on the 1-copy-engine C2050 is
    # strictly faster fused, with PCIe reduced at least 2x.
    f4, u4 = out[("c2050", 4, True)], out[("c2050", 4, False)]
    assert f4["seconds"] < u4["seconds"]
    assert u4["pcie"] >= 2 * f4["pcie"]

    # Deeper chains save more wall time (the per-boundary round-trip is
    # the dominant cost of this transfer-bound pipeline).
    for gpu in GPUS:
        savings = [out[(gpu, d, False)]["seconds"]
                   - out[(gpu, d, True)]["seconds"] for d in DEPTHS]
        assert savings[-1] > savings[0], (gpu, savings)

    # Half-duplex C2050 gains relatively more than the full-duplex K20:
    # unfused, its D2H and H2D contend for the single copy engine.
    c2050_speedup = (out[("c2050", 6, False)]["seconds"]
                     / out[("c2050", 6, True)]["seconds"])
    k20_speedup = (out[("k20", 6, False)]["seconds"]
                   / out[("k20", 6, True)]["seconds"])
    print(f"depth-6 speedup: c2050 {c2050_speedup:.2f}x "
          f"vs k20 {k20_speedup:.2f}x")
