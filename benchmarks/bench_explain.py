"""GXplain benchmark: explainer precision across a perturbation matrix.

One shared KMeans baseline (3 workers, gpu mode, traced) is compared
against four perturbed variants, each with a known injected root cause:

* **fault** — the only GPU of worker0 fails early; its operators degrade
  to CPU fallback, so wall time moves into the ``cpu`` bucket;
* **bandwidth** — a C2050 variant with 1/8 the effective PCIe bandwidth
  inflates the ``h2d``/``d2h`` buckets;
* **cache-off** — a one-byte device cache forces every iteration to
  re-upload its inputs (``h2d``);
* **slot-loss** — one worker fewer also removes a datanode, so the HDFS
  ingest path dominates the regression (``hdfs``).

Each cell records the full ranked causes, the rank of the expected
bucket, and the exact-attribution invariant (cause deltas + residual ==
makespan delta).  The headline metric is precision@1: the fraction of
cells whose expected cause ranks first.  Consolidated into
``BENCH_PR10.json``.
"""

import dataclasses
from pathlib import Path

from conftest import run_once
from harness import record_bench
from repro.core import GFlinkCluster, GFlinkSession
from repro.core.gpumanager import GPUManagerConfig
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.chaos import ChaosSchedule
from repro.gpu import specs as gspecs
from repro.obs.explain import explain_summaries, validate_explanation
from repro.obs.profile import summarize_tracer
from repro.workloads import KMeansWorkload

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"

N_WORKERS = 3
SLOW_PCIE_NAME = "c2050-slowpcie"


def _config(n_workers: int = N_WORKERS,
            gpu: str = "c2050") -> ClusterConfig:
    return ClusterConfig(n_workers=n_workers, cpu=CPUSpec(cores=2),
                         gpus_per_worker=(gpu,),
                         flink=FlinkConfig(enable_tracing=True,
                                           retry_backoff_base_s=0.05))


def _run(config: ClusterConfig, gpu_config=None, schedule=None):
    cluster = GFlinkCluster(config, gpu_config=gpu_config)
    if schedule is not None:
        cluster.install_chaos(schedule)
    KMeansWorkload(real_elements=4000, iterations=3).run(
        GFlinkSession(cluster), "gpu")
    return summarize_tracer(cluster.obs.tracer)


def _slow_pcie_summary():
    """Run on a C2050 variant with 1/8 the host<->device bandwidth."""
    gspecs.SPECS[SLOW_PCIE_NAME] = dataclasses.replace(
        gspecs.TESLA_C2050, name="Tesla C2050 (slow PCIe)",
        pcie_effective_bps=gspecs.TESLA_C2050.pcie_effective_bps / 8)
    try:
        return _run(_config(gpu=SLOW_PCIE_NAME))
    finally:
        del gspecs.SPECS[SLOW_PCIE_NAME]


#: cell name -> (runner, buckets the injected cause may legitimately land
#: in).  Singleton sets are strict; bandwidth accepts either PCIe
#: direction (one copy engine serializes both).
MATRIX = {
    "fault": (lambda: _run(_config(), schedule=ChaosSchedule()
                           .fail_gpu("worker0", 0, at=5.0)),
              {"cpu", "recovery"}),
    "bandwidth": (_slow_pcie_summary, {"h2d", "d2h"}),
    "cache-off": (lambda: _run(_config(), gpu_config=GPUManagerConfig(
        cache_bytes_per_device=1)), {"h2d"}),
    "slot-loss": (lambda: _run(_config(n_workers=N_WORKERS - 1)),
                  {"hdfs"}),
}


def test_explainer_precision_matrix(benchmark):
    def measure():
        base = _run(_config())
        return base, {name: runner()
                      for name, (runner, _) in MATRIX.items()}

    base, perturbed = run_once(benchmark, measure)

    print("\n== GXplain precision across injected perturbations ==")
    print(f"{'cell':>10} {'delta':>9} {'top cause':>10} {'rank':>4} "
          f"{'residual':>9} {'expected':>16}")
    cells = {}
    hits = 0
    for name, summary in perturbed.items():
        expected = MATRIX[name][1]
        doc = explain_summaries(summary, base)
        assert validate_explanation(doc) == [], (name, doc)
        causes = doc["causes"]
        assert causes, f"{name}: no causes above the noise floor"
        ranked = [c["key"] for c in causes]
        rank = next((c["rank"] for c in causes if c["key"] in expected), 0)
        hit = causes[0]["key"] in expected
        hits += hit
        print(f"{name:>10} {doc['makespan_delta_s']:>+8.3f}s "
              f"{causes[0]['key']:>10} {rank:>4} "
              f"{doc['residual_s']:>+8.3f}s {'/'.join(sorted(expected)):>16}")

        # Exact attribution: cause deltas + residual == makespan delta,
        # and the residual stays inside the aggregate noise floor.
        attributed = sum(c["delta_s"] for c in causes)
        assert abs(attributed + doc["residual_s"] -
                   doc["makespan_delta_s"]) <= 1e-9, name
        assert abs(doc["residual_s"]) <= \
            doc["noise_floor_s"] * max(1, len(ranked) + 4), name

        cells[name] = {
            "makespan_delta_s": round(doc["makespan_delta_s"], 4),
            "expected": sorted(expected),
            "top_cause": causes[0]["key"],
            "rank_of_expected": rank,
            "hit": hit,
            "residual_s": round(doc["residual_s"], 4),
            "noise_floor_s": round(doc["noise_floor_s"], 4),
            "causes": [{"rank": c["rank"], "key": c["key"],
                        "delta_s": round(c["delta_s"], 4),
                        "share_of_delta": (
                            None if c["share_of_delta"] is None
                            else round(c["share_of_delta"], 4))}
                       for c in causes],
        }

    precision = hits / len(cells)
    print(f"precision@1: {hits}/{len(cells)} = {precision:.0%}")

    summary = {"baseline_makespan_s": round(base["makespan_s"], 4),
               "precision_at_1": precision, "cells": cells}
    benchmark.extra_info["table"] = summary
    record_bench("explain_precision_matrix", summary, path=RESULTS_PATH)
    print(f"consolidated results written to {RESULTS_PATH.name}")

    # Acceptance: every injected cause is ranked first by the explainer.
    assert precision == 1.0, summary
