"""GProfiler bench: critical-path briefs per workload + self-gate check.

Runs traced GPU workloads through the shared harness (which now attaches a
:func:`harness.profile_brief` to every record), profiles each run, and
consolidates the briefs into ``BENCH_PR5.json``.  The shape this asserts:

* critical-path attribution partitions the makespan exactly (the profiler's
  acceptance criterion: sums match to within a clock tick);
* a GPU-heavy run shows device activity (kernel + PCIe seconds) and the
  three-stage pipeline's copy/compute overlap;
* the regression gate passes a run against itself and flags a degraded
  baseline (makespan inflated past the threshold).
"""

from conftest import run_once
from harness import (
    BENCH_PROFILE_PATH,
    fresh_session,
    paper_cluster_config,
    record_bench,
    run_workload,
)
from repro.obs.profile import compare_summaries, summarize_tracer
from repro.workloads import KMeansWorkload, WordCountWorkload

N_WORKERS = 2

WORKLOADS = {
    "kmeans": lambda: KMeansWorkload(nominal_elements=210e6,
                                     real_elements=6000, iterations=2),
    "wordcount": lambda: WordCountWorkload(nominal_elements=50e6,
                                           real_elements=6000),
}


def test_profile_briefs(benchmark):
    def measure():
        out = {}
        for name, factory in WORKLOADS.items():
            config = paper_cluster_config(n_workers=N_WORKERS)
            session = fresh_session(config)
            result = run_workload(factory, "gpu", config, session=session)
            summary = summarize_tracer(session.cluster.obs.tracer)
            out[name] = (result, summary)
        return out

    runs = run_once(benchmark, measure)

    print("\n== GProfiler briefs (gpu mode) ==")
    briefs = {}
    for name, (result, summary) in runs.items():
        brief = result.profile
        assert brief is not None, f"{name}: no profile attached"
        briefs[name] = brief
        cats = ", ".join(f"{k}={v:.3f}s" for k, v in
                         sorted(brief["critical_path_categories"].items()))
        print(f"{name:>10}: makespan {brief['makespan_s']:.3f} s | {cats} "
              f"| overlap {brief['copy_compute_overlap_pct']:.1%}")
        for op, cls in sorted(brief["bottlenecks"].items()):
            print(f"{'':>12}{op}: {cls}")

        # Acceptance: the critical path partitions the makespan exactly.
        total = sum(summary["critical_path"]["categories"].values())
        assert abs(total - summary["makespan_s"]) <= \
            max(1e-9, 1e-9 * summary["makespan_s"]), (name, total)

        # A GPU run must show device activity in the totals.
        assert summary["totals"]["kernel_busy_s"] > 0, name
        assert summary["totals"]["pcie_bytes"] > 0, name
        assert summary["totals"]["copy_compute_overlap_pct"] >= 0.0

        # Self-comparison never regresses.
        deltas = compare_summaries(summary, summary)
        assert not any(d.regressed for d in deltas), name

    # A degraded baseline (20% faster than current ⇒ current regressed)
    # must trip the 10% makespan threshold.
    _, summary = runs["kmeans"]
    faster = dict(summary, makespan_s=summary["makespan_s"] / 1.2)
    deltas = compare_summaries(summary, faster)
    assert any(d.metric == "makespan_s" and d.regressed for d in deltas)

    benchmark.extra_info["table"] = briefs
    record_bench("profile_briefs", briefs, path=BENCH_PROFILE_PATH)
    print(f"consolidated briefs written to {BENCH_PROFILE_PATH.name}")
