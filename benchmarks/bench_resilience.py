"""Resilience benchmark: failure rate vs. makespan overhead.

An iterative GPU workload runs under random chaos schedules of increasing
intensity (Poisson GPU faults + worker kills drawn from one seed), once
with GPU→CPU fallback enabled and once without.  For every point that
completes, the result must be *identical* to the fault-free run — lineage
recovery and CPU fallback are exact, so faults may only cost time, never
correctness.  Consolidated results land in ``BENCH_PR4.json``.

The shape this asserts:

* zero failure rate costs exactly nothing (bit-identical clock);
* with fallback on, every point completes with identical results;
* overhead never goes negative, and the harshest schedule visibly
  exercises the failure machinery (retries / blacklists / fallbacks).
"""

from pathlib import Path

from conftest import run_once
from harness import record_bench
from repro.common.errors import ReproError
from repro.core import GFlinkCluster, GFlinkSession
from repro.core.gpumanager import GPUManagerConfig
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.chaos import ChaosSchedule, values_equal
from repro.workloads import PointAddWorkload

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"

#: Fault arrivals per simulated second (GPU faults; worker kills at 1/4).
RATES = (0.0, 1.0, 2.0, 4.0)
CHAOS_SEED = 20160816
N_WORKERS = 3


def _config() -> ClusterConfig:
    return ClusterConfig(n_workers=N_WORKERS, cpu=CPUSpec(cores=2),
                         gpus_per_worker=("c2050",),
                         flink=FlinkConfig(retry_backoff_base_s=0.05))


def _workload() -> PointAddWorkload:
    return PointAddWorkload(nominal_elements=6000, real_elements=6000,
                            iterations=3)


def _run_point(rate: float, cpu_fallback: bool, duration: float,
               baseline) -> dict:
    config = _config()
    cluster = GFlinkCluster(
        config, gpu_config=GPUManagerConfig(cpu_fallback=cpu_fallback))
    # Kills arrive at an eighth of the GPU-fault rate: with replication 2
    # on three workers, losing two nodes means genuine data loss (no live
    # replica) — a failure no amount of lineage can recover from.
    schedule = ChaosSchedule.random(
        seed=CHAOS_SEED, duration_s=duration,
        workers=config.worker_names(), gpus_per_worker=1,
        worker_kill_rate=rate / 8.0, gpu_fault_rate=rate)
    engine = cluster.install_chaos(schedule)
    point = {"rate": rate, "cpu_fallback": cpu_fallback,
             "faults_scheduled": len(schedule)}
    try:
        result = _workload().run(GFlinkSession(cluster), "gpu")
    except ReproError as exc:
        point.update(completed=False, identical=False, cause=str(exc)[:120])
        return point
    summary = engine.summary()
    point.update(
        completed=True,
        identical=values_equal(baseline.value, result.value),
        makespan_s=round(result.total_seconds, 4),
        overhead=round(
            result.total_seconds / baseline.total_seconds - 1.0, 4),
        faults_applied=summary["events_applied"],
        workers_killed=len(summary["workers_killed"]),
        devices_blacklisted=sum(
            len(gm.blacklisted) for gm in cluster.gpu_managers()),
        retries=sum(m.retries for m in result.job_metrics),
        recovered_partitions=sum(
            m.recovered_partitions for m in result.job_metrics),
        fallback_tasks=sum(m.fallback_tasks for m in result.job_metrics))
    return point


def test_resilience_failure_rate_sweep(benchmark):
    def measure():
        baseline = _workload().run(GFlinkSession(GFlinkCluster(_config())),
                                   "gpu")
        # Faults may arrive any time from t=0 to the fault-free end of the
        # run (input preparation included — the clock is one timeline).
        duration = (baseline.job_metrics[0].started_at
                    + baseline.total_seconds)
        points = [_run_point(rate, fallback, duration, baseline)
                  for rate in RATES
                  for fallback in (True, False)]
        return baseline, points

    baseline, points = run_once(benchmark, measure)

    print("\n== Resilience: failure rate vs makespan overhead "
          f"(fault-free {baseline.total_seconds:.3f} s) ==")
    print(f"{'rate/s':>6} {'fallback':>8} {'done':>5} {'same':>5} "
          f"{'makespan':>9} {'overhead':>9} {'faults':>6} {'kills':>5} "
          f"{'blkl':>4} {'retry':>5} {'recov':>5} {'fback':>5}")
    for p in points:
        if p["completed"]:
            print(f"{p['rate']:>6.2f} {str(p['cpu_fallback']):>8} "
                  f"{'yes':>5} {'yes' if p['identical'] else 'NO':>5} "
                  f"{p['makespan_s']:>8.3f}s {p['overhead']:>+8.1%} "
                  f"{p['faults_applied']:>6} {p['workers_killed']:>5} "
                  f"{p['devices_blacklisted']:>4} {p['retries']:>5} "
                  f"{p['recovered_partitions']:>5} {p['fallback_tasks']:>5}")
        else:
            print(f"{p['rate']:>6.2f} {str(p['cpu_fallback']):>8} "
                  f"{'NO':>5} {'-':>5}  job failed: {p['cause']}")

    summary = {f"rate{p['rate']}-fallback{'on' if p['cpu_fallback'] else 'off'}": p
               for p in points}
    summary["baseline_s"] = round(baseline.total_seconds, 4)
    benchmark.extra_info["table"] = summary
    record_bench("resilience_failure_rate_sweep", summary,
                 path=RESULTS_PATH)
    print(f"consolidated results written to {RESULTS_PATH.name}")

    by_key = {(p["rate"], p["cpu_fallback"]): p for p in points}

    # Zero failure rate costs exactly nothing: the chaos machinery idles
    # and the simulated clock is bit-identical to the fault-free run.
    for fallback in (True, False):
        p = by_key[(0.0, fallback)]
        assert p["completed"] and p["identical"]
        assert p["overhead"] == 0.0, p

    # With CPU fallback, every schedule completes with identical results,
    # and faults only ever cost time.
    for rate in RATES:
        p = by_key[(rate, True)]
        assert p["completed"], p
        assert p["identical"], p
        assert p["overhead"] >= 0.0, p

    # The harshest schedule visibly exercises the failure machinery.
    worst = by_key[(RATES[-1], True)]
    assert worst["faults_applied"] > 0
    assert (worst["retries"] + worst["devices_blacklisted"]
            + worst["fallback_tasks"] + worst["recovered_partitions"]) > 0

    # The degradation knob is the difference between surviving the
    # harshest schedule and dying on it: with fallback off, subtasks on
    # the GPU-less worker burn their retry budget (deterministic for this
    # seed — the same schedule replays identically every run).
    assert not by_key[(RATES[-1], False)]["completed"]
