"""Fig. 8b — Detailed speedup of GMapper and GReducer per kernel and GPU.

Single node; the Map/Reduce phase alone is timed (job submission, HDFS and
scheduling excluded), CPU baseline is the original Flink ``mapPartition``
iterator path.  The paper's observations, all asserted here:

* executions on the P100 are fastest, K20 next, GTX 750 ≈ C2050;
* the GMapper speedups of KMeans and SpMV far exceed those workloads'
  *overall* speedups (Amdahl);
* PointAdd's GMapper speedup is smaller than KMeans' and SpMV's;
* the GReducer gets no good speedup ("it is not compute-intensive").
"""

from repro.common.units import GB

from conftest import run_once
from harness import fresh_session
from repro.flink import ClusterConfig, CPUSpec
from repro.workloads import KMeansWorkload, PointAddWorkload, SpMVWorkload

GPUS = ("c2050", "gtx750", "k20", "p100")


def _span_seconds(result, prefix):
    """Wall time of the first operator span whose name starts with prefix."""
    total = 0.0
    for metrics in result.job_metrics:
        for span in metrics.operator_spans.values():
            if span.name.startswith(prefix):
                total += span.seconds
    return total


def _mapper_speedup(workload_factory, gpu_name, span_prefixes):
    cpu_prefix, gpu_prefix = span_prefixes
    cpu_session = fresh_session(ClusterConfig(
        n_workers=1, cpu=CPUSpec(), gpus_per_worker=()))
    cpu = workload_factory().run(cpu_session, "cpu")
    gpu_session = fresh_session(ClusterConfig(
        n_workers=1, cpu=CPUSpec(), gpus_per_worker=(gpu_name,)))
    gpu = workload_factory().run(gpu_session, "gpu")
    return _span_seconds(cpu, cpu_prefix) / _span_seconds(gpu, gpu_prefix)


def test_fig8b_gmapper_greducer_speedups(benchmark):
    kmeans_kw = dict(nominal_elements=60e6, real_elements=8_000,
                     iterations=3)
    spmv_kw = dict(nominal_elements=(1 * GB) / 192.0, real_elements=8_000,
                   iterations=3)
    pointadd_kw = dict(nominal_elements=60e6, real_elements=8_000,
                       iterations=3)

    def measure():
        table = {}
        for gpu in GPUS:
            table[gpu] = {
                "kmeans": _mapper_speedup(
                    lambda: KMeansWorkload(**kmeans_kw), gpu,
                    ("kmeans-assign", "gpu-map-partition(kmeans_assign)")),
                "spmv": _mapper_speedup(
                    lambda: SpMVWorkload(**spmv_kw), gpu,
                    ("spmv-mult", "gpu-map-partition(spmv_ell)")),
                "pointadd": _mapper_speedup(
                    lambda: PointAddWorkload(**pointadd_kw), gpu,
                    ("pointadd", "pointadd-gpu")),
            }
        return table

    table = run_once(benchmark, measure)
    print("\n== Fig 8b: GMapper speedup per kernel and GPU ==")
    print(f"{'GPU':8s} {'KMeans':>9} {'SpMV':>9} {'PointAdd':>9}")
    for gpu in GPUS:
        row = table[gpu]
        print(f"{gpu:8s} {row['kmeans']:>8.1f}x {row['spmv']:>8.1f}x "
              f"{row['pointadd']:>8.1f}x")
    benchmark.extra_info["speedups"] = {
        g: {k: round(v, 2) for k, v in r.items()} for g, r in table.items()}

    for kernel in ("kmeans", "spmv", "pointadd"):
        # P100 fastest, K20 second.
        assert table["p100"][kernel] > table["k20"][kernel]
        assert table["k20"][kernel] > table["gtx750"][kernel]
    # "the performance on C2050 and GTX 750 is almost the same" — true for
    # FLOP-bound kernels (their peak GFLOP/s are within 2%); the memory-
    # bandwidth-bound SpMV kernel is the exception (80 vs 144 GB/s).
    for kernel in ("kmeans", "pointadd"):
        ratio = table["gtx750"][kernel] / table["c2050"][kernel]
        assert 0.8 < ratio < 1.25, f"{kernel}: GTX750/C2050 ratio {ratio}"
    assert table["gtx750"]["spmv"] < table["c2050"]["spmv"]
    for gpu in GPUS:
        # PointAdd's mapper gains least (§6.6.2).
        assert table[gpu]["pointadd"] < table[gpu]["kmeans"]
        assert table[gpu]["pointadd"] < table[gpu]["spmv"]
    # Mapper speedups far exceed overall speedups (~5x / ~6.3x on C2050).
    assert table["c2050"]["kmeans"] > 5.0
    assert table["c2050"]["spmv"] > 6.3


def test_fig8b_greducer_not_compute_intensive(benchmark):
    """GReducer speedup is small: the reduce phase is traffic, not FLOPs."""
    import numpy as np
    from repro.core import GFlinkSession, GFlinkCluster
    from repro.flink import OpCost
    from repro.gpu import KernelSpec

    def measure():
        config = ClusterConfig(n_workers=1, cpu=CPUSpec(),
                               gpus_per_worker=("c2050",))
        cluster = GFlinkCluster(config)
        session = GFlinkSession(cluster)
        session.register_kernel(KernelSpec(
            "sum_reduce",
            lambda i, p: {"out": np.array([float(np.sum(i["in"]))])},
            flops_per_element=1.0, bytes_per_element=8.0, efficiency=0.3))
        data = np.arange(40_000, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8.0, scale=500.0,
                                     parallelism=2).persist()
        ds.materialize()
        cpu = ds.reduce(lambda a, b: a + b,
                        cost=OpCost(flops_per_element=1.0), name="cpu-red")
        cpu_result = cpu.collect()
        gpu = ds.gpu_reduce("sum_reduce", final_fn=lambda a, b: a + b)
        gpu_result = gpu.collect()
        assert abs(cpu_result.value[0] - gpu_result.value[0]) < 1e-6
        return cpu_result.seconds, gpu_result.seconds

    cpu_s, gpu_s = run_once(benchmark, measure)
    speedup = cpu_s / gpu_s
    print(f"\nGReducer speedup: {speedup:.2f}x (paper: 'cannot obtain good "
          f"speedup')")
    assert speedup < 3.0  # nothing like the 20-50x mapper factors
