"""Ablation — user-defined data layout (§2.1, §3.2).

"Having coalesced memory access has long been advocated as one of the most
important off-chip memory access optimizations for modern GPUs" and "the
efficiency performance of the same GPU application may drastically differ
due to the use of different types of data layout."  GFlink lets the
programmer pick the layout per GStruct; this bench shows both directions:

* a **column-scanning** kernel (reads one field of every struct): SoA/AoP
  coalesce perfectly, AoS strides and wastes bandwidth;
* a **whole-record** kernel (reads every field of each struct): AoS is
  contiguous per thread-block access pattern and wins, SoA's split arrays
  walk three streams (§2.1: "[21], [19] have found that AoS is a better
  choice over SoA during some applications").
"""

import numpy as np

from conftest import run_once
from repro.core import DataLayout, GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec

COLUMN_KERNEL = KernelSpec(
    "col_scan", lambda i, p: {"out": i["in"]},
    flops_per_element=2.0, bytes_per_element=32.0, efficiency=0.8,
    layout_efficiency={DataLayout.SOA.value: 1.0,
                       DataLayout.AOP.value: 1.0,
                       DataLayout.AOS.value: 0.4})

RECORD_KERNEL = KernelSpec(
    "record_update", lambda i, p: {"out": i["in"]},
    flops_per_element=16.0, bytes_per_element=32.0, efficiency=0.8,
    layout_efficiency={DataLayout.AOS.value: 1.0,
                       DataLayout.SOA.value: 0.7,
                       DataLayout.AOP.value: 0.6})


def _kernel_seconds(kernel, layout):
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=2),
                           gpus_per_worker=("c2050",))
    cluster = GFlinkCluster(config)
    session = GFlinkSession(cluster)
    session.register_kernel(kernel)
    data = np.arange(20_000, dtype=np.float64)
    ds = session.from_collection(data, element_nbytes=32.0, scale=2e3,
                                 parallelism=2).persist()
    ds.materialize()
    ds.gpu_map_partition(kernel.name, layout=layout).count()
    return cluster.total_kernel_seconds()


def test_ablation_data_layout(benchmark):
    layouts = (DataLayout.AOS, DataLayout.SOA, DataLayout.AOP)

    def measure():
        return {
            "column-scan": {l.name: _kernel_seconds(COLUMN_KERNEL, l)
                            for l in layouts},
            "whole-record": {l.name: _kernel_seconds(RECORD_KERNEL, l)
                             for l in layouts},
        }

    table = run_once(benchmark, measure)
    print("\n== Ablation: data layout vs kernel access pattern "
          "(kernel seconds) ==")
    print(f"{'kernel':14s} {'AoS':>9} {'SoA':>9} {'AoP':>9}")
    for kernel, row in table.items():
        print(f"{kernel:14s} {row['AOS']:>8.4f}s {row['SOA']:>8.4f}s "
              f"{row['AOP']:>8.4f}s")
    benchmark.extra_info["kernel_seconds"] = {
        k: {l: round(v, 5) for l, v in row.items()}
        for k, row in table.items()}

    # Column scans want SoA; whole-record updates want AoS (§2.1).
    col = table["column-scan"]
    assert col["SOA"] < col["AOS"]
    assert col["AOP"] == col["SOA"]
    rec = table["whole-record"]
    assert rec["AOS"] < rec["SOA"] < rec["AOP"]
