"""Fig. 8a — Effects of the GPU cache scheme (SpMV).

"Without adopting the GPU cache scheme, the running time increases ... the
matrix and the vector need to be transferred to GPUs in each iteration if the
cache scheme is not adopted."  We run SpMV with the cache on and off and
compare per-iteration times and PCIe traffic; we also exercise the NO_EVICT
policy for a working set larger than the cache region (§4.2.2's second GC
scheme).
"""

from repro.common.units import GB, MiB

from conftest import run_once
from harness import fresh_session, paper_cluster_config
from repro.core import GFlinkCluster, GFlinkSession
from repro.core.gmemory import EvictionPolicy
from repro.core.gpumanager import GPUManagerConfig
from repro.workloads import SpMVWorkload

# 2 GB matrix on one node's two C2050s: 1 GB per GPU, comfortably inside
# the cache region (a working set beyond the region is the NO_EVICT test's
# subject below).
MATRIX_ROWS = (2 * GB) / 192.0
REAL_ROWS = 8_000
ITERS = 8


def _run_spmv(gpu_cache: bool):
    session = fresh_session(paper_cluster_config(n_workers=1))
    wl = SpMVWorkload(nominal_elements=MATRIX_ROWS, real_elements=REAL_ROWS,
                      iterations=ITERS, gpu_cache=gpu_cache)
    result = wl.run(session, "gpu")
    pcie = [m.pcie_bytes for m in result.job_metrics
            if m.job_name.startswith("spmv-gpu-iter")]
    return result.iteration_seconds, pcie


def test_fig8a_cache_scheme_effect(benchmark):
    def measure():
        return {"cached": _run_spmv(True), "uncached": _run_spmv(False)}

    out = run_once(benchmark, measure)
    cached_t, cached_pcie = out["cached"]
    uncached_t, uncached_pcie = out["uncached"]
    print("\n== Fig 8a: Effects of cache scheme (SpMV, per-iteration s) ==")
    print("with cache   " + "  ".join(f"{t:6.2f}" for t in cached_t))
    print("w/o  cache   " + "  ".join(f"{t:6.2f}" for t in uncached_t))
    benchmark.extra_info["iterations"] = {
        "cached": [round(t, 3) for t in cached_t],
        "uncached": [round(t, 3) for t in uncached_t],
    }

    # Middle iterations: the cache removes the matrix upload entirely.
    assert cached_t[3] < uncached_t[3]
    assert cached_pcie[3] < 0.5 * uncached_pcie[3]
    # Without the cache every iteration re-pays the transfer: iterations
    # stay at first-iteration PCIe traffic.
    assert abs(uncached_pcie[3] - uncached_pcie[1]) / uncached_pcie[1] < 0.05
    assert uncached_pcie[1] > 0.9 * uncached_pcie[0] * 0.5
    # Totals: cache wins end to end.
    assert sum(cached_t) < sum(uncached_t)


def test_fig8a_no_evict_policy_for_oversized_working_set(benchmark):
    """§4.2.2: when one iteration's data exceeds the region, FIFO thrashes
    (every block evicted before reuse) while NO_EVICT keeps a resident
    prefix serving hits every iteration.  The LRU row (a policy beyond the
    paper, selected via the ``cache_policy`` string flag) degenerates to
    FIFO here: a pure sequential scan never re-probes a block before its
    eviction, so recency equals insertion order."""

    def run_policy(cache_policy):
        config = paper_cluster_config(n_workers=1)
        gpu_config = GPUManagerConfig(
            cache_bytes_per_device=int(4 * MiB),  # matrix is ~10 MiB
            cache_policy=cache_policy, block_nbytes=1 * MiB)
        cluster = GFlinkCluster(config, gpu_config=gpu_config)
        session = GFlinkSession(cluster)
        wl = SpMVWorkload(nominal_elements=80_000, real_elements=80_000,
                          iterations=4)
        wl.run(session, "gpu")
        stats = [gm.gmm.stats(session.app_id)
                 for gm in cluster.gpu_managers()]
        hits = sum(h for s in stats for (h, m, e) in s.values())
        evictions = sum(e for s in stats for (h, m, e) in s.values())
        return hits, evictions

    def measure():
        return {policy.value: run_policy(policy.value)
                for policy in EvictionPolicy}

    out = run_once(benchmark, measure)
    print("\n== Fig 8a companion: GC policies on an oversized working set ==")
    for policy, (hits, evictions) in out.items():
        print(f"{policy:>9}: hits={hits:4d} evictions={evictions:4d}")
    benchmark.extra_info["policies"] = {
        p: {"hits": h, "evictions": e} for p, (h, e) in out.items()}

    fifo_hits, fifo_evictions = out["fifo"]
    ne_hits, ne_evictions = out["no-evict"]
    lru_hits, lru_evictions = out["lru"]
    assert fifo_evictions > 0
    assert ne_evictions == 0
    assert ne_hits > fifo_hits  # the resident prefix keeps paying off
    # LRU == FIFO on a sequential scan (no hit ever precedes an eviction).
    assert lru_evictions == fifo_evictions
    assert lru_hits == fifo_hits
