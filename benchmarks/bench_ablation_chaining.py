"""Ablation — operator chaining (Flink's task-fusion optimization).

A pipeline of element-wise operators either deploys one task per operator
per slot (chaining off) or fuses into a single task (chaining on, Flink's
default).  The saving is per-operator scheduling/deploy overhead and the
inter-operator materialization barrier.
"""

from conftest import run_once
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig, FlinkSession, OpCost
from repro.flink.runtime import Cluster

DEPTH = 6


def _run(enable_chaining: bool):
    config = ClusterConfig(
        n_workers=4, cpu=CPUSpec(),
        flink=FlinkConfig(enable_chaining=enable_chaining))
    session = FlinkSession(Cluster(config))
    ds = session.from_collection(list(range(2000)), element_nbytes=8.0,
                                 scale=1e4)
    for i in range(DEPTH):
        ds = ds.map(lambda x: x + 1, cost=OpCost(flops_per_element=20.0),
                    name=f"stage-{i}")
    result = ds.count()
    return result.seconds, result.metrics.subtasks


def test_ablation_operator_chaining(benchmark):
    def measure():
        return {"chained": _run(True), "unchained": _run(False)}

    out = run_once(benchmark, measure)
    chained_s, chained_tasks = out["chained"]
    unchained_s, unchained_tasks = out["unchained"]
    print(f"\n== Ablation: operator chaining ({DEPTH}-deep map pipeline) ==")
    print(f"chained   : {chained_s:7.3f} s, {chained_tasks:4d} subtasks")
    print(f"unchained : {unchained_s:7.3f} s, {unchained_tasks:4d} subtasks")
    benchmark.extra_info["seconds"] = {"chained": round(chained_s, 4),
                                       "unchained": round(unchained_s, 4)}

    assert chained_s < unchained_s
    # The fused pipeline runs the DEPTH stages in one wave of subtasks.
    assert chained_tasks < unchained_tasks / 2
