"""Table 2 — Bandwidth of Transfer Channel for Host to Device.

Reproduces both columns: the GFlink transfer channel (off-heap direct buffer
through CUDAWrapper/CUDAStub) and the native path (C library straight to the
GPU), for the paper's eight transfer sizes.  The paper's observations:
bandwidth rises with size, both plateau just under 3 GB/s beyond 256 KiB, and
the native path only wins for small transfers (the JNI redirect).
"""

import numpy as np
from conftest import run_once

from repro.common import Environment
from repro.common.units import MB
from repro.core.channels import CommCosts, CommMode, CUDAWrapper
from repro.core.hbuffer import Block, HBuffer
from repro.gpu import CUDARuntime, GPUDevice, KernelRegistry, TESLA_C2050

SIZES = [2048, 4096, 16384, 32768, 131072, 262144, 524288, 1048576]

PAPER_GFLINK = [776.398, 1241.311, 2195.872, 2556.237, 2858.368, 2968.151,
                2960.003, 2973.701]
PAPER_NATIVE = [814.425, 1348.418, 2245.351, 2646.721, 2878.373, 2945.243,
                2931.513, 2963.532]


def _measure(nbytes: int, mode: str) -> float:
    """Bandwidth in MB/s of one H2D transfer of ``nbytes``."""
    env = Environment()
    device = GPUDevice(env, TESLA_C2050)
    runtime = CUDARuntime(env, [device], KernelRegistry())
    wrapper = CUDAWrapper(env, runtime, CommCosts())
    h = HBuffer(np.zeros(max(nbytes // 8, 1)), element_nbytes=8,
                off_heap=True, pinned=True)
    block = Block(0, h.elements, nbytes / 8, nbytes)

    def proc():
        dst = yield from runtime.malloc(device, nbytes)
        t0 = env.now
        if mode == "gflink":
            yield from wrapper.transfer_h2d_inline(device, dst, block, h,
                                                   CommMode.GFLINK)
        else:
            host = wrapper.host_view(block, h, CommMode.GFLINK)
            yield from runtime.memcpy_h2d(device, dst, host)
        return env.now - t0

    seconds = env.run(until=env.process(proc()))
    return nbytes / seconds / MB


def test_table2_transfer_channel_bandwidth(benchmark):
    def measure_all():
        return {
            "gflink": [_measure(n, "gflink") for n in SIZES],
            "native": [_measure(n, "native") for n in SIZES],
        }

    result = run_once(benchmark, measure_all)
    print("\n== Table 2: Bandwidth of Transfer Channel (Host to Device) ==")
    print(f"{'Bytes':>9}  {'GFlink (sim)':>13} {'GFlink (paper)':>15}  "
          f"{'Native (sim)':>13} {'Native (paper)':>15}")
    rows = []
    for i, n in enumerate(SIZES):
        g, nat = result["gflink"][i], result["native"][i]
        print(f"{n:>9}  {g:>10.3f} MB/s {PAPER_GFLINK[i]:>12.3f} MB/s"
              f"  {nat:>10.3f} MB/s {PAPER_NATIVE[i]:>12.3f} MB/s")
        rows.append({"bytes": n, "gflink_mbps": round(g, 3),
                     "native_mbps": round(nat, 3)})
    benchmark.extra_info["table"] = rows

    for i, n in enumerate(SIZES):
        # Within 10% of both paper columns at every size.
        assert abs(result["gflink"][i] - PAPER_GFLINK[i]) \
            / PAPER_GFLINK[i] < 0.10
        assert abs(result["native"][i] - PAPER_NATIVE[i]) \
            / PAPER_NATIVE[i] < 0.10
    # Bandwidth increases with transferred bytes, then stabilizes (§6.7).
    assert result["gflink"] == sorted(result["gflink"])
    assert result["gflink"][-1] / result["gflink"][-3] < 1.02
    # Native wins for small transfers; the gap closes for large ones.
    assert result["native"][0] > result["gflink"][0]
    assert abs(result["native"][-1] - result["gflink"][-1]) \
        / result["native"][-1] < 0.01
