"""Fig. 6a — SpMV: average running time and speedup on the cluster.

Inputs 2–32 GB matrices.  The paper reports ~6.3x: the matrix is cached on
the GPUs after the first iteration ("we can cache the matrix into GPUs in the
first iteration to reduce the running time of the following iterations") and
the multiply itself runs on cuBLAS-class kernels.
"""

from repro.common.units import GB

from conftest import run_once
from harness import (
    assert_mid_size_speedup,
    assert_speedup_grows_with_size,
    assert_speedups_in_band,
    paper_cluster_config,
    sweep,
)
from repro.workloads import SpMVWorkload, table1_sizes

REAL_ROWS = 8_000
ITERATIONS = 10


def test_fig6a_spmv_cluster(benchmark):
    config = paper_cluster_config()

    def factory(size):
        return SpMVWorkload(nominal_elements=size.nominal_elements,
                            real_elements=REAL_ROWS,
                            iterations=ITERATIONS)

    report = run_once(benchmark, lambda: sweep(
        factory, table1_sizes("spmv"), config,
        "Fig 6a: SpMV on the cluster (paper: ~6.3x)"))
    report.emit(benchmark)

    assert_speedups_in_band(report, low=3.2, high=8.5, paper_value=6.3)
    assert_mid_size_speedup(report, 6.3)
    assert_speedup_grows_with_size(report)


def test_fig6a_spmv_matrix_cached_after_first_iteration(benchmark):
    """The cache removes the matrix re-upload from iterations 2+."""
    from harness import fresh_session
    from repro.workloads import SpMVWorkload

    def measure():
        session = fresh_session(paper_cluster_config(n_workers=2))
        wl = SpMVWorkload(nominal_elements=2 * GB / 192.0,
                          real_elements=REAL_ROWS, iterations=4)
        result = wl.run(session, "gpu")
        pcie = [m.pcie_bytes for m in result.job_metrics
                if m.job_name.startswith("spmv-gpu-iter")]
        return pcie

    pcie = run_once(benchmark, measure)
    print(f"\nper-iteration PCIe bytes: {[f'{p:.3g}' for p in pcie]}")
    # Iteration 1 uploads the matrix; later iterations move only the vector
    # and results.
    assert pcie[1] < 0.5 * pcie[0]
    assert abs(pcie[2] - pcie[1]) / pcie[1] < 0.05
