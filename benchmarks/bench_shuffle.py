"""Zero-copy columnar shuffle + vectorized CPU operators bench.

Runs WordCount and PageRank on the paper cluster twice per mode — classic
element-at-a-time execution vs ``vectorized=True`` (block UDFs charged at
SIMD rate, exchanges shipped as columnar SoA regions with no per-row
serde) — and consolidates makespans, zero-copy traffic and GProfiler
critical-path shares into ``BENCH_PR8.json``.

Asserted shape:

* results are value-identical between the two paths (the flag is a pure
  charge-model change);
* the vectorized makespan is lower on both workloads;
* the cpu+shuffle share of the critical path shrinks — the point of the
  optimisation: serde and iterator overhead leave the critical path, which
  becomes (even more) I/O-bound.
"""

from pathlib import Path

from conftest import run_once
from harness import (
    fresh_session,
    paper_cluster_config,
    record_bench,
    run_workload,
)
from repro.workloads import PageRankWorkload, WordCountWorkload

#: Consolidated results for this PR's suite.
BENCH_SHUFFLE_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

N_WORKERS = 4

WORKLOADS = {
    "wordcount": lambda vec: WordCountWorkload(
        nominal_elements=2.4e9, real_elements=20_000, vectorized=vec),
    "pagerank": lambda vec: PageRankWorkload(
        nominal_pages=5e6, real_pages=2_000, iterations=3, vectorized=vec),
}


def cpu_shuffle_share(brief) -> float:
    """Fraction of the critical path attributed to cpu + shuffle."""
    cats = brief["critical_path_categories"]
    total = sum(cats.values())
    if total <= 0:
        return 0.0
    return (cats.get("cpu", 0.0) + cats.get("shuffle", 0.0)) / total


def _one(name, factory, vec):
    config = paper_cluster_config(n_workers=N_WORKERS)
    session = fresh_session(config)
    result = run_workload(lambda: factory(vec), "cpu", config,
                          session=session)
    zero_copy = sum(m.shuffle_zero_copy_bytes for m in result.job_metrics)
    shuffle = sum(m.shuffle_bytes for m in result.job_metrics)
    return {
        "makespan_s": round(result.total_seconds, 3),
        "shuffle_mb": round(shuffle / 1e6, 2),
        "zero_copy_mb": round(zero_copy / 1e6, 2),
        "cpu_shuffle_share": round(cpu_shuffle_share(result.profile), 4),
    }


def test_zero_copy_vectorized_speedup(benchmark):
    def measure():
        table = {}
        for name, factory in WORKLOADS.items():
            table[name] = {
                "element": _one(name, factory, vec=False),
                "vectorized": _one(name, factory, vec=True),
            }
        return table

    table = run_once(benchmark, measure)

    print("\n== zero-copy shuffle + vectorized operators (cpu mode) ==")
    print(f"{'workload':>10}  {'path':>10}  {'makespan':>10}  "
          f"{'zero-copy':>10}  {'cpu+shuffle share':>18}")
    for name, rows in table.items():
        for path, row in rows.items():
            print(f"{name:>10}  {path:>10}  {row['makespan_s']:>8.2f} s  "
                  f"{row['zero_copy_mb']:>7.1f} MB  "
                  f"{row['cpu_shuffle_share']:>17.1%}")
        element, vec = rows["element"], rows["vectorized"]
        cut = 1.0 - vec["makespan_s"] / element["makespan_s"]
        print(f"{'':>10}  makespan cut {cut:.1%}")

        # The columnar path must actually engage, and only there.
        assert element["zero_copy_mb"] == 0.0, name
        assert vec["zero_copy_mb"] > 0.0, name
        # Shuffled bytes are a property of the data, not the wire format.
        assert abs(vec["shuffle_mb"] - element["shuffle_mb"]) <= \
            0.01 * max(element["shuffle_mb"], 1e-9), name
        # The optimisation's headline: lower makespan, and a critical path
        # with a smaller cpu+shuffle share.
        assert vec["makespan_s"] < element["makespan_s"], name
        assert vec["cpu_shuffle_share"] < element["cpu_shuffle_share"], name

    benchmark.extra_info["table"] = table
    record_bench("zero_copy_vectorized", table, path=BENCH_SHUFFLE_PATH)
    print(f"consolidated results written to {BENCH_SHUFFLE_PATH.name}")
