"""Benchmark-suite configuration.

The benches measure *simulated* cluster time; pytest-benchmark wraps each
experiment once (``rounds=1``) and we attach the paper-style table to
``extra_info``.  Real-sample sizes below keep the whole suite's host time in
the minutes range while leaving the (scale-driven) simulated times at paper
magnitude.
"""

import sys
from pathlib import Path

# Make `from harness import ...` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
