"""Cross-validation — the §6.3 analytical model vs the discrete-event engine.

The paper derives Eqs. 1–4 and three observations from them; we have both
the closed-form model (:mod:`repro.core.costmodel`) and the simulator, so we
can check they agree — a consistency test the paper itself could not run.
"""

import numpy as np

from conftest import run_once
from harness import fresh_session
from repro.core.costmodel import Calibration, map_cpu_time, map_gpu_time, map_speedup
from repro.flink import ClusterConfig, CPUSpec, OpCost
from repro.gpu import KernelSpec

KERNEL = KernelSpec(
    "model_check", lambda i, p: {"out": i["in"]},
    flops_per_element=100.0, bytes_per_element=8.0, efficiency=0.5)

N_NOMINAL = 2e8
ELEM_BYTES = 8.0
CPU_OVERHEAD = 1.0e-6


def _measured_speedup():
    """Map-phase speedup measured by the simulator, 1 core vs 1 GPU."""
    def span(mode):
        config = ClusterConfig(n_workers=1,
                               cpu=CPUSpec(cores=1),
                               gpus_per_worker=("c2050",))
        session = fresh_session(config)
        session.register_kernel(KERNEL)
        data = np.arange(20_000, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=ELEM_BYTES,
                                     scale=N_NOMINAL / 20_000,
                                     parallelism=1).persist()
        ds.materialize()
        if mode == "cpu":
            result = ds.map_partition(
                lambda e: e,
                cost=OpCost(flops_per_element=KERNEL.flops_per_element,
                            element_overhead_s=CPU_OVERHEAD),
                name="m").count()
        else:
            result = ds.gpu_map_partition("model_check", name="m").count()
        return result.metrics.span_of("m").seconds

    return span("cpu"), span("gpu")


def test_costmodel_matches_simulation(benchmark):
    def measure():
        cpu_s, gpu_s = _measured_speedup()
        calib = Calibration()
        # The analytical model with the same constants.
        predicted_cpu = map_cpu_time(N_NOMINAL, KERNEL.flops_per_element,
                                     calib) * (
            (CPU_OVERHEAD + KERNEL.flops_per_element / 4e9)
            / (calib.flink.element_overhead_s
               + KERNEL.flops_per_element / 4e9))
        predicted_gpu = map_gpu_time(
            N_NOMINAL, KERNEL, in_bytes=N_NOMINAL * ELEM_BYTES,
            out_bytes=N_NOMINAL * ELEM_BYTES, calib=calib)
        return cpu_s, gpu_s, predicted_cpu, predicted_gpu

    cpu_s, gpu_s, predicted_cpu, predicted_gpu = run_once(benchmark, measure)
    print("\n== Cost model (Eq. 3/4) vs simulation, map phase ==")
    print(f"CPU map: simulated {cpu_s:8.3f} s, model {predicted_cpu:8.3f} s")
    print(f"GPU map: simulated {gpu_s:8.3f} s, model {predicted_gpu:8.3f} s")
    measured = cpu_s / gpu_s
    predicted = predicted_cpu / predicted_gpu
    print(f"speedup: simulated {measured:6.2f}x, model {predicted:6.2f}x")
    benchmark.extra_info["comparison"] = {
        "cpu_sim_s": round(cpu_s, 4), "cpu_model_s": round(predicted_cpu, 4),
        "gpu_sim_s": round(gpu_s, 4), "gpu_model_s": round(predicted_gpu, 4),
    }

    # CPU side: the model is exact (same formula) up to task overheads.
    assert abs(cpu_s - predicted_cpu) / predicted_cpu < 0.01
    # GPU side: the model ignores pipeline overlap, block granularity and
    # JNI costs, so the simulator may be faster (overlap) — within 2x and
    # never slower than the wire-time lower bound.
    assert gpu_s < predicted_gpu * 1.2
    wire = 2 * N_NOMINAL * ELEM_BYTES / 3.0e9
    assert gpu_s > wire * 0.9
    # Both agree on the headline: an order-of-magnitude class speedup.
    assert abs(np.log10(measured) - np.log10(predicted)) < 0.35


def test_observation2_cache_term(benchmark):
    """Eq. 4's cached-bytes term matches the simulator's cache behavior."""
    def measure():
        calib = Calibration()
        without = map_speedup(N_NOMINAL, 100.0, KERNEL,
                              N_NOMINAL * 8, N_NOMINAL * 8, calib)
        with_cache = map_speedup(N_NOMINAL, 100.0, KERNEL,
                                 N_NOMINAL * 8, N_NOMINAL * 8, calib,
                                 cached_in_bytes=N_NOMINAL * 8)
        return without, with_cache

    without, with_cache = run_once(benchmark, measure)
    print(f"\nEq.3 speedup without cache {without:.2f}x, "
          f"with cached input {with_cache:.2f}x")
    assert with_cache > without
