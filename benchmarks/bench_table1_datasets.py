"""Table 1 — Benchmarks from HiBench: dataset catalog and generators.

Regenerates the table's rows (benchmark → five input sizes) and verifies the
generators actually produce data of the declared nominal size.
"""

from conftest import run_once
from repro.common.units import GB
from repro.workloads import (
    KMeansWorkload,
    PageRankWorkload,
    SpMVWorkload,
    WordCountWorkload,
    table1_sizes,
)
from repro.core import GFlinkCluster
from harness import paper_cluster_config


def test_table1_catalog(benchmark):
    """Print Table 1 and check every size column is the paper's."""

    def build():
        rows = []
        for name in ("kmeans", "pagerank", "wordcount",
                     "connected_components", "linear_regression", "spmv"):
            rows.append((name, [s.label for s in table1_sizes(name)]))
        return rows

    rows = run_once(benchmark, build)
    print("\n== Table 1: Benchmarks from HiBench ==")
    for name, labels in rows:
        print(f"{name:22s} {', '.join(labels)}")
    benchmark.extra_info["table"] = {n: l for n, l in rows}

    table = dict(rows)
    assert table["kmeans"] == ["150M points", "180M points", "210M points",
                               "240M points", "270M points"]
    assert table["pagerank"] == ["5M pages", "10M pages", "15M pages",
                                 "20M pages", "25M pages"]
    assert table["wordcount"] == ["24 GB", "32 GB", "40 GB", "48 GB",
                                  "56 GB"]
    assert table["spmv"] == ["2 GB", "4 GB", "8 GB", "16 GB", "32 GB"]


def test_generators_hit_nominal_sizes(benchmark):
    """Loading a Table 1 dataset into HDFS yields the nominal byte size."""

    def load():
        out = {}
        config = paper_cluster_config(n_workers=2)
        cluster = GFlinkCluster(config)
        km = KMeansWorkload(nominal_elements=150e6, real_elements=5000)
        km.prepare(cluster)
        out["kmeans"] = cluster.hdfs.status(km.path).nbytes
        wc = WordCountWorkload(nominal_elements=24 * GB / 10.0,
                               real_elements=5000)
        wc.prepare(cluster)
        out["wordcount"] = cluster.hdfs.status(wc.path).nbytes
        sp = SpMVWorkload(nominal_elements=2 * GB / 192.0,
                          real_elements=5000)
        sp.prepare(cluster)
        out["spmv"] = cluster.hdfs.status(sp.path).nbytes
        pr = PageRankWorkload(nominal_pages=5e6, real_pages=1000)
        pr.prepare(cluster)
        out["pagerank"] = cluster.hdfs.status(pr.path).nbytes
        return out

    sizes = run_once(benchmark, load)
    # 150M points x 8 B
    assert abs(sizes["kmeans"] - 150e6 * 8) / (150e6 * 8) < 0.01
    # 24 GB of text -> 4-byte word ids for the 2.4G words
    assert abs(sizes["wordcount"] - 2.4e9 * 4) / (2.4e9 * 4) < 0.01
    # 2 GB of ELL rows (128 B payload of a 192 B text row)
    expected_spmv = (2 * GB / 192.0) * 128
    assert abs(sizes["spmv"] - expected_spmv) / expected_spmv < 0.01
    # 5M pages x 8 edges x 8 B
    assert abs(sizes["pagerank"] - 5e6 * 8 * 8) / (5e6 * 8 * 8) < 0.01
