"""Elastic-membership benchmark: churn bit-identity, recovery overhead,
time-to-steady-state, and autoscaler vs fixed capacity.

Three experiments, consolidated into ``BENCH_PR9.json``:

* **Churn matrix** — WordCount, KMeans and PageRank each run under a
  seeded membership schedule (two joins, one graceful drain, one abrupt
  leave, all mid-job) across staged/pipelined x cpu/gpu.  Every cell must
  produce results bit-identical to the static-membership run: elasticity
  changes placement and timing only, never the answer.
* **Per-event recovery** — the same runs report, per membership event, the
  time back to steady state (recovery latency from the cluster's
  recovery-action log) plus the p50/p95/p99 across events and the makespan
  overhead vs the static run.
* **Autoscaler** — a pipelined WordCount on 2 workers with the autoscaler
  allowed to grow to 4 is compared against fixed 2-worker and fixed
  4-worker runs.  The autoscaled run must return the identical result and
  never be slower than the fixed run at its *starting* size; the report
  shows how much of the fixed-at-peak run's advantage it recovers.
"""

from pathlib import Path

from conftest import run_once
from harness import record_bench
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.autoscaler import Autoscaler, AutoscalerPolicy
from repro.flink.chaos import ChurnSchedule, values_equal
from repro.workloads import KMeansWorkload, PageRankWorkload, \
    WordCountWorkload

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"

N_WORKERS = 3
WORKLOADS = {
    "wordcount": lambda: WordCountWorkload(real_elements=20_000),
    "kmeans": lambda: KMeansWorkload(real_elements=6_000, iterations=3),
    "pagerank": lambda: PageRankWorkload(real_pages=1_200, iterations=3),
}


def _config(executor: str) -> ClusterConfig:
    return ClusterConfig(n_workers=N_WORKERS, cpu=CPUSpec(cores=2),
                         gpus_per_worker=("c2050",),
                         flink=FlinkConfig(executor=executor,
                                           retry_backoff_base_s=0.05))


def _churn_schedule(span_s: float) -> ChurnSchedule:
    """Two joins, one drain, one abrupt leave, all inside the job window."""
    return (ChurnSchedule()
            .join_worker(at=span_s * 0.10)
            .join_worker(at=span_s * 0.25)
            .drain_worker("worker2", at=span_s * 0.45)
            .leave_worker("elastic0", at=span_s * 0.65))


def _run_cell(name: str, executor: str, mode: str) -> dict:
    static = WORKLOADS[name]().run(
        GFlinkSession(GFlinkCluster(_config(executor))), mode)
    span = static.job_metrics[0].started_at + static.total_seconds
    cluster = GFlinkCluster(_config(executor))
    engine = cluster.install_chaos(_churn_schedule(span))
    result = WORKLOADS[name]().run(GFlinkSession(cluster), mode)
    summary = engine.summary()
    return {
        "workload": name, "executor": executor, "mode": mode,
        "identical": values_equal(static.value, result.value),
        "events_applied": summary["events_applied"],
        "by_kind": summary["by_kind"],
        "static_s": round(static.total_seconds, 4),
        "churn_s": round(result.total_seconds, 4),
        "overhead": round(
            result.total_seconds / static.total_seconds - 1.0, 4),
        "recovery_latency_s": {
            k: round(v, 4)
            for k, v in summary["recovery_latency_s"].items()},
        "per_event": [
            {"kind": e["kind"], "worker": e["worker"],
             "at": round(e["at"], 2),
             "time_to_steady_s": round(e["recovery_latency_s"], 4)}
            for e in summary["per_event"]],
    }


def test_churn_bit_identity_matrix(benchmark):
    def measure():
        return [_run_cell(name, executor, mode)
                for name in sorted(WORKLOADS)
                for executor in ("staged", "pipelined")
                for mode in ("cpu", "gpu")]

    cells = run_once(benchmark, measure)

    print("\n== Elastic churn: 2 joins + 1 drain + 1 leave mid-job ==")
    print(f"{'workload':>9} {'executor':>9} {'mode':>4} {'same':>5} "
          f"{'static':>9} {'churn':>9} {'overhead':>9} "
          f"{'recov p95':>9}")
    for c in cells:
        p95 = c["recovery_latency_s"].get("p95", 0.0)
        print(f"{c['workload']:>9} {c['executor']:>9} {c['mode']:>4} "
              f"{'yes' if c['identical'] else 'NO':>5} "
              f"{c['static_s']:>8.3f}s {c['churn_s']:>8.3f}s "
              f"{c['overhead']:>+8.1%} {p95:>8.3f}s")

    summary = {f"{c['workload']}-{c['executor']}-{c['mode']}": c
               for c in cells}
    benchmark.extra_info["table"] = summary
    record_bench("elastic_churn_matrix", summary, path=RESULTS_PATH)
    print(f"consolidated results written to {RESULTS_PATH.name}")

    for c in cells:
        # Bit-identical results in every cell, with all 4 events applied.
        assert c["identical"], c
        assert c["events_applied"] == 4, c
        # Per-event recovery is reported for every membership event.
        assert len(c["per_event"]) == 4, c


def _autoscale_workload():
    return WordCountWorkload(real_elements=20_000)


def _fixed_run(n_workers: int):
    config = ClusterConfig(n_workers=n_workers, cpu=CPUSpec(cores=2),
                           gpus_per_worker=("c2050",),
                           flink=FlinkConfig(executor="pipelined"))
    return _autoscale_workload().run(
        GFlinkSession(GFlinkCluster(config)), "gpu")


def test_autoscaler_vs_fixed_capacity(benchmark):
    def measure():
        small = _fixed_run(2)
        peak = _fixed_run(4)
        config = ClusterConfig(n_workers=2, cpu=CPUSpec(cores=2),
                               gpus_per_worker=("c2050",),
                               flink=FlinkConfig(executor="pipelined"))
        cluster = GFlinkCluster(config)
        scaler = Autoscaler(cluster, AutoscalerPolicy(
            interval_s=1.0, cooldown_s=2.0, max_workers=4,
            slot_pressure_high=1.05))
        scaler.start()
        auto = _autoscale_workload().run(GFlinkSession(cluster), "gpu")
        scaler.stop()
        return small, peak, auto, scaler

    small, peak, auto, scaler = run_once(benchmark, measure)
    added = [d for d in scaler.decisions if d.action == "add_worker"]
    final_size = len(scaler.cluster.member_names())

    print("\n== Autoscaler (2 -> up to 4 workers) vs fixed capacity ==")
    print(f"  fixed 2 workers   {small.total_seconds:9.3f} s")
    print(f"  fixed 4 workers   {peak.total_seconds:9.3f} s")
    print(f"  autoscaled        {auto.total_seconds:9.3f} s "
          f"({len(added)} adds, final size {final_size}, "
          f"{len(scaler.decisions)} decisions)")
    for d in scaler.decisions:
        print(f"    {d.time:7.2f}s {d.signal:<11} -> {d.action} {d.detail}")

    summary = {
        "fixed_small_s": round(small.total_seconds, 4),
        "fixed_peak_s": round(peak.total_seconds, 4),
        "autoscaled_s": round(auto.total_seconds, 4),
        "identical": values_equal(small.value, auto.value),
        "workers_added": len(added),
        "final_size": final_size,
        "vs_fixed_small": round(
            auto.total_seconds / small.total_seconds, 4),
        "vs_fixed_peak": round(
            auto.total_seconds / peak.total_seconds, 4),
        "decisions": [
            {"time": round(d.time, 2), "signal": d.signal,
             "action": d.action} for d in scaler.decisions],
    }
    benchmark.extra_info["table"] = summary
    record_bench("elastic_autoscaler_vs_fixed", summary, path=RESULTS_PATH)
    print(f"consolidated results written to {RESULTS_PATH.name}")

    # Elastic capacity changes placement/timing only, never the answer.
    assert summary["identical"]
    # The autoscaled run is never slower than the fixed run at its
    # starting size (adding capacity can only help or break even).
    assert auto.total_seconds <= small.total_seconds * (1 + 1e-9), summary
