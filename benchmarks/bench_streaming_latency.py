"""Extension — event-level vs mini-batch streaming latency (§1.1).

The paper's reason for building on Flink: "Apache Flink provides event level
processing which is also known as real time streaming.  Nevertheless, Spark
utilizes mini batches which doesn't provide event level granularity."  With
the streaming engine built (the paper's future work), the claim becomes a
measurement: per-event end-to-end latency under both processing modes, for
several micro-batch intervals, plus a GPU-windowed pipeline sanity check.
"""

import numpy as np

from conftest import run_once
from repro.core import GFlinkCluster
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec
from repro.streaming import ProcessingMode, StreamEnvironment, WindowSpec

RATE = 2000.0
N_EVENTS = 2000


def _cluster(gpus=()):
    return GFlinkCluster(ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=4), gpus_per_worker=tuple(gpus)))


def _latency(mode, interval=0.5):
    env = StreamEnvironment(_cluster(), mode=mode,
                            batch_interval_s=interval)
    result = env.from_rate(rate=RATE, n_events=N_EVENTS) \
        .map(lambda v: v * 2, flops_per_element=50.0) \
        .filter(lambda v: True) \
        .execute()
    return result


def test_event_level_vs_mini_batch_latency(benchmark):
    def measure():
        event = _latency(ProcessingMode.EVENT_LEVEL)
        batches = {interval: _latency(ProcessingMode.MINI_BATCH, interval)
                   for interval in (0.1, 0.5, 1.0)}
        return event, batches

    event, batches = run_once(benchmark, measure)
    print("\n== Streaming latency: event-level (Flink) vs mini-batch "
          "(Spark Streaming) ==")
    print(f"event-level        mean {event.mean_record_latency * 1e3:9.3f} ms"
          f"  p99 {event.p99_record_latency * 1e3:9.3f} ms")
    for interval, result in sorted(batches.items()):
        print(f"mini-batch {interval:4.1f} s  mean "
              f"{result.mean_record_latency * 1e3:9.3f} ms  p99 "
              f"{result.p99_record_latency * 1e3:9.3f} ms")
    benchmark.extra_info["latency_ms"] = {
        "event_level": round(event.mean_record_latency * 1e3, 4),
        **{f"batch_{k}": round(v.mean_record_latency * 1e3, 4)
           for k, v in batches.items()},
    }

    # Event-level latency is orders of magnitude below any batch interval.
    assert event.mean_record_latency < 1e-3
    for interval, result in batches.items():
        # Mean mini-batch latency ~ interval/2 (records wait for the
        # boundary), and grows with the interval.
        assert result.mean_record_latency > 100 * event.mean_record_latency
        import pytest
        assert result.mean_record_latency == pytest.approx(interval / 2,
                                                           rel=0.4)
    ordered = [batches[i].mean_record_latency for i in (0.1, 0.5, 1.0)]
    assert ordered == sorted(ordered)
    # Same answers either way: batching trades latency, not correctness.
    assert sorted(v for *_, v in event.results) \
        == sorted(v for *_, v in batches[0.5].results)


def test_gpu_windowed_stream(benchmark):
    """GFlink's GPUs serve streaming windows through the same GWork path."""
    def measure():
        cluster = _cluster(gpus=("c2050",))
        cluster.registry.register(KernelSpec(
            "stream_sum",
            lambda i, p: {"out": np.array([float(np.sum(i["in"]))])},
            flops_per_element=1.0, efficiency=0.4))
        env = StreamEnvironment(cluster)
        result = env.from_rate(rate=RATE, n_events=N_EVENTS) \
            .key_by(lambda v: int(v) % 4) \
            .window(WindowSpec.tumbling(0.25)) \
            .gpu_aggregate("stream_sum")
        return result, cluster.total_kernel_seconds()

    result, kernel_s = run_once(benchmark, measure)
    total = sum(v for *_, v in result.results)
    print(f"\nGPU-windowed stream: {len(result.results)} windows, "
          f"sum {total:.0f}, GPU kernel time {kernel_s * 1e3:.2f} ms, "
          f"mean window latency "
          f"{np.mean(result.window_latencies) * 1e3:.3f} ms")
    assert total == sum(range(N_EVENTS))
    assert kernel_s > 0
