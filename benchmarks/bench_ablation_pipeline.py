"""Ablation — three-stage pipelining (§5, Fig. 4).

Whole-buffer execution (one giant block: H2D, then K, then D2H strictly in
sequence) versus the block pipeline (page-sized blocks streaming through the
H2D/K/D2H stages).  For work whose kernel time rivals its transfer time the
pipeline hides most of the kernel behind the copies.
"""

import numpy as np

from conftest import run_once
from repro.core import GFlinkCluster, GFlinkSession
from repro.core.gpumanager import GPUManagerConfig
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec


def _run(block_nbytes: int) -> float:
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=1),
                           gpus_per_worker=("c2050",))
    cluster = GFlinkCluster(
        config, gpu_config=GPUManagerConfig(block_nbytes=block_nbytes,
                                            streams_per_gpu=1))
    session = GFlinkSession(cluster)
    # Kernel calibrated so K-time ~ (H2D+D2H)-time: maximum overlap benefit.
    session.register_kernel(KernelSpec(
        "heavy", lambda i, p: {"out": i["in"] * 2.0},
        flops_per_element=2750.0, efficiency=0.5))
    data = np.arange(50_000, dtype=np.float64)
    ds = session.from_collection(data, element_nbytes=8.0, scale=200.0,
                                 parallelism=1).persist()
    ds.materialize()
    result = ds.gpu_map_partition("heavy", name="m").count()
    return result.metrics.span_of("m").seconds


def test_ablation_three_stage_pipeline(benchmark):
    def measure():
        return {
            "whole-buffer": _run(1 << 30),     # one block: no overlap
            "8MiB blocks": _run(8 << 20),      # the default pipeline
            "1MiB blocks": _run(1 << 20),      # deeper pipeline
        }

    times = run_once(benchmark, measure)
    print("\n== Ablation: three-stage pipelining (block size) ==")
    for label, t in times.items():
        print(f"{label:14s} {t:8.4f} s")
    benchmark.extra_info["seconds"] = {k: round(v, 5)
                                       for k, v in times.items()}

    # Pipelining beats whole-buffer execution clearly.
    assert times["8MiB blocks"] < 0.8 * times["whole-buffer"]
    # Diminishing returns, not regressions, for deeper pipelines.
    assert times["1MiB blocks"] < times["whole-buffer"]
