"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs (which need ``bdist_wheel``) fail.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works with the pinned setuptools.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
