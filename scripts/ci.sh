#!/usr/bin/env bash
# CI entry point: tier-1 tests plus a benchmark smoke run.
#
#   scripts/ci.sh          # tests + bench smoke (writes BENCH_PR1.json)
#   scripts/ci.sh --fast   # tests only
#
# The bench smoke runs the suites this PR's feature work rides on (GPU
# operator chaining, cache GC policies); the full paper-figure suite is
# `python -m pytest benchmarks/`.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

echo "== tier-1: unit + integration tests =="
python -m pytest -q

echo "== lint: cache-region table is private to gmemory.py/repro.obs =="
if grep -rnE '(^|[^a-zA-Z0-9_])_regions\b' src/repro --include='*.py' \
        | grep -v 'repro/core/gmemory\.py' \
        | grep -v 'repro/obs/'; then
    echo "FAIL: _regions accessed outside core/gmemory.py and repro/obs" >&2
    exit 1
fi
echo "ok"

if [[ "${1:-}" != "--fast" ]]; then
    echo "== traced bench smoke: wordcount (pipelined) + schema validation =="
    python -m repro trace wordcount --workers 2 --real 4000 --nominal 1e6 \
        --executor pipelined \
        --out traces/ci_wordcount.json \
        --metrics-out traces/ci_wordcount_metrics.json
    python -m repro.obs.validate traces/ci_wordcount.json

    echo "== traced bench smoke: wordcount (staged) + schema validation =="
    # The barriered executor stays supported (FlinkConfig.executor);
    # its trace must keep validating too.
    python -m repro trace wordcount --workers 2 --real 4000 --nominal 1e6 \
        --executor staged \
        --out traces/ci_wordcount_staged.json
    python -m repro.obs.validate traces/ci_wordcount_staged.json

    echo "== profile gate: critical path + regression vs committed baseline =="
    # Profiles the traced smoke (the summary schema is validated by the
    # profile command itself) and compares against the committed baseline.
    # Generous thresholds: the simulated clock is deterministic, so any
    # drift at all means the model changed — but the gate only *fails* on
    # substantial slowdowns.  Refresh the baseline deliberately with:
    #   python -m repro profile traces/ci_wordcount.json --quiet \
    #       --json traces/ci_wordcount_profile_baseline.json
    # --explain attributes any makespan drift to a ranked cause list so a
    # tripped gate names its culprit in the CI log.
    python -m repro profile traces/ci_wordcount.json \
        --json traces/ci_profile_summary.json \
        --baseline traces/ci_wordcount_profile_baseline.json \
        --threshold makespan_s=0.25 --threshold critical_path=0.60 \
        --threshold operator_wall=0.60 --threshold overlap_pct=0.50 \
        --explain

    echo "== explain self-diff smoke: a summary vs itself has no causes =="
    explain_out=$(python -m repro profile traces/ci_wordcount.json --quiet \
        --baseline traces/ci_wordcount.json --explain)
    echo "$explain_out" | grep -q 'no causes above the noise floor'

    echo "== traced bench smoke: wordcount (vectorized columnar) + profile gate =="
    # Block-vectorized operators + zero-copy columnar shuffle: same counts,
    # different charge model — gated against its own committed baseline.
    # Refresh deliberately with:
    #   python -m repro profile traces/ci_wordcount_vectorized.json --quiet \
    #       --json traces/ci_wordcount_vectorized_profile_baseline.json
    python -m repro trace wordcount --workers 2 --real 4000 --nominal 1e6 \
        --executor pipelined --vectorized \
        --out traces/ci_wordcount_vectorized.json
    python -m repro.obs.validate traces/ci_wordcount_vectorized.json
    python -m repro profile traces/ci_wordcount_vectorized.json \
        --json traces/ci_vectorized_profile_summary.json \
        --baseline traces/ci_wordcount_vectorized_profile_baseline.json \
        --threshold makespan_s=0.25 --threshold critical_path=0.60 \
        --threshold operator_wall=0.60 --threshold overlap_pct=0.50 \
        --explain

    echo "== chaos smoke: wordcount survives worker kill + GPU fault =="
    # Exits non-zero unless the faulted run's result is identical to the
    # fault-free run's; the trace must also pass schema validation.
    python -m repro chaos wordcount --mode gpu --workers 4 --real 4000 \
        --kill worker1@150 --gpu-fail worker0:0@10 --backoff 0.05 \
        --out traces/ci_chaos_wordcount.json
    python -m repro.obs.validate traces/ci_chaos_wordcount.json

    echo "== monitored chaos smoke: alerts fire+resolve, summary + dashboard =="
    # Runs wordcount under a worker kill with the online monitor: the
    # command exits non-zero unless worker_unhealthy fired AND resolved
    # (and on any unresolved critical alert); availability=0.5 is a
    # deliberately forgiving gate so retry burn is reported, not fatal.
    rm -rf traces/ci_postmortems
    python -m repro monitor wordcount --mode gpu --workers 4 --real 4000 \
        --kill worker1@150 --gpu-fail worker0:0@10 --backoff 0.05 \
        --expect-alert worker_unhealthy --slo availability=0.5 \
        --postmortem-dir traces/ci_postmortems \
        --summary-out traces/ci_monitor_summary.json \
        --dashboard-out traces/ci_monitor_dashboard.html
    python -m repro.obs.validate traces/ci_monitor_summary.json
    test -s traces/ci_monitor_dashboard.html
    grep -q '<svg' traces/ci_monitor_dashboard.html

    echo "== flight recorder smoke: bundles validate and render =="
    # The fault injections and alert firings above must each have dumped
    # a post-mortem bundle; every bundle is schema-checked, then rendered.
    python -m repro.obs.validate traces/ci_postmortems/postmortem-*.json
    python -m repro postmortem traces/ci_postmortems > /dev/null

    echo "== churn smoke: wordcount with a mid-job join + drain, bit-identical =="
    # Elastic membership must change placement/timing only, never the
    # answer: the command exits non-zero unless the churned run's result
    # is identical to the static run's.  The trace (join/drain/rebalance
    # instants included) must keep validating against the schema.
    python -m repro chaos wordcount --mode gpu --workers 4 --real 4000 \
        --churn join@150 --churn drain:worker1@175 --backoff 0.05 \
        --out traces/ci_churn_wordcount.json
    python -m repro.obs.validate traces/ci_churn_wordcount.json

    echo "== churn profile gate: regression vs committed baseline =="
    # Same deterministic-clock contract as the fault-free gate: refresh
    # the baseline deliberately with:
    #   python -m repro profile traces/ci_churn_wordcount.json --quiet \
    #       --json traces/ci_churn_wordcount_profile_baseline.json
    python -m repro profile traces/ci_churn_wordcount.json \
        --json traces/ci_churn_profile_summary.json \
        --baseline traces/ci_churn_wordcount_profile_baseline.json \
        --threshold makespan_s=0.25 --threshold critical_path=0.60 \
        --threshold operator_wall=0.60 --threshold overlap_pct=0.50 \
        --explain

    echo "== bench smoke: GPU chaining ablation + cache policies + zero-copy shuffle + elasticity + explainer =="
    python -m pytest -q \
        benchmarks/bench_ablation_gpu_chaining.py \
        benchmarks/bench_fig8_cache.py \
        benchmarks/bench_shuffle.py \
        benchmarks/bench_elastic.py \
        benchmarks/bench_explain.py
    echo "consolidated results written to BENCH_PR1.json, BENCH_PR8.json, BENCH_PR9.json and BENCH_PR10.json"
fi

echo "CI OK"
