"""Tests for the command-line interface."""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main, WORKLOADS


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_list(self):
        code, text = run_cli(["list"])
        assert code == 0
        for name in WORKLOADS:
            assert name in text

    def test_specs(self):
        code, text = run_cli(["specs"])
        assert code == 0
        for gpu in ("c2050", "gtx750", "k20", "p100"):
            assert gpu in text

    def test_run_single_mode(self):
        code, text = run_cli(["run", "pointadd", "--mode", "gpu",
                              "--workers", "2", "--real", "2000",
                              "--nominal", "1e5", "--iterations", "2"])
        assert code == 0
        assert "gpu total" in text
        assert "speedup" not in text

    def test_run_both_modes_reports_speedup(self):
        code, text = run_cli(["run", "kmeans", "--workers", "2",
                              "--real", "2000", "--nominal", "1e6",
                              "--iterations", "3"])
        assert code == 0
        assert "cpu total" in text and "gpu total" in text
        assert "speedup:" in text

    def test_run_graph_workload_uses_pages(self):
        code, text = run_cli(["run", "pagerank", "--mode", "cpu",
                              "--workers", "2", "--real", "300",
                              "--nominal", "1e5", "--iterations", "2"])
        assert code == 0
        assert "cpu total" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["run", "sorting"])

    def test_custom_gpu_spec(self):
        code, text = run_cli(["run", "pointadd", "--mode", "gpu",
                              "--workers", "1", "--gpus", "p100",
                              "--real", "1000", "--nominal", "1e4",
                              "--iterations", "1"])
        assert code == 0
        assert "p100" in text


class TestChaosCli:
    def test_chaos_run_reports_and_matches(self):
        code, text = run_cli(["chaos", "pointadd", "--mode", "gpu",
                              "--workers", "2", "--real", "2000",
                              "--nominal", "1e4", "--iterations", "2",
                              "--gpu-fail", "worker0:0@0.1",
                              "--gpu-fail", "worker0:1@0.1"])
        assert code == 0
        assert "resilience report" in text
        assert "identical to the fault-free run" in text
        assert "CPU-fallback" in text

    def test_chaos_empty_schedule_rejected(self):
        code, text = run_cli(["chaos", "pointadd", "--workers", "2",
                              "--real", "1000", "--nominal", "1e4"])
        assert code == 2
        assert "empty fault schedule" in text

    def test_chaos_unknown_worker_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["chaos", "pointadd", "--workers", "2",
                     "--real", "1000", "--kill", "worker9@1.0"])

    def test_chaos_bad_spec_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["chaos", "pointadd", "--workers", "2",
                     "--real", "1000", "--kill", "worker1"])


class TestProfileCli:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        """A small traced run written to disk via the trace subcommand."""
        path = tmp_path / "run.json"
        code, _ = run_cli(["trace", "pointadd", "--workers", "2",
                           "--real", "2000", "--nominal", "1e4",
                           "--iterations", "2", "--out", str(path)])
        assert code == 0
        return path

    def test_profile_reports_and_writes_summary(self, trace_path, tmp_path):
        summary_path = tmp_path / "summary.json"
        code, text = run_cli(["profile", str(trace_path),
                              "--json", str(summary_path)])
        assert code == 0
        assert "critical path" in text
        assert "operator bottlenecks" in text
        summary = json.loads(summary_path.read_text())
        assert summary["schema"] == "repro.profile.summary/v1"

    def test_profile_accepts_summary_input(self, trace_path, tmp_path):
        summary_path = tmp_path / "summary.json"
        run_cli(["profile", str(trace_path), "--json", str(summary_path),
                 "--quiet"])
        code, text = run_cli(["profile", str(summary_path)])
        assert code == 0
        assert "critical path" in text

    def test_gate_passes_against_itself(self, trace_path):
        code, text = run_cli(["profile", str(trace_path), "--quiet",
                              "--baseline", str(trace_path)])
        assert code == 0
        assert "within thresholds" in text

    def test_gate_fails_on_regression(self, trace_path, tmp_path):
        from repro.obs.profile import profile_file
        base = profile_file(trace_path)
        base["makespan_s"] /= 2.0  # baseline twice as fast => regression
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(base))
        code, text = run_cli(["profile", str(trace_path), "--quiet",
                              "--baseline", str(base_path)])
        assert code == 1
        assert "REGRESSION" in text

    def test_threshold_override_changes_verdict(self, trace_path, tmp_path):
        from repro.obs.profile import profile_file
        base = profile_file(trace_path)
        base["makespan_s"] /= 1.05  # 5% slower than baseline
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(base))
        args = ["profile", str(trace_path), "--quiet",
                "--baseline", str(base_path)]
        assert run_cli(args)[0] == 0                        # default 10%
        code, _ = run_cli(args + ["--threshold", "makespan_s=0.01"])
        assert code == 1

    def test_explain_self_diff_reports_no_causes(self, trace_path):
        code, text = run_cli(["profile", str(trace_path), "--quiet",
                              "--baseline", str(trace_path), "--explain"])
        assert code == 0
        assert "explain: makespan +0.000 s" in text
        assert "no causes above the noise floor" in text

    def test_explain_ranks_causes_and_writes_json(self, trace_path,
                                                  tmp_path):
        from repro.obs.explain import validate_explanation
        from repro.obs.profile import profile_file
        base = profile_file(trace_path)
        # Shrink the dominant task category in the baseline: the current
        # run then reads as a regression in exactly that bucket.
        segments = [s for s in base["critical_path"]["segments"]
                    if s.get("kind") == "task"]
        totals = {}
        for seg in segments:
            for cat, secs in seg.get("categories", {}).items():
                totals[cat] = totals.get(cat, 0.0) + secs
        top_cat = max(totals, key=totals.get)
        shrunk = 0.0
        for seg in segments:
            secs = seg.get("categories", {}).get(top_cat, 0.0)
            if secs > 0.0:
                seg["categories"][top_cat] = secs / 2.0
                seg["dur_s"] -= secs / 2.0
                shrunk += secs / 2.0
        assert shrunk > 0.0
        base["makespan_s"] -= shrunk
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(base))
        explain_path = tmp_path / "explain.json"
        code, text = run_cli(["profile", str(trace_path), "--quiet",
                              "--baseline", str(base_path),
                              "--explain-out", str(explain_path)])
        assert "explain: makespan +" in text
        doc = json.loads(explain_path.read_text())
        assert validate_explanation(doc) == []
        expected = "sched.gaps" if top_cat == "sched" else top_cat
        assert doc["causes"][0]["key"] == expected
        assert doc["causes"][0]["delta_s"] == pytest.approx(shrunk)
        assert doc["causes"][0]["label"] in text
        assert doc["current"]["source"] == str(trace_path)

    def test_bad_inputs_exit_2(self, tmp_path):
        missing = tmp_path / "missing.json"
        assert run_cli(["profile", str(missing)])[0] == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rows": []}))
        assert run_cli(["profile", str(bad)])[0] == 2

    def test_bad_threshold_spec_rejected(self, trace_path):
        with pytest.raises(SystemExit):
            run_cli(["profile", str(trace_path),
                     "--baseline", str(trace_path),
                     "--threshold", "makespan_s"])

    def test_committed_ci_trace_profiles(self):
        path = Path(__file__).resolve().parents[1] / "traces" / \
            "ci_wordcount.json"
        if not path.exists():
            pytest.skip("no committed CI trace")
        code, text = run_cli(["profile", str(path)])
        assert code == 0
        assert "worker slot occupancy" in text
