"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main, WORKLOADS


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_list(self):
        code, text = run_cli(["list"])
        assert code == 0
        for name in WORKLOADS:
            assert name in text

    def test_specs(self):
        code, text = run_cli(["specs"])
        assert code == 0
        for gpu in ("c2050", "gtx750", "k20", "p100"):
            assert gpu in text

    def test_run_single_mode(self):
        code, text = run_cli(["run", "pointadd", "--mode", "gpu",
                              "--workers", "2", "--real", "2000",
                              "--nominal", "1e5", "--iterations", "2"])
        assert code == 0
        assert "gpu total" in text
        assert "speedup" not in text

    def test_run_both_modes_reports_speedup(self):
        code, text = run_cli(["run", "kmeans", "--workers", "2",
                              "--real", "2000", "--nominal", "1e6",
                              "--iterations", "3"])
        assert code == 0
        assert "cpu total" in text and "gpu total" in text
        assert "speedup:" in text

    def test_run_graph_workload_uses_pages(self):
        code, text = run_cli(["run", "pagerank", "--mode", "cpu",
                              "--workers", "2", "--real", "300",
                              "--nominal", "1e5", "--iterations", "2"])
        assert code == 0
        assert "cpu total" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["run", "sorting"])

    def test_custom_gpu_spec(self):
        code, text = run_cli(["run", "pointadd", "--mode", "gpu",
                              "--workers", "1", "--gpus", "p100",
                              "--real", "1000", "--nominal", "1e4",
                              "--iterations", "1"])
        assert code == 0
        assert "p100" in text


class TestChaosCli:
    def test_chaos_run_reports_and_matches(self):
        code, text = run_cli(["chaos", "pointadd", "--mode", "gpu",
                              "--workers", "2", "--real", "2000",
                              "--nominal", "1e4", "--iterations", "2",
                              "--gpu-fail", "worker0:0@0.1",
                              "--gpu-fail", "worker0:1@0.1"])
        assert code == 0
        assert "resilience report" in text
        assert "identical to the fault-free run" in text
        assert "CPU-fallback" in text

    def test_chaos_empty_schedule_rejected(self):
        code, text = run_cli(["chaos", "pointadd", "--workers", "2",
                              "--real", "1000", "--nominal", "1e4"])
        assert code == 2
        assert "empty fault schedule" in text

    def test_chaos_unknown_worker_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["chaos", "pointadd", "--workers", "2",
                     "--real", "1000", "--kill", "worker9@1.0"])

    def test_chaos_bad_spec_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["chaos", "pointadd", "--workers", "2",
                     "--real", "1000", "--kill", "worker1"])
