"""Smoke tests: every shipped example must run to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_all_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "kmeans_clustering", "spmv_iterative",
            "wordcount_pipeline", "multi_tenant"} <= names
