"""GMonitor acceptance tests (ISSUE 7 criteria).

Unit coverage of the telemetry plane (windows, SLOs, alerts, health,
summary/dashboard) plus the end-to-end contracts: a monitored run keeps
the simulated clock bit-identical to an unmonitored one across the
KMeans/WordCount matrix, and a chaos run produces a fired-and-resolved
``worker_unhealthy`` alert with a nonzero SLO burn rate.
"""

import io
import json

import pytest

from repro.common.errors import ConfigError
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.chaos import ChaosSchedule
from repro.obs.dashboard import render_dashboard
from repro.obs.monitor import (
    NULL_MONITOR,
    AlertEngine,
    AlertRule,
    GMonitor,
    HealthScorer,
    SLObjective,
    SLOTracker,
    TimeSeriesStore,
    validate_monitor_summary,
)
from repro.workloads import KMeansWorkload, WordCountWorkload


class FakeEnv:
    """A stand-in simulated clock the monitor can read."""

    def __init__(self, now: float = 0.0):
        self.now = now


# ---------------------------------------------------------------------------
# Time-series store
# ---------------------------------------------------------------------------

class TestTimeSeriesStore:
    def test_counter_windows_accumulate_deltas(self):
        store = TimeSeriesStore()
        s = store.series("tasks", "counter", worker="w0")
        s.record(0, 2)
        s.record(0, 3)
        assert s.close(0) == 5
        assert s.close(1) is None          # untouched window
        s.record(2, 1)
        assert s.close(2) == 1
        assert list(s.points) == [(0, 5), (2, 1)]

    def test_gauge_window_keeps_last_value(self):
        store = TimeSeriesStore()
        s = store.series("depth", "gauge")
        s.record(0, 3)
        s.record(0, 7)
        assert s.close(0) == 7.0

    def test_histogram_window_percentiles(self):
        store = TimeSeriesStore()
        s = store.series("lat", "histogram")
        for v in (0.1, 0.2, 0.9):
            s.record(0, v)
        value = s.close(0)
        assert value["count"] == 3
        assert value["min"] == pytest.approx(0.1)
        assert value["max"] == pytest.approx(0.9)
        assert 0.1 <= value["p50"] <= 0.9

    def test_retention_bounds_points(self):
        store = TimeSeriesStore(retention=3)
        s = store.series("c", "counter")
        for idx in range(6):
            s.record(idx, 1)
            s.close(idx)
        assert [i for i, _ in s.points] == [3, 4, 5]

    def test_kind_conflict_raises(self):
        store = TimeSeriesStore()
        store.series("x", "counter")
        with pytest.raises(ConfigError):
            store.series("x", "gauge")

    def test_label_named_kind_is_legal(self):
        # Registry metrics may label by "kind" (chaos.events does); the
        # items-based accessor must not collide with the signature.
        store = TimeSeriesStore()
        s = store.series_items("chaos.events", "counter",
                               (("kind", "worker-kill"),))
        assert s.key == "chaos.events{kind=worker-kill}"


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------

class TestSLOTracker:
    def test_availability_burn_rate(self):
        tracker = SLOTracker(TimeSeriesStore())
        tracker.add(SLObjective(name="avail", kind="availability",
                                target=0.99))
        for i in range(100):
            tracker.observe_event(0, "avail", ok=(i != 0))
        # 1% bad against a 1% budget: burning exactly at the limit.
        assert tracker.burn_rate("avail") == pytest.approx(1.0)
        assert not tracker.violated("avail")
        tracker.observe_event(1, "avail", ok=False)
        assert tracker.burn_rate("avail") > 1.0
        assert tracker.violated("avail")

    def test_latency_tracking_without_target_never_violates(self):
        tracker = SLOTracker(TimeSeriesStore())
        tracker.add(SLObjective(name="lat", kind="latency", target=None))
        tracker.observe_latency(0, "lat", 1e9)
        assert not tracker.violated("lat")
        assert tracker.burn_rate("lat") == 0.0

    def test_latency_target_violation(self):
        tracker = SLOTracker(TimeSeriesStore())
        tracker.add(SLObjective(name="lat", kind="latency", target=0.5,
                                percentile=0.5))
        for _ in range(10):
            tracker.observe_latency(0, "lat", 2.0)
        assert tracker.violated("lat")

    def test_availability_requires_target(self):
        with pytest.raises(ConfigError):
            SLObjective(name="a", kind="availability", target=None)


# ---------------------------------------------------------------------------
# Alerts
# ---------------------------------------------------------------------------

def _evaluate(engine, store, idx, window_s=1.0):
    engine.evaluate(idx, (idx + 1) * window_s, store.close_window(idx))


class TestAlertEngine:
    def make(self, sustained=2, resolve_after=2):
        store = TimeSeriesStore()
        engine = AlertEngine()
        engine.add_rule(AlertRule(
            name="hot", series="temp", predicate="above", threshold=10.0,
            sustained=sustained, resolve_after=resolve_after,
            severity="critical"))
        return engine, store

    def test_sustained_firing_and_resolution(self):
        engine, store = self.make(sustained=2, resolve_after=2)
        s = store.series("temp", "counter")
        s.record(0, 20)
        _evaluate(engine, store, 0)
        assert engine.history == []        # one breach < sustained=2
        s.record(1, 30)
        _evaluate(engine, store, 1)
        assert len(engine.history) == 1
        alert = engine.history[0]
        assert alert.active and alert.fired_at_s == 2.0
        assert alert.peak == 30.0
        # Two quiet windows resolve it (counter reads 0 when untouched).
        _evaluate(engine, store, 2)
        assert alert.active
        _evaluate(engine, store, 3)
        assert not alert.active
        assert alert.resolved_at_s == 4.0

    def test_one_breach_below_sustained_never_fires(self):
        engine, store = self.make(sustained=3)
        s = store.series("temp", "counter")
        for idx in (0, 2, 4):              # never consecutive
            s.record(idx, 99)
            _evaluate(engine, store, idx)
            _evaluate(engine, store, idx + 1)
        assert engine.history == []

    def test_gauge_carries_forward_between_windows(self):
        store = TimeSeriesStore()
        engine = AlertEngine()
        engine.add_rule(AlertRule(name="deep", series="depth",
                                  predicate="above", threshold=5.0,
                                  sustained=2, resolve_after=2))
        s = store.series("depth", "gauge")
        s.record(0, 8)
        _evaluate(engine, store, 0)
        _evaluate(engine, store, 1)        # gauge still 8: second breach
        assert len(engine.history) == 1

    def test_label_scoping_restricts_matching(self):
        store = TimeSeriesStore()
        engine = AlertEngine()
        engine.add_rule(AlertRule(name="g0", series="x",
                                  labels=(("device", "gpu0"),),
                                  predicate="above", threshold=0.0,
                                  sustained=1))
        store.series("x", "counter", device="gpu1").record(0, 5)
        _evaluate(engine, store, 0)
        assert engine.history == []
        store.series("x", "counter", device="gpu0").record(1, 5)
        _evaluate(engine, store, 1)
        assert [a.labels for a in engine.history] == [{"device": "gpu0"}]

    def test_rate_above_predicate(self):
        store = TimeSeriesStore()
        engine = AlertEngine()
        engine.add_rule(AlertRule(name="spike", series="x",
                                  predicate="rate_above", threshold=10.0,
                                  sustained=1))
        s = store.series("x", "gauge")
        s.record(0, 5)
        _evaluate(engine, store, 0)
        s.record(1, 6)
        _evaluate(engine, store, 1)        # +1 — no spike
        assert engine.history == []
        s.record(2, 50)
        _evaluate(engine, store, 2)        # +44 — spike
        assert len(engine.history) == 1


class TestTrendRules:
    def make(self, predicate, threshold, window=6):
        store = TimeSeriesStore()
        engine = AlertEngine()
        engine.add_rule(AlertRule(name="trend", series="x",
                                  predicate=predicate, threshold=threshold,
                                  sustained=1, trend_window=window))
        return engine, store

    def test_trend_above_fires_on_ramp(self):
        engine, store = self.make("trend_above", 0.5)
        s = store.series("x", "gauge")
        for idx, v in enumerate([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]):
            s.record(idx, v)
            _evaluate(engine, store, idx)
        assert len(engine.history) == 1
        # The alert's peak is the breaching slope, not the raw value.
        assert engine.history[0].peak == pytest.approx(1.0)

    def test_flat_series_never_fires(self):
        engine, store = self.make("trend_above", 0.5)
        s = store.series("x", "gauge")
        for idx in range(8):
            s.record(idx, 5.0)
            _evaluate(engine, store, idx)
        assert engine.history == []

    def test_trend_below_fires_on_decay(self):
        engine, store = self.make("trend_below", -0.5)
        s = store.series("x", "gauge")
        for idx, v in enumerate([9.0, 8.0, 7.0, 6.0, 5.0, 4.0]):
            s.record(idx, v)
            _evaluate(engine, store, idx)
        assert len(engine.history) == 1

    def test_needs_half_window_before_firing(self):
        engine, store = self.make("trend_above", 0.0, window=8)
        s = store.series("x", "gauge")
        for idx, v in enumerate([1.0, 5.0, 9.0]):
            s.record(idx, v)
            _evaluate(engine, store, idx)
        assert engine.history == []        # 3 samples < trend_window//2 = 4

    def test_trend_rule_keeps_gauge_carry_forward(self):
        # The engine's carried window value must stay the raw gauge
        # reading, not the slope the rule reported as the alert value.
        engine, store = self.make("trend_above", 100.0)
        s = store.series("x", "gauge")
        s.record(0, 7.0)
        _evaluate(engine, store, 0)
        state = next(iter(engine._states.values()))
        assert state.last_value == 7.0     # raw, not slope (0.0)

    def test_bad_trend_window_rejected(self):
        with pytest.raises(ConfigError):
            AlertRule(name="t", series="x", predicate="trend_above",
                      trend_window=1)


class TestTrendsAPI:
    def test_trends_snapshot_shape_and_direction(self):
        env = FakeEnv()
        mon = GMonitor(env, window_s=1.0)
        for i in range(8):
            env.now = i + 0.5
            mon.gauge("depth", float(i))
        env.now = 8.0
        mon.finalize()
        snaps = mon.trends("depth")
        assert len(snaps) == 1
        snap = next(iter(snaps.values()))
        assert snap["name"] == "depth"
        assert snap["n"] == 8
        assert snap["slope"] == pytest.approx(1.0)
        assert snap["direction"] == "up"
        assert snap["last"] == pytest.approx(7.0)

    def test_trends_filter_by_name(self):
        env = FakeEnv()
        mon = GMonitor(env, window_s=1.0)
        env.now = 0.5
        mon.gauge("a", 1.0)
        mon.gauge("b", 2.0)
        env.now = 1.0
        mon.finalize()
        assert {s["name"] for s in mon.trends().values()} >= {"a", "b"}
        assert all(s["name"] == "a" for s in mon.trends("a").values())

    def test_null_monitor_trends_empty(self):
        assert NULL_MONITOR.trends() == {}


# ---------------------------------------------------------------------------
# Health
# ---------------------------------------------------------------------------

class TestHealthScorer:
    def test_penalties_and_down_worker(self):
        store = TimeSeriesStore()
        scorer = HealthScorer(store)
        scorer.register_worker("worker0")
        scorer.register_worker("worker1")
        engine = AlertEngine()
        engine.add_rule(AlertRule(name="bad", series="m",
                                  predicate="above", threshold=0.0,
                                  sustained=1, severity="critical"))
        store.series("m", "counter", worker="worker0").record(0, 1)
        _evaluate(engine, store, 0)
        scorer.worker_down("worker1")
        scorer.score_window(0, engine)
        summary = scorer.summary()
        assert summary["workers"]["worker0"] == 60.0   # 100 - 40 critical
        assert summary["workers"]["worker1"] == 0.0
        assert summary["cluster"] == 30.0

    def test_healthy_cluster_scores_100(self):
        scorer = HealthScorer(TimeSeriesStore())
        scorer.register_worker("w")
        scorer.score_window(0, AlertEngine())
        assert scorer.summary() == {
            "cluster": 100.0, "workers": {"w": 100.0}, "devices": {}}


# ---------------------------------------------------------------------------
# GMonitor windowing on a fake clock
# ---------------------------------------------------------------------------

class TestGMonitorWindows:
    def test_lazy_window_close_on_tick(self):
        env = FakeEnv()
        mon = GMonitor(env, window_s=1.0)
        mon.count("x", 1)
        env.now = 2.5
        mon.count("x", 1)                  # ticks: closes windows 0 and 1
        series = mon.store.series("x", "counter")
        assert list(series.points) == [(0, 1)]
        env.now = 3.0
        mon.finalize()
        assert list(series.points) == [(0, 1), (2, 1)]

    def test_finalize_is_idempotent(self):
        env = FakeEnv(now=1.5)
        mon = GMonitor(env, window_s=1.0)
        mon.count("x", 1)
        mon.finalize()
        n = mon._windows_closed
        mon.finalize()
        assert mon._windows_closed == n

    def test_default_rules_installed(self):
        mon = GMonitor(FakeEnv())
        names = {r.name for r in mon.alerts.rules}
        assert {"worker_unhealthy", "backpressure_stall"} <= names

    def test_register_device_installs_pcie_rule(self):
        mon = GMonitor(FakeEnv(), window_s=2.0)
        mon.register_device("w0-gpu0", pcie_bps=1e9)
        rule = [r for r in mon.alerts.rules if r.name == "pcie_saturated"]
        assert len(rule) == 1
        assert rule[0].threshold == pytest.approx(0.9 * 1e9 * 2.0)
        assert rule[0].labels == (("device", "w0-gpu0"),)

    def test_summary_validates_and_renders(self):
        env = FakeEnv()
        mon = GMonitor(env, window_s=1.0)
        mon.register_worker("worker0")
        mon.count("tasks", 3, worker="worker0")
        mon.job_completed("job0", 0.4)
        mon.task_attempt("map", ok=True)
        mon.task_attempt("map", ok=False)
        env.now = 4.0
        mon.heartbeat_missed("worker0")
        mon.finalize()
        summary = mon.summary()
        assert validate_monitor_summary(summary) == []
        assert summary["windows_closed"] >= 4
        # worker_unhealthy fires on the missed heartbeat (sustained=1).
        assert any(a["rule"] == "worker_unhealthy"
                   for a in summary["alerts"])
        html = render_dashboard(summary)
        assert "<svg" in html and "worker_unhealthy" in html
        # Self-contained: no external scripts, stylesheets or links.
        assert "https://" not in html and "http://" not in html

    def test_validator_rejects_broken_documents(self):
        assert validate_monitor_summary([]) != []
        mon = GMonitor(FakeEnv())
        mon.finalize()
        good = mon.summary()
        bad = dict(good, schema="nope")
        assert any("schema" in e for e in validate_monitor_summary(bad))
        bad = dict(good, alerts=[{"rule": "r", "series": "s",
                                  "severity": "critical", "fired_at_s": 5.0,
                                  "resolved_at_s": 1.0}])
        assert any("resolved" in e for e in validate_monitor_summary(bad))


# ---------------------------------------------------------------------------
# End-to-end: zero-cost off, bit-identical clock, chaos alerting
# ---------------------------------------------------------------------------

def run_workload(workload_cls, kwargs, mode, monitoring,
                 schedule=None, flight_recorder_dir=None):
    config = ClusterConfig(
        n_workers=4, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",),
        flink=FlinkConfig(enable_monitoring=monitoring,
                          retry_backoff_base_s=0.05,
                          enable_flight_recorder=(
                              flight_recorder_dir is not None),
                          flight_recorder_dir=(
                              str(flight_recorder_dir)
                              if flight_recorder_dir else None)))
    cluster = GFlinkCluster(config)
    if schedule is not None:
        cluster.install_chaos(schedule)
    result = workload_cls(**kwargs).run(GFlinkSession(cluster), mode)
    return cluster, result


MATRIX = [
    (KMeansWorkload, dict(real_elements=3000, iterations=2), "cpu"),
    (KMeansWorkload, dict(real_elements=3000, iterations=2), "gpu"),
    (WordCountWorkload, dict(real_elements=4000), "cpu"),
    (WordCountWorkload, dict(real_elements=4000), "gpu"),
]


class TestZeroCostAndClockIdentity:
    @pytest.mark.parametrize("workload_cls,kwargs,mode", MATRIX,
                             ids=["kmeans-cpu", "kmeans-gpu",
                                  "wordcount-cpu", "wordcount-gpu"])
    def test_monitoring_keeps_clock_bit_identical(self, workload_cls,
                                                  kwargs, mode):
        on_cluster, on = run_workload(workload_cls, kwargs, mode, True)
        off_cluster, off = run_workload(workload_cls, kwargs, mode, False)
        assert on_cluster.env.now == off_cluster.env.now
        assert on.total_seconds == off.total_seconds
        assert on.iteration_seconds == off.iteration_seconds

    def test_disabled_monitor_is_null_and_empty(self):
        cluster, _ = run_workload(WordCountWorkload,
                                  dict(real_elements=4000), "gpu", False)
        assert cluster.obs.monitor is NULL_MONITOR
        assert not cluster.obs.monitor.enabled
        assert len(cluster.obs.monitor) == 0

    def test_enabled_monitor_collects_series(self):
        cluster, _ = run_workload(WordCountWorkload,
                                  dict(real_elements=4000), "gpu", True)
        mon = cluster.obs.monitor
        mon.finalize()
        assert len(mon.store) > 0
        names = {s.name for s in mon.store.all_series()}
        assert "slo.events" in names
        assert "gpu.pcie.bytes" in names
        assert any(n.startswith("health.") for n in names)
        assert validate_monitor_summary(mon.summary()) == []


class TestDetectorDeterminism:
    def test_identical_runs_give_identical_summaries_and_trends(self):
        def one():
            schedule = ChaosSchedule()
            schedule.kill_worker("worker1", at=100.0)
            cluster, _ = run_workload(
                WordCountWorkload, dict(real_elements=4000), "gpu", True,
                schedule=schedule)
            mon = cluster.obs.monitor
            mon.finalize()
            return mon.summary(), mon.trends()
        s1, t1 = one()
        s2, t2 = one()
        assert json.dumps(s1, sort_keys=True) == \
            json.dumps(s2, sort_keys=True)
        assert t1 == t2


class TestFlightRecorderZeroCost:
    @pytest.mark.parametrize("workload_cls,kwargs,mode", MATRIX,
                             ids=["kmeans-cpu", "kmeans-gpu",
                                  "wordcount-cpu", "wordcount-gpu"])
    def test_recorder_keeps_clock_bit_identical(self, workload_cls,
                                                kwargs, mode, tmp_path):
        on_cluster, on = run_workload(
            workload_cls, kwargs, mode, True,
            flight_recorder_dir=tmp_path / "pm")
        off_cluster, off = run_workload(workload_cls, kwargs, mode, False)
        assert on_cluster.obs.recorder is not None
        assert on_cluster.env.now == off_cluster.env.now
        assert on.total_seconds == off.total_seconds
        assert on.iteration_seconds == off.iteration_seconds


class TestChaosMonitoring:
    @pytest.fixture(scope="class")
    def chaos_run(self):
        schedule = ChaosSchedule()
        # t=100 lands mid-task on worker1 for this workload/size: the kill
        # both strands running subtasks (retries -> SLO burn) and stops
        # heartbeats (worker_unhealthy).
        schedule.kill_worker("worker1", at=100.0)
        cluster, result = run_workload(
            WordCountWorkload, dict(real_elements=4000), "gpu", True,
            schedule=schedule)
        mon = cluster.obs.monitor
        mon.finalize()
        return cluster, mon.summary()

    def test_worker_unhealthy_fires_and_resolves(self, chaos_run):
        _, summary = chaos_run
        fired = [a for a in summary["alerts"]
                 if a["rule"] == "worker_unhealthy"]
        assert fired, "worker kill did not raise worker_unhealthy"
        assert any(a["resolved_at_s"] is not None for a in fired)

    def test_burn_rate_nonzero_under_retries(self, chaos_run):
        _, summary = chaos_run
        avail = [s for s in summary["slos"]
                 if s["name"] == "task_availability"][0]
        assert avail["bad"] > 0
        assert avail["burn_rate"] > 0.0

    def test_dead_worker_scores_zero(self, chaos_run):
        _, summary = chaos_run
        health = summary["health"]
        assert health["workers"]["worker1"] == 0.0
        assert health["cluster"] < 100.0

    def test_summary_validates_and_alert_instants_traced(self, chaos_run):
        cluster, summary = chaos_run
        assert validate_monitor_summary(summary) == []
        # Alert lifecycle rides the trace when tracing is enabled; with
        # tracing off the tracer records nothing, so just re-check the
        # summary carries the full lifecycle.
        for a in summary["alerts"]:
            assert a["fired_at_s"] >= 0.0


class TestMonitorCLI:
    def test_monitor_command_gates_on_expected_alert(self, tmp_path):
        from repro.cli import main
        out = io.StringIO()
        summary_path = tmp_path / "summary.json"
        dash_path = tmp_path / "dash.html"
        code = main(["monitor", "wordcount", "--mode", "gpu",
                     "--workers", "4", "--real", "4000",
                     "--kill", "worker1@150", "--backoff", "0.05",
                     "--expect-alert", "worker_unhealthy",
                     "--slo", "availability=0.5",
                     "--summary-out", str(summary_path),
                     "--dashboard-out", str(dash_path)], out=out)
        text = out.getvalue()
        assert code == 0, text
        doc = json.loads(summary_path.read_text())
        assert validate_monitor_summary(doc) == []
        assert dash_path.read_text().startswith("<!DOCTYPE html>")

    def test_monitor_command_fails_on_absent_alert(self, tmp_path):
        from repro.cli import main
        out = io.StringIO()
        code = main(["monitor", "wordcount", "--mode", "gpu",
                     "--workers", "2", "--real", "4000",
                     "--kill", "worker1@1e9",   # never triggers
                     "--expect-alert", "worker_unhealthy"], out=out)
        assert code == 1
        assert "never fired" in out.getvalue()
