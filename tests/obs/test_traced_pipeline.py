"""Acceptance tests: traced end-to-end runs (ISSUE criteria).

A traced WordCount GPU run must produce a schema-valid Chrome trace with
distinct worker/GPU-device/copy-engine tracks, non-overlapping kernel
spans, and copy spans overlapping kernel spans (pipeline overlap).  The
same run with tracing disabled must record zero events and the identical
simulated makespan.
"""

from collections import defaultdict

import pytest

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FailureInjector, \
    FlinkConfig, FlinkSession
from repro.obs.export import validate_chrome_trace
from repro.workloads import WordCountWorkload
from tests.flink.conftest import make_cluster


def traced_wordcount(enable_tracing: bool):
    cluster = GFlinkCluster(ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=2),
        gpus_per_worker=("c2050", "c2050"),
        flink=FlinkConfig(enable_tracing=enable_tracing)))
    # Nominal size chosen so each partition spans many pipeline blocks:
    # that is what makes copy/kernel overlap observable in the trace.
    workload = WordCountWorkload(nominal_elements=2e8, real_elements=4000)
    result = workload.run(GFlinkSession(cluster), "gpu")
    return cluster, result


@pytest.fixture(scope="module")
def traced():
    return traced_wordcount(enable_tracing=True)


class TestTracedWordCount:
    def test_trace_validates(self, traced):
        cluster, _ = traced
        assert validate_chrome_trace(cluster.obs.tracer.to_chrome()) == []

    def test_distinct_worker_device_and_copy_tracks(self, traced):
        cluster, _ = traced
        tracks = cluster.obs.tracer.track_names()
        workers = [p for p in tracks if p.startswith("worker")
                   and "gpu" not in p]
        devices = [p for p in tracks if "-gpu" in p]
        assert workers and devices
        assert any(t.startswith("slot") for t in tracks[workers[0]])
        lanes = tracks[devices[0]]
        assert "kernel" in lanes
        assert "copy:h2d" in lanes and "copy:d2h" in lanes

    def test_kernel_spans_never_overlap_per_engine(self, traced):
        cluster, _ = traced
        tracer = cluster.obs.tracer
        by_engine = defaultdict(list)
        for ev in tracer.spans(cat="gpu.device"):
            if ev.name not in ("h2d", "d2h"):
                by_engine[(ev.pid, ev.tid)].append(ev)
        assert by_engine, "no kernel spans recorded"
        for spans in by_engine.values():
            spans.sort(key=lambda e: e.ts)
            for prev, cur in zip(spans, spans[1:]):
                assert not prev.overlaps(cur), (prev, cur)

    def test_copy_spans_overlap_kernels(self, traced):
        """Async copies run concurrently with kernels (pipeline overlap)."""
        cluster, _ = traced
        tracer = cluster.obs.tracer
        kernels = [e for e in tracer.spans(cat="gpu.device")
                   if e.name not in ("h2d", "d2h")]
        copies = [e for e in tracer.spans(cat="gpu.device")
                  if e.name in ("h2d", "d2h")]
        assert any(c.overlaps(k) for c in copies for k in kernels
                   if c.pid == k.pid)

    def test_job_and_gpu_metrics_recorded(self, traced):
        cluster, _ = traced
        reg = cluster.obs.registry
        assert reg.sum_values("jobs.completed") >= 1
        assert reg.sum_values("gwork.submitted") >= 1
        assert reg.sum_values("gpu.pcie.h2d.bytes") > 0
        assert reg.sum_values("gpu.kernel.seconds") > 0

    def test_disabled_run_adds_zero_events_and_no_clock_divergence(
            self, traced):
        _, traced_result = traced
        cluster, result = traced_wordcount(enable_tracing=False)
        assert len(cluster.obs.tracer) == 0
        assert len(cluster.obs.registry) == 0
        assert result.total_seconds == traced_result.total_seconds


class TestTracedFaults:
    def test_retry_instants_counter_and_attribution(self):
        cluster = make_cluster(enable_tracing=True)
        injector = FailureInjector(plan={("flaky-map", 0): 2})
        session = FlinkSession(cluster, failure_injector=injector)
        result = session.from_collection(list(range(10)), parallelism=2) \
            .map(lambda x: x * 2, name="flaky-map").collect()
        assert result.metrics.retries == 2

        tracer = cluster.obs.tracer
        retries = tracer.instants(name="task.retry")
        assert len(retries) == 2
        assert all(ev.args["op"] == "flaky-map" for ev in retries)
        assert [ev.args["attempt"] for ev in retries] == [0, 1]
        faults = tracer.instants(name="fault.injected")
        assert len(faults) == 2

        reg = cluster.obs.registry
        assert reg.value("task.retries", op="flaky-map") == 2
        assert reg.value("faults.injected", op="flaky-map") == 2
        # The injector's own attribution log mirrors the trace.
        assert injector.injected == [("flaky-map", 0, 0), ("flaky-map", 0, 1)]

    def test_placement_instants_cover_all_subtasks(self):
        cluster = make_cluster(enable_tracing=True)
        session = FlinkSession(cluster)
        session.from_collection(list(range(8)), parallelism=4) \
            .map(lambda x: x + 1, name="m").count()
        places = cluster.obs.tracer.instants(name="place")
        assert len(places) >= 4
        assert all(ev.args["reason"] in
                   ("block-local", "spread", "colocate-input")
                   for ev in places)
