"""Unit tests for the deterministic anomaly/trend detectors.

Pure-arithmetic contracts: exact slopes on linear series, EWMA drift
scores spiking on a step, changepoint detection on mean shifts, input
validation, and bit-identical output on identical input.
"""

import pytest

from repro.obs.anomaly import (
    SlidingTrend,
    changepoints,
    ewma_zscores,
    slope_of,
    trend_snapshot,
    window_slopes,
)


class TestSlope:
    def test_exact_on_linear_series(self):
        assert slope_of([1.0, 2.0, 3.0, 4.0]) == pytest.approx(1.0)
        assert slope_of([10.0, 8.0, 6.0]) == pytest.approx(-2.0)
        assert slope_of([0.0, 3.0]) == pytest.approx(3.0)

    def test_flat_and_degenerate(self):
        assert slope_of([5.0, 5.0, 5.0]) == 0.0
        assert slope_of([5.0]) == 0.0
        assert slope_of([]) == 0.0

    def test_window_slopes_trailing(self):
        pts = [(i, float(i)) for i in range(6)]
        out = window_slopes(pts, window=3)
        assert out[0] == (0, 0.0)          # single value: no slope yet
        assert all(s == pytest.approx(1.0) for _, s in out[1:])

    def test_window_slopes_validates_window(self):
        with pytest.raises(ValueError):
            window_slopes([(0, 1.0)], window=1)


class TestEwmaZscores:
    def test_warmup_points_score_zero(self):
        pts = [(i, 100.0 * i) for i in range(3)]
        assert [z for _, z in ewma_zscores(pts, warmup=3)] == [0.0, 0.0, 0.0]

    def test_spike_scores_high_steady_scores_low(self):
        pts = [(i, 10.0 + (0.1 if i % 2 else -0.1)) for i in range(20)]
        pts.append((20, 50.0))
        scores = dict(ewma_zscores(pts))
        assert abs(scores[19]) < 3.0
        assert scores[20] > 10.0

    def test_flat_series_saturates_not_explodes(self):
        pts = [(i, 5.0) for i in range(10)] + [(10, 6.0)]
        scores = dict(ewma_zscores(pts))
        assert scores[9] == 0.0
        assert scores[10] == pytest.approx(1e6)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ewma_zscores([(0, 1.0)], alpha=0.0)
        with pytest.raises(ValueError):
            ewma_zscores([(0, 1.0)], alpha=1.5)


class TestChangepoints:
    def test_detects_mean_shift(self):
        pts = [(i, 1.0 + 0.01 * (i % 2)) for i in range(10)]
        pts += [(10 + i, 9.0 + 0.01 * (i % 2)) for i in range(10)]
        found = changepoints(pts, window=8)
        assert found, "step change not detected"
        # The detection lands while the window straddles the shift.
        assert all(10 <= idx <= 14 for idx in found)

    def test_consecutive_detections_collapse(self):
        pts = [(i, 0.0) for i in range(8)] + \
            [(8 + i, 100.0) for i in range(8)]
        assert len(changepoints(pts, window=8)) == 1

    def test_no_changepoints_on_steady_noise(self):
        pts = [(i, 3.0 + 0.05 * ((-1) ** i)) for i in range(30)]
        assert changepoints(pts, window=8) == []

    def test_short_series_yields_nothing(self):
        assert changepoints([(i, float(i)) for i in range(3)]) == []

    def test_window_validation(self):
        with pytest.raises(ValueError):
            changepoints([], window=3)


class TestSlidingTrend:
    def test_online_matches_batch(self):
        values = [1.0, 4.0, 2.0, 8.0, 3.0, 9.0, 5.0, 7.0, 6.0]
        trend = SlidingTrend(window=4)
        for v in values:
            trend.update(v)
        assert trend.slope() == pytest.approx(slope_of(values[-4:]))
        assert trend.mean() == pytest.approx(sum(values[-4:]) / 4)
        assert trend.last() == 6.0
        assert len(trend) == 4
        assert trend.count == len(values)

    def test_snapshot_direction(self):
        up = SlidingTrend(window=4)
        for v in (1.0, 2.0, 3.0):
            up.update(v)
        assert up.snapshot()["direction"] == "up"
        flat = SlidingTrend(window=4)
        for _ in range(4):
            flat.update(2.0)
        assert flat.snapshot()["direction"] == "flat"

    def test_empty_trend_is_inert(self):
        trend = SlidingTrend()
        assert trend.slope() == 0.0
        assert trend.last() is None
        assert trend.snapshot()["n"] == 0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SlidingTrend(window=1)

    def test_determinism_bitwise(self):
        values = [0.3 * i ** 1.5 - (i % 3) for i in range(40)]

        def run():
            t = SlidingTrend(window=8)
            out = []
            for v in values:
                t.update(v)
                out.append((t.slope(), t.zscore(), t.mean()))
            return out
        assert run() == run()

    def test_trend_snapshot_unwraps_histogram_windows(self):
        pts = [(i, {"count": float(i), "p99": 99.0}) for i in range(5)]
        snap = trend_snapshot(pts, window=4)
        assert snap["last"] == 4.0
        assert snap["slope"] == pytest.approx(1.0)
