"""MetricsRegistry unit tests: counters, gauges, histograms, snapshots."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    metric_key,
    parse_prometheus,
    prometheus_name,
    render_key,
)


class TestIdentity:
    def test_key_sorts_and_stringifies_labels(self):
        k1 = metric_key("m", {"b": 2, "a": "x"})
        k2 = metric_key("m", {"a": "x", "b": "2"})
        assert k1 == k2

    def test_render_key(self):
        name, labels = metric_key("reads", {"node": "w0", "kind": "local"})
        assert render_key(name, labels) == "reads{kind=local,node=w0}"
        assert render_key("bare", ()) == "bare"

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits", device="d0")
        c2 = reg.counter("hits", device="d0")
        assert c1 is c2
        assert reg.counter("hits", device="d1") is not c1
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", a=1)
        with pytest.raises(ConfigError, match="already registered"):
            reg.gauge("m", a=1)


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(2.5)
        assert reg.value("n") == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigError, match="cannot decrease"):
            MetricsRegistry().counter("n").inc(-1)

    def test_gauge_sets(self):
        reg = MetricsRegistry()
        g = reg.gauge("temp", node="w0")
        g.set(10)
        g.set(4)
        assert reg.value("temp", node="w0") == 4.0

    def test_sum_values_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("reads", locality="local").inc(3)
        reg.counter("reads", locality="remote").inc(4)
        assert reg.sum_values("reads") == 7.0

    def test_value_unknown_metric_is_none(self):
        assert MetricsRegistry().value("nope") is None


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("t", ())
        for v in (0.5, 1.5, 2.0):
            h.observe(v)
        snap = h.snapshot_value()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(4.0)
        assert snap["min"] == 0.5
        assert snap["max"] == 2.0
        assert snap["mean"] == pytest.approx(4.0 / 3)

    def test_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        buckets = h.snapshot_value()["buckets"]
        assert buckets == {"le_1": 1, "le_10": 1, "le_inf": 1}

    def test_empty_histogram_snapshot(self):
        assert Histogram("t", ()).snapshot_value() == {"count": 0,
                                                       "sum": 0.0}

    def test_percentiles_in_snapshot(self):
        h = Histogram("t", (), bounds=(1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 2.0):
            h.observe(v)
        snap = h.snapshot_value()
        for key in ("p50", "p95", "p99"):
            assert key in snap
            assert snap["min"] <= snap[key] <= snap["max"]
        assert snap["p50"] <= snap["p95"] <= snap["p99"]

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram("t", (), bounds=(0.0, 10.0))
        for v in (1.0, 9.0):  # both land in the (0, 10] bucket
            h.observe(v)
        # rank 1.0 of 2 → halfway into the bucket holding both samples.
        assert h.percentile(0.5) == pytest.approx(5.0)

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram("t", (), bounds=(100.0,))
        h.observe(3.0)
        h.observe(4.0)
        assert h.percentile(0.99) <= 4.0
        assert h.percentile(0.01) >= 3.0

    def test_percentile_overflow_bucket_uses_max(self):
        h = Histogram("t", (), bounds=(1.0,))
        for v in (5.0, 7.0, 9.0):
            h.observe(v)
        assert h.percentile(0.99) == 9.0

    def test_percentile_empty_and_bad_q(self):
        h = Histogram("t", ())
        assert h.percentile(0.5) == 0.0
        with pytest.raises(ConfigError, match="must be in"):
            h.percentile(1.5)


class TestExportSurface:
    def test_snapshot_and_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("hits", device="d0").inc(2)
        reg.gauge("used").set(10)
        reg.histogram("lat").observe(0.5)
        doc = json.loads(reg.to_json())
        assert doc["hits{device=d0}"] == 2.0
        assert doc["used"] == 10.0
        assert doc["lat"]["count"] == 1

    def test_render_lines(self):
        reg = MetricsRegistry()
        reg.counter("hits", device="d0").inc(2)
        reg.histogram("lat").observe(1.0)
        text = reg.render()
        assert "hits{device=d0}" in text
        assert "count=1" in text
        assert MetricsRegistry().render() == "no metrics recorded"

    def test_metrics_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert [m.name for m in reg.metrics()] == ["a", "z"]


class TestSpreadStatistics:
    def test_stddev(self):
        h = Histogram("t", ())
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            h.observe(v)
        assert h.stddev == pytest.approx(2.0)   # classic textbook set
        snap = h.snapshot_value()
        assert snap["stddev"] == pytest.approx(2.0)

    def test_stddev_single_observation_is_zero(self):
        h = Histogram("t", ())
        h.observe(3.0)
        assert h.stddev == 0.0

    def test_p999_in_snapshot(self):
        h = Histogram("t", (), bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 8.0):
            h.observe(v)
        snap = h.snapshot_value()
        assert snap["p99"] <= snap["p999"] <= snap["max"]


class TestPrometheusExposition:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("gpu.pcie.h2d.bytes", device="w0-gpu0").inc(1024)
        reg.counter("gpu.pcie.h2d.bytes", device="w0-gpu1").inc(2048)
        reg.gauge("sched.queue_depth", worker="w0").set(3)
        h = reg.histogram("job.makespan_s", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        return reg

    def test_name_sanitization(self):
        assert prometheus_name("gpu.pcie.h2d.bytes") == "gpu_pcie_h2d_bytes"
        assert prometheus_name("9lives") == "_9lives"

    def test_type_lines_and_samples(self):
        text = self.make_registry().render_prometheus()
        assert "# TYPE gpu_pcie_h2d_bytes counter" in text
        assert "# TYPE sched_queue_depth gauge" in text
        assert "# TYPE job_makespan_s histogram" in text
        assert 'gpu_pcie_h2d_bytes{device="w0-gpu0"} 1024' in text

    def test_histogram_buckets_are_cumulative(self):
        samples = parse_prometheus(
            self.make_registry().render_prometheus())
        assert samples[("job_makespan_s_bucket", (("le", "1"),))] == 1.0
        assert samples[("job_makespan_s_bucket", (("le", "10"),))] == 2.0
        assert samples[("job_makespan_s_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("job_makespan_s_count", ())] == 3.0
        assert samples[("job_makespan_s_sum", ())] == pytest.approx(105.5)

    def test_round_trip(self):
        reg = self.make_registry()
        samples = parse_prometheus(reg.render_prometheus())
        assert samples[("gpu_pcie_h2d_bytes",
                        (("device", "w0-gpu0"),))] == 1024.0
        assert samples[("gpu_pcie_h2d_bytes",
                        (("device", "w0-gpu1"),))] == 2048.0
        assert samples[("sched_queue_depth", (("worker", "w0"),))] == 3.0

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c').inc(1)
        samples = parse_prometheus(reg.render_prometheus())
        assert samples[("c", (("path", 'a"b\\c'),))] == 1.0

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert parse_prometheus("") == {}
