"""Tracer unit tests: spans, instants, tracks, disabled no-op, export."""

import pytest

from repro.obs.trace import NULL_SPAN, NULL_TRACK, TraceEvent, Tracer


class Clock:
    """Minimal stand-in for the simulation environment (only ``now``)."""

    def __init__(self, now: float = 0.0):
        self.now = now


class TestDisabledTracer:
    def test_records_nothing(self):
        tracer = Tracer(Clock(), enabled=False)
        with tracer.span("a", "cat", tracer.track("p", "t"), x=1) as sp:
            sp.set(y=2)
        tracer.instant("b", "cat", tracer.track("p", "t"))
        tracer.complete("c", "cat", tracer.track("p", "t"), 0.0, 1.0)
        assert len(tracer) == 0
        assert tracer.to_chrome()["traceEvents"] == []

    def test_returns_shared_null_objects(self):
        tracer = Tracer(Clock(), enabled=False)
        assert tracer.span("a", "cat", NULL_TRACK) is NULL_SPAN
        assert tracer.track("p", "t") is NULL_TRACK
        assert tracer.track_names() == {}


class TestSpans:
    def test_span_bounds_from_clock(self):
        clock = Clock(10.0)
        tracer = Tracer(clock, enabled=True)
        with tracer.span("work", "task", tracer.track("w", "slot0"), op="m"):
            clock.now = 12.5
        (ev,) = tracer.spans()
        assert ev.ts == 10.0
        assert ev.dur == 2.5
        assert ev.end == 12.5
        assert ev.args == {"op": "m"}

    def test_nested_spans_contain_each_other(self):
        clock = Clock(0.0)
        tracer = Tracer(clock, enabled=True)
        track = tracer.track("w", "t")
        with tracer.span("outer", "task", track):
            clock.now = 1.0
            with tracer.span("inner", "task", track):
                clock.now = 2.0
            clock.now = 3.0
        inner = tracer.spans(name="inner")[0]
        outer = tracer.spans(name="outer")[0]
        assert outer.ts <= inner.ts
        assert inner.end <= outer.end
        assert inner.overlaps(outer)

    def test_set_attaches_late_args(self):
        tracer = Tracer(Clock(), enabled=True)
        with tracer.span("s", "c", tracer.track("p", "t")) as sp:
            sp.set(bytes=42)
        assert tracer.spans()[0].args["bytes"] == 42

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(Clock(), enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("s", "c", tracer.track("p", "t")):
                raise ValueError("boom")
        assert tracer.spans()[0].args["error"] == "ValueError"

    def test_complete_with_explicit_bounds(self):
        tracer = Tracer(Clock(5.0), enabled=True)
        tracer.complete("k", "gpu.device", tracer.track("d", "kernel"),
                        start=3.0, end=5.0, block=1)
        (ev,) = tracer.spans()
        assert (ev.ts, ev.dur) == (3.0, 2.0)

    def test_instant_at_current_time(self):
        tracer = Tracer(Clock(7.0), enabled=True)
        tracer.instant("mark", "fault", tracer.track("p", "t"), op="m")
        (ev,) = tracer.instants()
        assert ev.ts == 7.0
        assert ev.dur == 0.0

    def test_filters_by_cat_and_name(self):
        tracer = Tracer(Clock(), enabled=True)
        track = tracer.track("p", "t")
        with tracer.span("a", "cat1", track):
            pass
        with tracer.span("b", "cat2", track):
            pass
        assert [e.name for e in tracer.spans(cat="cat1")] == ["a"]
        assert [e.name for e in tracer.spans(name="b")] == ["b"]


class TestTracks:
    def test_ids_deterministic_first_use_order(self):
        tracer = Tracer(Clock(), enabled=True)
        t1 = tracer.track("worker0", "slot0")
        t2 = tracer.track("worker0", "slot1")
        t3 = tracer.track("worker1", "slot0")
        assert tracer.track("worker0", "slot0") == t1
        assert t1.pid == t2.pid != t3.pid
        assert t1.tid != t2.tid
        assert tracer.track_names() == {
            "worker0": ["slot0", "slot1"],
            "worker1": ["slot0"],
        }

    def test_overlap_detection(self):
        a = TraceEvent("a", "c", "X", 0.0, 2.0, 1, 1, None)
        b = TraceEvent("b", "c", "X", 1.0, 2.0, 1, 1, None)
        c = TraceEvent("c", "c", "X", 2.0, 1.0, 1, 1, None)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # touching endpoints do not overlap


class TestChromeExport:
    def test_metadata_first_then_events_in_microseconds(self):
        clock = Clock(0.0)
        tracer = Tracer(clock, enabled=True)
        with tracer.span("s", "task", tracer.track("worker0", "slot0")):
            clock.now = 0.5
        tracer.instant("i", "fault", tracer.track("worker0", "slot0"))
        events = tracer.to_chrome()["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases == ["M", "M", "X", "i"]
        span = events[2]
        assert span["dur"] == pytest.approx(0.5e6)
        assert events[3]["s"] == "t"
        assert events[0]["name"] == "process_name"
        assert events[0]["args"]["name"] == "worker0"
