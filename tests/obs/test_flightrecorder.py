"""Flight recorder tests: capture, dumps, validation, CLI rendering.

Unit layer on a fake clock (ring-buffer bounds, bundle cap, schema
checks) plus end-to-end: a chaos fault produces a validated on-disk
bundle, a fired alert carries its bundle filename into the monitor
summary, and ``repro postmortem`` renders the directory.
"""

import io
import json

import pytest

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.chaos import ChaosSchedule
from repro.obs.flightrecorder import (
    POSTMORTEM_SCHEMA,
    FlightRecorder,
    load_bundles,
    render_bundle,
    validate_postmortem_bundle,
)
from repro.obs.monitor import GMonitor
from repro.workloads import WordCountWorkload


class FakeEnv:
    def __init__(self, now: float = 0.0):
        self.now = now


class FakeSeries:
    def __init__(self, key, kind="counter"):
        self.key = key
        self.kind = kind


class TestRecorderUnit:
    def test_window_ring_is_bounded(self):
        rec = FlightRecorder(FakeEnv(), window_capacity=3)
        for i in range(6):
            rec.record_windows(i, float(i), [(FakeSeries("x"), i)])
        assert [w["idx"] for w in rec.windows] == [3, 4, 5]

    def test_dump_writes_validated_bundle(self, tmp_path):
        rec = FlightRecorder(FakeEnv(now=42.5), dirpath=tmp_path)
        rec.record_windows(0, 1.0, [(FakeSeries("tasks"), 7)])
        name = rec.dump("fault:worker-kill", detail={"worker": "w1"})
        assert name == "postmortem-000-fault-worker-kill.json"
        doc = json.loads((tmp_path / name).read_text())
        assert validate_postmortem_bundle(doc) == []
        assert doc["schema"] == POSTMORTEM_SCHEMA
        assert doc["triggered_at_s"] == 42.5
        assert doc["detail"] == {"worker": "w1"}
        assert doc["metric_windows"][0]["series"] == "tasks"

    def test_max_bundles_cap_counts_skips(self, tmp_path):
        rec = FlightRecorder(FakeEnv(), dirpath=tmp_path, max_bundles=2)
        assert rec.dump("a") is not None
        assert rec.dump("b") is not None
        assert rec.dump("c") is None
        assert rec.skipped == 1
        assert len(list(tmp_path.glob("postmortem-*.json"))) == 2

    def test_no_dirpath_keeps_bundle_in_memory(self):
        rec = FlightRecorder(FakeEnv())
        rec.dump("alert:hot")
        assert rec.last_bundle is not None
        assert rec.last_bundle["reason"] == "alert:hot"
        assert validate_postmortem_bundle(rec.last_bundle) == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(FakeEnv(), span_capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(FakeEnv(), max_bundles=0)

    def test_attached_explanation_rides_bundles(self):
        from repro.obs.explain import explain_summaries
        rec = FlightRecorder(FakeEnv())
        s = {"makespan_s": 5.0, "critical_path": {"segments": []},
             "operators": {}, "devices": {}}
        rec.attach_explanation(explain_summaries(s, s))
        rec.dump("fault:gpu-ecc")
        assert rec.last_bundle["explain"] is not None
        assert validate_postmortem_bundle(rec.last_bundle) == []
        assert "explain" in render_bundle(rec.last_bundle)

    def test_validator_rejects_broken_documents(self):
        assert validate_postmortem_bundle([]) != []
        rec = FlightRecorder(FakeEnv())
        rec.dump("x")
        good = rec.last_bundle
        bad = dict(good, schema="nope")
        assert any("schema" in e
                   for e in validate_postmortem_bundle(bad))
        bad = dict(good, metric_windows=[{"idx": 3}, {"idx": 1}])
        assert any("order" in e for e in validate_postmortem_bundle(bad))
        bad = dict(good, trace_slice=[{"name": "no-ts"}])
        assert any("ts" in e for e in validate_postmortem_bundle(bad))

    def test_alert_dump_via_monitor_wiring(self):
        env = FakeEnv()
        rec = FlightRecorder(env)
        mon = GMonitor(env, recorder=rec)
        env.now = 5.0
        mon.heartbeat_missed("worker0")       # worker_unhealthy, sustained=1
        env.now = 7.0
        mon.finalize()
        fired = [a for a in mon.alerts.history
                 if a.rule == "worker_unhealthy"]
        assert fired
        assert fired[0].bundle == rec.bundles[0]
        assert rec.last_bundle["reason"] == "alert:worker_unhealthy"
        assert any(a["bundle"] == rec.bundles[0]
                   for a in mon.summary()["alerts"])


def chaos_cluster(postmortem_dir, monitoring=True):
    config = ClusterConfig(
        n_workers=4, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",),
        flink=FlinkConfig(enable_tracing=True,
                          enable_monitoring=monitoring,
                          retry_backoff_base_s=0.05,
                          enable_flight_recorder=True,
                          flight_recorder_dir=str(postmortem_dir)))
    cluster = GFlinkCluster(config)
    schedule = ChaosSchedule()
    schedule.kill_worker("worker1", at=100.0)
    cluster.install_chaos(schedule)
    return cluster


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        pm_dir = tmp_path_factory.mktemp("postmortems")
        cluster = chaos_cluster(pm_dir)
        WordCountWorkload(real_elements=4000).run(
            GFlinkSession(cluster), "gpu")
        cluster.obs.monitor.finalize()
        return cluster, pm_dir

    def test_fault_dumps_validated_bundle(self, run):
        cluster, pm_dir = run
        rec = cluster.obs.recorder
        fault = [b for b in rec.bundles if "fault-worker-kill" in b]
        assert fault, f"no fault bundle in {rec.bundles}"
        doc = json.loads((pm_dir / fault[0]).read_text())
        assert validate_postmortem_bundle(doc) == []
        assert doc["detail"]["worker"] == "worker1"
        assert doc["triggered_at_s"] == pytest.approx(100.0)
        assert doc["trace_slice"], "trace slice empty with tracing on"

    def test_alert_bundles_linked_in_summary(self, run):
        cluster, pm_dir = run
        summary = cluster.obs.monitor.summary()
        linked = [a for a in summary["alerts"] if a.get("bundle")]
        assert linked, "no alert carries a bundle filename"
        for a in linked:
            assert (pm_dir / a["bundle"]).exists()

    def test_bundle_has_monitor_context(self, run):
        cluster, pm_dir = run
        unhealthy = [b for b in cluster.obs.recorder.bundles
                     if "worker_unhealthy" in b]
        assert unhealthy
        doc = json.loads((pm_dir / unhealthy[0]).read_text())
        assert doc["health"].get("workers")
        assert doc["alerts"]
        assert doc["trends"]
        assert doc["metric_windows"]

    def test_postmortem_cli_renders_directory(self, run):
        from repro.cli import main
        _, pm_dir = run
        out = io.StringIO()
        assert main(["postmortem", str(pm_dir)], out=out) == 0
        text = out.getvalue()
        assert "post-mortem: fault:worker-kill" in text
        assert "trace slice" in text

    def test_postmortem_cli_rejects_missing_and_invalid(self, tmp_path):
        from repro.cli import main
        out = io.StringIO()
        assert main(["postmortem", str(tmp_path)], out=out) == 2
        bad = tmp_path / "postmortem-000-x.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        out = io.StringIO()
        assert main(["postmortem", str(tmp_path)], out=out) == 2
        assert "INVALID" in out.getvalue()

    def test_load_bundles_single_file(self, run):
        _, pm_dir = run
        first = sorted(pm_dir.glob("postmortem-*.json"))[0]
        loaded = load_bundles(str(first))
        assert len(loaded) == 1
        assert loaded[0][0] == first.name
