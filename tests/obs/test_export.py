"""Exporter tests: Chrome-JSON schema validation, file writers, collector."""

import json

import numpy as np

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.gpu import KernelSpec
from repro.obs.export import (
    collect_cluster,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.obs.validate import main as validate_main


class Clock:
    now = 1.0


def small_trace() -> Tracer:
    tracer = Tracer(Clock(), enabled=True)
    with tracer.span("s", "task", tracer.track("worker0", "slot0")):
        pass
    tracer.instant("i", "fault", tracer.track("worker0", "slot0"))
    return tracer


class TestSchemaValidation:
    def test_valid_document_passes(self):
        assert validate_chrome_trace(small_trace().to_chrome()) == []

    def test_root_must_be_object_with_trace_events(self):
        assert validate_chrome_trace([]) == \
            ["document root must be an object"]
        assert validate_chrome_trace({}) == \
            ["document must contain a traceEvents array"]

    def test_rejects_unknown_phase(self):
        doc = small_trace().to_chrome()
        doc["traceEvents"][2]["ph"] = "B"
        assert any("ph must be one of" in e
                   for e in validate_chrome_trace(doc))

    def test_rejects_negative_ts_and_dur(self):
        doc = small_trace().to_chrome()
        doc["traceEvents"][2]["ts"] = -1
        doc["traceEvents"][2]["dur"] = -2
        errors = validate_chrome_trace(doc)
        assert any("ts must be" in e for e in errors)
        assert any("non-negative dur" in e for e in errors)

    def test_rejects_event_on_unnamed_process(self):
        doc = small_trace().to_chrome()
        doc["traceEvents"] = [e for e in doc["traceEvents"]
                              if e.get("ph") != "M"]
        assert any("no process_name metadata" in e
                   for e in validate_chrome_trace(doc))

    def test_rejects_bad_instant_scope_and_metadata(self):
        doc = small_trace().to_chrome()
        doc["traceEvents"][3]["s"] = "q"
        doc["traceEvents"][0]["args"] = {}
        errors = validate_chrome_trace(doc)
        assert any("s must be t/p/g" in e for e in errors)
        assert any("args.name must be a string" in e for e in errors)


def engine_trace(ts_pairs, lane="kernel") -> Tracer:
    """A one-device trace with explicit spans on one engine lane."""
    tracer = Tracer(Clock(), enabled=True)
    track = tracer.track("worker0-gpu0", lane)
    for start, end in ts_pairs:
        tracer.complete("k", "gpu.device", track, start=start, end=end)
    return tracer


class TestExclusiveLaneOverlap:
    def test_overlap_on_kernel_lane_rejected(self):
        doc = engine_trace([(0.0, 2.0), (1.0, 3.0)]).to_chrome()
        errors = validate_chrome_trace(doc)
        assert any("exclusive lane" in e for e in errors)

    def test_overlap_on_copy_lane_rejected(self):
        doc = engine_trace([(0.0, 2.0), (0.5, 1.0)],
                           lane="copy:h2d").to_chrome()
        assert any("exclusive lane" in e
                   for e in validate_chrome_trace(doc))

    def test_back_to_back_spans_pass(self):
        doc = engine_trace([(0.0, 1.0), (1.0, 2.0), (2.0, 2.0)]).to_chrome()
        assert validate_chrome_trace(doc) == []

    def test_overlap_on_virtual_lane_allowed(self):
        # Streams and slots are virtual lanes — overlap is legitimate there.
        doc = engine_trace([(0.0, 2.0), (1.0, 3.0)],
                           lane="stream0").to_chrome()
        assert validate_chrome_trace(doc) == []

    def test_committed_ci_traces_validate(self):
        from pathlib import Path
        traces = Path(__file__).resolve().parents[2] / "traces"
        for name in ("ci_wordcount.json", "ci_chaos_wordcount.json"):
            path = traces / name
            if path.exists():
                assert validate_chrome_trace_file(path) == [], name


class TestWriters:
    def test_trace_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "trace.json"
        write_chrome_trace(small_trace(), path)
        assert validate_chrome_trace_file(path) == []

    def test_metrics_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits", device="d0").inc(3)
        path = write_metrics(reg, tmp_path / "metrics.json")
        assert json.loads(path.read_text())["hits{device=d0}"] == 3.0

    def test_validate_file_reports_unreadable(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert any("cannot load" in e
                   for e in validate_chrome_trace_file(bad))

    def test_validate_cli(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        write_chrome_trace(small_trace(), good)
        assert validate_main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert validate_main([str(bad)]) == 1


class TestCollectCluster:
    def test_gathers_public_counters_as_gauges(self):
        cluster = GFlinkCluster(ClusterConfig(
            n_workers=1, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",),
            flink=FlinkConfig(enable_tracing=True)))
        session = GFlinkSession(cluster)
        session.register_kernel(KernelSpec(
            "double", lambda i, p: {"out": i["in"] * 2.0},
            flops_per_element=2.0))
        data = np.arange(1000, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8,
                                     parallelism=2).persist()
        ds.materialize()
        ds.gpu_map_partition("double", cache=True,
                             cache_key_base="r").count()
        reg = collect_cluster(cluster.obs.registry, cluster)
        device = cluster.gpu_managers()[0].devices[0].name
        assert reg.value("gpu.device.kernel_seconds", device=device) > 0
        assert reg.value("tasks.executed", worker="worker0") > 0
        assert reg.value("gstream.works_submitted", worker="worker0") >= 1
        # Cache gauges come from the public cache_stats() API.
        assert reg.value("gpu.cache.used_bytes", device=device) is not None
