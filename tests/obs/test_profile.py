"""GProfiler tests: hand-built span DAGs with known answers.

Every trace here is synthetic — spans recorded with explicit start/end via
``tracer.complete`` — so the expected critical path, attribution and
utilization numbers are computable by hand.
"""

import json
import math
from pathlib import Path

import pytest

from repro.obs.profile import (
    CATEGORIES,
    ProfileTrace,
    SUMMARY_SCHEMA,
    _intersect,
    _subtract,
    _union,
    compare_summaries,
    extract_critical_path,
    profile_file,
    render_comparison,
    render_text,
    summarize,
    summarize_tracer,
    validate_profile_summary,
)
from repro.obs.trace import Tracer

TRACES_DIR = Path(__file__).resolve().parents[2] / "traces"


class Clock:
    now = 0.0


def tracer() -> Tracer:
    return Tracer(Clock(), enabled=True)


def add_job(t, start, end, name="j"):
    track = t.track("master", "jobmanager")
    t.complete(f"job:{name}", "job", track, start=start, end=end)


def add_submit(t, start, end):
    t.complete("job.submit", "job", t.track("master", "jobmanager"),
               start=start, end=end)


def add_task(t, op, start, end, worker="worker0", slot="slot0", subtask=0):
    t.complete(f"{op}[{subtask}]", "task", t.track(worker, slot),
               start=start, end=end, op=op, subtask=subtask)


def add_operator(t, op, start, end, parallelism=1):
    t.complete(f"op:{op}", "operator", t.track("master", "jobmanager"),
               start=start, end=end, op=op, parallelism=parallelism)


def add_exchange(t, op, start, end, nbytes=0):
    t.complete(f"exchange:{op}", "shuffle", t.track("master", "exchange"),
               start=start, end=end, op=op, bytes=nbytes)


def add_device(t, name, lane, start, end, device="worker0-gpu0", **args):
    t.complete(name, "gpu.device", t.track(device, lane),
               start=start, end=end, **args)


def add_hdfs(t, start, end, worker="worker0", nbytes=0):
    t.complete("hdfs.read", "hdfs", t.track(worker, "hdfs"),
               start=start, end=end, nbytes=nbytes)


def pt(t: Tracer) -> ProfileTrace:
    return ProfileTrace.from_tracer(t)


class TestIntervalMath:
    def test_union_merges_and_sorts(self):
        assert _union([(3.0, 4.0), (0.0, 1.0), (0.5, 2.0)]) == \
            [(0.0, 2.0), (3.0, 4.0)]

    def test_union_drops_empty(self):
        assert _union([(1.0, 1.0), (2.0, 1.5)]) == []

    def test_subtract(self):
        assert _subtract([(0.0, 10.0)], [(2.0, 3.0), (5.0, 12.0)]) == \
            [(0.0, 2.0), (3.0, 5.0)]

    def test_intersect(self):
        assert _intersect([(0.0, 5.0), (7.0, 9.0)], [(4.0, 8.0)]) == \
            [(4.0, 5.0), (7.0, 8.0)]


class TestCriticalPath:
    def linear_job(self):
        """submit(0-1) → A(1-5) → shuffle(5-6) → B(6-9) → idle(9-10)."""
        t = tracer()
        add_job(t, 0.0, 10.0)
        add_submit(t, 0.0, 1.0)
        add_task(t, "A", 1.0, 5.0)
        add_exchange(t, "B", 5.0, 6.0)
        add_task(t, "B", 6.0, 9.0)
        return pt(t)

    def test_segments_partition_the_window(self):
        segments = extract_critical_path(self.linear_job())
        kinds = [(s.kind, s.t0, s.t1) for s in segments]
        assert kinds == [("submit", 0.0, 1.0), ("task", 1.0, 5.0),
                         ("shuffle", 5.0, 6.0), ("task", 6.0, 9.0),
                         ("wait", 9.0, 10.0)]
        # Exact partition: contiguous, covering [0, 10].
        for a, b in zip(segments, segments[1:]):
            assert a.t1 == b.t0
        assert sum(s.dur for s in segments) == 10.0

    def test_category_attribution_sums_to_makespan(self):
        summary = summarize(self.linear_job())
        cats = summary["critical_path"]["categories"]
        assert math.isclose(sum(cats.values()), summary["makespan_s"],
                            rel_tol=0, abs_tol=1e-9)
        assert cats["sched"] == 2.0       # submit + trailing wait
        assert cats["shuffle"] == 1.0
        assert cats["cpu"] == 7.0         # no device spans -> all CPU

    def test_fine_spans_refine_task_segments(self):
        t = tracer()
        add_job(t, 0.0, 5.0)
        add_task(t, "A", 0.0, 5.0)
        add_device(t, "h2d", "copy:h2d", 0.5, 1.0, nbytes=100)
        add_device(t, "k", "kernel", 1.0, 3.0)
        cats = summarize(pt(t))["critical_path"]["categories"]
        assert cats["h2d"] == 0.5
        assert cats["kernel"] == 2.0
        assert cats["cpu"] == 2.5
        assert sum(cats.values()) == 5.0

    def test_kernel_wins_overlap_priority(self):
        # A copy overlapping a kernel attributes the overlap to the kernel.
        t = tracer()
        add_job(t, 0.0, 4.0)
        add_task(t, "A", 0.0, 4.0)
        add_device(t, "k", "kernel", 1.0, 3.0)
        add_device(t, "h2d", "copy:h2d", 0.0, 2.0)
        cats = summarize(pt(t))["critical_path"]["categories"]
        assert cats["kernel"] == 2.0
        assert cats["h2d"] == 1.0         # only the non-overlapped half
        assert cats["cpu"] == 1.0

    def test_other_workers_devices_do_not_leak(self):
        t = tracer()
        add_job(t, 0.0, 4.0)
        add_task(t, "A", 0.0, 4.0, worker="worker1")
        add_device(t, "k", "kernel", 0.0, 4.0, device="worker0-gpu0")
        cats = summarize(pt(t))["critical_path"]["categories"]
        assert cats["kernel"] == 0.0      # worker1 has no gpu spans
        assert cats["cpu"] == 4.0

    def test_longest_reaching_span_wins(self):
        # Two tasks end at 10; the one starting earlier carries the path.
        t = tracer()
        add_job(t, 0.0, 10.0)
        add_task(t, "A", 0.0, 10.0)
        add_task(t, "B", 6.0, 10.0, slot="slot1", subtask=1)
        segments = extract_critical_path(pt(t))
        assert [s.name for s in segments] == ["A[0]"]

    def test_gap_becomes_wait_segment(self):
        t = tracer()
        add_job(t, 0.0, 10.0)
        add_task(t, "A", 0.0, 2.0)
        add_task(t, "B", 6.0, 10.0)
        segments = extract_critical_path(pt(t))
        assert [(s.kind, s.t0, s.t1) for s in segments] == \
            [("task", 0.0, 2.0), ("wait", 2.0, 6.0), ("task", 6.0, 10.0)]


class TestOperatorClassification:
    def op_trace(self, kernel_s=0.0, copy_s=0.0, busy_to=4.0):
        t = tracer()
        add_job(t, 0.0, 5.0)
        add_operator(t, "A", 0.0, 4.0, parallelism=2)
        add_task(t, "A", 0.0, busy_to)
        if kernel_s:
            add_device(t, "k", "kernel", 0.0, kernel_s)
        if copy_s:
            add_device(t, "h2d", "copy:h2d", kernel_s, kernel_s + copy_s)
        return summarize(pt(t))["operators"]["A"]

    def test_cpu_bound(self):
        entry = self.op_trace()
        assert entry["class"] == "cpu_bound"
        assert entry["shares"] == {"cpu": 1.0}
        assert entry["dominant_share"] == 1.0
        assert entry["parallelism"] == 2

    def test_kernel_bound(self):
        entry = self.op_trace(kernel_s=3.0)
        assert entry["class"] == "kernel_bound"
        assert entry["shares"]["kernel"] == 0.75
        assert entry["dominant_share"] == 0.75

    def test_pcie_bound(self):
        entry = self.op_trace(kernel_s=1.0, copy_s=2.5)
        assert entry["class"] == "pcie_bound"
        assert entry["shares"]["h2d"] == pytest.approx(0.625)

    def test_sched_share_where_no_subtask_runs(self):
        entry = self.op_trace(busy_to=1.0)
        assert entry["shares"]["cpu"] == 0.25
        assert entry["shares"]["sched"] == 0.75
        assert entry["class"] == "sched_bound"

    def test_shares_sum_to_one(self):
        entry = self.op_trace(kernel_s=1.0, copy_s=1.0, busy_to=3.0)
        assert sum(entry["shares"].values()) == pytest.approx(1.0)


class TestUtilization:
    def test_overlap_and_pcie_rate(self):
        t = tracer()
        add_job(t, 0.0, 10.0)
        add_device(t, "k", "kernel", 0.0, 6.0)
        add_device(t, "h2d", "copy:h2d", 4.0, 8.0, nbytes=4_000_000_000)
        add_device(t, "d2h", "copy:d2h", 8.0, 9.0, nbytes=1_000_000_000)
        dev = summarize(pt(t))["devices"]["worker0-gpu0"]
        assert dev["kernel_busy_s"] == 6.0
        assert dev["kernel_busy_pct"] == pytest.approx(0.6)
        assert dev["copy_busy_s"] == 5.0
        assert dev["copy_compute_overlap_s"] == 2.0   # kernel ∩ h2d
        assert dev["copy_compute_overlap_pct"] == pytest.approx(0.4)
        assert dev["pcie_bytes_per_s"] == pytest.approx(1e9)

    def test_worker_slot_occupancy(self):
        t = tracer()
        add_job(t, 0.0, 10.0)
        add_task(t, "A", 0.0, 5.0, slot="slot0")
        add_task(t, "B", 0.0, 10.0, slot="slot1", subtask=1)
        workers = summarize(pt(t))["workers"]
        assert workers["worker0"]["slots"] == 2
        assert workers["worker0"]["slot_busy_s"] == 15.0
        assert workers["worker0"]["occupancy_pct"] == pytest.approx(0.75)

    def test_overlapping_spans_on_one_slot_count_once(self):
        t = tracer()
        add_job(t, 0.0, 10.0)
        add_task(t, "A", 0.0, 6.0)
        add_task(t, "A", 4.0, 8.0, subtask=1)
        workers = summarize(pt(t))["workers"]
        assert workers["worker0"]["slot_busy_s"] == 8.0


class TestEdgeCases:
    def test_empty_trace(self):
        summary = summarize(pt(tracer()))
        assert summary["makespan_s"] == 0.0
        assert summary["critical_path"]["segments"] == []
        assert summary["operators"] == {}
        assert validate_profile_summary(summary) == []

    def test_disabled_tracer_profiles_as_empty(self):
        t = Tracer(Clock(), enabled=False)
        with t.span("s", "task", t.track("worker0", "slot0")):
            pass
        summary = summarize_tracer(t)
        assert summary["span_count"] == 0
        assert summary["makespan_s"] == 0.0

    def test_single_span(self):
        t = tracer()
        add_job(t, 1.0, 3.0)
        summary = summarize(pt(t))
        assert summary["makespan_s"] == 2.0
        # Nothing to chain through: the whole window is scheduling wait.
        assert summary["critical_path"]["categories"]["sched"] == 2.0
        assert validate_profile_summary(summary) == []

    def test_no_job_span_falls_back_to_full_extent(self):
        t = tracer()
        add_task(t, "A", 2.0, 6.0)
        summary = summarize(pt(t))
        assert summary["makespan_s"] == 4.0
        assert summary["critical_path"]["categories"]["cpu"] == 4.0

    def test_render_text_smoke(self):
        t = tracer()
        add_job(t, 0.0, 5.0)
        add_operator(t, "A", 0.0, 4.0)
        add_task(t, "A", 0.0, 4.0)
        text = render_text(summarize(pt(t)))
        assert "critical path" in text
        assert "cpu_bound" in text


class TestRealTraces:
    def test_ci_wordcount_trace(self):
        path = TRACES_DIR / "ci_wordcount.json"
        if not path.exists():
            pytest.skip("no committed CI trace")
        summary = profile_file(path)
        assert validate_profile_summary(summary) == []
        cats = summary["critical_path"]["categories"]
        assert math.isclose(sum(cats.values()), summary["makespan_s"],
                            rel_tol=1e-9, abs_tol=1e-9)
        assert summary["operators"]

    def test_chaos_trace_profiles_cleanly(self):
        path = TRACES_DIR / "ci_chaos_wordcount.json"
        if not path.exists():
            pytest.skip("no committed chaos trace")
        summary = profile_file(path)
        assert validate_profile_summary(summary) == []
        assert summary["makespan_s"] > 0

    def test_traced_run_profile(self):
        # End-to-end: a live traced GPU run profiles with exact attribution.
        import numpy as np
        from repro.core import GFlinkCluster, GFlinkSession
        from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
        from repro.gpu import KernelSpec

        cluster = GFlinkCluster(ClusterConfig(
            n_workers=1, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",),
            flink=FlinkConfig(enable_tracing=True)))
        session = GFlinkSession(cluster)
        session.register_kernel(KernelSpec(
            "double", lambda i, p: {"out": i["in"] * 2.0},
            flops_per_element=2.0))
        data = np.arange(4000, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8,
                                     parallelism=2).persist()
        ds.materialize()
        ds.gpu_map_partition("double").count()
        summary = summarize_tracer(cluster.obs.tracer)
        assert validate_profile_summary(summary) == []
        cats = summary["critical_path"]["categories"]
        assert math.isclose(sum(cats.values()), summary["makespan_s"],
                            rel_tol=1e-9, abs_tol=1e-9)
        assert summary["totals"]["kernel_busy_s"] > 0


class TestSummaryValidation:
    def good(self):
        t = tracer()
        add_job(t, 0.0, 2.0)
        return summarize(pt(t))

    def test_good_summary_passes(self):
        assert validate_profile_summary(self.good()) == []

    def test_rejects_wrong_root_and_schema(self):
        assert validate_profile_summary([]) == \
            ["summary root must be an object"]
        bad = dict(self.good(), schema="nope")
        assert any(SUMMARY_SCHEMA in e
                   for e in validate_profile_summary(bad))

    def test_rejects_attribution_mismatch(self):
        bad = self.good()
        bad["critical_path"]["categories"]["cpu"] += 1.0
        assert any("sum" in e for e in validate_profile_summary(bad))

    def test_rejects_missing_category_and_bad_class(self):
        bad = self.good()
        del bad["critical_path"]["categories"]["kernel"]
        bad["operators"] = {"A": {"class": "fast"}}
        errors = validate_profile_summary(bad)
        assert any("kernel missing" in e for e in errors)
        assert any("*_bound" in e for e in errors)


class TestRegressionGate:
    def summary(self, makespan=10.0, kernel=6.0, op_wall=8.0, overlap=0.5):
        t = tracer()
        add_job(t, 0.0, makespan)
        add_operator(t, "A", 0.0, op_wall)
        add_task(t, "A", 0.0, op_wall)
        add_device(t, "k", "kernel", 0.0, kernel)
        add_device(t, "h2d", "copy:h2d", kernel - overlap * 2.0,
                   kernel + (1.0 - overlap) * 2.0, nbytes=100)
        return summarize(pt(t))

    def test_identical_summaries_pass(self):
        s = self.summary()
        deltas = compare_summaries(s, s)
        assert deltas and not any(d.regressed for d in deltas)

    def test_makespan_regression_detected(self):
        cur, base = self.summary(makespan=12.0), self.summary()
        deltas = compare_summaries(cur, base)
        bad = [d for d in deltas if d.regressed]
        assert any(d.metric == "makespan_s" for d in bad)
        assert "REGRESSION" in render_comparison(deltas)

    def test_improvement_never_regresses(self):
        cur, base = self.summary(makespan=8.0, kernel=4.0, op_wall=6.0), \
            self.summary()
        assert not any(d.regressed for d in compare_summaries(cur, base))

    def test_overlap_drop_is_a_regression(self):
        cur = self.summary(overlap=0.1)
        base = self.summary(overlap=0.9)
        deltas = compare_summaries(cur, base)
        assert any(d.metric == "totals.copy_compute_overlap_pct"
                   and d.regressed for d in deltas)

    def test_overlap_gain_is_not(self):
        # (Only the overlap metric is checked: moving the copy window also
        # shifts critical-path cpu/h2d seconds, which may trip their own
        # thresholds — that is the gate working as intended.)
        cur = self.summary(overlap=0.9)
        base = self.summary(overlap=0.1)
        deltas = compare_summaries(cur, base)
        assert not any(d.metric == "totals.copy_compute_overlap_pct"
                       and d.regressed for d in deltas)

    def test_threshold_overrides(self):
        cur, base = self.summary(makespan=10.5), self.summary()
        assert not any(d.regressed for d in compare_summaries(cur, base))
        deltas = compare_summaries(cur, base, {"makespan_s": 0.01})
        assert any(d.metric == "makespan_s" and d.regressed
                   for d in deltas)

    def test_family_threshold_applies_to_categories(self):
        cur, base = self.summary(kernel=7.9), self.summary(kernel=6.0)
        deltas = compare_summaries(cur, base, {"critical_path": 0.05})
        assert any(d.metric == "critical_path.kernel" and d.regressed
                   for d in deltas)

    def test_tiny_absolute_values_are_noise(self):
        base, cur = self.summary(), self.summary()
        base["critical_path"]["categories"]["d2h"] = 1e-9
        cur["critical_path"]["categories"]["d2h"] = 1e-7  # 100x but tiny
        assert not any(d.regressed
                       for d in compare_summaries(cur, base))

    def test_added_operator_is_flagged_as_regression(self):
        base, cur = self.summary(), self.summary()
        cur["operators"]["new"] = {"wall_s": 99.0}
        deltas = compare_summaries(cur, base)
        added = [d for d in deltas if d.metric == "operator.new.wall_s"]
        assert len(added) == 1
        assert added[0].regressed
        assert added[0].base == 0.0 and added[0].current == 99.0
        assert math.isinf(added[0].rel_change)
        assert "operator.new.wall_s" in render_comparison(deltas)

    def test_removed_operator_is_reported_not_regressed(self):
        base, cur = self.summary(), self.summary()
        base["operators"]["gone"] = {"wall_s": 1.0}
        deltas = compare_summaries(cur, base)
        removed = [d for d in deltas if d.metric == "operator.gone.wall_s"]
        assert len(removed) == 1
        assert not removed[0].regressed
        assert removed[0].base == 1.0 and removed[0].current == 0.0
        assert removed[0].rel_change == -1.0

    def test_added_operator_below_noise_floor_is_skipped(self):
        base, cur = self.summary(), self.summary()
        cur["operators"]["tiny"] = {"wall_s": 1e-9}
        cur["operators"]["junk"] = {"wall_s": "n/a"}
        metrics = {d.metric for d in compare_summaries(cur, base)}
        assert "operator.tiny.wall_s" not in metrics
        assert "operator.junk.wall_s" not in metrics

    def test_empty_summaries_compare_without_error(self):
        deltas = compare_summaries({}, {})
        assert not any(d.regressed for d in deltas)

    def test_partial_summary_missing_operators_section(self):
        base, cur = self.summary(), self.summary()
        del cur["operators"]
        deltas = compare_summaries(cur, base)
        # Every baseline operator shows up as removed, none regressed.
        removed = [d for d in deltas if d.metric.startswith("operator.")]
        assert removed and not any(d.regressed for d in removed)

    def test_operator_wall_threshold_applies_to_added(self):
        base, cur = self.summary(), self.summary()
        cur["operators"]["new"] = {"wall_s": 5.0}
        deltas = compare_summaries(cur, base,
                                   {"operator.new.wall_s": 0.5})
        added = [d for d in deltas if d.metric == "operator.new.wall_s"]
        assert added and added[0].threshold == 0.5 and added[0].regressed


class TestProfileFile:
    def test_profiles_trace_and_roundtrips_summary(self, tmp_path):
        t = tracer()
        add_job(t, 0.0, 2.0)
        trace_path = tmp_path / "t.json"
        trace_path.write_text(json.dumps(t.to_chrome()))
        summary = profile_file(trace_path)
        assert summary["makespan_s"] == 2.0
        summary_path = tmp_path / "s.json"
        summary_path.write_text(json.dumps(summary))
        assert profile_file(summary_path) == summary

    def test_rejects_unrecognized_document(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError):
            profile_file(path)
