"""GXplain tests: causal attribution of makespan deltas.

Two layers: synthetic summary dicts with hand-computable bucket deltas
(exact-sum invariant, ranking, evidence, operator plan changes), and
trace-built summaries via the ``test_profile`` span builders to pin the
end-to-end path (a known injected slowdown must rank first).
"""

import math

import pytest

from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    attribution_buckets,
    default_noise_floor,
    explain_summaries,
    render_explanation,
    validate_explanation,
)
from repro.obs.profile import summarize
from tests.obs.test_profile import (
    add_device,
    add_exchange,
    add_job,
    add_submit,
    add_task,
    pt,
    tracer,
)


def seg(t0, dur, kind="task", name="op:x", **cats):
    return {"t0": t0, "t1": t0 + dur, "dur_s": dur, "kind": kind,
            "name": name, "categories": cats}


def make_summary(segments, operators=None, devices=None):
    makespan = sum(s["dur_s"] for s in segments)
    return {
        "makespan_s": makespan,
        "critical_path": {"segments": segments},
        "operators": operators or {},
        "devices": devices or {},
    }


class TestAttributionBuckets:
    def test_buckets_partition_the_makespan(self):
        s = make_summary([
            seg(0.0, 1.0, kind="submit", name="job.submit"),
            seg(1.0, 4.0, cpu=3.0, kernel=0.5, h2d=0.5),
            seg(5.0, 2.0, kind="shuffle", name="exchange:B"),
            seg(7.0, 1.5, kind="wait", name="wait"),
            seg(8.5, 0.5, name="recover:A", cpu=0.5),
        ])
        buckets = attribution_buckets(s)
        assert sum(buckets.values()) == pytest.approx(s["makespan_s"])
        assert buckets["sched.submit"] == 1.0
        assert buckets["shuffle"] == 2.0
        assert buckets["sched.wait"] == 1.5
        assert buckets["recovery"] == 0.5
        assert buckets["cpu"] == 3.0
        assert buckets["kernel"] == 0.5

    def test_unclaimed_task_time_falls_to_cpu(self):
        s = make_summary([seg(0.0, 2.0, cpu=0.5)])
        assert attribution_buckets(s)["cpu"] == pytest.approx(2.0)

    def test_sched_category_maps_to_gaps(self):
        s = make_summary([seg(0.0, 1.0, sched=1.0)])
        assert attribution_buckets(s)["sched.gaps"] == pytest.approx(1.0)


class TestExplainSummaries:
    def base(self):
        return make_summary([
            seg(0.0, 1.0, kind="submit", name="job.submit"),
            seg(1.0, 6.0, cpu=4.0, kernel=1.0, h2d=1.0),
            seg(7.0, 3.0, kind="shuffle", name="exchange:B"),
        ])

    def test_self_diff_has_no_causes(self):
        s = self.base()
        doc = explain_summaries(s, s)
        assert validate_explanation(doc) == []
        assert doc["causes"] == []
        assert doc["makespan_delta_s"] == 0.0
        assert "no causes above the noise floor" in render_explanation(doc)

    def test_injected_slowdown_ranks_first_and_sums_exactly(self):
        base = self.base()
        cur = make_summary([
            seg(0.0, 1.0, kind="submit", name="job.submit"),
            seg(1.0, 10.0, cpu=4.0, kernel=5.0, h2d=1.0),  # kernel +4 s
            seg(11.0, 3.5, kind="shuffle", name="exchange:B"),  # +0.5 s
        ])
        doc = explain_summaries(cur, base, noise_floor_s=0.1)
        assert validate_explanation(doc) == []
        assert doc["causes"][0]["key"] == "kernel"
        assert doc["causes"][0]["delta_s"] == pytest.approx(4.0)
        assert doc["causes"][0]["rank"] == 1
        assert [c["key"] for c in doc["causes"]] == ["kernel", "shuffle"]
        total = sum(c["delta_s"] for c in doc["causes"])
        assert total + doc["residual_s"] == \
            pytest.approx(doc["makespan_delta_s"], abs=1e-12)
        assert abs(doc["residual_s"]) <= doc["noise_floor_s"] * \
            len(attribution_buckets(base))

    def test_speedup_attributes_negative_causes(self):
        base = self.base()
        cur = make_summary([
            seg(0.0, 1.0, kind="submit", name="job.submit"),
            seg(1.0, 6.0, cpu=4.0, kernel=1.0, h2d=1.0),
            seg(7.0, 1.0, kind="shuffle", name="exchange:B"),  # -2 s
        ])
        doc = explain_summaries(cur, base, noise_floor_s=0.1)
        assert doc["makespan_delta_s"] == pytest.approx(-2.0)
        assert doc["causes"][0]["key"] == "shuffle"
        assert doc["causes"][0]["delta_s"] == pytest.approx(-2.0)

    def test_recovery_bucket_with_evidence(self):
        base = self.base()
        cur = make_summary(list(self.base()["critical_path"]["segments"])
                           + [seg(10.0, 0.9, name="recover:A", cpu=0.9)])
        doc = explain_summaries(cur, base, noise_floor_s=0.1)
        recovery = [c for c in doc["causes"] if c["key"] == "recovery"]
        assert recovery and recovery[0]["delta_s"] == pytest.approx(0.9)
        kinds = {e["kind"] for e in recovery[0]["evidence"]}
        assert "recovery" in kinds
        assert any("recover" in e["label"] for e in recovery[0]["evidence"])

    def test_operator_evidence_from_shares(self):
        base = self.base()
        base["operators"] = {"A": {"wall_s": 4.0, "shares": {"cpu": 1.0}}}
        cur = make_summary([
            seg(0.0, 1.0, kind="submit", name="job.submit"),
            seg(1.0, 9.0, cpu=7.0, kernel=1.0, h2d=1.0),
            seg(10.0, 3.0, kind="shuffle", name="exchange:B"),
        ], operators={"A": {"wall_s": 7.0, "shares": {"cpu": 1.0}}})
        doc = explain_summaries(cur, base, noise_floor_s=0.1)
        cpu = [c for c in doc["causes"] if c["key"] == "cpu"][0]
        ops = [e for e in cpu["evidence"] if e["kind"] == "operator"]
        assert ops and ops[0]["name"] == "A"
        assert ops[0]["delta_s"] == pytest.approx(3.0)

    def test_added_and_removed_operators_reported(self):
        base = self.base()
        base["operators"] = {"gone": {"wall_s": 2.0}}
        cur = self.base()
        cur["operators"] = {"new": {"wall_s": 5.0}}
        doc = explain_summaries(cur, base)
        assert doc["operators_added"] == [{"name": "new", "wall_s": 5.0}]
        assert doc["operators_removed"] == [{"name": "gone", "wall_s": 2.0}]
        text = render_explanation(doc)
        assert "+ operator `new` appeared" in text
        assert "- operator `gone` disappeared" in text

    def test_default_noise_floor_scales_with_makespan(self):
        assert default_noise_floor({"makespan_s": 0.0},
                                   {"makespan_s": 0.0}) == 1e-3
        assert default_noise_floor({"makespan_s": 400.0},
                                   {"makespan_s": 100.0}) == \
            pytest.approx(2.0)


class TestValidator:
    def good(self):
        s = make_summary([seg(0.0, 5.0, cpu=5.0)])
        cur = make_summary([seg(0.0, 9.0, cpu=9.0)])
        return explain_summaries(cur, s, noise_floor_s=0.1)

    def test_good_document_validates(self):
        assert validate_explanation(self.good()) == []

    def test_rejects_non_dict_and_bad_schema(self):
        assert validate_explanation([]) != []
        doc = dict(self.good(), schema="nope")
        assert any("schema" in e for e in validate_explanation(doc))

    def test_rejects_broken_rank_and_order(self):
        doc = self.good()
        doc["causes"][0]["rank"] = 7
        assert any("rank" in e for e in validate_explanation(doc))
        doc = self.good()
        doc["causes"].append(dict(doc["causes"][0], rank=2,
                                  delta_s=doc["causes"][0]["delta_s"] * 2))
        doc["attributed_delta_s"] += doc["causes"][1]["delta_s"]
        assert any("sorted" in e for e in validate_explanation(doc))

    def test_rejects_inconsistent_sums(self):
        doc = self.good()
        doc["attributed_delta_s"] += 1.0
        assert validate_explanation(doc) != []
        doc = self.good()
        doc["residual_s"] += 1.0
        assert any("residual" in e for e in validate_explanation(doc))


class TestTraceBuiltSummaries:
    """End to end over real GProfiler output (not hand-built dicts)."""

    def run(self, cpu_end):
        t = tracer()
        add_job(t, 0.0, cpu_end + 4.0)
        add_submit(t, 0.0, 1.0)
        add_task(t, "A", 1.0, cpu_end)
        add_device(t, "k", "kernel", 1.0, 2.0)
        add_exchange(t, "B", cpu_end, cpu_end + 1.0)
        add_task(t, "B", cpu_end + 1.0, cpu_end + 4.0)
        return summarize(pt(t))

    def test_injected_cpu_slowdown_ranks_first(self):
        base = self.run(cpu_end=5.0)
        cur = self.run(cpu_end=9.0)          # operator A runs 4 s longer
        doc = explain_summaries(cur, base)
        assert validate_explanation(doc) == []
        assert doc["makespan_delta_s"] == pytest.approx(4.0)
        assert doc["causes"][0]["key"] == "cpu"
        assert doc["causes"][0]["delta_s"] == pytest.approx(4.0, abs=1.1)
        total = sum(c["delta_s"] for c in doc["causes"])
        assert total + doc["residual_s"] == \
            pytest.approx(doc["makespan_delta_s"], abs=1e-9)
        assert doc["schema"] == EXPLAIN_SCHEMA
        assert math.isfinite(doc["noise_floor_s"])
