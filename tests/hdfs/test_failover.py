"""Tests for datanode failure and replica failover."""

import pytest

from repro.common import Environment
from repro.common.errors import ConfigError
from repro.common.network import Network, NetworkConfig
from repro.hdfs import HDFS, DiskConfig

NODES = ["n0", "n1", "n2"]


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def fs(env):
    net = Network(env, NODES, NetworkConfig(latency_s=0.0))
    return HDFS(env, NODES, net, replication=2,
                disk=DiskConfig(read_bps=100e6, write_bps=100e6, seek_s=0.0))


def run(env, gen):
    return env.run(until=env.process(gen))


class TestReplicaFailover:
    def test_read_survives_one_replica_loss(self, env, fs):
        run(env, fs.write("/f", [("payload", 1000)], writer_node="n0"))
        block = fs.locate("/f")[0]
        fs.datanodes[block.replicas[0]].fail()
        payload = run(env, fs.read_block(block, at_node="n0"))
        assert payload == "payload"

    def test_read_fails_when_all_replicas_down(self, env, fs):
        run(env, fs.write("/f", [("x", 100)]))
        block = fs.locate("/f")[0]
        for node in block.replicas:
            fs.datanodes[node].fail()
        with pytest.raises(ConfigError, match="no live replica"):
            run(env, fs.read_block(block, at_node="n0"))

    def test_recovered_node_serves_again(self, env, fs):
        run(env, fs.write("/f", [("x", 100)], writer_node="n0"))
        block = fs.locate("/f")[0]
        primary = block.replicas[0]
        fs.datanodes[primary].fail()
        fs.datanodes[primary].recover()
        payload = run(env, fs.read_block(block, at_node=primary))
        assert payload == "x"

    def test_failover_costs_network_time(self, env, fs):
        run(env, fs.write("/f", [("x", 100_000_000)], writer_node="n0"))
        block = fs.locate("/f")[0]
        local = block.replicas[0]

        t0 = env.now
        run(env, fs.read_block(block, at_node=local))
        local_time = env.now - t0

        fs.datanodes[local].fail()
        t0 = env.now
        run(env, fs.read_block(block, at_node=local))
        failover_time = env.now - t0
        # The surviving replica is remote: disk + wire instead of just disk.
        assert failover_time > local_time

    def test_job_level_failover(self, env, fs):
        """A Flink job reading HDFS keeps working after a datanode dies."""
        from repro.flink import Cluster, ClusterConfig, CPUSpec, FlinkSession
        cluster = Cluster(ClusterConfig(n_workers=3, cpu=CPUSpec(cores=2)))
        cluster.load_hdfs_file("/data", [(list(range(50)), 400),
                                         (list(range(50, 100)), 400)])
        # Kill one datanode (its replicas fail over to the others).
        first = cluster.hdfs.locate("/data")[0]
        cluster.hdfs.datanodes[first.replicas[0]].fail()
        session = FlinkSession(cluster)
        result = session.read_hdfs("/data", element_nbytes=8).collect()
        assert sorted(result.value) == list(range(100))
