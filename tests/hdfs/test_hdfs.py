"""Tests for the simulated HDFS: namenode placement, datanode I/O, facade."""

import pytest

from repro.common import Environment
from repro.common.errors import ConfigError
from repro.common.network import Network, NetworkConfig
from repro.hdfs import HDFS, DataNode, DiskConfig, NameNode

NODES = ["node0", "node1", "node2"]


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return Network(env, NODES, NetworkConfig(bandwidth_bps=1e9, latency_s=0.0))


@pytest.fixture
def fs(env, net):
    return HDFS(env, NODES, net, replication=2,
                disk=DiskConfig(read_bps=100e6, write_bps=100e6, seek_s=0.0))


def run(env, gen):
    p = env.process(gen)
    return env.run(until=p)


class TestNameNode:
    def test_requires_datanodes(self):
        with pytest.raises(ConfigError):
            NameNode([])

    def test_replication_clamped_to_cluster_size(self):
        nn = NameNode(["a", "b"], replication=5)
        assert nn.replication == 2

    def test_create_duplicate_rejected(self):
        nn = NameNode(NODES)
        nn.create_file("/f")
        with pytest.raises(ConfigError):
            nn.create_file("/f")

    def test_writer_affinity_placement(self):
        nn = NameNode(NODES, replication=2)
        nn.create_file("/f")
        block = nn.allocate_block("/f", 100, None, writer_node="node2")
        assert block.replicas[0] == "node2"
        assert len(set(block.replicas)) == 2

    def test_round_robin_spreads_replicas(self):
        nn = NameNode(NODES, replication=1)
        nn.create_file("/f")
        homes = [nn.allocate_block("/f", 1, None).replicas[0]
                 for _ in range(6)]
        assert homes == ["node0", "node1", "node2"] * 2

    def test_block_ids_unique_and_ordered(self):
        nn = NameNode(NODES)
        nn.create_file("/f")
        blocks = [nn.allocate_block("/f", 1, None) for _ in range(4)]
        assert [b.block_id for b in blocks] == [0, 1, 2, 3]
        assert [b.index for b in blocks] == [0, 1, 2, 3]

    def test_file_size_is_sum_of_blocks(self):
        nn = NameNode(NODES)
        nn.create_file("/f")
        nn.allocate_block("/f", 10, None)
        nn.allocate_block("/f", 30, None)
        assert nn.get_file("/f").nbytes == 40

    def test_missing_file_raises(self):
        nn = NameNode(NODES)
        with pytest.raises(ConfigError):
            nn.get_file("/nope")


class TestDataNode:
    def test_read_charges_disk_time(self, env):
        dn = DataNode(env, "n", DiskConfig(read_bps=100e6, write_bps=50e6,
                                           seek_s=0.01))
        from repro.hdfs.blocks import Block
        block = Block(0, "/f", 0, 100_000_000, payload="data", replicas=["n"])
        run(env, dn.write_block(block))
        assert env.now == pytest.approx(0.01 + 2.0)
        start = env.now
        stored = run(env, dn.read_block(0))
        assert stored.payload == "data"
        assert env.now - start == pytest.approx(0.01 + 1.0)

    def test_read_missing_block_raises(self, env):
        dn = DataNode(env, "n")
        with pytest.raises(ConfigError):
            run(env, dn.read_block(42))

    def test_spindle_serialization(self, env):
        dn = DataNode(env, "n", DiskConfig(read_bps=100e6, seek_s=0.0,
                                           spindles=1))
        from repro.hdfs.blocks import Block
        for i in range(2):
            b = Block(i, "/f", i, 100_000_000, payload=i, replicas=["n"])
            dn._blocks[b.block_id] = b
        done = []

        def reader(bid):
            yield from dn.read_block(bid)
            done.append(env.now)

        env.process(reader(0))
        env.process(reader(1))
        env.run()
        assert done == pytest.approx([1.0, 2.0])


class TestHDFSFacade:
    def test_write_then_read_roundtrip(self, env, fs):
        chunks = [([1, 2, 3], 100), ([4, 5], 50)]
        status = run(env, fs.write("/data", chunks, writer_node="node0"))
        assert status.block_count == 2
        assert status.nbytes == 150
        payloads = run(env, fs.read_file("/data", at_node="node0"))
        assert payloads == [[1, 2, 3], [4, 5]]

    def test_replication_persists_on_all_replicas(self, env, fs):
        run(env, fs.write("/d", [("x", 10)], writer_node="node1"))
        block = fs.locate("/d")[0]
        assert len(block.replicas) == 2
        for node in block.replicas:
            assert fs.datanodes[node].has_block(block.block_id)

    def test_local_read_faster_than_remote(self, env, net):
        fs = HDFS(env, NODES, net, replication=1,
                  disk=DiskConfig(read_bps=100e6, write_bps=100e6, seek_s=0.0))
        run(env, fs.write("/d", [("payload", 100_000_000)],
                          writer_node="node0"))
        block = fs.locate("/d")[0]
        assert block.replicas == ["node0"]

        t0 = env.now
        run(env, fs.read_block(block, at_node="node0"))
        local_time = env.now - t0

        t0 = env.now
        run(env, fs.read_block(block, at_node="node2"))
        remote_time = env.now - t0
        assert remote_time > local_time
        # Remote pays disk (1s) + wire (0.1s at 1 GB/s for 100 MB).
        assert remote_time == pytest.approx(local_time + 0.1)

    def test_delete_removes_replicas(self, env, fs):
        run(env, fs.write("/d", [("x", 10)]))
        block = fs.locate("/d")[0]
        fs.delete("/d")
        assert not fs.exists("/d")
        for dn in fs.datanodes.values():
            assert not dn.has_block(block.block_id)

    def test_byte_accounting(self, env, fs):
        run(env, fs.write("/d", [("x", 1000)], writer_node="node0"))
        # replication=2 -> two replicas each write 1000 nominal bytes
        assert fs.total_bytes_written() == 2000
        run(env, fs.read_file("/d", at_node="node0"))
        assert fs.total_bytes_read() == 1000

    def test_negative_chunk_size_rejected(self, env, fs):
        with pytest.raises(ConfigError):
            run(env, fs.write("/d", [("x", -5)]))
