"""Tests for namenode re-replication after datanode loss."""

import pytest

from repro.common import Environment
from repro.common.network import Network, NetworkConfig
from repro.hdfs import HDFS, DiskConfig

NODES = ["n0", "n1", "n2", "n3"]


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def fs(env):
    net = Network(env, NODES, NetworkConfig(latency_s=0.0))
    return HDFS(env, NODES, net, replication=2,
                disk=DiskConfig(read_bps=100e6, write_bps=100e6, seek_s=0.0))


def run(env, gen):
    return env.run(until=env.process(gen))


class TestRepair:
    def test_repair_restores_replication_factor(self, env, fs):
        run(env, fs.write("/f", [("a", 1000), ("b", 1000), ("c", 1000)],
                          writer_node="n0"))
        victim = fs.locate("/f")[0].replicas[0]
        fs.datanodes[victim].fail()
        affected = sum(1 for b in fs.locate("/f") if victim in b.replicas)
        repaired = run(env, fs.repair(victim))
        assert repaired == affected
        for block in fs.locate("/f"):
            assert victim not in block.replicas
            assert len(block.replicas) == 2
            for node in block.replicas:
                assert fs.datanodes[node].alive
                assert fs.datanodes[node].has_block(block.block_id)

    def test_repair_costs_time_and_io(self, env, fs):
        run(env, fs.write("/f", [("x", 100_000_000)], writer_node="n0"))
        victim = fs.locate("/f")[0].replicas[0]
        fs.datanodes[victim].fail()
        t0, read0 = env.now, fs.total_bytes_read()
        run(env, fs.repair(victim))
        assert env.now - t0 >= 100_000_000 / 100e6  # at least one disk read
        assert fs.total_bytes_read() - read0 == 100_000_000

    def test_repair_skips_unaffected_blocks(self, env, fs):
        run(env, fs.write("/f", [("x", 100)], writer_node="n0"))
        block = fs.locate("/f")[0]
        outsider = next(n for n in NODES if n not in block.replicas)
        fs.datanodes[outsider].fail()
        assert run(env, fs.repair(outsider)) == 0

    def test_unrecoverable_block_left_alone(self, env):
        net = Network(env, NODES[:2], NetworkConfig(latency_s=0.0))
        fs = HDFS(env, NODES[:2], net, replication=2,
                  disk=DiskConfig(seek_s=0.0))
        run(env, fs.write("/f", [("x", 100)]))
        block = fs.locate("/f")[0]
        for node in block.replicas:
            fs.datanodes[node].fail()
        # Both replicas gone: nothing to copy from.
        assert run(env, fs.repair(block.replicas[0])) == 0

    def test_reads_work_after_repair_even_without_original(self, env, fs):
        run(env, fs.write("/f", [("payload", 1000)], writer_node="n0"))
        block = fs.locate("/f")[0]
        first, second = block.replicas
        fs.datanodes[first].fail()
        run(env, fs.repair(first))
        # Now the OTHER original replica dies too; the repaired copy serves.
        fs.datanodes[second].fail()
        payload = run(env, fs.read_block(block, at_node="n0"))
        assert payload == "payload"
