"""Tests for unit formatting helpers and deterministic RNG derivation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common import units
from repro.common.rng import derive_seed, generator


class TestUnits:
    def test_size_constants(self):
        assert units.KiB == 1024
        assert units.MiB == 1024 ** 2
        assert units.GiB == 1024 ** 3
        assert units.GB == 10 ** 9

    def test_bytes_h(self):
        assert units.bytes_h(512) == "512 B"
        assert units.bytes_h(2048) == "2.00 KiB"
        assert units.bytes_h(3 * units.MiB) == "3.00 MiB"
        assert units.bytes_h(1.5 * units.GiB) == "1.50 GiB"

    def test_seconds_h(self):
        assert units.seconds_h(90.0) == "1m30.00s"
        assert units.seconds_h(2.5) == "2.500 s"
        assert units.seconds_h(0.0042) == "4.200 ms"
        assert units.seconds_h(3e-6) == "3.0 us"

    def test_rate_h_matches_paper_style(self):
        assert units.rate_h(776.398 * units.MB) == "776.398 MB/s"


class TestRng:
    def test_same_path_same_seed(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_different_path_different_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_root_different_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_generator_streams_reproducible(self):
        g1 = generator(7, "worker", "0")
        g2 = generator(7, "worker", "0")
        assert np.array_equal(g1.random(16), g2.random(16))

    def test_generator_streams_independent(self):
        g1 = generator(7, "worker", "0")
        g2 = generator(7, "worker", "1")
        assert not np.array_equal(g1.random(16), g2.random(16))

    @given(st.integers(min_value=0, max_value=2**31),
           st.text(min_size=0, max_size=20))
    def test_seed_in_numpy_range(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2 ** 63
        np.random.default_rng(seed)  # must not raise
