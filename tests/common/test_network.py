"""Tests for the cluster network model."""

import pytest

from repro.common import Environment
from repro.common.errors import ConfigError
from repro.common.network import Network, NetworkConfig


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return Network(env, ["a", "b", "c"],
                   NetworkConfig(bandwidth_bps=1e9, latency_s=1e-4,
                                 loopback_bps=8e9))


def run_transfer(env, net, src, dst, nbytes):
    p = env.process(net.transfer(src, dst, nbytes))
    env.run(until=p)
    return env.now


class TestNetwork:
    def test_transfer_time_is_latency_plus_wire(self, env, net):
        t = run_transfer(env, net, "a", "b", 1_000_000_000)
        assert t == pytest.approx(1.0 + 1e-4)

    def test_loopback_is_memcpy_speed(self, env, net):
        t = run_transfer(env, net, "a", "a", 8_000_000_000)
        assert t == pytest.approx(1.0)

    def test_unknown_node_rejected(self, env, net):
        with pytest.raises(ConfigError):
            env.run(until=env.process(net.transfer("a", "zz", 10)))

    def test_negative_bytes_rejected(self, env, net):
        with pytest.raises(ValueError):
            env.run(until=env.process(net.transfer("a", "b", -1)))

    def test_duplicate_node_names_rejected(self, env):
        with pytest.raises(ConfigError):
            Network(env, ["x", "x"])

    def test_same_egress_serializes(self, env, net):
        done = []

        def send(dst):
            yield from net.transfer("a", dst, 1_000_000_000)
            done.append((dst, env.now))

        env.process(send("b"))
        env.process(send("c"))
        env.run()
        # Both leave node a's single egress port: second waits for first.
        times = sorted(t for _, t in done)
        assert times[0] == pytest.approx(1.0001)
        assert times[1] == pytest.approx(2.0002)

    def test_disjoint_pairs_run_in_parallel(self, env, net):
        done = []

        def send(src, dst):
            yield from net.transfer(src, dst, 1_000_000_000)
            done.append(env.now)

        env.process(send("a", "b"))
        env.process(send("c", "a"))  # different egress, different ingress
        env.run()
        assert done == pytest.approx([1.0001, 1.0001])

    def test_byte_accounting(self, env, net):
        run_transfer(env, net, "a", "b", 12345)
        assert net.bytes_sent("a") == 12345
        assert net.bytes_received("b") == 12345
        assert net.bytes_sent("b") == 0

    def test_loopback_not_counted_on_nic(self, env, net):
        run_transfer(env, net, "a", "a", 999)
        assert net.bytes_sent("a") == 0

    def test_add_node(self, env, net):
        net.add_node("d")
        t = run_transfer(env, net, "a", "d", 1_000_000_000)
        assert t == pytest.approx(1.0001)
        with pytest.raises(ConfigError):
            net.add_node("d")
