"""Unit tests for Resource / PriorityResource / Store / FilterStore."""

import pytest

from repro.common import Environment, Resource, PriorityResource, Store, FilterStore
from repro.common.errors import ResourceError


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ResourceError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity_immediately(self, env):
        res = Resource(env, capacity=2)
        grants = []

        def user(i):
            with res.request() as req:
                yield req
                grants.append((i, env.now))
                yield env.timeout(10.0)

        for i in range(3):
            env.process(user(i))
        env.run(until=0.5)
        assert [g[0] for g in grants] == [0, 1]
        assert res.count == 2
        assert res.queue_length == 1

    def test_release_grants_next_fifo(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(i, hold):
            with res.request() as req:
                yield req
                order.append((i, env.now))
                yield env.timeout(hold)

        env.process(user(0, 2.0))
        env.process(user(1, 1.0))
        env.process(user(2, 1.0))
        env.run()
        assert order == [(0, 0.0), (1, 2.0), (2, 3.0)]

    def test_context_manager_releases_on_exception(self, env):
        res = Resource(env, capacity=1)

        def failing_user():
            with res.request() as req:
                yield req
                raise RuntimeError("dies holding the resource")

        def second_user():
            with res.request() as req:
                yield req
                return env.now

        def supervisor():
            try:
                yield env.process(failing_user())
            except RuntimeError:
                pass
            result = yield env.process(second_user())
            return result

        p = env.process(supervisor())
        assert env.run(until=p) == 0.0

    def test_double_release_is_idempotent(self, env):
        res = Resource(env, capacity=1)

        def user():
            req = res.request()
            yield req
            res.release(req)
            res.release(req)

        env.process(user())
        env.run()
        assert res.count == 0

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10.0)

        def impatient():
            req = res.request()
            yield env.timeout(1.0)
            req.cancel()
            res.release(req)  # release of an unmet request == cancel

        env.process(holder())
        env.process(impatient())
        env.run()
        assert res.queue_length == 0

    def test_utilization_counts(self, env):
        res = Resource(env, capacity=4)
        reqs = [res.request() for _ in range(3)]
        env.run()
        assert res.count == 3
        for r in reqs:
            res.release(r)
        assert res.count == 0


class TestPriorityResource:
    def test_lower_priority_value_served_first(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(5.0)

        def user(name, prio, arrive):
            yield env.timeout(arrive)
            with res.request(priority=prio) as req:
                yield req
                order.append(name)

        env.process(holder())
        env.process(user("low", 10, 1.0))
        env.process(user("high", 0, 2.0))
        env.run()
        assert order == ["high", "low"]

    def test_fifo_within_priority(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(5.0)

        def user(name, arrive):
            yield env.timeout(arrive)
            with res.request(priority=1) as req:
                yield req
                order.append(name)

        env.process(holder())
        env.process(user("first", 1.0))
        env.process(user("second", 2.0))
        env.run()
        assert order == ["first", "second"]


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        results = []

        def producer():
            yield store.put("item")

        def consumer():
            item = yield store.get()
            results.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert results == ["item"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        results = []

        def consumer():
            item = yield store.get()
            results.append((item, env.now))

        def late_producer():
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer())
        env.process(late_producer())
        env.run()
        assert results == [("late", 3.0)]

    def test_fifo_order(self, env):
        store = Store(env)
        out = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                out.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert out == [0, 1, 2]

    def test_bounded_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def slow_consumer():
            yield env.timeout(5.0)
            item = yield store.get()
            log.append((f"got-{item}", env.now))

        env.process(producer())
        env.process(slow_consumer())
        env.run()
        assert ("put-a", 0.0) in log
        assert ("put-b", 5.0) in log

    def test_invalid_capacity(self, env):
        with pytest.raises(ResourceError):
            Store(env, capacity=0)

    def test_len(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2


class TestFilterStore:
    def test_filtered_get_takes_matching_item(self, env):
        store = FilterStore(env)
        out = []

        def producer():
            for item in ("apple", "banana", "cherry"):
                yield store.put(item)

        def consumer():
            item = yield store.get(lambda s: s.startswith("b"))
            out.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert out == ["banana"]
        assert store.items == ["apple", "cherry"]

    def test_filtered_get_waits_for_match(self, env):
        store = FilterStore(env)
        out = []

        def consumer():
            item = yield store.get(lambda x: x > 10)
            out.append((item, env.now))

        def producer():
            yield store.put(1)
            yield env.timeout(2.0)
            yield store.put(99)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert out == [(99, 2.0)]
        assert store.items == [1]

    def test_unfiltered_get_acts_fifo(self, env):
        store = FilterStore(env)
        out = []

        def run():
            yield store.put("x")
            yield store.put("y")
            out.append((yield store.get()))

        env.process(run())
        env.run()
        assert out == ["x"]

    def test_multiple_getters_matched_independently(self, env):
        store = FilterStore(env)
        out = {}

        def consumer(name, pred):
            item = yield store.get(pred)
            out[name] = item

        env.process(consumer("evens", lambda x: x % 2 == 0))
        env.process(consumer("odds", lambda x: x % 2 == 1))

        def producer():
            yield store.put(3)
            yield store.put(4)

        env.process(producer())
        env.run()
        assert out == {"evens": 4, "odds": 3}
