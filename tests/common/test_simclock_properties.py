"""Property tests for the discrete-event kernel's ordering guarantees."""

from hypothesis import given, settings, strategies as st

from repro.common import Environment


class TestEventOrderingProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_timeouts_fire_in_nondecreasing_time(self, delays):
        env = Environment()
        fired = []

        def waiter(delay, idx):
            yield env.timeout(delay)
            fired.append((env.now, idx))

        for i, d in enumerate(delays):
            env.process(waiter(d, i))
        env.run()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)

    @given(st.integers(min_value=2, max_value=25))
    @settings(max_examples=30, deadline=None)
    def test_fifo_among_equal_times(self, n):
        env = Environment()
        fired = []

        def waiter(idx):
            yield env.timeout(1.0)
            fired.append(idx)

        for i in range(n):
            env.process(waiter(i))
        env.run()
        assert fired == list(range(n))

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_clock_never_goes_backward(self, delays):
        env = Environment()
        observations = []

        def chain():
            for d in delays:
                before = env.now
                yield env.timeout(d)
                observations.append((before, env.now))

        env.process(chain())
        env.run()
        for before, after in observations:
            assert after >= before

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_resource_conserves_grants(self, n_users, capacity):
        from repro.common import Resource
        env = Environment()
        res = Resource(env, capacity=capacity)
        served = []
        concurrency = {"now": 0, "max": 0}

        def user(i):
            with res.request() as req:
                yield req
                concurrency["now"] += 1
                concurrency["max"] = max(concurrency["max"],
                                         concurrency["now"])
                yield env.timeout(1.0)
                concurrency["now"] -= 1
                served.append(i)

        for i in range(n_users):
            env.process(user(i))
        env.run()
        assert sorted(served) == list(range(n_users))
        assert concurrency["max"] <= capacity
        assert res.count == 0 and res.queue_length == 0
