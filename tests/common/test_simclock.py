"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.common import Environment, AllOf, AnyOf
from repro.common.errors import InterruptError, SimulationError
from repro.common.simclock import ConditionValue


@pytest.fixture
def env():
    return Environment()


class TestClockBasics:
    def test_time_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=12.5).now == 12.5

    def test_timeout_advances_clock(self, env):
        env.timeout(3.0)
        env.run()
        assert env.now == 3.0

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_run_until_time_stops_exactly(self, env):
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_time_rejected(self, env):
        env.timeout(5.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestProcesses:
    def test_process_returns_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return 42

        p = env.process(proc())
        assert env.run(until=p) == 42
        assert env.now == 1.0

    def test_timeout_value_passed_to_process(self, env):
        seen = []

        def proc():
            value = yield env.timeout(2.0, value="payload")
            seen.append(value)

        env.process(proc())
        env.run()
        assert seen == ["payload"]

    def test_sequential_timeouts_accumulate(self, env):
        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.5)
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == 3.5

    def test_processes_interleave(self, env):
        trace = []

        def worker(name, delay):
            yield env.timeout(delay)
            trace.append((name, env.now))

        env.process(worker("slow", 2.0))
        env.process(worker("fast", 1.0))
        env.run()
        assert trace == [("fast", 1.0), ("slow", 2.0)]

    def test_same_time_events_fifo(self, env):
        trace = []

        def worker(name):
            yield env.timeout(1.0)
            trace.append(name)

        for name in "abc":
            env.process(worker(name))
        env.run()
        assert trace == ["a", "b", "c"]

    def test_process_waits_on_process(self, env):
        def inner():
            yield env.timeout(3.0)
            return "inner-result"

        def outer():
            result = yield env.process(inner())
            return result

        p = env.process(outer())
        assert env.run(until=p) == "inner-result"

    def test_exception_propagates_to_waiter(self, env):
        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        def waiter():
            try:
                yield env.process(failing())
            except RuntimeError as exc:
                return f"caught {exc}"

        p = env.process(waiter())
        assert env.run(until=p) == "caught boom"

    def test_unhandled_failure_surfaces_from_run(self, env):
        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("nobody catches this")

        env.process(failing())
        with pytest.raises(RuntimeError, match="nobody catches"):
            env.run()

    def test_run_until_failed_process_raises(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("direct")

        p = env.process(failing())
        with pytest.raises(ValueError, match="direct"):
            env.run(until=p)

    def test_yield_non_event_fails_process(self, env):
        def bad():
            yield "not an event"

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_run_until_never_fires_deadlock(self, env):
        never = env.event()

        def waiter():
            yield never

        p = env.process(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=p)

    def test_run_until_already_processed_event(self, env):
        def quick():
            yield env.timeout(1.0)
            return "done"

        p = env.process(quick())
        env.run()
        assert env.run(until=p) == "done"


class TestEvents:
    def test_manual_succeed_wakes_waiters(self, env):
        signal = env.event()
        seen = []

        def waiter():
            value = yield signal
            seen.append((env.now, value))

        def trigger():
            yield env.timeout(5.0)
            signal.succeed("go")

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert seen == [(5.0, "go")]

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_multiple_waiters_all_woken(self, env):
        signal = env.event()
        woken = []

        def waiter(i):
            yield signal
            woken.append(i)

        for i in range(4):
            env.process(waiter(i))
        signal.succeed()
        env.run()
        assert woken == [0, 1, 2, 3]


class TestConditions:
    def test_all_of_waits_for_slowest(self, env):
        def proc():
            result = yield AllOf(env, [env.timeout(1.0, "a"),
                                       env.timeout(3.0, "b")])
            return (env.now, result.values())

        p = env.process(proc())
        when, values = env.run(until=p)
        assert when == 3.0
        assert values == ["a", "b"]

    def test_any_of_fires_on_fastest(self, env):
        def proc():
            result = yield AnyOf(env, [env.timeout(1.0, "fast"),
                                       env.timeout(3.0, "slow")])
            return (env.now, result.values())

        p = env.process(proc())
        when, values = env.run(until=p)
        assert when == 1.0
        assert values == ["fast"]

    def test_empty_all_of_fires_immediately(self, env):
        def proc():
            result = yield env.all_of([])
            return len(result)

        p = env.process(proc())
        assert env.run(until=p) == 0

    def test_all_of_fails_fast(self, env):
        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("sub-failure")

        def proc():
            try:
                yield env.all_of([env.process(failing()),
                                  env.timeout(10.0)])
            except RuntimeError:
                return env.now

        p = env.process(proc())
        assert env.run(until=p) == 1.0

    def test_condition_value_mapping(self, env):
        t1 = env.timeout(1.0, "x")
        cv = ConditionValue([t1])
        env.run()
        assert cv[t1] == "x"
        assert t1 in cv
        with pytest.raises(KeyError):
            _ = cv[env.event()]


class TestInterrupts:
    def test_interrupt_wakes_sleeping_process(self, env):
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except InterruptError as exc:
                log.append((env.now, exc.cause))

        def interrupter(victim):
            yield env.timeout(2.0)
            victim.interrupt(cause="preempted")

        victim = env.process(sleeper())
        env.process(interrupter(victim))
        env.run()
        assert log == [(2.0, "preempted")]

    def test_interrupt_finished_process_is_noop(self, env):
        def quick():
            yield env.timeout(1.0)

        def late_interrupter(victim):
            yield env.timeout(5.0)
            if victim.is_alive:
                victim.interrupt()
            return "ok"

        victim = env.process(quick())
        p = env.process(late_interrupter(victim))
        assert env.run(until=p) == "ok"

    def test_self_interrupt_rejected(self, env):
        def proc():
            with pytest.raises(SimulationError):
                env.active_process.interrupt()
            yield env.timeout(0)

        env.process(proc())
        env.run()

    def test_interrupted_process_can_continue(self, env):
        def resilient():
            try:
                yield env.timeout(100.0)
            except InterruptError:
                pass
            yield env.timeout(1.0)
            return env.now

        def interrupter(victim):
            yield env.timeout(2.0)
            victim.interrupt()

        victim = env.process(resilient())
        env.process(interrupter(victim))
        assert env.run(until=victim) == 3.0


class TestActiveProcess:
    def test_active_process_visible_inside(self, env):
        captured = []

        def proc():
            captured.append(env.active_process)
            yield env.timeout(0)

        p = env.process(proc())
        env.run()
        assert captured == [p]

    def test_active_process_none_outside(self, env):
        env.run()
        assert env.active_process is None
