"""Vectorized (columnar) execution is a pure charge-model change.

The ``vectorized=True`` workload flag switches the CPU operators to block
UDFs and the exchanges to the columnar zero-copy wire format.  Results must
be *bit-identical* to the element path in every mode — the flag may only
move simulated time, never values.
"""

import numpy as np
import pytest

from repro.core import GFlinkSession
from repro.workloads import (
    KMeansWorkload,
    PageRankWorkload,
    WordCountWorkload,
)
from tests.workloads.conftest import small_cluster


def run_flagged(factory, mode, vectorized):
    cluster = small_cluster()
    wl = factory(vectorized)
    result = wl.run(GFlinkSession(cluster), mode)
    return cluster, wl, result


def wordcount_output(cluster, wl):
    merged = {}
    for block in cluster.hdfs.locate(wl.output_path):
        for row in block.payload:
            merged[int(row[0])] = merged.get(int(row[0]), 0) + int(row[1])
    return merged


class TestWordCountIdentity:
    @pytest.mark.parametrize("mode", ["cpu", "gpu"])
    def test_counts_bit_identical(self, mode):
        factory = lambda vec: WordCountWorkload(
            nominal_elements=1e8, real_elements=5000, vectorized=vec)
        outs = {}
        for vec in (False, True):
            cluster, wl, result = run_flagged(factory, mode, vec)
            outs[vec] = wordcount_output(cluster, wl)
            if vec:
                zero_copy = sum(m.shuffle_zero_copy_bytes
                                for m in result.job_metrics)
                assert zero_copy > 0  # the columnar path actually engaged
        assert outs[True] == outs[False]

    def test_vectorized_cuts_makespan(self):
        factory = lambda vec: WordCountWorkload(
            nominal_elements=1e8, real_elements=5000, vectorized=vec)
        _, _, element = run_flagged(factory, "cpu", False)
        _, _, block = run_flagged(factory, "cpu", True)
        assert block.total_seconds < element.total_seconds


class TestKMeansIdentity:
    @pytest.mark.parametrize("mode", ["cpu", "gpu"])
    def test_centers_bit_identical(self, mode):
        factory = lambda vec: KMeansWorkload(
            nominal_elements=1e6, real_elements=3000, iterations=4,
            vectorized=vec)
        centers = {}
        for vec in (False, True):
            _, _, result = run_flagged(factory, mode, vec)
            centers[vec] = np.asarray(result.value, dtype=np.float64)
        assert np.array_equal(centers[True], centers[False])


class TestPageRankIdentity:
    @pytest.mark.parametrize("mode", ["cpu", "gpu"])
    def test_ranks_bit_identical(self, mode):
        factory = lambda vec: PageRankWorkload(
            nominal_pages=1e5, real_pages=400, iterations=3, vectorized=vec)
        ranks = {}
        for vec in (False, True):
            _, _, result = run_flagged(factory, mode, vec)
            ranks[vec] = np.asarray(result.value, dtype=np.float64)
        assert np.array_equal(ranks[True], ranks[False])
