"""Shared fixtures: a small CPU-GPU cluster for workload tests."""

import pytest

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec


def small_cluster(n_workers=2, cores=2, gpus=("c2050",)):
    return GFlinkCluster(ClusterConfig(
        n_workers=n_workers, cpu=CPUSpec(cores=cores),
        gpus_per_worker=tuple(gpus)))


def run_both(workload_factory):
    """Run a workload in both modes on fresh clusters; return results."""
    results = {}
    for mode in ("cpu", "gpu"):
        cluster = small_cluster()
        session = GFlinkSession(cluster)
        results[mode] = workload_factory().run(session, mode)
    return results


@pytest.fixture
def cluster():
    return small_cluster()


@pytest.fixture
def session(cluster):
    return GFlinkSession(cluster)
