"""Tests for concurrent multi-application execution (run_concurrent)."""

import numpy as np
import pytest

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.workloads import (
    KMeansWorkload,
    PointAddWorkload,
    SpMVWorkload,
    run_concurrent,
)


def small_config():
    return ClusterConfig(n_workers=2, cpu=CPUSpec(cores=2),
                         gpus_per_worker=("c2050",))


class TestRunConcurrent:
    def test_two_apps_complete_with_correct_results(self):
        cluster = GFlinkCluster(small_config())
        apps = [
            (SpMVWorkload(nominal_elements=3000, real_elements=3000,
                          iterations=3), "gpu"),
            (KMeansWorkload(nominal_elements=4000, real_elements=4000,
                            iterations=3), "gpu"),
        ]
        results = run_concurrent(cluster, apps)
        assert len(results) == 2
        assert results[0].name == "spmv"
        assert results[1].name == "kmeans"
        # Same results as exclusive execution.
        solo = SpMVWorkload(nominal_elements=3000, real_elements=3000,
                            iterations=3).run(
            GFlinkSession(GFlinkCluster(small_config())), "gpu")
        assert np.allclose(np.asarray(results[0].value, float),
                           np.asarray(solo.value, float), atol=1e-6)

    def test_mixed_cpu_gpu_apps(self):
        cluster = GFlinkCluster(small_config())
        apps = [
            (PointAddWorkload(nominal_elements=2000, real_elements=2000,
                              iterations=2), "cpu"),
            (PointAddWorkload(nominal_elements=2000, real_elements=2000,
                              iterations=2, path="/pointadd/b",
                              seed=7), "gpu"),
        ]
        results = run_concurrent(cluster, apps)
        assert all(r.iterations == 2 for r in results)

    def test_concurrency_slower_than_exclusive(self):
        def exclusive_time():
            cluster = GFlinkCluster(small_config())
            wl = SpMVWorkload(nominal_elements=20e6, real_elements=4000,
                              iterations=3)
            return wl.run(GFlinkSession(cluster), "gpu").total_seconds

        solo = exclusive_time()
        cluster = GFlinkCluster(small_config())
        apps = [(SpMVWorkload(nominal_elements=20e6, real_elements=4000,
                              iterations=3), "gpu"),
                (KMeansWorkload(nominal_elements=20e6, real_elements=4000,
                                iterations=3), "gpu")]
        results = run_concurrent(cluster, apps)
        spmv_concurrent = results[0].total_seconds
        assert spmv_concurrent > solo

    def test_history_isolated_per_session(self):
        cluster = GFlinkCluster(small_config())
        apps = [(PointAddWorkload(nominal_elements=1000, real_elements=1000,
                                  iterations=2), "gpu"),
                (SpMVWorkload(nominal_elements=1000, real_elements=1000,
                              iterations=2), "gpu")]
        results = run_concurrent(cluster, apps)
        names0 = {m.job_name for m in results[0].job_metrics}
        names1 = {m.job_name for m in results[1].job_metrics}
        assert all(n.startswith(("pointadd", "write")) for n in names0)
        assert all(n.startswith(("spmv", "write")) for n in names1)

    def test_gpu_cache_regions_isolated_per_app(self):
        cluster = GFlinkCluster(small_config())
        apps = [(SpMVWorkload(nominal_elements=3000, real_elements=3000,
                              iterations=2), "gpu"),
                (SpMVWorkload(nominal_elements=3000, real_elements=3000,
                              iterations=2, path="/spmv/other",
                              seed=11), "gpu")]
        run_concurrent(cluster, apps)
        for gm in cluster.gpu_managers():
            apps_with_regions = set(gm.gmm.apps())
            # Each app cached under its own app id.
            assert len(apps_with_regions) >= 1
            for app in apps_with_regions:
                assert app.startswith("app-")
