"""Correctness tests: every workload computes the right answer in both modes."""

import numpy as np
import pytest

from repro.workloads import (
    ConnectedComponentsWorkload,
    KMeansWorkload,
    LinearRegressionWorkload,
    PageRankWorkload,
    PointAddWorkload,
    SpMVWorkload,
    WordCountWorkload,
    table1_sizes,
)
from repro.workloads.pagerank import DAMPING
from tests.workloads.conftest import run_both


class TestGenerators:
    def test_table1_catalog_complete(self):
        for name in ("kmeans", "pagerank", "wordcount",
                     "connected_components", "linear_regression", "spmv"):
            sizes = table1_sizes(name)
            assert len(sizes) == 5
            nominals = [s.nominal_elements for s in sizes]
            assert nominals == sorted(nominals)

    def test_kmeans_table1_matches_paper(self):
        labels = [s.label for s in table1_sizes("kmeans")]
        assert labels == ["150M points", "180M points", "210M points",
                          "240M points", "270M points"]

    def test_unknown_benchmark(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            table1_sizes("sorting")


class TestKMeans:
    def test_cpu_gpu_equivalent_centers(self):
        results = run_both(lambda: KMeansWorkload(
            nominal_elements=1e6, real_elements=4000, iterations=6))
        cpu = np.sort(np.asarray(results["cpu"].value, float), axis=0)
        gpu = np.sort(np.asarray(results["gpu"].value, float), axis=0)
        assert np.allclose(cpu, gpu, atol=1e-3)

    def test_recovers_true_centers(self):
        results = run_both(lambda: KMeansWorkload(
            nominal_elements=1e6, real_elements=6000, iterations=8))
        wl = KMeansWorkload(nominal_elements=1e6, real_elements=6000)
        found = np.asarray(results["cpu"].value, float)
        # Every true center has a found center nearby.
        for true in wl.true_centers:
            d = np.linalg.norm(found - true, axis=1).min()
            assert d < 1.5

    def test_iteration_profile_first_and_last_slow(self):
        results = run_both(lambda: KMeansWorkload(
            nominal_elements=50e6, real_elements=4000, iterations=6))
        for mode in ("cpu", "gpu"):
            times = results[mode].iteration_seconds
            mids = times[1:-1]
            assert times[0] > max(mids)   # HDFS read in iteration 1
            assert times[-1] > max(mids)  # HDFS write in the last iteration

    def test_output_written_to_hdfs(self, session):
        wl = KMeansWorkload(nominal_elements=1e5, real_elements=2000,
                            iterations=2)
        wl.run(session, "cpu")
        assert session.cluster.hdfs.exists(wl.output_path)


class TestLinearRegression:
    def test_cpu_gpu_equivalent_weights(self):
        results = run_both(lambda: LinearRegressionWorkload(
            nominal_elements=1e6, real_elements=4000, iterations=5,
            learning_rate=0.1))
        assert np.allclose(results["cpu"].value, results["gpu"].value,
                           atol=1e-6)

    def test_gradient_descent_reduces_error(self):
        wl = LinearRegressionWorkload(nominal_elements=1e6,
                                      real_elements=4000, iterations=12,
                                      learning_rate=0.1)
        results = run_both(lambda: LinearRegressionWorkload(
            nominal_elements=1e6, real_elements=4000, iterations=12,
            learning_rate=0.1))
        err = np.linalg.norm(np.asarray(results["cpu"].value)
                             - wl.true_weights)
        assert err < np.linalg.norm(wl.true_weights)  # moved toward truth


class TestSpMV:
    def test_matches_dense_power_iteration(self):
        from tests.workloads.conftest import small_cluster
        from repro.core import GFlinkSession
        cluster = small_cluster()
        wl = SpMVWorkload(nominal_elements=2000, real_elements=2000,
                          iterations=4)
        result = wl.run(GFlinkSession(cluster), "cpu")
        results = {"cpu": result}
        # Rebuild the dense matrix from the blocks actually written to HDFS
        # (the generator's stream depends on the chunk count).
        rows = np.concatenate(
            [b.payload for b in cluster.hdfs.locate(wl.path)])
        n = len(rows)
        dense = np.zeros((n, n))
        for i, row in enumerate(rows):
            for c, v in zip(row["cols"], row["vals"]):
                dense[i, c] += v
        x = np.full(n, 1.0 / n)
        for _ in range(4):
            y = dense @ x
            x = y / max(np.linalg.norm(y), 1e-30)
        got = np.asarray(results["cpu"].value, float)
        assert np.allclose(got, x, atol=1e-4)

    def test_cpu_gpu_equivalent(self):
        results = run_both(lambda: SpMVWorkload(
            nominal_elements=4000, real_elements=4000, iterations=3))
        assert np.allclose(np.asarray(results["cpu"].value, float),
                           np.asarray(results["gpu"].value, float),
                           atol=1e-5)

    def test_gpu_cache_accelerates_iterations(self):
        results = run_both(lambda: SpMVWorkload(
            nominal_elements=50e6, real_elements=8000, iterations=5))
        times = results["gpu"].iteration_seconds
        assert times[1] < times[0]  # matrix cached after iteration 1
        assert times[2] == pytest.approx(times[1], rel=0.05)


class TestPageRank:
    def test_ranks_form_distribution(self):
        results = run_both(lambda: PageRankWorkload(
            nominal_pages=1e5, real_pages=500, iterations=5))
        ranks = np.asarray(results["cpu"].value, float)
        assert abs(ranks.sum() - 1.0) < 0.2  # damping + dangling tolerance
        assert (ranks >= (1 - DAMPING) / len(ranks) - 1e-12).all()

    def test_cpu_gpu_equivalent(self):
        results = run_both(lambda: PageRankWorkload(
            nominal_pages=1e5, real_pages=500, iterations=4))
        assert np.allclose(np.asarray(results["cpu"].value, float),
                           np.asarray(results["gpu"].value, float),
                           atol=1e-8)

    def test_popular_pages_rank_higher(self):
        results = run_both(lambda: PageRankWorkload(
            nominal_pages=1e5, real_pages=500, iterations=6))
        ranks = np.asarray(results["cpu"].value, float)
        # The generator's Zipf targets make low ids popular.
        assert ranks[:10].mean() > ranks[250:].mean()


class TestConnectedComponents:
    def test_cpu_gpu_equivalent(self):
        results = run_both(lambda: ConnectedComponentsWorkload(
            nominal_pages=1e5, real_pages=400, iterations=8))
        assert np.array_equal(np.asarray(results["cpu"].value),
                              np.asarray(results["gpu"].value))

    def test_labels_never_increase_and_converge(self):
        from tests.workloads.conftest import small_cluster
        from repro.core import GFlinkSession
        wl = ConnectedComponentsWorkload(nominal_pages=1e5, real_pages=300,
                                         iterations=15)
        result = wl.run(GFlinkSession(small_cluster()), "cpu")
        labels = np.asarray(result.value)
        assert (labels <= np.arange(len(labels))).all()
        assert wl.converged_at is not None

    def test_labels_respect_edges(self):
        from tests.workloads.conftest import small_cluster
        from repro.core import GFlinkSession
        cluster = small_cluster()
        wl = ConnectedComponentsWorkload(nominal_pages=1e5, real_pages=300,
                                         iterations=20)
        result = wl.run(GFlinkSession(cluster), "cpu")
        labels = np.asarray(result.value)
        for block in cluster.hdfs.locate(wl.path):
            edges = block.payload
            assert (labels[edges["src"]] == labels[edges["dst"]]).all()


class TestWordCount:
    def test_counts_exact_in_both_modes(self):
        from tests.workloads.conftest import small_cluster
        from repro.core import GFlinkSession
        counts = {}
        truth = None
        for mode in ("cpu", "gpu"):
            cluster = small_cluster()
            wl = WordCountWorkload(nominal_elements=1e4, real_elements=5000)
            session = GFlinkSession(cluster)
            wl.run(session, mode)
            written = cluster.hdfs.locate(wl.output_path)
            merged = {}
            for block in written:
                for word, count in block.payload:
                    merged[word] = merged.get(word, 0) + count
            counts[mode] = merged
            if truth is None:
                raw = np.concatenate(
                    [b.payload for b in cluster.hdfs.locate(wl.path)])
                ids, c = np.unique(raw, return_counts=True)
                truth = dict(zip(ids.tolist(), c.tolist()))
        assert counts["cpu"] == truth
        assert counts["gpu"] == truth


class TestPointAdd:
    def test_iterated_addition(self):
        results = run_both(lambda: PointAddWorkload(
            nominal_elements=1e5, real_elements=2000, iterations=3))
        for mode in ("cpu", "gpu"):
            out = results[mode].value
            assert out  # materialized count is positive
        # Verify arithmetic directly on the written output.
        from tests.workloads.conftest import small_cluster
        from repro.core import GFlinkSession
        cluster = small_cluster()
        wl = PointAddWorkload(nominal_elements=1e5, real_elements=2000,
                              iterations=3)
        wl.run(GFlinkSession(cluster), "gpu")
        inputs = np.concatenate(
            [b.payload for b in cluster.hdfs.locate(wl.path)])
        outputs = np.concatenate(
            [np.asarray(b.payload) for b in cluster.hdfs.locate(wl.output_path)])
        expect_ax = np.sort(inputs["ax"] + 3 * inputs["bx"])
        assert np.allclose(np.sort(outputs["ax"]), expect_ax, atol=1e-4)


class TestWorkloadFramework:
    def test_invalid_mode_rejected(self, session):
        from repro.common.errors import ConfigError
        wl = KMeansWorkload(nominal_elements=1e5, real_elements=1000,
                            iterations=1)
        with pytest.raises(ConfigError):
            wl.run(session, "tpu")

    def test_prepare_idempotent(self, cluster, session):
        wl = KMeansWorkload(nominal_elements=1e5, real_elements=1000,
                            iterations=1)
        wl.prepare(cluster)
        wl.prepare(cluster)  # no "file exists" error
        assert cluster.hdfs.exists(wl.path)

    def test_tiny_nominal_clamped_to_real(self):
        wl = KMeansWorkload(nominal_elements=10, real_elements=1000)
        assert wl.scale == 1.0
