"""Shared fixtures for Flink substrate tests: a small, fast cluster."""

import pytest

from repro.flink import Cluster, ClusterConfig, CPUSpec, FlinkConfig, FlinkSession


def make_cluster(n_workers=2, cores=2, **flink_overrides):
    flink = FlinkConfig(**flink_overrides) if flink_overrides else FlinkConfig()
    config = ClusterConfig(n_workers=n_workers,
                           cpu=CPUSpec(cores=cores),
                           flink=flink)
    return Cluster(config)


@pytest.fixture
def cluster():
    return make_cluster()


@pytest.fixture
def session(cluster):
    return FlinkSession(cluster)
