"""Tests for the reporting helpers (timeline / breakdown / summary)."""

from repro.flink import FlinkSession, OpCost
from repro.flink.report import breakdown, metrics_summary, profile_report, \
    profile_summary, session_summary, timeline
from tests.flink.conftest import make_cluster


def run_job(session):
    return session.from_collection(list(range(100)), element_nbytes=8.0,
                                   scale=100.0) \
        .map(lambda x: x + 1, cost=OpCost(flops_per_element=10.0),
             name="plus-one") \
        .group_by(lambda x: x % 3) \
        .reduce(lambda a, b: a + b, name="mod-sum") \
        .collect(job_name="report-demo")


class TestTimeline:
    def test_contains_all_operators(self, session):
        result = run_job(session)
        text = timeline(result.metrics)
        assert "report-demo" in text
        assert "plus-one" in text
        assert "mod-sum" in text
        assert "collect" in text

    def test_bars_ordered_and_bounded(self, session):
        result = run_job(session)
        text = timeline(result.metrics, width=40)
        bar_lines = [l for l in text.splitlines() if "|" in l]
        assert bar_lines
        for line in bar_lines:
            bar = line.split("|")[1]
            assert len(bar) == 40
            assert "#" in bar

    def test_empty_metrics(self):
        from repro.flink.jobmanager import JobMetrics
        text = timeline(JobMetrics(job_name="empty"))
        assert "no operator spans" in text


class TestBreakdown:
    def test_contains_eq1_terms(self, session):
        result = run_job(session)
        text = breakdown(result.metrics)
        for term in ("T_submit", "T_schedule", "compute", "shuffle",
                     "Observation 3"):
            assert term in text

    def test_overhead_fraction_sensible(self, session):
        result = run_job(session)
        text = breakdown(result.metrics)
        line = next(l for l in text.splitlines() if "Observation 3" in l)
        pct = float(line.split("%")[0].split()[-1])
        assert 0.0 <= pct <= 100.0


class TestSessionSummary:
    def test_lists_jobs_and_total(self, session):
        run_job(session)
        run_job(session)
        text = session_summary(session.history)
        assert text.count("report-demo") == 2
        assert "TOTAL (2 jobs)" in text

    def test_empty_history(self):
        assert session_summary([]) == "no jobs run"


class TestMetricsSummary:
    def test_renders_job_counters(self):
        cluster = make_cluster(enable_tracing=True)
        session = FlinkSession(cluster)
        run_job(session)
        text = metrics_summary(cluster.obs.registry)
        assert "jobs.completed" in text
        assert "job.subtasks{job=report-demo}" in text
        assert "job.makespan_s" in text

    def test_untraced_cluster_records_nothing(self, cluster, session):
        run_job(session)
        assert metrics_summary(cluster.obs.registry) == "no metrics recorded"


class TestProfileSummary:
    def test_traced_cluster_profiles(self):
        import math
        cluster = make_cluster(enable_tracing=True)
        session = FlinkSession(cluster)
        run_job(session)
        summary = profile_summary(cluster)
        assert summary["schema"] == "repro.profile.summary/v1"
        assert summary["makespan_s"] > 0
        cats = summary["critical_path"]["categories"]
        assert math.isclose(sum(cats.values()), summary["makespan_s"],
                            rel_tol=1e-9, abs_tol=1e-9)
        assert "plus-one" in summary["operators"]
        text = profile_report(cluster)
        assert "critical path" in text

    def test_untraced_cluster_profiles_empty(self, cluster, session):
        run_job(session)
        summary = profile_summary(cluster)
        assert summary["makespan_s"] == 0.0
        assert summary["span_count"] == 0
