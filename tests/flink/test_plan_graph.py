"""Unit tests for plan/graph internals: topology, parallelism resolution,
operator metadata, serialization accounting."""

import pytest

from repro.common.errors import ConfigError
from repro.flink.graph import ExecutionGraph
from repro.flink.partition import Partition
from repro.flink.plan import (
    CollectionSource,
    CollectSink,
    MapOp,
    OpCost,
    Operator,
    ReduceOp,
    ShipStrategy,
    UnionOp,
    topological_order,
)
from repro.flink.serialization import Serializer


class TestTopologicalOrder:
    def test_linear_chain(self):
        src = CollectionSource([1], 8.0)
        m1 = MapOp(src, lambda x: x, OpCost())
        m2 = MapOp(m1, lambda x: x, OpCost())
        sink = CollectSink(m2)
        order = topological_order([sink])
        assert order == [src, m1, m2, sink]

    def test_diamond(self):
        src = CollectionSource([1], 8.0)
        left = MapOp(src, lambda x: x, OpCost())
        right = MapOp(src, lambda x: x, OpCost())
        union = UnionOp(left, right)
        order = topological_order([CollectSink(union)])
        assert order.index(src) < order.index(left)
        assert order.index(src) < order.index(right)
        assert order.index(left) < order.index(union)
        assert order.index(right) < order.index(union)

    def test_shared_subplan_visited_once(self):
        src = CollectionSource([1], 8.0)
        m = MapOp(src, lambda x: x, OpCost())
        s1, s2 = CollectSink(m), CollectSink(m)
        order = topological_order([s1, s2])
        assert order.count(m) == 1
        assert order.count(src) == 1

    def test_cycle_detected(self):
        src = CollectionSource([1], 8.0)
        m = MapOp(src, lambda x: x, OpCost())
        m.inputs.append(m)  # deliberately corrupt the plan
        m.strategies.append(ShipStrategy.FORWARD)
        with pytest.raises(ConfigError, match="cycle"):
            topological_order([m])


class TestExecutionGraph:
    def test_default_parallelism_applied(self):
        src = CollectionSource([1, 2, 3], 8.0)
        graph = ExecutionGraph([CollectSink(src)], default_parallelism=6)
        assert graph.job_vertex(src).parallelism == 6

    def test_forward_inherits_parallelism(self):
        src = CollectionSource([1], 8.0, parallelism=3)
        m = MapOp(src, lambda x: x, OpCost())
        graph = ExecutionGraph([CollectSink(m)], default_parallelism=8)
        assert graph.job_vertex(m).parallelism == 3

    def test_union_sums_parallelism(self):
        a = CollectionSource([1], 8.0, parallelism=2)
        b = CollectionSource([2], 8.0, parallelism=3)
        union = UnionOp(a, b)
        graph = ExecutionGraph([CollectSink(union)], default_parallelism=8)
        assert graph.job_vertex(union).parallelism == 5

    def test_reduce_is_singleton(self):
        src = CollectionSource([1], 8.0, parallelism=4)
        red = ReduceOp(src, lambda a, b: a + b, OpCost())
        graph = ExecutionGraph([CollectSink(red)], default_parallelism=8)
        assert graph.job_vertex(red).parallelism == 1

    def test_total_subtasks(self):
        src = CollectionSource([1], 8.0, parallelism=4)
        m = MapOp(src, lambda x: x, OpCost())
        sink = CollectSink(m)
        graph = ExecutionGraph([sink], default_parallelism=4)
        assert graph.total_subtasks == 4 + 4 + 1


class TestOperatorMetadata:
    def test_out_element_nbytes_prefers_cost(self):
        src = CollectionSource([1], 8.0)
        m = MapOp(src, lambda x: x, OpCost(out_element_nbytes=99.0))
        part = Partition(0, [1, 2], element_nbytes=8.0)
        assert m.out_element_nbytes(part) == 99.0

    def test_out_element_nbytes_falls_back_to_input(self):
        src = CollectionSource([1], 8.0)
        m = MapOp(src, lambda x: x, OpCost())
        part = Partition(0, [1, 2], element_nbytes=16.0)
        assert m.out_element_nbytes(part) == 16.0

    def test_strategy_input_mismatch_rejected(self):
        src = CollectionSource([1], 8.0)
        with pytest.raises(ConfigError):
            Operator("bad", [src], None, [])

    def test_uids_unique(self):
        ops = [CollectionSource([1], 8.0) for _ in range(5)]
        assert len({op.uid for op in ops}) == 5


class TestSerializer:
    def test_times_and_accounting(self):
        ser = Serializer(serde_bps=1e9, record_overhead_s=1e-8)
        t = ser.serialize_time(1e9, nrecords=1e6)
        assert t == pytest.approx(1.0 + 0.01)
        t2 = ser.deserialize_time(5e8)
        assert t2 == pytest.approx(0.5)
        stats = ser.stats()
        assert stats.bytes_serialized == 1e9
        assert stats.bytes_deserialized == 5e8
