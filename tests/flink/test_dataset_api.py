"""Functional tests of the DataSet API on the simulated cluster."""

import numpy as np
import pytest

from repro.flink import OpCost, vectorized_udf
from tests.flink.conftest import make_cluster
from repro.flink import FlinkSession


class TestMapFilterFlatMap:
    def test_map_collect(self, session):
        result = session.from_collection(list(range(10))) \
            .map(lambda x: x * 2).collect()
        assert sorted(result.value) == [0, 2, 4, 6, 8, 10, 12, 14, 16, 18]
        assert result.seconds > 0

    def test_chained_maps(self, session):
        result = session.from_collection([1, 2, 3]) \
            .map(lambda x: x + 1).map(lambda x: x * 10).collect()
        assert sorted(result.value) == [20, 30, 40]

    def test_filter(self, session):
        result = session.from_collection(list(range(20))) \
            .filter(lambda x: x % 3 == 0).collect()
        assert sorted(result.value) == [0, 3, 6, 9, 12, 15, 18]

    def test_flat_map(self, session):
        result = session.from_collection(["a b", "c d e"]) \
            .flat_map(lambda line: line.split()).collect()
        assert sorted(result.value) == ["a", "b", "c", "d", "e"]

    def test_vectorized_map_on_ndarray(self, session):
        data = np.arange(16, dtype=np.float64)
        doubler = vectorized_udf(lambda arr: arr * 2)
        result = session.from_collection(data, element_nbytes=8) \
            .map(doubler).collect()
        assert sorted(result.value) == sorted((data * 2).tolist())

    def test_map_partition(self, session):
        result = session.from_collection(list(range(8))) \
            .map_partition(lambda elems: [sum(elems)]).collect()
        # One partial sum per partition; the total must be preserved.
        assert sum(result.value) == sum(range(8))


class TestAggregations:
    def test_group_by_reduce(self, session):
        data = [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)]
        result = session.from_collection(data) \
            .group_by(lambda kv: kv[0]) \
            .reduce(lambda x, y: (x[0], x[1] + y[1])) \
            .collect()
        assert sorted(result.value) == [("a", 4), ("b", 6), ("c", 5)]

    def test_group_by_reduce_group(self, session):
        data = [("x", 1), ("y", 10), ("x", 2)]
        result = session.from_collection(data) \
            .group_by(lambda kv: kv[0]) \
            .reduce_group(lambda key, members: (key, len(members))) \
            .collect()
        assert sorted(result.value) == [("x", 2), ("y", 1)]

    def test_global_reduce(self, session):
        result = session.from_collection(list(range(1, 101))) \
            .reduce(lambda a, b: a + b).collect()
        assert result.value == [5050]

    def test_count(self, session):
        result = session.from_collection(list(range(37))).count()
        assert result.value == 37

    def test_count_respects_nominal_scale(self, session):
        # 100 real elements standing in for 100_000 nominal ones.
        result = session.from_collection(list(range(100)),
                                         scale=1000.0).count()
        assert result.value == pytest.approx(100_000)

    def test_join(self, session):
        left = session.from_collection([(1, "l1"), (2, "l2"), (3, "l3")])
        right = session.from_collection([(1, "r1"), (3, "r3"), (3, "r3b")])
        result = left.join(right,
                           left_key=lambda kv: kv[0],
                           right_key=lambda kv: kv[0],
                           join_fn=lambda l, r: (l[0], l[1], r[1])).collect()
        assert sorted(result.value) == [(1, "l1", "r1"), (3, "l3", "r3"),
                                        (3, "l3", "r3b")]

    def test_wordcount_end_to_end(self, session):
        lines = ["the quick brown fox", "the lazy dog", "the fox"]
        result = session.from_collection(lines) \
            .flat_map(lambda line: [(w, 1) for w in line.split()]) \
            .group_by(lambda kv: kv[0]) \
            .reduce(lambda a, b: (a[0], a[1] + b[1])) \
            .collect()
        counts = dict(result.value)
        assert counts == {"the": 3, "quick": 1, "brown": 1, "fox": 2,
                          "lazy": 1, "dog": 1}


class TestHdfsIntegration:
    def test_read_from_hdfs(self, cluster, session):
        chunks = [(list(range(0, 50)), 400), (list(range(50, 100)), 400)]
        cluster.load_hdfs_file("/input", chunks)
        result = session.read_hdfs("/input", element_nbytes=8).collect()
        assert sorted(result.value) == list(range(100))
        assert result.metrics.hdfs_read_bytes > 0

    def test_write_to_hdfs(self, cluster, session):
        result = session.from_collection(list(range(10)), element_nbytes=8) \
            .write_hdfs("/out")
        assert result.value == "/out"
        assert cluster.hdfs.exists("/out")
        assert result.metrics.hdfs_write_bytes > 0
        # Read it back through a second job.
        readback = session.read_hdfs("/out", element_nbytes=8).collect()
        assert sorted(readback.value) == list(range(10))

    def test_hdfs_roundtrip_with_ndarray_blocks(self, cluster, session):
        data = np.arange(40, dtype=np.float64)
        cluster.load_hdfs_file(
            "/vec", [(data[:20], 160), (data[20:], 160)])
        total = session.read_hdfs("/vec", element_nbytes=8) \
            .map(vectorized_udf(lambda a: a + 1)) \
            .reduce(lambda x, y: x + y).collect()
        assert total.value[0] == pytest.approx(np.sum(data + 1))


class TestPersistence:
    def test_persisted_dataset_not_recomputed(self, cluster, session):
        chunks = [(list(range(100)), 800)]
        cluster.load_hdfs_file("/in", chunks)
        ds = session.read_hdfs("/in", element_nbytes=8).persist()
        first = ds.count()
        read_after_first = first.metrics.hdfs_read_bytes
        assert read_after_first > 0
        second = ds.count()
        assert second.metrics.hdfs_read_bytes == 0  # served from memory
        assert second.value == first.value

    def test_non_persisted_dataset_recomputed(self, cluster, session):
        cluster.load_hdfs_file("/in2", [(list(range(10)), 80)])
        ds = session.read_hdfs("/in2", element_nbytes=8)
        ds.count()
        again = ds.count()
        assert again.metrics.hdfs_read_bytes > 0

    def test_iterative_reuse_is_faster(self, cluster, session):
        cluster.load_hdfs_file("/it", [(list(range(1000)), 8_000_000)])
        ds = session.read_hdfs("/it", element_nbytes=8000).persist()
        t1 = ds.map(lambda x: x + 1).count().seconds
        t2 = ds.map(lambda x: x + 1).count().seconds
        assert t2 < t1  # later iterations skip HDFS


class TestParallelismAndErrors:
    def test_explicit_parallelism_respected(self, session):
        ds = session.from_collection(list(range(12)), parallelism=3)
        result = ds.map_partition(lambda e: [len(e)]).collect()
        assert len(result.value) == 3
        assert sum(result.value) == 12

    def test_cross_session_join_rejected(self, cluster):
        s1 = FlinkSession(cluster)
        s2 = FlinkSession(make_cluster())
        a = s1.from_collection([1])
        b = s2.from_collection([2])
        with pytest.raises(ValueError):
            a.join(b, lambda x: x, lambda x: x)

    def test_empty_collection(self, session):
        result = session.from_collection([]).map(lambda x: x).collect()
        assert result.value == []
