"""Tests for bulk iterations (plan-level loop unrolling)."""

import pytest

from repro.flink import FlinkSession, OpCost
from tests.flink.conftest import make_cluster


class TestIterate:
    def test_iterate_applies_step_n_times(self, session):
        result = session.from_collection([1.0, 2.0]) \
            .iterate(3, lambda ds: ds.map(lambda x: x * 2)) \
            .collect()
        assert sorted(result.value) == [8.0, 16.0]

    def test_iterate_zero_rejected(self, session):
        with pytest.raises(ValueError):
            session.from_collection([1]).iterate(0, lambda ds: ds)

    def test_step_must_return_dataset(self, session):
        with pytest.raises(TypeError):
            session.from_collection([1]).iterate(1, lambda ds: 42)

    def test_iterate_with_reduce_step(self, session):
        # Each step: pair-sums (keyed reduce) then re-expand; checks that
        # shuffles inside the unrolled loop work.
        def step(ds):
            return ds.group_by(lambda kv: kv[0]) \
                .reduce(lambda a, b: (a[0], a[1] + b[1])) \
                .flat_map(lambda kv: [(kv[0], kv[1] / 2), (kv[0], kv[1] / 2)])

        data = [("a", 2.0), ("a", 2.0), ("b", 4.0)]
        result = session.from_collection(data).iterate(2, step) \
            .group_by(lambda kv: kv[0]) \
            .reduce(lambda a, b: (a[0], a[1] + b[1])).collect()
        totals = dict(result.value)
        assert totals["a"] == pytest.approx(4.0)
        assert totals["b"] == pytest.approx(4.0)

    def test_single_submit_overhead(self):
        """The whole unrolled loop pays job-submit exactly once."""
        cluster = make_cluster(n_workers=1, cores=1)
        session = FlinkSession(cluster)
        submit = cluster.config.flink.job_submit_s

        iterated = session.from_collection([1], element_nbytes=0.0) \
            .iterate(5, lambda ds: ds.map(lambda x: x)).count()
        assert iterated.metrics.submit_s == submit

        # The per-job pattern pays it every iteration.
        ds = session.from_collection([1], element_nbytes=0.0).persist()
        ds.materialize()
        per_job_total = 0.0
        current = ds
        for _ in range(5):
            current = current.map(lambda x: x).persist()
            per_job_total += current.materialize().seconds
        assert per_job_total > 5 * submit
        assert iterated.seconds < per_job_total

    def test_iterate_convergence_pattern(self, session):
        # Newton iteration for sqrt(2), carried through the dataset.
        result = session.from_collection([1.0]) \
            .iterate(8, lambda ds: ds.map(
                lambda x: 0.5 * (x + 2.0 / x),
                cost=OpCost(flops_per_element=4.0))) \
            .collect()
        assert result.value[0] == pytest.approx(2.0 ** 0.5, rel=1e-9)
