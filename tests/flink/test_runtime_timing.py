"""Timing-model tests: the simulated clock must follow the cost model."""

import pytest

from repro.flink import FlinkSession, OpCost
from tests.flink.conftest import make_cluster


class TestIteratorCostModel:
    def test_map_compute_time_matches_model(self):
        cluster = make_cluster(n_workers=1, cores=1)
        session = FlinkSession(cluster)
        flink = cluster.config.flink
        cpu = cluster.config.cpu
        n, flops = 1_000_000, 100.0
        # 1000 real elements standing in for 1e6 nominal.
        ds = session.from_collection(list(range(1000)), scale=1000.0,
                                     parallelism=1)
        result = ds.map(lambda x: x, cost=OpCost(flops_per_element=flops),
                        name="timed-map").collect()
        expected = n * (flink.element_overhead_s + flops / cpu.flops_per_core)
        span = result.metrics.span_of("timed-map")
        overhead = flink.task_schedule_s + flink.task_deploy_s
        assert span.seconds == pytest.approx(expected + overhead, rel=1e-6)

    def test_compute_seconds_accumulate(self):
        cluster = make_cluster(n_workers=1, cores=1)
        session = FlinkSession(cluster)
        ds = session.from_collection(list(range(100)), parallelism=1)
        result = ds.map(lambda x: x, cost=OpCost(flops_per_element=1000.0)) \
            .collect()
        assert result.metrics.compute_s > 0

    def test_job_pays_submit_overhead(self, session):
        result = session.from_collection([1]).collect()
        assert result.seconds >= session.cluster.config.flink.job_submit_s

    def test_more_cores_speed_up_parallel_map(self):
        # Staged executor: the map wave starts only after the whole source
        # wave finished, so the phase ratio is exactly the slot ratio.  The
        # pipelined executor overlaps the waves (a consumer subtask starts
        # on its own producer's final), which is measured in
        # tests/flink/test_pipeline.py instead.
        def runtime(cores):
            cluster = make_cluster(n_workers=1, cores=cores,
                                   executor="staged")
            sess = FlinkSession(cluster)
            # element_nbytes=0 isolates compute from source-shipping time.
            ds = sess.from_collection(list(range(1000)), element_nbytes=0.0,
                                      scale=1e4, parallelism=4)
            result = ds.map(lambda x: x,
                            cost=OpCost(flops_per_element=100.0),
                            name="m").count()
            return result.seconds, result.metrics.span_of("m").seconds

        (slow, slow_span), (fast, fast_span) = runtime(1), runtime(4)
        assert fast < slow
        # The map phase itself scales ~linearly with slots; the whole job is
        # capped by the fixed submit overhead (Observation 3).
        assert slow_span / fast_span == pytest.approx(4.0, rel=0.05)

    def test_more_workers_speed_up_parallel_map(self):
        def runtime(workers):
            cluster = make_cluster(n_workers=workers, cores=2)
            sess = FlinkSession(cluster)
            ds = sess.from_collection(list(range(1000)), scale=1e4,
                                      parallelism=8)
            return ds.map(lambda x: x,
                          cost=OpCost(flops_per_element=200.0)) \
                .count().seconds

        assert runtime(4) < runtime(1)


class TestSlotContention:
    def test_tasks_queue_when_slots_exhausted(self):
        # 1 worker x 1 slot, 4 subtasks of equal compute -> ~4x serial time.
        # Staged: waves never overlap, so the ratio is exact (the pipelined
        # executor lets map subtasks contend with the source wave's tail).
        cluster = make_cluster(n_workers=1, cores=1, executor="staged")
        session = FlinkSession(cluster)
        ds = session.from_collection(list(range(400)), scale=1e4,
                                     parallelism=4)
        serial = ds.map(lambda x: x, cost=OpCost(flops_per_element=100.0),
                        name="m").count()
        span_serial = serial.metrics.span_of("m").seconds

        cluster4 = make_cluster(n_workers=1, cores=4, executor="staged")
        session4 = FlinkSession(cluster4)
        ds4 = session4.from_collection(list(range(400)), scale=1e4,
                                       parallelism=4)
        parallel = ds4.map(lambda x: x, cost=OpCost(flops_per_element=100.0),
                           name="m").count()
        span_parallel = parallel.metrics.span_of("m").seconds
        assert span_serial / span_parallel == pytest.approx(4.0, rel=0.05)


class TestLocality:
    def test_forward_edge_stays_local(self):
        cluster = make_cluster(n_workers=2, cores=2)
        session = FlinkSession(cluster)
        ds = session.from_collection(list(range(100)), element_nbytes=1000,
                                     parallelism=4)
        sent_before = sum(cluster.network.bytes_sent(w)
                          for w in cluster.config.worker_names())
        ds.map(lambda x: x).map(lambda x: x).count()
        sent_after = sum(cluster.network.bytes_sent(w)
                         for w in cluster.config.worker_names())
        # Forward chains move no partition data between workers; only the
        # count bytes (8 per producer) and master traffic flow.
        assert sent_after - sent_before < 1000

    def test_shuffle_moves_bytes(self):
        cluster = make_cluster(n_workers=2, cores=2)
        session = FlinkSession(cluster)
        data = [(i % 16, i) for i in range(256)]
        result = session.from_collection(data, element_nbytes=100) \
            .group_by(lambda kv: kv[0]) \
            .reduce(lambda a, b: (a[0], a[1] + b[1]), combinable=False) \
            .collect()
        assert result.metrics.shuffle_bytes > 0

    def test_combinable_reduce_shuffles_less(self):
        def shuffled(combinable):
            cluster = make_cluster(n_workers=2, cores=2)
            session = FlinkSession(cluster)
            data = [(i % 4, 1) for i in range(512)]
            result = session.from_collection(data, element_nbytes=100) \
                .group_by(lambda kv: kv[0]) \
                .reduce(lambda a, b: (a[0], a[1] + b[1]),
                        combinable=combinable) \
                .collect()
            assert sorted(result.value) == [(0, 128), (1, 128),
                                            (2, 128), (3, 128)]
            return result.metrics.shuffle_bytes

        assert shuffled(True) < shuffled(False)


class TestObservation3:
    """Paper §6.3 Observation 3: fixed overheads dominate small inputs."""

    def test_speedup_style_ratio_grows_with_input(self):
        def job_seconds(nominal_scale):
            cluster = make_cluster(n_workers=2, cores=2)
            session = FlinkSession(cluster)
            ds = session.from_collection(list(range(500)),
                                         scale=nominal_scale, parallelism=4)
            return ds.map(lambda x: x,
                          cost=OpCost(flops_per_element=500.0)).count().seconds

        small, large = job_seconds(10.0), job_seconds(1e5)
        submit = 0.6
        # Small job: overhead-dominated; large job: compute-dominated.
        assert small < submit * 3
        assert large > submit * 10
