"""Failure domains end-to-end: chaos schedules, detection, recovery.

Covers the chaos subsystem's contracts:

* exponential back-off with deterministic jitter (``backoff_delay``);
* GPU device blacklisting at the fault threshold + cache invalidation;
* lineage recovery recomputes exactly the lost partitions;
* a worker killed mid-job leaves the job result identical;
* with every device blacklisted, GPU operators degrade to CPU execution
  and still produce identical results.
"""

import pytest

from repro.common.errors import DeviceFaultError, KernelError
from repro.common.simclock import Environment
from repro.core import GFlinkCluster, GFlinkSession
from repro.core.gpumanager import GPUManager, GPUManagerConfig
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig, FlinkSession
from repro.flink.chaos import (
    ChaosSchedule,
    FaultKind,
    backoff_delay,
    values_equal,
)
from repro.gpu.kernel import KernelRegistry
from repro.workloads import PointAddWorkload
from tests.flink.conftest import make_cluster


class TestBackoff:
    def test_doubles_and_caps(self):
        flink = FlinkConfig(retry_backoff_base_s=1.0,
                            retry_backoff_max_s=4.0,
                            retry_backoff_jitter=0.0)
        delays = [backoff_delay(flink, k, "op", 0) for k in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_bounds_and_determinism(self):
        flink = FlinkConfig(retry_backoff_base_s=1.0,
                            retry_backoff_max_s=8.0,
                            retry_backoff_jitter=0.25)
        first = [backoff_delay(flink, k, "op", 3) for k in range(1, 6)]
        again = [backoff_delay(flink, k, "op", 3) for k in range(1, 6)]
        assert first == again  # same identity -> replayed delays
        for attempt, delay in enumerate(first, start=1):
            base = min(2.0 ** (attempt - 1), 8.0)
            assert base <= delay <= base * 1.25
        # A different subtask identity de-synchronizes the sequence.
        other = [backoff_delay(flink, k, "op", 4) for k in range(1, 6)]
        assert other != first

    def test_disabled_by_default(self):
        # Base 0 (the default) means immediate retries: pre-chaos behavior.
        assert backoff_delay(FlinkConfig(), 3, "op", 0) == 0.0


def make_gpumanager(n_devices=1, **config_overrides):
    config = GPUManagerConfig(**config_overrides)
    return GPUManager(Environment(), "w0", ("c2050",) * n_devices,
                      KernelRegistry(), config)


class TestBlacklist:
    def test_transient_faults_blacklist_at_threshold(self):
        gm = make_gpumanager(blacklist_threshold=3)
        for _ in range(2):
            gm.record_device_failure(
                0, DeviceFaultError("gpu-oom", "w0-gpu0"))
            assert 0 not in gm.blacklisted
        gm.record_device_failure(0, DeviceFaultError("gpu-oom", "w0-gpu0"))
        assert 0 in gm.blacklisted
        assert not gm.gpu_available()

    def test_non_device_faults_do_not_count(self):
        gm = make_gpumanager(blacklist_threshold=1)
        gm.record_device_failure(0, KernelError("bad kernel"))
        gm.record_device_failure(0, ValueError("not hardware"))
        assert gm.device_failures[0] == 0
        assert gm.gpu_available()

    def test_ecc_blacklists_immediately_and_drops_cache(self):
        gm = make_gpumanager(n_devices=2)
        gm.gmm.region("app", 0)
        gm.gmm.region("app", 1)
        gm.inject_device_fault(0, FaultKind.GPU_ECC)
        assert gm.blacklisted == {0}
        assert not gm.gmm.has_region("app", 0)  # cache invalidated
        assert gm.gmm.has_region("app", 1)      # the healthy device keeps its
        assert gm.healthy_device_indices() == [1]

    def test_unknown_device_rejected(self):
        gm = make_gpumanager()
        with pytest.raises(ValueError, match="no GPU 7"):
            gm.inject_device_fault(7, "gpu-oom")


class TestChaosSchedule:
    def test_random_is_reproducible(self):
        kw = dict(duration_s=60.0,
                  workers=[f"worker{i}" for i in range(4)],
                  gpus_per_worker=2, worker_kill_rate=0.02,
                  gpu_fault_rate=0.05, pcie_fault_rate=0.05)
        a = ChaosSchedule.random(seed=9, **kw)
        b = ChaosSchedule.random(seed=9, **kw)
        assert a.events == b.events
        assert a.events != ChaosSchedule.random(seed=10, **kw).events

    def test_random_spares_one_worker(self):
        schedule = ChaosSchedule.random(
            seed=1, duration_s=1e6, workers=["w0", "w1", "w2"],
            worker_kill_rate=10.0)
        victims = {e.worker for e in schedule.events
                   if e.kind is FaultKind.WORKER_KILL}
        assert len(victims) == 2  # one survivor to recover onto

    def test_events_sorted_by_time(self):
        schedule = (ChaosSchedule()
                    .kill_worker("w1", at=30.0)
                    .fail_gpu("w0", 0, at=10.0))
        assert [e.at for e in schedule.events] == [10.0, 30.0]

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            ChaosSchedule().fail_gpu("w0", 0, at=1.0,
                                     kind=FaultKind.PCIE_CORRUPT)
        with pytest.raises(ValueError):
            ChaosSchedule().fault_pcie("w0", 0, at=1.0,
                                       kind=FaultKind.GPU_ECC)


class TestHeartbeat:
    def test_detection_latency_is_the_heartbeat_timeout(self):
        cluster = make_cluster(n_workers=3, heartbeat_interval_s=0.5,
                               heartbeat_timeout_s=2.0)
        engine = cluster.install_chaos(
            ChaosSchedule().kill_worker("worker1", at=1.0))
        cluster.env.run()  # drain: injector applies, monitor declares, exits
        latency = engine.summary()["detection_latency_s"]["worker1"]
        # Declared at the first tick after the timeout elapses.
        assert 2.0 <= latency <= 2.5 + 1e-9
        assert cluster.worker_is_declared_dead("worker1")


class TestLineageRecovery:
    def test_recomputes_exactly_the_lost_partitions(self):
        cluster = make_cluster(n_workers=3)
        session = FlinkSession(cluster)
        data = session.from_collection(list(range(12)), parallelism=6) \
            .map(lambda x: x + 1, name="stage1").persist()
        data.collect()  # job 1 materializes stage1 across the workers
        parts = cluster.materialized[data.op.uid]
        victim = parts[0].worker
        lost = {p.index for p in parts if p.worker == victim}
        assert 0 < len(lost) < len(parts)
        cluster.fail_worker(victim)  # no chaos engine: declared immediately

        result = data.map(lambda x: x * 10, name="stage2").collect()
        assert sorted(result.value) == [(x + 1) * 10 for x in range(12)]
        # Lineage recovery recomputed the lost partitions, nothing more.
        assert result.metrics.recovered_partitions == len(lost)
        refreshed = cluster.materialized[data.op.uid]
        assert all(cluster.worker_is_alive(p.worker) for p in refreshed)

    def test_worker_kill_midjob_leaves_result_identical(self):
        def run_job(cluster):
            session = FlinkSession(cluster)
            data = session.from_collection(list(range(40)), parallelism=4)
            return (data.map(lambda x: x * 3, name="triple")
                        .map(lambda x: x + 1, name="inc")
                        .collect())

        baseline = run_job(make_cluster(n_workers=3, enable_chaining=False))
        cluster = make_cluster(n_workers=3, enable_chaining=False,
                               heartbeat_interval_s=0.05,
                               heartbeat_timeout_s=0.2,
                               retry_backoff_base_s=0.01)
        engine = cluster.install_chaos(ChaosSchedule().kill_worker(
            "worker1", at=baseline.seconds / 2))
        result = run_job(cluster)
        assert sorted(result.value) == sorted(baseline.value)
        assert engine.summary()["events_applied"] == 1
        assert not cluster.workers["worker1"].alive


def gpu_cluster(**flink_overrides):
    config = ClusterConfig(n_workers=2, cpu=CPUSpec(cores=2),
                           gpus_per_worker=("c2050",),
                           flink=FlinkConfig(**flink_overrides))
    return GFlinkCluster(config)


class TestGpuDegradation:
    def test_all_devices_blacklisted_falls_back_to_cpu(self):
        workload = lambda: PointAddWorkload(  # noqa: E731
            nominal_elements=4000, real_elements=4000, iterations=2)
        baseline = workload().run(GFlinkSession(gpu_cluster()), "gpu")

        cluster = gpu_cluster()
        cluster.install_chaos(ChaosSchedule()
                              .fail_gpu("worker0", 0, at=0.0)
                              .fail_gpu("worker1", 0, at=0.0))
        result = workload().run(GFlinkSession(cluster), "gpu")
        assert values_equal(baseline.value, result.value)
        fallback = sum(m.fallback_tasks for m in result.job_metrics)
        assert fallback > 0
        assert all(not gm.gpu_available() for gm in cluster.gpu_managers())

    def test_fallback_disabled_fails_the_job(self):
        config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=2),
                               gpus_per_worker=("c2050",))
        cluster = GFlinkCluster(
            config, gpu_config=GPUManagerConfig(cpu_fallback=False))
        cluster.install_chaos(
            ChaosSchedule().fail_gpu("worker0", 0, at=0.0))
        workload = PointAddWorkload(nominal_elements=2000,
                                    real_elements=2000, iterations=1)
        from repro.common.errors import JobExecutionError
        with pytest.raises(JobExecutionError):
            workload.run(GFlinkSession(cluster), "gpu")
