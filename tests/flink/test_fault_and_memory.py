"""Fault-tolerance and managed-memory tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import JobExecutionError, MemoryExhaustedError
from repro.flink import FailureInjector, FlinkSession
from repro.flink.memory import MemoryKind, MemoryManager
from tests.flink.conftest import make_cluster


class TestFaultTolerance:
    def test_job_survives_transient_failures(self):
        cluster = make_cluster()
        injector = FailureInjector(plan={("flaky-map", 0): 2})
        session = FlinkSession(cluster, failure_injector=injector)
        result = session.from_collection(list(range(10)), parallelism=2) \
            .map(lambda x: x * 2, name="flaky-map").collect()
        assert sorted(result.value) == [x * 2 for x in range(10)]
        assert injector.failures_injected == 2
        assert result.metrics.retries == 2

    def test_job_fails_after_retry_budget(self):
        cluster = make_cluster(max_task_retries=2)
        injector = FailureInjector(plan={("doomed", 0): 99})
        session = FlinkSession(cluster, failure_injector=injector)
        with pytest.raises(JobExecutionError, match="doomed"):
            session.from_collection([1], parallelism=1) \
                .map(lambda x: x, name="doomed").collect()

    def test_retries_cost_time(self):
        def run(fail_times):
            cluster = make_cluster()
            injector = FailureInjector(plan={("m", 0): fail_times})
            session = FlinkSession(cluster, failure_injector=injector)
            return session.from_collection(list(range(10)), parallelism=1) \
                .map(lambda x: x, name="m").count().seconds

        assert run(2) > run(0)

    def test_custom_failure_policy(self):
        cluster = make_cluster()
        injector = FailureInjector(
            should_fail=lambda op, sub, attempt: op == "x" and attempt == 0)
        session = FlinkSession(cluster, failure_injector=injector)
        result = session.from_collection([1, 2], parallelism=2) \
            .map(lambda v: v, name="x").collect()
        assert sorted(result.value) == [1, 2]
        assert result.metrics.retries == 2  # both subtasks failed once


class TestMemoryManager:
    def test_pages_for_rounds_up(self):
        mm = MemoryManager(total_bytes=1024 * 100, page_size=1024)
        assert mm.pages_for(1) == 1
        assert mm.pages_for(1024) == 1
        assert mm.pages_for(1025) == 2
        assert mm.pages_for(0) == 0

    def test_allocate_and_release(self):
        mm = MemoryManager(total_bytes=1024 * 10, page_size=1024,
                           off_heap_fraction=0.5)
        segs = mm.allocate(3 * 1024, kind=MemoryKind.OFF_HEAP)
        assert len(segs) == 3
        assert all(s.dma_capable for s in segs)
        assert mm.available_pages(MemoryKind.OFF_HEAP) == 2
        mm.release(segs)
        assert mm.available_pages(MemoryKind.OFF_HEAP) == 5

    def test_heap_segments_not_dma_capable(self):
        mm = MemoryManager(total_bytes=1024 * 10, page_size=1024)
        (seg,) = mm.allocate(1, kind=MemoryKind.HEAP)
        assert not seg.dma_capable

    def test_exhaustion_raises(self):
        mm = MemoryManager(total_bytes=1024 * 4, page_size=1024,
                           off_heap_fraction=1.0)
        mm.allocate(4 * 1024)
        with pytest.raises(MemoryExhaustedError):
            mm.allocate(1)

    def test_peak_tracking(self):
        mm = MemoryManager(total_bytes=1024 * 10, page_size=1024)
        a = mm.allocate(2 * 1024, kind=MemoryKind.HEAP)
        b = mm.allocate(2 * 1024, kind=MemoryKind.HEAP)
        mm.release(a)
        mm.release(b)
        assert mm.peak_pages == 4

    @given(st.integers(min_value=1, max_value=10**7))
    def test_pages_for_property(self, nbytes):
        mm = MemoryManager(total_bytes=1 << 30, page_size=32 * 1024)
        pages = mm.pages_for(nbytes)
        assert (pages - 1) * mm.page_size < nbytes <= pages * mm.page_size
