"""Tests for operator chaining (the plan optimizer)."""

import pytest

from repro.flink import ClusterConfig, CPUSpec, FlinkConfig, FlinkSession, OpCost
from repro.flink.optimizer import FusedMapOp, apply_chaining
from repro.flink.plan import (
    CollectSink,
    CollectionSource,
    FilterOp,
    MapOp,
    topological_order,
)
from repro.flink.runtime import Cluster
from tests.flink.conftest import make_cluster


def chained_session(enable=True, **kw):
    flink = FlinkConfig(enable_chaining=enable)
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=2), flink=flink)
    return FlinkSession(Cluster(config))


class TestApplyChaining:
    def _plan(self, n_maps=3):
        src = CollectionSource(list(range(10)), 8.0)
        op = src
        for i in range(n_maps):
            op = MapOp(op, lambda x: x + 1, OpCost(), name=f"m{i}")
        return CollectSink(op), src

    def test_linear_chain_fused(self):
        sink, src = self._plan(3)
        apply_chaining([sink])
        order = topological_order([sink])
        fused = [op for op in order if isinstance(op, FusedMapOp)]
        assert len(fused) == 1
        assert len(fused[0].stages) == 3
        assert fused[0].inputs == [src]

    def test_single_op_not_fused(self):
        sink, _ = self._plan(1)
        apply_chaining([sink])
        assert not any(isinstance(op, FusedMapOp)
                       for op in topological_order([sink]))

    def test_persisted_op_breaks_chain(self):
        src = CollectionSource([1], 8.0)
        m1 = MapOp(src, lambda x: x, OpCost(), name="m1")
        m2 = MapOp(m1, lambda x: x, OpCost(), name="m2")
        m2.persisted = True
        m3 = MapOp(m2, lambda x: x, OpCost(), name="m3")
        sink = CollectSink(m3)
        apply_chaining([sink])
        order = topological_order([sink])
        # m2 must survive as an identity in the plan (cross-job reuse).
        assert m2 in order
        assert not any(isinstance(op, FusedMapOp) and m2 in op.stages
                       for op in order)

    def test_multi_consumer_breaks_chain(self):
        src = CollectionSource([1], 8.0)
        shared = MapOp(src, lambda x: x, OpCost(), name="shared")
        a = MapOp(shared, lambda x: x, OpCost(), name="a")
        b = MapOp(shared, lambda x: x, OpCost(), name="b")
        sinks = [CollectSink(a), CollectSink(b)]
        apply_chaining(sinks)
        order = topological_order(sinks)
        assert shared in order  # not absorbed into either branch

    def test_explicit_parallelism_breaks_chain(self):
        src = CollectionSource([1], 8.0, parallelism=2)
        m1 = MapOp(src, lambda x: x, OpCost(), parallelism=2, name="m1")
        m2 = MapOp(m1, lambda x: x, OpCost(), parallelism=2, name="m2")
        sink = CollectSink(m2)
        apply_chaining([sink])
        assert not any(isinstance(op, FusedMapOp)
                       for op in topological_order([sink]))


class TestChainedExecution:
    def test_results_identical_with_and_without(self):
        data = list(range(40))

        def run(enable):
            session = chained_session(enable)
            return sorted(
                session.from_collection(data)
                .map(lambda x: x + 1)
                .filter(lambda x: x % 2 == 0)
                .flat_map(lambda x: [x, x])
                .collect().value)

        assert run(True) == run(False)

    def test_chaining_reduces_subtasks_and_time(self):
        data = list(range(100))

        def run(enable):
            session = chained_session(enable)
            ds = session.from_collection(data, element_nbytes=8.0,
                                         scale=100.0)
            for _ in range(4):
                ds = ds.map(lambda x: x, cost=OpCost(flops_per_element=5.0))
            return ds.count()

        chained = run(True)
        unchained = run(False)
        assert chained.value == unchained.value
        assert chained.metrics.subtasks < unchained.metrics.subtasks
        assert chained.seconds < unchained.seconds

    def test_nominal_scaling_through_fused_filter(self):
        session = chained_session(True)
        result = session.from_collection(list(range(100)), scale=1000.0) \
            .map(lambda x: x) \
            .filter(lambda x: x < 50) \
            .count()
        assert result.value == pytest.approx(50_000)

    def test_chain_visible_in_spans(self):
        session = chained_session(True)
        result = session.from_collection([1, 2, 3]) \
            .map(lambda x: x, name="a").map(lambda x: x, name="b").count()
        names = [s.name for s in result.metrics.operator_spans.values()]
        assert any(n.startswith("chain(") for n in names)
