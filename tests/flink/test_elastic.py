"""Elastic membership end-to-end: join/drain/leave, rebalancing, autoscaling.

Covers the elasticity contracts:

* mid-job joins/drains/leaves change placement and timing only — job
  results stay bit-identical to a static-membership run;
* a graceful drain migrates every cached partition (zero lineage
  recomputes) and decommissions the co-located datanode;
* an abrupt leave falls back to the PR 4 failure machinery (declaration,
  retry, lineage recovery);
* ``Scheduler.reschedule`` has a deterministic fallback when every healthy
  worker is in the avoid set (the satellite regression);
* the autoscaler actuates on slot pressure, remote-read fraction and
  pcie_bound profiles, respecting cooldown and the worker ceiling;
* empty chaos/churn schedules perturb nothing, even with monitoring and
  tracing enabled under the pipelined executor.
"""

import pytest

from repro.flink import FlinkSession
from repro.flink.autoscaler import Autoscaler, AutoscalerPolicy
from repro.flink.chaos import (
    ChaosSchedule,
    ChurnSchedule,
    FaultKind,
    values_equal,
)
from repro.flink.graph import ExecutionVertex
from repro.flink.rebalance import Rebalancer
from repro.flink.scheduler import Scheduler
from tests.flink.conftest import make_cluster


class TestMembership:
    def test_join_registers_everything(self):
        cluster = make_cluster(n_workers=2)
        name = cluster.add_worker()
        assert name == "elastic0"
        assert cluster.is_member(name)
        assert name in cluster.workers
        assert name in cluster.hdfs.datanodes
        assert name in cluster.hdfs.namenode.datanode_names
        assert name in cluster.network.nodes
        # Logical partitioning stays pinned to the configured shape.
        assert cluster.default_parallelism == cluster.config.total_slots

    def test_join_name_collision_rejected(self):
        cluster = make_cluster(n_workers=2)
        with pytest.raises(Exception):
            cluster.add_worker("worker0")

    def test_drain_retires_worker(self):
        cluster = make_cluster(n_workers=3, enable_tracing=True)
        cluster.env.process(cluster.drain_worker("worker2"), name="drain")
        cluster.env.run()
        worker = cluster.workers["worker2"]
        assert not cluster.is_member("worker2")
        assert worker.departed and not worker.alive
        assert not cluster.worker_is_schedulable("worker2")
        # Drains are silent departures, not failures: declared (so nothing
        # ever waits on the heartbeat timeout) without failure counters.
        assert cluster.worker_is_declared_dead("worker2")
        assert cluster.obs.registry.sum_values("worker.failures") == 0
        assert "worker2" not in cluster.hdfs.namenode.datanode_names

    def test_departed_name_cannot_rejoin(self):
        cluster = make_cluster(n_workers=3)
        cluster.env.process(cluster.drain_worker("worker2"), name="drain")
        cluster.env.run()
        with pytest.raises(Exception):
            cluster.add_worker("worker2")

    def test_abrupt_leave_uses_failure_path(self):
        cluster = make_cluster(n_workers=3, enable_tracing=True,
                               heartbeat_interval_s=0.05,
                               heartbeat_timeout_s=0.1)
        cluster.install_chaos(ChaosSchedule())
        cluster.remove_worker("worker1")
        cluster.env.run()
        assert not cluster.is_member("worker1")
        assert not cluster.workers["worker1"].alive
        assert cluster.worker_is_declared_dead("worker1")
        assert cluster.obs.registry.sum_values("worker.failures") == 1


class TestRebalance:
    def _persisted(self, cluster, parallelism=6):
        session = FlinkSession(cluster)
        data = session.from_collection(list(range(12)),
                                       parallelism=parallelism) \
            .map(lambda x: x + 1, name="stage1").persist()
        data.collect()
        return data

    def test_join_rebalances_cached_partitions(self):
        cluster = make_cluster(n_workers=2, enable_tracing=True)
        data = self._persisted(cluster)
        name = cluster.add_worker()
        cluster.env.run()  # let the rebalance process drain
        counts = Rebalancer(cluster).resident_counts()
        assert counts[name] >= 1
        # Migration is bookkeeping, not recomputation: the follow-up job
        # sees every partition where the store says it is.
        result = data.map(lambda x: x * 10, name="stage2").collect()
        assert sorted(result.value) == [(x + 1) * 10 for x in range(12)]
        assert result.metrics.recovered_partitions == 0
        assert cluster.obs.registry.sum_values("rebalance.partitions") \
            == counts[name]

    def test_drain_migrates_everything_no_lineage(self):
        cluster = make_cluster(n_workers=3)
        data = self._persisted(cluster)
        held = [p for p in cluster.materialized[data.op.uid]
                if p.worker == "worker2"]
        assert held  # the drain actually has state to move
        cluster.env.process(cluster.drain_worker("worker2"), name="drain")
        cluster.env.run()
        assert all(p.worker != "worker2"
                   for p in cluster.materialized[data.op.uid])
        result = data.map(lambda x: x * 10, name="stage2").collect()
        assert sorted(result.value) == [(x + 1) * 10 for x in range(12)]
        assert result.metrics.recovered_partitions == 0

    def test_abrupt_leave_recovers_by_lineage(self):
        cluster = make_cluster(n_workers=3, heartbeat_interval_s=0.05,
                               heartbeat_timeout_s=0.1)
        cluster.install_chaos(ChaosSchedule())
        data = self._persisted(cluster)
        lost = {p.index for p in cluster.materialized[data.op.uid]
                if p.worker == "worker2"}
        assert lost
        cluster.remove_worker("worker2")
        result = data.map(lambda x: x * 10, name="stage2").collect()
        assert sorted(result.value) == [(x + 1) * 10 for x in range(12)]
        assert result.metrics.recovered_partitions == len(lost)


class TestChurnBitIdentity:
    def _run_job(self, cluster):
        session = FlinkSession(cluster)
        data = session.from_collection(list(range(60)), parallelism=4)
        return (data.map(lambda x: x * 3, name="triple")
                    .map(lambda x: x + 1, name="inc")
                    .group_by(lambda x: x % 5)
                    .reduce(lambda a, b: a + b, name="sum")
                    .collect())

    @pytest.mark.parametrize("executor", ["staged", "pipelined"])
    def test_churn_matrix_identical(self, executor):
        overrides = dict(executor=executor, enable_chaining=False,
                         heartbeat_interval_s=0.02,
                         heartbeat_timeout_s=0.05,
                         retry_backoff_base_s=0.01)
        baseline = self._run_job(make_cluster(n_workers=3, **overrides))
        span = baseline.seconds
        # >= 2 joins and >= 2 leaves mid-job, one graceful + one abrupt.
        schedule = (ChurnSchedule()
                    .join_worker(at=span * 0.1)
                    .join_worker(at=span * 0.2)
                    .drain_worker("worker2", at=span * 0.4)
                    .leave_worker("elastic0", at=span * 0.6))
        cluster = make_cluster(n_workers=3, **overrides)
        engine = cluster.install_chaos(schedule)
        result = self._run_job(cluster)
        assert engine.summary()["events_applied"] == 4
        assert values_equal(sorted(baseline.value), sorted(result.value))

    def test_random_churn_identical(self):
        overrides = dict(heartbeat_interval_s=0.02,
                         heartbeat_timeout_s=0.05,
                         retry_backoff_base_s=0.01)
        baseline = self._run_job(make_cluster(n_workers=3, **overrides))
        schedule = ChurnSchedule.random(
            seed=10, duration_s=baseline.seconds,
            workers=["worker0", "worker1", "worker2"],
            join_rate=3.0 / baseline.seconds,
            leave_rate=2.0 / baseline.seconds, min_workers=2)
        cluster = make_cluster(n_workers=3, **overrides)
        cluster.install_chaos(schedule)
        result = self._run_job(cluster)
        assert values_equal(sorted(baseline.value), sorted(result.value))

    def test_random_churn_schedule_is_deterministic(self):
        kwargs = dict(seed=13, duration_s=120.0,
                      workers=["w0", "w1", "w2"], join_rate=0.03,
                      leave_rate=0.02, min_workers=1)
        a = ChurnSchedule.random(**kwargs).events
        b = ChurnSchedule.random(**kwargs).events
        assert a == b
        kinds = {e.kind for e in a}
        assert kinds <= {FaultKind.WORKER_JOIN, FaultKind.WORKER_DRAIN,
                         FaultKind.WORKER_LEAVE}


class _DummyOp:
    name = "op"


class TestSchedulerFallback:
    """Satellite regression: reschedule when every healthy worker is in
    the avoid set must fall back deterministically, not arbitrarily."""

    def test_all_avoided_detection(self):
        sched = Scheduler(["w0", "w1"])
        assert sched.all_avoided(["w0", "w1"])
        assert not sched.all_avoided(["w0"])

    def test_fallback_prefers_least_recently_faulted(self):
        sched = Scheduler(["w0", "w1", "w2"])
        sched.note_fault("w0")   # oldest fault
        sched.note_fault("w2")
        sched.note_fault("w1")   # most recent fault
        vertex = ExecutionVertex(_DummyOp(), 0)
        picked = sched.reschedule(vertex, avoid=("w0", "w1", "w2"))
        assert picked == "w0"

    def test_fallback_never_faulted_wins(self):
        sched = Scheduler(["w0", "w1"])
        sched.note_fault("w0")
        vertex = ExecutionVertex(_DummyOp(), 0)
        assert sched.reschedule(vertex, avoid=("w0", "w1")) == "w1"

    def test_normal_path_still_avoids(self):
        sched = Scheduler(["w0", "w1"])
        vertex = ExecutionVertex(_DummyOp(), 0)
        assert sched.reschedule(vertex, avoid=("w0",)) == "w1"

    def test_single_worker_cluster_falls_back_to_it(self):
        sched = Scheduler(["w0"])
        sched.note_fault("w0")
        vertex = ExecutionVertex(_DummyOp(), 0)
        assert sched.reschedule(vertex, avoid=("w0",)) == "w0"


class TestAutoscaler:
    def test_pcie_bound_profile_actuates_immediately(self):
        cluster = make_cluster(n_workers=2)
        scaler = Autoscaler(cluster)
        before = cluster.tuning.pipeline_block_nbytes
        scaler.observe_profile(
            {"operators": {"gpu-map": {"class": "pcie_bound"}}})
        assert cluster.tuning.prefer_local_placement
        assert cluster.tuning.pipeline_block_nbytes == 2 * before
        assert [d.action for d in scaler.decisions] == ["prefer_cache"]

    def test_non_pcie_profile_is_ignored(self):
        cluster = make_cluster(n_workers=2)
        scaler = Autoscaler(cluster)
        scaler.observe_profile(
            {"operators": {"map": {"class": "cpu_bound"}}})
        assert not cluster.tuning.prefer_local_placement
        assert scaler.decisions == []

    def test_slot_pressure_adds_worker_with_cooldown_and_ceiling(self):
        cluster = make_cluster(n_workers=2)
        policy = AutoscalerPolicy(cooldown_s=5.0, max_workers=3)
        scaler = Autoscaler(cluster, policy)
        scaler._maybe_add_worker(pressure=2.0)
        assert len(cluster.member_names()) == 3
        # Cooldown: an immediate second trigger is a no-op.
        scaler._maybe_add_worker(pressure=2.0)
        assert len(cluster.member_names()) == 3
        # Ceiling: even past the cooldown the cluster never exceeds it.
        cluster.env.run(until=10.0)
        scaler._maybe_add_worker(pressure=2.0)
        assert len(cluster.member_names()) == 3
        assert [d.signal for d in scaler.decisions] == ["sched_bound"]

    def test_remote_reads_deepen_queue(self):
        cluster = make_cluster(n_workers=2, enable_tracing=True)
        scaler = Autoscaler(cluster)
        registry = cluster.obs.registry
        registry.counter("hdfs.reads", locality="remote").inc(9)
        registry.counter("hdfs.reads", locality="local").inc(1)
        before = cluster.tuning.pipeline_queue_blocks
        scaler._evaluate()
        assert cluster.tuning.pipeline_queue_blocks == 2 * before
        # The next window sees only the *delta*: no new reads, no action.
        scaler._evaluate()
        assert cluster.tuning.pipeline_queue_blocks == 2 * before

    def test_pressure_slope_falls_back_to_local_trend(self):
        cluster = make_cluster(n_workers=2)
        scaler = Autoscaler(cluster)
        for p in (0.1, 0.2, 0.3, 0.4):
            scaler._pressure_trend.update(p)
        assert scaler.pressure_slope() == pytest.approx(0.1)

    def test_pressure_slope_prefers_monitor_trends(self):
        cluster = make_cluster(n_workers=2, enable_monitoring=True)
        scaler = Autoscaler(cluster)
        s = cluster.obs.monitor.store.series("scheduler.slot_pressure",
                                             "gauge")
        for i in range(6):
            s.record(i, 0.2 * i)
            s.close(i)
        # The published gauge's trend wins over the local per-tick state.
        assert scaler.pressure_slope() == pytest.approx(0.2)

    def test_sustained_low_pressure_drains_a_worker(self):
        cluster = make_cluster(n_workers=3)
        policy = AutoscalerPolicy(low_pressure_windows=3, min_workers=2,
                                  cooldown_s=0.0)
        scaler = Autoscaler(cluster, policy)
        scaler._busy_seen = True      # as if the cluster had run tasks
        for _ in range(3):
            scaler._evaluate()        # idle cluster: pressure 0 each tick
        drains = [d for d in scaler.decisions if d.action == "drain_worker"]
        assert len(drains) == 1
        assert drains[0].signal == "low_pressure"
        cluster.env.run()             # let the drain process finish
        schedulable = [n for n in cluster.member_names()
                       if cluster.worker_is_schedulable(n)]
        assert len(schedulable) == 2

    def test_idle_from_birth_never_drains(self):
        # Before any load is observed (e.g. during the HDFS load phase)
        # low-pressure windows must not accumulate: draining there would
        # race in-flight block writes.
        cluster = make_cluster(n_workers=3)
        policy = AutoscalerPolicy(low_pressure_windows=1, min_workers=1,
                                  cooldown_s=0.0)
        scaler = Autoscaler(cluster, policy)
        for _ in range(5):
            scaler._evaluate()
        assert all(d.action != "drain_worker" for d in scaler.decisions)
        assert not scaler._busy_seen

    def test_min_workers_floor_blocks_drain(self):
        cluster = make_cluster(n_workers=2)
        policy = AutoscalerPolicy(low_pressure_windows=1, min_workers=2,
                                  cooldown_s=0.0)
        scaler = Autoscaler(cluster, policy)
        scaler._busy_seen = True
        for _ in range(5):
            scaler._evaluate()
        assert all(d.action != "drain_worker" for d in scaler.decisions)
        assert len(cluster.member_names()) == 2

    def test_scale_down_disabled_never_drains(self):
        cluster = make_cluster(n_workers=3)
        policy = AutoscalerPolicy(low_pressure_windows=1, scale_down=False,
                                  cooldown_s=0.0)
        scaler = Autoscaler(cluster, policy)
        scaler._busy_seen = True
        for _ in range(5):
            scaler._evaluate()
        assert all(d.action != "drain_worker" for d in scaler.decisions)

    def test_predictive_scale_down_drains_idle_worker_bit_identically(self):
        from repro.core import GFlinkCluster, GFlinkSession
        from repro.flink import ClusterConfig, CPUSpec
        from repro.workloads import KMeansWorkload

        def run(scaled):
            cluster = GFlinkCluster(ClusterConfig(
                n_workers=4, cpu=CPUSpec(cores=2),
                gpus_per_worker=("c2050",)))
            scaler = None
            if scaled:
                # slot_pressure_high=10 suppresses scale-up so the run
                # isolates the drain path; the inter-iteration submit
                # gaps of KMeans provide the sustained-idle windows.
                scaler = Autoscaler(cluster, AutoscalerPolicy(
                    interval_s=0.1, cooldown_s=1.0,
                    low_pressure_windows=3, min_workers=2,
                    slot_pressure_high=10.0))
                scaler.start()
            res = KMeansWorkload(real_elements=3000, iterations=3).run(
                GFlinkSession(cluster), "cpu")
            if scaler:
                scaler.stop()
            return res, scaler, cluster

        plain, _, _ = run(scaled=False)
        scaled, scaler, cluster = run(scaled=True)
        cluster.env.run()             # finish in-flight drain processes
        drains = [d for d in scaler.decisions
                  if d.action == "drain_worker"]
        assert drains, "sustained idle windows never triggered a drain"
        assert all(d.signal == "low_pressure" for d in drains)
        schedulable = [n for n in cluster.member_names()
                       if cluster.worker_is_schedulable(n)]
        assert len(schedulable) >= scaler.policy.min_workers
        assert len(schedulable) < 4
        assert values_equal(plain.value, scaled.value)

    def test_autoscaled_run_is_identical_and_never_slower(self):
        def run_job(cluster):
            session = FlinkSession(cluster)
            data = session.from_collection(list(range(80)), parallelism=8)
            return (data.map(lambda x: x * 2, name="double")
                        .map(lambda x: x - 1, name="dec")
                        .collect())

        fixed = run_job(make_cluster(n_workers=2))
        cluster = make_cluster(n_workers=2)
        scaler = Autoscaler(cluster, AutoscalerPolicy(
            interval_s=0.5, cooldown_s=0.5, max_workers=4,
            slot_pressure_high=1.01))
        scaler.start()
        result = run_job(cluster)
        scaler.stop()
        assert values_equal(sorted(fixed.value), sorted(result.value))
        assert result.seconds <= fixed.seconds + 1e-9


class TestEmptySchedules:
    """Satellite: an installed-but-empty schedule perturbs nothing, even
    with monitoring + tracing on under the pipelined executor."""

    def _run(self, schedule):
        cluster = make_cluster(n_workers=2, executor="pipelined",
                               enable_tracing=True, enable_monitoring=True)
        if schedule is not None:
            cluster.install_chaos(schedule)
        session = FlinkSession(cluster)
        data = session.from_collection(list(range(40)), parallelism=4)
        return data.map(lambda x: x + 7, name="add").collect()

    def test_empty_schedules_bit_identical_clock(self):
        plain = self._run(None)
        chaos = self._run(ChaosSchedule())
        churn = self._run(ChurnSchedule())
        assert plain.seconds == chaos.seconds == churn.seconds
        assert values_equal(plain.value, chaos.value)
        assert values_equal(plain.value, churn.value)


class TestRecoveryLatencyReport:
    def test_summary_has_percentiles_and_report_renders(self):
        from repro.flink.report import resilience_report
        cluster = make_cluster(n_workers=3, heartbeat_interval_s=0.05,
                               heartbeat_timeout_s=0.1,
                               retry_backoff_base_s=0.01)
        engine = cluster.install_chaos(
            ChaosSchedule().kill_worker("worker2", at=0.5))
        session = FlinkSession(cluster)
        data = session.from_collection(list(range(40)), parallelism=6) \
            .map(lambda x: x + 1, name="slow").persist()
        data.collect()
        cluster.env.run()
        summary = engine.summary()
        recovery = summary["recovery_latency_s"]
        assert recovery["count"] == 1.0
        assert recovery["p50"] >= 0.1  # at least the heartbeat timeout
        assert recovery["p99"] >= recovery["p50"]
        assert summary["per_event"][0]["kind"] == "worker-kill"
        assert "declare" in summary["per_event"][0]["actions"]

        class _Result:
            job_metrics = []
            total_seconds = 1.0
        text = resilience_report(engine, _Result())
        assert "recovery latency" in text
