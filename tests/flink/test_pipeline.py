"""Streaming block-pipelined executor (docs/STREAMING_EXECUTOR.md).

Covers the executor's contracts:

* ``BlockStream`` is a bounded channel: backpressure caps the producer at
  ``capacity`` blocks ahead of the slowest consumer, the demand override
  keeps mismatched granularities deadlock-free, and every transition is
  idempotent so retried attempts can replay;
* ``pipeline_regions`` groups operators along streaming edges and cuts at
  shuffles;
* staged and pipelined executors produce **bit-identical** results across
  the workload matrix (two planes, one result) while the pipelined clock
  never loses;
* a consumer wave overlaps its producer wave (the behavior
  tests/flink/test_runtime_timing.py pins its staged-only tests against);
* queue/backpressure stats surface in the metrics registry;
* a worker killed mid-pipeline recovers to an identical result.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.simclock import Environment
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig, FlinkSession, \
    OpCost
from repro.flink.chaos import ChaosSchedule, values_equal
from repro.flink.optimizer import pipeline_regions
from repro.flink.pipeline import BlockStream, _split_chunks
from repro.flink.plan import (
    CollectionSource,
    CollectSink,
    DistinctOp,
    MapOp,
    UnionOp,
    topological_order,
)
from repro.workloads import (
    KMeansWorkload,
    PageRankWorkload,
    PointAddWorkload,
    SpMVWorkload,
    WordCountWorkload,
)
from tests.flink.conftest import make_cluster


class TestSplitChunks:
    def test_preserves_totals_and_block_boundaries(self):
        blocks = [10.0, 3.0, 0.0, 7.0]
        chunks = _split_chunks(blocks, 4.0)
        assert sum(chunks) == pytest.approx(sum(blocks))
        # Block boundaries coincide with chunk boundaries: the cumulative
        # sums of the original blocks all appear in the chunked cumsum.
        cum, cums = 0.0, set()
        for c in chunks:
            cum += c
            cums.add(round(cum, 9))
        acc = 0.0
        for b in blocks:
            acc += b
            assert round(acc, 9) in cums
        assert all(c <= 4.0 + 1e-9 for c in chunks)

    def test_every_block_yields_at_least_one_chunk(self):
        # Blocks smaller than the chunk size pass through unsplit (even
        # empty ones — their chunk just carries zero bytes).
        assert _split_chunks([1.0, 0.0, 2.0], 8.0) == [1.0, 0.0, 2.0]

    def test_equal_split_within_block(self):
        chunks = _split_chunks([10.0], 4.0)
        assert len(chunks) == 3
        assert sum(chunks) == pytest.approx(10.0)
        assert max(chunks) - min(chunks) < 1e-9 + 10.0 / 3 * 1e-9 + 1e-9


class TestBlockStream:
    def test_backpressure_blocks_producer_at_capacity(self):
        env = Environment()
        stream = BlockStream(env, [1.0] * 8, capacity=2, n_subscribers=1)
        assert stream.reserve(0).triggered
        stream.publish(0)
        assert stream.reserve(1).triggered
        stream.publish(1)
        evt = stream.reserve(2)
        assert not evt.triggered  # two ahead of the consumer's cursor
        stream.ack(0, 1)  # consumer finishes block 0 -> credit returns
        assert evt.triggered

    def test_demand_override_unblocks_exactly_enough(self):
        env = Environment()
        stream = BlockStream(env, [1.0] * 8, capacity=1, n_subscribers=1)
        stream.publish(0)
        evt = stream.reserve(1)
        assert not evt.triggered
        # A consumer waiting for three blocks' worth of bytes lets the
        # producer run ahead exactly far enough to satisfy it -- and no
        # further.  Without this, a GPU stream assembling one large device
        # block out of many small host blocks would deadlock.
        waiter = stream.when_nbytes(3.0)
        assert not waiter.triggered
        assert evt.triggered
        assert stream.reserve(2).triggered
        assert not stream.reserve(3).triggered

    def test_depth_stays_bounded_under_a_slow_consumer(self):
        env = Environment()
        stream = BlockStream(env, [1.0] * 16, capacity=3, n_subscribers=1)

        def producer():
            for k in range(16):
                yield stream.reserve(k)
                yield env.timeout(0.01)
                stream.publish(k)
            stream.close()

        def consumer():
            for k in range(16):
                yield stream.when_blocks(k + 1)
                yield env.timeout(1.0)  # 100x slower than the producer
                stream.ack(0, k + 1)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert stream.published == 16
        assert stream.max_depth <= 3

    def test_replay_is_idempotent(self):
        env = Environment()
        stream = BlockStream(env, [1.0] * 4, capacity=4, n_subscribers=1)
        stream.publish(2)  # publish is cumulative: blocks 0..2 resident
        assert stream.published == 3
        stream.publish(0)  # a retried attempt replaying an early block
        assert stream.published == 3
        stream.ack(0, 3)
        stream.ack(0, 1)  # replayed ack never moves a cursor backwards
        assert stream.depth == 0

    def test_close_resolves_every_waiter(self):
        env = Environment()
        stream = BlockStream(env, [1.0] * 4, capacity=1, n_subscribers=1)
        waiter = stream.when_nbytes(4.0)
        credit = stream.reserve(3)
        assert not waiter.triggered
        stream.close()
        assert waiter.triggered and credit.triggered
        # Late waiters on a closed stream fire immediately.
        assert stream.when_blocks(4).triggered

    def test_thresholds_clamp_to_the_total(self):
        env = Environment()
        stream = BlockStream(env, [2.0, 2.0], capacity=2, n_subscribers=1)
        waiter = stream.when_nbytes(1e9)  # more than the stream holds
        stream.publish(1)
        assert waiter.triggered
        assert stream.cum_nbytes(99) == pytest.approx(4.0)


class TestPipelineRegions:
    def test_forward_chain_is_one_region(self):
        src = CollectionSource([1, 2], 8.0)
        m1 = MapOp(src, lambda x: x, OpCost(), name="m1")
        m2 = MapOp(m1, lambda x: x, OpCost(), name="m2")
        sink = CollectSink(m2)  # gather edge: its own (barrier) region
        regions = pipeline_regions(topological_order([sink]))
        assert [{op.name for op in r} for r in regions] == \
            [{src.name, "m1", "m2"}, {sink.name}]

    def test_hash_edge_cuts_the_region(self):
        src = CollectionSource([1, 2], 8.0)
        m = MapOp(src, lambda x: x, OpCost(), name="m")
        d = DistinctOp(m, name="d")  # hash shuffle: barrier edge
        sink = CollectSink(d)  # gather: another barrier
        regions = pipeline_regions(topological_order([sink]))
        assert [{op.name for op in r} for r in regions] == \
            [{src.name, "m"}, {"d"}, {sink.name}]

    def test_union_merges_its_branches(self):
        left = CollectionSource([1], 8.0, name="left")
        right = CollectionSource([2], 8.0, name="right")
        u = UnionOp(MapOp(left, lambda x: x, OpCost(), name="ml"),
                    MapOp(right, lambda x: x, OpCost(), name="mr"))
        sink = CollectSink(u)
        regions = pipeline_regions(topological_order([sink]))
        merged = [r for r in regions if any(op is u for op in r)]
        assert len(merged) == 1
        assert {op.name for op in merged[0]} >= {"left", "right", "ml", "mr"}


def dual_cluster(executor, **flink_overrides):
    config = ClusterConfig(n_workers=2, cpu=CPUSpec(cores=2),
                           gpus_per_worker=("c2050", "k20"),
                           flink=FlinkConfig(executor=executor,
                                             **flink_overrides))
    return GFlinkCluster(config)


MATRIX = [
    ("kmeans-gpu", "gpu", lambda: KMeansWorkload(
        nominal_elements=5e6, real_elements=4000, iterations=3)),
    ("pagerank-gpu", "gpu", lambda: PageRankWorkload(
        nominal_pages=1e5, real_pages=500, iterations=3)),
    ("spmv-gpu", "gpu", lambda: SpMVWorkload(
        nominal_elements=4000, real_elements=4000, iterations=3)),
    ("wordcount-gpu", "gpu", lambda: WordCountWorkload(
        nominal_elements=1e6, real_elements=8000)),
    ("wordcount-cpu", "cpu", lambda: WordCountWorkload(
        nominal_elements=1e6, real_elements=8000)),
    ("pointadd-gpu", "gpu", lambda: PointAddWorkload(
        nominal_elements=1e5, real_elements=2000, iterations=3)),
]


class TestStagedVsPipelined:
    @pytest.mark.parametrize("name,mode,factory", MATRIX,
                             ids=[m[0] for m in MATRIX])
    def test_results_bit_identical_and_never_slower(self, name, mode,
                                                    factory):
        staged = factory().run(
            GFlinkSession(dual_cluster("staged")), mode)
        piped = factory().run(
            GFlinkSession(dual_cluster("pipelined")), mode)
        # One data plane, two clocks: the values agree exactly, not just
        # within tolerance.
        assert values_equal(staged.value, piped.value), name
        assert staged.iterations == piped.iterations
        # Overlap can hide latency but never add it.
        assert piped.total_seconds <= staged.total_seconds + 1e-9

    def test_hdfs_scan_strictly_faster_pipelined(self):
        # A multi-block HDFS scan is where the pipeline pays: the read
        # window hides deserialization and per-block downstream charges.
        factory = lambda: WordCountWorkload(  # noqa: E731
            nominal_elements=1e8, real_elements=8000)
        staged = factory().run(GFlinkSession(dual_cluster("staged")), "gpu")
        piped = factory().run(
            GFlinkSession(dual_cluster("pipelined")), "gpu")
        assert values_equal(staged.value, piped.value)
        assert piped.total_seconds < staged.total_seconds

    def test_consumer_wave_overlaps_producer_wave(self):
        # Collection-fed consumers gate on their own producer's FINAL, not
        # on the whole producer wave -- so with more subtasks than slots
        # the map wave starts while the source wave's tail is still
        # running.  (This is why test_runtime_timing pins its exact
        # phase-ratio tests to executor="staged".)
        def runtime(executor):
            cluster = make_cluster(n_workers=1, cores=2, executor=executor)
            sess = FlinkSession(cluster)
            ds = sess.from_collection(list(range(1000)), element_nbytes=8.0,
                                      scale=1e4, parallelism=4)
            return ds.map(lambda x: x,
                          cost=OpCost(flops_per_element=100.0),
                          name="m").count()

        staged, piped = runtime("staged"), runtime("pipelined")
        assert staged.value == piped.value
        assert piped.seconds <= staged.seconds + 1e-9


class TestPipelineObservability:
    def test_queue_stats_reach_the_registry(self):
        cluster = dual_cluster("pipelined", enable_tracing=True,
                               pipeline_block_nbytes=64 * 1024.0)
        WordCountWorkload(nominal_elements=1e7, real_elements=4000).run(
            GFlinkSession(cluster), "gpu")
        reg = cluster.obs.registry
        depth = reg.sum_values("pipeline.queue.max_depth")
        assert depth >= 1  # blocks really were in flight
        # Backpressure counters may legitimately be zero here; they must
        # at least be absent-or-nonnegative, never negative.
        assert reg.sum_values("pipeline.backpressure.stalls") >= 0
        assert reg.sum_values("pipeline.backpressure.blocks") >= 0

    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigError):
            FlinkConfig(executor="bogus")


class TestPipelinedChaos:
    def test_worker_kill_midpipeline_recovers_identically(self):
        factory = lambda: PointAddWorkload(  # noqa: E731
            nominal_elements=6000, real_elements=6000, iterations=3)

        def cluster():
            return dual_cluster("pipelined",
                                heartbeat_interval_s=0.05,
                                heartbeat_timeout_s=0.2,
                                retry_backoff_base_s=0.01)

        baseline = factory().run(GFlinkSession(cluster()), "gpu")
        chaotic = cluster()
        engine = chaotic.install_chaos(ChaosSchedule().kill_worker(
            "worker1", at=baseline.total_seconds / 2))
        result = factory().run(GFlinkSession(chaotic), "gpu")
        assert values_equal(baseline.value, result.value)
        assert engine.summary()["events_applied"] == 1
        assert not chaotic.workers["worker1"].alive
