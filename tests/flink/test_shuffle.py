"""Unit and property tests for the exchange layer."""

import pytest
from hypothesis import given, strategies as st

from repro.common import Environment
from repro.common.network import Network, NetworkConfig
from repro.flink.partition import Partition, split_evenly
from repro.flink.plan import ShipStrategy
from repro.flink.serialization import Serializer
from repro.flink.shuffle import Exchange, hash_bucket

WORKERS = ["w0", "w1"]


def make_exchange(env, strategy, producers, n_consumers, **kw):
    net = Network(env, WORKERS, NetworkConfig(latency_s=0.0))
    ser = Serializer(1e9)
    consumer_workers = [WORKERS[j % len(WORKERS)] for j in range(n_consumers)]
    return Exchange(env, net, ser, strategy, producers, n_consumers,
                    consumer_workers, **kw)


def run(env, exchange):
    proc = env.process(exchange.run())
    return env.run(until=proc)


def parts(elements, n, worker_cycle=WORKERS, element_nbytes=8.0, scale=1.0):
    ps = split_evenly(elements, n, element_nbytes, scale)
    for p in ps:
        p.worker = worker_cycle[p.index % len(worker_cycle)]
    return ps


class TestHashBucket:
    @given(st.integers())
    def test_int_keys_modulo(self, key):
        assert hash_bucket(key, 7) == key % 7

    @given(st.text(max_size=30), st.integers(min_value=1, max_value=64))
    def test_in_range_and_stable(self, key, n):
        b = hash_bucket(key, n)
        assert 0 <= b < n
        assert hash_bucket(key, n) == b

    def test_tuple_keys_supported(self):
        assert 0 <= hash_bucket(("a", 3), 5) < 5


class TestExchangeStrategies:
    def test_hash_partitions_by_key(self):
        env = Environment()
        producers = parts([(i % 6, i) for i in range(60)], 3)
        ex = make_exchange(env, ShipStrategy.HASH, producers, 4,
                           key_fn=lambda kv: kv[0])
        result = run(env, ex)
        assert len(result.inputs) == 4
        seen = []
        for j, part in enumerate(result.inputs):
            for key, _ in part.elements:
                assert hash_bucket(key, 4) == j
            seen.extend(part.elements)
        assert sorted(seen) == sorted((i % 6, i) for i in range(60))

    def test_gather_collects_everything_to_one(self):
        env = Environment()
        producers = parts(list(range(30)), 3)
        ex = make_exchange(env, ShipStrategy.GATHER, producers, 1)
        result = run(env, ex)
        assert sorted(result.inputs[0].elements) == list(range(30))

    def test_rebalance_even_split(self):
        env = Environment()
        producers = parts(list(range(100)), 2)
        ex = make_exchange(env, ShipStrategy.REBALANCE, producers, 4)
        result = run(env, ex)
        sizes = [len(p.elements) for p in result.inputs]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 2

    def test_broadcast_full_copy_everywhere(self):
        env = Environment()
        producers = parts(list(range(10)), 2)
        ex = make_exchange(env, ShipStrategy.BROADCAST, producers, 3)
        result = run(env, ex)
        for part in result.inputs:
            assert sorted(part.elements) == list(range(10))

    def test_forward_parallelism_mismatch_rejected(self):
        env = Environment()
        producers = parts(list(range(10)), 2)
        ex = make_exchange(env, ShipStrategy.FORWARD, producers, 3)
        with pytest.raises(ValueError):
            run(env, ex)

    def test_combiner_shrinks_traffic(self):
        def traffic(combiner):
            env = Environment()
            producers = parts([(i % 2, 1) for i in range(200)], 2,
                              element_nbytes=100.0)
            ex = make_exchange(env, ShipStrategy.HASH, producers, 2,
                               key_fn=lambda kv: kv[0], combiner=combiner)
            result = run(env, ex)
            total = sorted(x for p in result.inputs for x in p.elements)
            return result.bytes_shuffled, total

        raw_bytes, _ = traffic(None)
        combined_bytes, combined = traffic(
            (lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1])))
        assert combined_bytes < raw_bytes
        # The exchange ships one partial per (producer, key); the consumer
        # operator merges them.  Totals must be preserved.
        totals = {}
        for key, value in combined:
            totals[key] = totals.get(key, 0) + value
        assert totals == {0: 100, 1: 100}

    def test_nominal_scale_preserved_through_hash(self):
        env = Environment()
        producers = parts(list(range(50)), 2, scale=100.0)
        ex = make_exchange(env, ShipStrategy.HASH, producers, 2,
                           key_fn=lambda x: x)
        result = run(env, ex)
        total_nominal = sum(p.nominal_count for p in result.inputs)
        assert total_nominal == pytest.approx(50 * 100.0)

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=0, max_size=200),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    def test_hash_exchange_preserves_multiset(self, elements, p, q):
        env = Environment()
        producers = parts(list(elements), p)
        ex = make_exchange(env, ShipStrategy.HASH, producers, q,
                           key_fn=lambda x: x)
        result = run(env, ex)
        out = sorted(x for part in result.inputs for x in part.elements)
        assert out == sorted(elements)
