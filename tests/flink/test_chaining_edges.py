"""Edge cases of CPU operator chaining (FusedMapOp) at execution time.

The plan-level detection rules live in ``tests/flink/test_optimizer.py``;
these tests run the fused chains and check the tricky inputs: empty
partitions, persisted boundaries, fan-out, explicit parallelism, and
vectorized UDFs handing ndarrays (or nothing) to a downstream stage.
"""

import numpy as np

from repro.flink import ClusterConfig, CPUSpec, FlinkConfig, FlinkSession
from repro.flink.iterators import (
    apply_filter,
    apply_flat_map,
    apply_map,
    vectorized,
)
from repro.flink.runtime import Cluster


def chained_session(enable=True, cores=2):
    flink = FlinkConfig(enable_chaining=enable)
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=cores), flink=flink)
    return FlinkSession(Cluster(config))


def both_ways(build):
    """Run ``build(session)`` chained and unchained; return both values."""
    results = {}
    for enable in (True, False):
        results[enable] = build(chained_session(enable))
    return results[True], results[False]


class TestEmptyPartitions:
    def test_empty_partitions_flow_through_chain(self):
        def run(session):
            # 2 elements over 4 slots: at least two subtasks see no data.
            return sorted(
                session.from_collection([1, 2], parallelism=4)
                .map(lambda x: x + 1)
                .filter(lambda x: x % 2 == 0)
                .flat_map(lambda x: [x, x])
                .collect().value)

        chained, unchained = both_ways(run)
        assert chained == unchained == [2, 2]

    def test_fully_empty_dataset(self):
        def run(session):
            return session.from_collection([], parallelism=2) \
                .map(lambda x: x) \
                .flat_map(lambda x: [x]) \
                .collect().value

        chained, unchained = both_ways(run)
        assert chained == unchained == []

    def test_filter_to_empty_mid_chain(self):
        def run(session):
            return session.from_collection(list(range(8)), parallelism=2) \
                .map(lambda x: x + 1) \
                .filter(lambda x: x > 100) \
                .map(lambda x: x * 2) \
                .collect().value

        chained, unchained = both_ways(run)
        assert chained == unchained == []


class TestPersistBoundary:
    def test_persisted_midpoint_reused_across_jobs(self):
        session = chained_session(True)
        mid = session.from_collection(list(range(20))) \
            .map(lambda x: x + 1).map(lambda x: x * 2)
        mid.persist()
        first = sorted(mid.flat_map(lambda x: [x]).collect().value)
        second = sorted(mid.map(lambda x: x + 1).collect().value)
        assert first == sorted((np.arange(20) + 1) * 2)
        assert second == sorted((np.arange(20) + 1) * 2 + 1)

    def test_persisted_op_keeps_own_span(self):
        session = chained_session(True)
        mid = session.from_collection([1, 2, 3]).map(lambda x: x, name="pre")
        mid.persist()
        result = mid.map(lambda x: x, name="a") \
            .map(lambda x: x, name="b").collect()
        names = [s.name for s in result.metrics.operator_spans.values()]
        assert "pre" in names                       # not absorbed
        assert any(n.startswith("chain(") for n in names)  # a->b fused


class TestFanOut:
    def test_shared_producer_consumed_by_two_branches(self):
        def run(session):
            shared = session.from_collection(list(range(10))) \
                .map(lambda x: x + 1)
            left = shared.map(lambda x: x * 2).map(lambda x: x + 3)
            right = shared.filter(lambda x: x % 2 == 0)
            return sorted(left.union(right).collect().value)

        chained, unchained = both_ways(run)
        assert chained == unchained
        expected = sorted([(x + 1) * 2 + 3 for x in range(10)]
                          + [x + 1 for x in range(10) if (x + 1) % 2 == 0])
        assert chained == expected

    def test_branches_fuse_but_shared_survives(self):
        session = chained_session(True)
        shared = session.from_collection([1, 2, 3]) \
            .map(lambda x: x, name="shared")
        left = shared.map(lambda x: x, name="l1").map(lambda x: x, name="l2")
        result = left.union(shared.map(lambda x: x, name="r1")).collect()
        names = [s.name for s in result.metrics.operator_spans.values()]
        assert "shared" in names
        assert any("l1" in n and n.startswith("chain(") for n in names)


class TestExplicitParallelism:
    def test_pinned_stage_results_identical(self):
        def run(session):
            return sorted(
                session.from_collection(list(range(30)), parallelism=2)
                .map(lambda x: x + 1)
                # Explicitly pinned (even at the same degree): FORWARD
                # needs equal parallelism, but explicitness breaks fusion.
                .map(lambda x: x * 2, parallelism=2)
                .map(lambda x: x - 1)
                .collect().value)

        chained, unchained = both_ways(run)
        assert chained == unchained
        assert chained == sorted((x + 1) * 2 - 1 for x in range(30))

    def test_pinned_stage_not_inside_a_chain(self):
        session = chained_session(True, cores=4)
        result = session.from_collection(list(range(12)), parallelism=4) \
            .map(lambda x: x, name="a") \
            .map(lambda x: x, name="pinned", parallelism=4) \
            .map(lambda x: x, name="b").collect()
        names = [s.name for s in result.metrics.operator_spans.values()]
        assert "pinned" in names
        assert not any("pinned" in n and n.startswith("chain(")
                       for n in names)


class TestVectorizedUdfsInChains:
    def test_vectorized_flat_map_ndarray_through_chain(self):
        doubler = vectorized(lambda xs: np.repeat(np.asarray(xs), 2))

        def run(session):
            return sorted(
                session.from_collection(np.arange(10.0), element_nbytes=8,
                                        parallelism=2)
                .map(lambda x: x + 1)
                .flat_map(doubler)
                .map(lambda x: x * 10)
                .collect().value)

        chained, unchained = both_ways(run)
        assert chained == unchained
        assert chained == sorted(np.repeat(np.arange(10.0) + 1, 2) * 10)

    def test_vectorized_flat_map_none_means_empty(self):
        drop_all = vectorized(lambda xs: None)

        def run(session):
            return session.from_collection(list(range(10)), parallelism=2) \
                .flat_map(drop_all) \
                .map(lambda x: x) \
                .collect().value

        chained, unchained = both_ways(run)
        assert chained == unchained == []


class TestIteratorNormalization:
    """The ``apply_*`` helpers normalize missing/empty payloads uniformly."""

    def test_none_payload_becomes_empty_list(self):
        assert apply_map(None, lambda x: x) == []
        assert apply_filter(None, lambda x: True) == []
        assert apply_flat_map(None, lambda x: [x]) == []

    def test_empty_ndarray_keeps_dtype(self):
        empty = np.array([], dtype=np.float64)
        out = apply_map(empty, lambda x: x)
        assert isinstance(out, np.ndarray) and out.dtype == np.float64
        out = apply_filter(empty, lambda x: True)
        assert isinstance(out, np.ndarray)
        assert apply_flat_map(empty, lambda x: [x]) == []

    def test_flat_map_coerces_ndarray_and_generator(self):
        arr_udf = vectorized(lambda xs: np.asarray(xs) * 2)
        out = apply_flat_map(np.arange(3.0), arr_udf)
        assert isinstance(out, list) and out == [0.0, 2.0, 4.0]
        gen_udf = vectorized(lambda xs: (x for x in xs))
        assert apply_flat_map([1, 2], gen_udf) == [1, 2]
