"""Tests for the extended DataSet operators: union, distinct, first,
sort_partition, cross, co_group and the aggregate shorthands."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flink import FlinkSession
from tests.flink.conftest import make_cluster


class TestUnion:
    def test_union_concatenates(self, session):
        a = session.from_collection([1, 2, 3])
        b = session.from_collection([4, 5])
        result = a.union(b).collect()
        assert sorted(result.value) == [1, 2, 3, 4, 5]

    def test_union_then_transform(self, session):
        a = session.from_collection([1, 2])
        b = session.from_collection([3])
        result = a.union(b).map(lambda x: x * 10).collect()
        assert sorted(result.value) == [10, 20, 30]

    def test_union_count_respects_scale(self, session):
        a = session.from_collection([1] * 10, scale=100.0)
        b = session.from_collection([2] * 5, scale=10.0)
        result = a.union(b).count()
        assert result.value == pytest.approx(10 * 100 + 5 * 10)

    def test_union_is_cheap(self, session):
        # No serde/shuffle: union of co-located partitions moves no bytes.
        a = session.from_collection(list(range(100)), element_nbytes=1000)
        b = session.from_collection(list(range(100)), element_nbytes=1000)
        result = a.union(b).count()
        assert result.metrics.shuffle_bytes < 10_000

    def test_cross_session_union_rejected(self, session):
        other = FlinkSession(make_cluster())
        with pytest.raises(ValueError):
            session.from_collection([1]).union(other.from_collection([2]))


class TestDistinct:
    def test_distinct_values(self, session):
        data = [1, 2, 2, 3, 3, 3, 4]
        result = session.from_collection(data).distinct().collect()
        assert sorted(result.value) == [1, 2, 3, 4]

    def test_distinct_by_key(self, session):
        data = [("a", 1), ("a", 2), ("b", 3)]
        result = session.from_collection(data) \
            .distinct(key_fn=lambda kv: kv[0]).collect()
        keys = sorted(kv[0] for kv in result.value)
        assert keys == ["a", "b"]

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=60))
    @settings(max_examples=15, deadline=None)
    def test_distinct_property(self, data):
        session = FlinkSession(make_cluster())
        result = session.from_collection(list(data)).distinct().collect()
        assert sorted(result.value) == sorted(set(data))


class TestFirstN:
    def test_first_n(self, session):
        result = session.from_collection(list(range(100))).first(5).collect()
        assert len(result.value) == 5
        assert set(result.value) <= set(range(100))

    def test_first_more_than_available(self, session):
        result = session.from_collection([1, 2]).first(10).collect()
        assert sorted(result.value) == [1, 2]

    def test_first_invalid_n(self, session):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            session.from_collection([1]).first(0)

    def test_first_ships_little(self, session):
        ds = session.from_collection(list(range(1000)),
                                     element_nbytes=10_000)
        result = ds.first(3).collect()
        # Producers truncate before shipping: far less than the dataset.
        assert result.metrics.shuffle_bytes < 1000 * 10_000 / 2


class TestSortPartition:
    def test_each_partition_sorted(self, session):
        data = [5, 3, 8, 1, 9, 2, 7, 4]
        result = session.from_collection(data, parallelism=2) \
            .map_partition(lambda e: list(e)) \
            .sort_partition().map_partition(
                lambda e: [list(e)]).collect()
        for partition in result.value:
            assert partition == sorted(partition)

    def test_sort_by_key_reverse(self, session):
        data = [("a", 3), ("b", 1), ("c", 2)]
        result = session.from_collection(data, parallelism=1) \
            .sort_partition(key_fn=lambda kv: kv[1], reverse=True).collect()
        assert [kv[1] for kv in result.value] == [3, 2, 1]

    def test_sort_ndarray_partition(self, session):
        data = np.array([3.0, 1.0, 2.0])
        result = session.from_collection(data, parallelism=1) \
            .sort_partition().collect()
        assert result.value == [1.0, 2.0, 3.0]

    def test_sort_charges_nlogn(self):
        from repro.flink import OpCost
        cluster = make_cluster(n_workers=1, cores=1)
        session = FlinkSession(cluster)
        ds = session.from_collection(list(range(64)), element_nbytes=0.0,
                                     scale=1e5, parallelism=1)
        result = ds.sort_partition(
            cost=OpCost(flops_per_element=0.0), name="s").count()
        span = result.metrics.span_of("s").seconds
        n = 64 * 1e5
        expected = n * np.log2(n) * cluster.config.flink.element_overhead_s
        overhead = (cluster.config.flink.task_schedule_s
                    + cluster.config.flink.task_deploy_s)
        assert span == pytest.approx(expected + overhead, rel=1e-6)


class TestCrossAndCoGroup:
    def test_cross_product(self, session):
        a = session.from_collection([1, 2], parallelism=1)
        b = session.from_collection(["x", "y"], parallelism=1)
        result = a.cross(b).collect()
        assert sorted(result.value) == [(1, "x"), (1, "y"),
                                        (2, "x"), (2, "y")]

    def test_cross_with_fn(self, session):
        a = session.from_collection([1, 2], parallelism=1)
        b = session.from_collection([10], parallelism=1)
        result = a.cross(b, cross_fn=lambda l, r: l * r).collect()
        assert sorted(result.value) == [10, 20]

    def test_co_group(self, session):
        left = session.from_collection([("k1", 1), ("k2", 2), ("k1", 3)])
        right = session.from_collection([("k1", 10), ("k3", 30)])
        result = left.co_group(
            right, lambda kv: kv[0], lambda kv: kv[0],
            lambda key, ls, rs: (key, len(ls), len(rs))).collect()
        assert sorted(result.value) == [("k1", 2, 1), ("k2", 1, 0),
                                        ("k3", 0, 1)]


class TestAggregateShorthands:
    def test_sum(self, session):
        result = session.from_collection(list(range(10))).sum().collect()
        assert result.value == [45]

    def test_sum_with_extractor(self, session):
        data = [("a", 2), ("b", 3)]
        result = session.from_collection(data) \
            .sum(lambda kv: kv[1]).collect()
        assert result.value == [5]

    def test_min_max(self, session):
        data = [("a", 5), ("b", 1), ("c", 9)]
        lo = session.from_collection(data).min(lambda kv: kv[1]).collect()
        hi = session.from_collection(data).max(lambda kv: kv[1]).collect()
        assert lo.value == [("b", 1)]
        assert hi.value == [("c", 9)]

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1,
                    max_size=50))
    @settings(max_examples=15, deadline=None)
    def test_sum_property(self, data):
        session = FlinkSession(make_cluster())
        result = session.from_collection(list(data)).sum().collect()
        assert result.value == [sum(data)]
