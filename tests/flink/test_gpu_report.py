"""Tests for the GPU utilization report and wrapper-level CUDA events."""

import numpy as np
import pytest

from repro.common import Environment
from repro.core import GFlinkCluster, GFlinkSession
from repro.core.channels import CommCosts, CUDAWrapper
from repro.flink import ClusterConfig, CPUSpec
from repro.flink.report import gpu_report
from repro.gpu import CUDARuntime, GPUDevice, KernelRegistry, KernelSpec, TESLA_C2050


class TestGpuReport:
    def test_report_after_gpu_job(self):
        cluster = GFlinkCluster(ClusterConfig(
            n_workers=2, cpu=CPUSpec(cores=2),
            gpus_per_worker=("c2050",)))
        session = GFlinkSession(cluster)
        session.register_kernel(KernelSpec(
            "double", lambda i, p: {"out": i["in"] * 2.0},
            flops_per_element=2.0, efficiency=0.5))
        data = np.arange(2000, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8,
                                     parallelism=2).persist()
        ds.materialize()
        ds.gpu_map_partition("double", cache=True,
                             cache_key_base="r").count()
        ds.gpu_map_partition("double", cache=True,
                             cache_key_base="r").count()
        text = gpu_report(cluster)
        assert "worker0-gpu0" in text
        assert "cache hit%" in text
        # Second run hit the cache: a non-n/a hit percentage appears.
        assert "%" in text.splitlines()[1] or "%" in text

        # The report reads cache state through the public API only.
        gm = cluster.gpu_managers()[0]
        assert len(gm.gmm.apps()) == 1
        stats = gm.gmm.cache_stats()
        assert set(stats) == {d.index for d in gm.devices}
        total_probes = sum(s.probes for s in stats.values())
        assert total_probes > 0
        assert any(s.hit_rate is not None and s.hit_rate > 0
                   for s in stats.values())

    def test_report_without_gpus(self):
        cluster = GFlinkCluster(ClusterConfig(n_workers=1))
        assert gpu_report(cluster) == "no GPUs in this cluster"


class TestWrapperEvents:
    def test_event_record_and_synchronize(self):
        env = Environment()
        device = GPUDevice(env, TESLA_C2050)
        runtime = CUDARuntime(env, [device], KernelRegistry())
        wrapper = CUDAWrapper(env, runtime, CommCosts())
        stream = wrapper.cuda_stream_create(device)

        def op():
            yield env.timeout(1.5)

        stream.enqueue(op)
        marker = wrapper.cuda_event_record(stream)

        def waiter():
            yield wrapper.cuda_event_synchronize(marker)
            return env.now

        p = env.process(waiter())
        assert env.run(until=p) == 1.5
        assert wrapper.jni_calls >= 3  # stream create + record + sync
