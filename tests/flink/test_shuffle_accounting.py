"""Exchange accounting: traffic bookkeeping, columnar zero-copy, spill.

Companion to test_shuffle.py (functional routing): these tests pin down the
*accounting* semantics of the exchange layer — when bytes count as shuffled,
how sampled (scaled) partitions charge the wire, how merged partitions size
their elements, and what the columnar zero-copy and HDFS-spill paths record.
"""

import numpy as np
import pytest

from repro.common import Environment
from repro.common.network import Network, NetworkConfig
from repro.flink.config import FlinkConfig
from repro.flink.iterators import vectorized
from repro.flink.partition import Partition, split_evenly
from repro.flink.plan import ShipStrategy
from repro.flink.serialization import Serializer
from repro.flink.shuffle import COUNT_COMBINER, Exchange
from repro.hdfs import HDFS, DiskConfig

WORKERS = ["w0", "w1"]


def make_exchange(env, strategy, producers, n_consumers, net=None,
                  consumer_workers=None, **kw):
    net = net or Network(env, WORKERS, NetworkConfig(latency_s=0.0))
    ser = Serializer(1e9)
    if consumer_workers is None:
        consumer_workers = [WORKERS[j % len(WORKERS)]
                            for j in range(n_consumers)]
    return Exchange(env, net, ser, strategy, producers, n_consumers,
                    consumer_workers, **kw)


def run(env, exchange):
    proc = env.process(exchange.run())
    return env.run(until=proc)


def parts(elements, n, worker_cycle=WORKERS, element_nbytes=8.0, scale=1.0):
    ps = split_evenly(elements, n, element_nbytes, scale)
    for p in ps:
        p.worker = worker_cycle[p.index % len(worker_cycle)]
    return ps


def part(index, elements, worker, element_nbytes=8.0, scale=1.0):
    return Partition(index=index, elements=elements,
                     element_nbytes=element_nbytes, scale=scale,
                     worker=worker)


class TestBytesShuffledLocality:
    def test_local_gather_is_free_remote_is_counted(self):
        # Consumer 0 lives on w0: the w0 producer's bytes are a local move,
        # only the w1 producer crosses the wire.
        env = Environment()
        producers = [part(0, list(range(10)), "w0"),
                     part(1, list(range(10, 20)), "w1")]
        ex = make_exchange(env, ShipStrategy.GATHER, producers, 1,
                           consumer_workers=["w0"])
        result = run(env, ex)
        assert result.bytes_shuffled == pytest.approx(10 * 8.0)
        assert sorted(result.inputs[0].elements) == list(range(20))

    def test_all_local_shuffles_zero_bytes(self):
        env = Environment()
        producers = [part(0, list(range(10)), "w0"),
                     part(1, list(range(10, 20)), "w0")]
        ex = make_exchange(env, ShipStrategy.GATHER, producers, 1,
                           consumer_workers=["w0"])
        result = run(env, ex)
        assert result.bytes_shuffled == 0.0


class TestCombinerAccounting:
    COMBINER = (lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))

    def _run_scaled(self, scale):
        env = Environment()
        producers = parts([(i % 4, 1) for i in range(80)], 2,
                          element_nbytes=10.0, scale=scale)
        ex = make_exchange(env, ShipStrategy.HASH, producers, 2,
                           key_fn=lambda kv: kv[0], combiner=self.COMBINER)
        return run(env, ex)

    def test_combined_counts_keep_producer_scale(self):
        # A combined bucket is still a sample: each real partial stands for
        # `scale` nominal partials.  Shipped bytes and the merged partitions'
        # nominal counts must scale linearly with the producers' scale.
        unscaled = self._run_scaled(1.0)
        scaled = self._run_scaled(50.0)
        assert scaled.bytes_shuffled == pytest.approx(
            50.0 * unscaled.bytes_shuffled)
        total = sum(p.nominal_count for p in scaled.inputs)
        base = sum(p.nominal_count for p in unscaled.inputs)
        assert total == pytest.approx(50.0 * base)

    def test_merged_element_nbytes_weights_heterogeneous_producers(self):
        # Two producers with different element widths gather into one
        # consumer: its per-element size is the count-weighted mean, so the
        # merged nominal bytes equal the sum of what was shipped (picking
        # producers[0].element_nbytes would mis-size producer 1's share).
        env = Environment()
        producers = [part(0, [(0, i) for i in range(10)], "w0",
                          element_nbytes=8.0),
                     part(1, [(0, i) for i in range(30)], "w1",
                          element_nbytes=100.0)]
        ex = make_exchange(env, ShipStrategy.GATHER, producers, 1,
                           consumer_workers=["w0"], combiner=self.COMBINER)
        result = run(env, ex)
        merged = result.inputs[0]
        # One combined partial per producer (all keys equal).
        assert merged.nominal_count == pytest.approx(2.0)
        assert merged.element_nbytes == pytest.approx((8.0 + 100.0) / 2)
        assert merged.nominal_nbytes == pytest.approx(8.0 + 100.0)

    def test_count_combiner_ships_one_long_per_producer(self):
        env = Environment()
        producers = parts(list(range(90)), 3, element_nbytes=1000.0,
                          scale=7.0)
        ex = make_exchange(env, ShipStrategy.GATHER, producers, 1,
                           consumer_workers=["w0"], combiner=COUNT_COMBINER)
        result = run(env, ex)
        # Producers on w1 ship 8 bytes each, regardless of element width.
        remote = sum(1 for p in producers if p.worker != "w0")
        assert result.bytes_shuffled == pytest.approx(8.0 * remote)
        merged = result.inputs[0]
        assert merged.element_nbytes == pytest.approx(8.0)
        # The counts themselves carry the nominal (scaled) total.
        assert sum(merged.elements) == pytest.approx(90 * 7.0)


class TestBroadcastAccounting:
    def test_element_nbytes_is_count_weighted(self):
        env = Environment()
        producers = [part(0, list(range(10)), "w0", element_nbytes=8.0),
                     part(1, list(range(30)), "w1", element_nbytes=100.0)]
        ex = make_exchange(env, ShipStrategy.BROADCAST, producers, 3)
        result = run(env, ex)
        total_nbytes = 10 * 8.0 + 30 * 100.0
        for p in result.inputs:
            assert p.nominal_count == pytest.approx(40.0)
            assert p.element_nbytes == pytest.approx(total_nbytes / 40.0)
            assert p.nominal_nbytes == pytest.approx(total_nbytes)

    def test_one_copy_per_worker_not_per_consumer(self):
        # Three consumers on two workers: each producer ships one remote
        # copy, not one per consumer subtask.
        env = Environment()
        producers = [part(0, list(range(10)), "w0"),
                     part(1, list(range(10)), "w1")]
        ex = make_exchange(env, ShipStrategy.BROADCAST, producers, 3)
        result = run(env, ex)
        # consumer workers cycle w0,w1,w0; each producer is local to one of
        # them and remote to the other exactly once.
        assert result.bytes_shuffled == pytest.approx(2 * 10 * 8.0)
        assert len(result.inputs) == 3


class TestOnlyConsumers:
    def test_restricts_shipping_and_blanks_other_slots(self):
        def run_with(only):
            env = Environment()
            producers = parts(list(range(40)), 2)
            ex = make_exchange(env, ShipStrategy.HASH, producers, 4,
                               key_fn=lambda x: x, only_consumers=only)
            return run(env, ex)

        full = run_with(None)
        restricted = run_with({1})
        assert restricted.bytes_shuffled < full.bytes_shuffled
        assert [p is None for p in restricted.inputs] == [
            True, False, True, True]
        assert sorted(restricted.inputs[1].elements) == sorted(
            x for x in range(40) if x % 4 == 1)


class TestColumnarZeroCopy:
    def columnar_exchange(self, env, flink, strategy=ShipStrategy.HASH,
                          n=40, q=4, **kw):
        arrs = np.array_split(np.arange(n, dtype=np.int64), 2)
        producers = [part(i, a, WORKERS[i % 2]) for i, a in enumerate(arrs)]
        if strategy is ShipStrategy.HASH:
            kw.setdefault("key_fn", vectorized(lambda arr: arr))
        return make_exchange(env, strategy, producers, q, flink=flink, **kw)

    def test_routes_identically_to_row_path(self):
        outs = {}
        for on in (True, False):
            env = Environment()
            flink = FlinkConfig(columnar_shuffle=on)
            ex = self.columnar_exchange(env, flink)
            result = run(env, ex)
            outs[on] = [np.asarray(p.elements) for p in result.inputs]
            assert (result.bytes_zero_copy > 0) == on
        for a, b in zip(outs[True], outs[False]):
            assert np.array_equal(a, b)
        # bytes_shuffled is a property of the data, not the wire format.

    def test_bytes_shuffled_independent_of_wire_format(self):
        totals = {}
        for on in (True, False):
            env = Environment()
            ex = self.columnar_exchange(env, FlinkConfig(columnar_shuffle=on))
            totals[on] = run(env, ex).bytes_shuffled
        assert totals[True] == pytest.approx(totals[False])

    def test_zero_copy_bypasses_serde_accounting(self):
        env = Environment()
        ex = self.columnar_exchange(env, FlinkConfig(columnar_shuffle=True))
        result = run(env, ex)
        stats = ex.serializer.stats()
        assert stats.bytes_serialized == 0.0
        assert result.bytes_zero_copy > 0
        assert stats.bytes_zero_copy == pytest.approx(result.bytes_zero_copy)

    def test_zero_copy_is_faster_at_scale(self):
        # 50k rows per producer: per-record serde dwarfs the per-block
        # descriptor cost the columnar path charges.
        times = {}
        for on in (True, False):
            env = Environment()
            ex = self.columnar_exchange(
                env, FlinkConfig(columnar_shuffle=on), n=100_000)
            run(env, ex)
            times[on] = env.now
        assert times[True] < times[False]

    def test_rebalance_preserves_round_robin_order(self):
        got = {}
        for on in (True, False):
            env = Environment()
            ex = self.columnar_exchange(
                env, FlinkConfig(columnar_shuffle=on),
                strategy=ShipStrategy.REBALANCE, n=37, q=3)
            result = run(env, ex)
            got[on] = [list(np.asarray(p.elements)) for p in result.inputs]
        assert got[True] == got[False]

    def test_count_combiner_stays_on_row_path(self):
        env = Environment()
        ex = self.columnar_exchange(
            env, FlinkConfig(columnar_shuffle=True),
            strategy=ShipStrategy.GATHER, q=1, combiner=COUNT_COMBINER)
        result = run(env, ex)
        assert result.bytes_zero_copy == 0.0

    def test_unvectorized_key_fn_stays_on_row_path(self):
        env = Environment()
        ex = self.columnar_exchange(
            env, FlinkConfig(columnar_shuffle=True),
            key_fn=lambda x: int(x))
        result = run(env, ex)
        assert result.bytes_zero_copy == 0.0


class TestSpill:
    def make_spilling_exchange(self, env, threshold, n=100):
        net = Network(env, WORKERS, NetworkConfig(latency_s=0.0))
        fs = HDFS(env, WORKERS, net, replication=1,
                  disk=DiskConfig(read_bps=100e6, write_bps=100e6,
                                  seek_s=0.0))
        producers = [part(0, list(range(n // 2)), "w0"),
                     part(1, list(range(n // 2, n)), "w1")]
        ex = make_exchange(env, ShipStrategy.GATHER, producers, 1, net=net,
                           consumer_workers=["w0"], hdfs=fs,
                           flink=FlinkConfig(shuffle_spill_nbytes=threshold))
        return ex, fs

    def test_oversized_payloads_spill_through_hdfs(self):
        env = Environment()
        ex, fs = self.make_spilling_exchange(env, threshold=100.0)
        result = run(env, ex)
        # Both destination payloads (400 B each) exceed the threshold.
        assert result.bytes_spilled == pytest.approx(2 * 50 * 8.0)
        assert sorted(result.inputs[0].elements) == list(range(100))
        # Scratch files are deleted once consumed.
        assert fs.namenode.list_files() == []

    def test_small_payloads_do_not_spill(self):
        env = Environment()
        ex, fs = self.make_spilling_exchange(env, threshold=1e9)
        result = run(env, ex)
        assert result.bytes_spilled == 0.0
        assert fs.namenode.list_files() == []

    def test_spill_takes_longer_than_direct_wire(self):
        times = {}
        for threshold in (100.0, 1e9):
            env = Environment()
            ex, _ = self.make_spilling_exchange(env, threshold)
            run(env, ex)
            times[threshold] = env.now
        assert times[100.0] > times[1e9]
