"""Direct unit tests for the UDF appliers and partition splitting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.flink.iterators import (
    apply_filter,
    apply_flat_map,
    apply_map,
    apply_reduce,
    group_elements,
    is_vectorized,
    vectorized,
)
from repro.flink.partition import Partition, real_len, split_evenly


class TestAppliers:
    def test_apply_map_list_and_ndarray(self):
        assert apply_map([1, 2], lambda x: x * 2) == [2, 4]
        out = apply_map(np.array([1.0, 2.0]), lambda x: x + 1)
        assert isinstance(out, np.ndarray)
        assert out.tolist() == [2.0, 3.0]

    def test_vectorized_marker(self):
        f = vectorized(lambda arr: arr * 2)
        assert is_vectorized(f)
        assert not is_vectorized(lambda x: x)
        assert np.array_equal(apply_map(np.array([3.0]), f),
                              np.array([6.0]))

    def test_apply_filter_boolean_mask(self):
        f = vectorized(lambda arr: arr > 1)
        out = apply_filter(np.array([0.0, 2.0, 3.0]), f)
        assert out.tolist() == [2.0, 3.0]

    def test_apply_flat_map(self):
        assert apply_flat_map([1, 2], lambda x: [x] * x) == [1, 2, 2]
        assert apply_flat_map([], lambda x: [x]) == []

    def test_apply_reduce(self):
        assert apply_reduce([1, 2, 3], lambda a, b: a + b) == 6
        assert apply_reduce([7], lambda a, b: a + b) == 7
        assert apply_reduce([], lambda a, b: a + b) is None

    def test_group_elements_preserves_first_seen_order(self):
        groups = group_elements([("b", 1), ("a", 2), ("b", 3)],
                                lambda kv: kv[0])
        assert list(groups) == ["b", "a"]
        assert groups["b"] == [("b", 1), ("b", 3)]

    @given(st.lists(st.integers(), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_reduce_equals_builtin_sum(self, xs):
        expected = sum(xs) if xs else None
        assert apply_reduce(xs, lambda a, b: a + b) == expected


class TestPartition:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Partition(0, [], element_nbytes=-1)
        with pytest.raises(ConfigError):
            Partition(0, [], element_nbytes=8, scale=-0.5)

    def test_nominal_accounting(self):
        part = Partition(0, list(range(10)), element_nbytes=4.0, scale=3.0)
        assert part.real_count == 10
        assert part.nominal_count == 30
        assert part.nominal_nbytes == 120

    def test_derive_keeps_metadata(self):
        part = Partition(2, [1, 2], element_nbytes=8.0, scale=5.0,
                         worker="w1")
        child = part.derive([9, 9, 9])
        assert child.index == 2
        assert child.worker == "w1"
        assert child.scale == 5.0
        assert child.real_count == 3

    def test_real_len_variants(self):
        assert real_len(None) == 0
        assert real_len([1, 2]) == 2
        assert real_len(np.zeros(5)) == 5
        assert real_len(np.array(3.0)) == 1  # 0-d array

    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_split_evenly_property(self, total, n):
        parts = split_evenly(list(range(total)), n, element_nbytes=8.0)
        assert len(parts) == n
        assert sum(p.real_count for p in parts) == total
        sizes = [p.real_count for p in parts]
        assert max(sizes) - min(sizes) <= 1
        merged = [x for p in parts for x in p.elements]
        assert merged == list(range(total))

    def test_split_evenly_ndarray_views(self):
        data = np.arange(100)
        parts = split_evenly(data, 4, element_nbytes=8.0)
        # NumPy splits are views, not copies (HPC guide: avoid copies).
        assert all(p.elements.base is data for p in parts)

    def test_split_invalid_count(self):
        with pytest.raises(ConfigError):
            split_evenly([1], 0, element_nbytes=8.0)
