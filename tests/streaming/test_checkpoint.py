"""Tests for asynchronous barrier snapshots and exactly-once recovery."""

import pytest

from repro.common.errors import ConfigError
from repro.core import GFlinkCluster
from repro.flink import ClusterConfig, CPUSpec
from repro.streaming.checkpoint import CheckpointedStreamJob
from repro.streaming.engine import WindowStage


def make_job(n_events=400, rate=400.0, interval=0.25, parallelism=2):
    cluster = GFlinkCluster(ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=2)))
    window = WindowStage(
        key_fn=lambda v: int(v) % 3, size_s=0.2, slide_s=0.2,
        aggregate_fn=lambda key, values: (key, sum(values)),
        kernel_name=None, flops_per_element=1.0,
        element_overhead_s=0.2e-6, parallelism=parallelism)
    return CheckpointedStreamJob(
        cluster, rate=rate, n_events=n_events,
        value_fn=lambda i: float(i), window=window,
        checkpoint_interval_s=interval)


class TestWithoutFailure:
    def test_results_complete(self):
        job = make_job()
        results = job.run()
        total = sum(v for _, _, (key, v) in results)
        assert total == sum(range(400))
        assert job.attempts == 1
        assert job.recovered_from is None

    def test_checkpoints_taken(self):
        job = make_job()
        job.run()
        assert job.last_completed is not None
        assert job.last_completed.checkpoint_id >= 2
        # Every completed checkpoint carries all partition snapshots.
        assert job.last_completed.complete(2)


class TestExactlyOnceRecovery:
    @pytest.mark.parametrize("fail_at", [0.3, 0.5, 0.8])
    def test_crash_and_recover_matches_clean_run(self, fail_at):
        clean = make_job().run()
        crashed_job = make_job()
        recovered = crashed_job.run(fail_at_s=fail_at)
        assert recovered == clean
        assert crashed_job.attempts == 2
        assert crashed_job.recovered_from is not None

    def test_no_duplicates_in_committed(self):
        job = make_job()
        results = job.run(fail_at_s=0.6)
        keys = [(end, key) for end, _, (key, _) in
                [(r[0], r[1], r[2]) for r in results]]
        assert len(keys) == len(set(keys))

    def test_crash_before_first_checkpoint_replays_everything(self):
        job = make_job(interval=10.0)  # no checkpoint completes in time
        results = job.run(fail_at_s=0.3)
        clean = make_job(interval=10.0).run()
        assert results == clean
        assert job.recovered_from is None  # restarted from scratch

    def test_recovery_faster_than_full_restart(self):
        # With a late crash and frequent checkpoints, the replay is short:
        # the restored source position is deep into the stream.
        job = make_job(n_events=800, rate=800.0, interval=0.1)
        job.run(fail_at_s=0.9)
        assert job.last_completed.source_position > 400


class TestValidation:
    def test_bad_interval(self):
        with pytest.raises(ConfigError):
            CheckpointedStreamJob(
                GFlinkCluster(ClusterConfig(n_workers=1)),
                rate=10.0, n_events=10, value_fn=float,
                window=WindowStage(
                    key_fn=lambda v: 0, size_s=1.0, slide_s=1.0,
                    aggregate_fn=lambda k, v: 0, kernel_name=None,
                    flops_per_element=1.0, element_overhead_s=1e-6,
                    parallelism=1),
                checkpoint_interval_s=0.0)
