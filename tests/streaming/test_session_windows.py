"""Tests for gap-based session windows."""

import pytest

from repro.common.errors import ConfigError
from repro.core import GFlinkCluster
from repro.flink import ClusterConfig, CPUSpec
from repro.streaming import StreamEnvironment, WindowSpec


def make_env():
    cluster = GFlinkCluster(ClusterConfig(n_workers=2,
                                          cpu=CPUSpec(cores=2)))
    return StreamEnvironment(cluster)


class TestSessionSpec:
    def test_session_constructor(self):
        spec = WindowSpec.session(2.0)
        assert spec.session_gap_s == 2.0

    def test_invalid_gap(self):
        with pytest.raises(ConfigError):
            WindowSpec.session(0.0)


class TestSessionWindows:
    def test_bursty_stream_forms_sessions(self):
        env = make_env()
        # Events come in bursts of 10 at 100/s; value encodes the burst id;
        # the value function creates a pause by event index.
        # A 0.05 s inter-event spacing with a 0.3 s "gap" after every 10th
        # event is modeled by keying bursts explicitly: indices 0-9 burst 0,
        # 10-19 burst 1, ... with a gap smaller than intra-burst spacing
        # impossible from a constant-rate source, so instead key by burst
        # and use a session gap below the burst period but above spacing.
        # rate=100 -> spacing 0.01 s; 20 events per "burst key".
        result = env.from_rate(rate=100.0, n_events=100,
                               value_fn=lambda i: i // 20) \
            .key_by(lambda v: v) \
            .window(WindowSpec.session(0.05)) \
            .aggregate(lambda key, values: len(values))
        # Each burst key's events are contiguous (spacing 0.01 < gap):
        # exactly one session of 20 per key.
        counts = sorted(v for _, _, v in result.results)
        assert counts == [20] * 5

    def test_gap_splits_sessions_for_same_key(self):
        env = make_env()
        # One key; spacing 0.01 s; gap 0.005 s < spacing: every event is
        # its own session.
        result = env.from_rate(rate=100.0, n_events=30) \
            .key_by(lambda v: 0) \
            .window(WindowSpec.session(0.005)) \
            .aggregate(lambda key, values: len(values))
        assert [v for _, _, v in result.results] == [1] * 30

    def test_single_session_when_gap_large(self):
        env = make_env()
        result = env.from_rate(rate=100.0, n_events=50) \
            .key_by(lambda v: 0) \
            .window(WindowSpec.session(10.0)) \
            .aggregate(lambda key, values: sum(values))
        assert len(result.results) == 1
        assert result.results[0][2] == sum(range(50))

    def test_session_latency_nonnegative(self):
        env = make_env()
        result = env.from_rate(rate=200.0, n_events=60) \
            .key_by(lambda v: int(v) % 2) \
            .window(WindowSpec.session(0.02)) \
            .aggregate(lambda key, values: len(values))
        assert result.window_latencies
        assert all(l >= 0 for l in result.window_latencies)
