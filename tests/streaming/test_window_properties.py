"""Property tests for event-time window assignment and batching invariants."""

from hypothesis import given, settings, strategies as st

from repro.streaming.engine import assign_windows


def make_assign(size_s, slide_s):
    """The engine's own window-assignment rule."""
    return lambda ts: assign_windows(ts, size_s, slide_s)


class TestWindowAssignmentProperties:
    @given(st.floats(min_value=0.001, max_value=1e4),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=200, deadline=None)
    def test_every_event_in_size_over_slide_windows(self, ts, overlap,
                                                    slide_ticks):
        slide = slide_ticks * 0.05
        size = overlap * slide
        starts = make_assign(size, slide)(ts)
        tol = 1e-8 * max(slide, 1.0)  # the engine's boundary tie-break
        # Each timestamp belongs to exactly size/slide panes...
        assert len(starts) == overlap
        # ...each of which contains it (up to the deterministic epsilon).
        for start in starts:
            assert start <= ts + tol
            assert ts < start + size + tol
        # Starts are aligned to the slide.
        for start in starts:
            ratio = start / slide
            assert abs(ratio - round(ratio)) < 1e-6

    @given(st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_tumbling_windows_partition_time(self, ts):
        assign = make_assign(0.5, 0.5)
        starts = assign(ts)
        assert len(starts) == 1
        (start,) = starts
        tol = 1e-8
        assert start <= ts + tol
        assert ts < start + 0.5 + tol


class TestEndToEndStreamInvariants:
    @given(st.integers(min_value=10, max_value=120),
           st.sampled_from([50.0, 200.0]),
           st.sampled_from([0.1, 0.25]))
    @settings(max_examples=10, deadline=None)
    def test_no_event_lost_or_duplicated(self, n_events, rate, window_size):
        from repro.core import GFlinkCluster
        from repro.flink import ClusterConfig, CPUSpec
        from repro.streaming import StreamEnvironment, WindowSpec

        cluster = GFlinkCluster(ClusterConfig(n_workers=2,
                                              cpu=CPUSpec(cores=2)))
        env = StreamEnvironment(cluster)
        result = env.from_rate(rate=rate, n_events=n_events) \
            .key_by(lambda v: int(v) % 3) \
            .window(WindowSpec.tumbling(window_size)) \
            .aggregate(lambda key, values: len(values))
        assert sum(v for *_, v in result.results) == n_events
