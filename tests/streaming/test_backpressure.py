"""Tests for credit-based backpressure (bounded inter-stage buffers)."""

import pytest

from repro.common.errors import ConfigError
from repro.core import GFlinkCluster
from repro.flink import ClusterConfig, CPUSpec
from repro.streaming import ProcessingMode, StreamEnvironment


def make_env(buffer_capacity=None):
    cluster = GFlinkCluster(ClusterConfig(n_workers=1,
                                          cpu=CPUSpec(cores=2)))
    return StreamEnvironment(cluster, buffer_capacity=buffer_capacity)


SLOW_MAP_S = 5e-3  # much slower than the 1 ms inter-event spacing


class TestBackpressure:
    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            make_env(buffer_capacity=0)

    def test_slow_operator_throttles_source(self):
        # Source at 1000/s feeds a map that takes 5 ms/record: the pipeline
        # can only sustain 200/s.  With a bounded buffer the source is
        # throttled; the job's makespan stretches to the operator's pace.
        env = make_env(buffer_capacity=4)
        result = env.from_rate(rate=1000.0, n_events=200) \
            .map(lambda v: v, element_overhead_s=SLOW_MAP_S) \
            .execute()
        assert result.events_processed == 200
        # Wall time governed by the slow stage: ~200 * 5 ms = 1 s, not the
        # source's nominal 0.2 s.
        assert result.makespan == pytest.approx(1.0, rel=0.2)

    def test_bounded_buffer_limits_in_flight_latency(self):
        # With unbounded buffers the queue in front of the slow operator
        # grows without limit and late records wait for everything queued
        # before them; a small buffer caps per-record queueing delay.
        def p99(capacity):
            env = make_env(buffer_capacity=capacity)
            result = env.from_rate(rate=1000.0, n_events=200) \
                .map(lambda v: v, element_overhead_s=SLOW_MAP_S) \
                .execute()
            return result.p99_record_latency

        unbounded = p99(None)
        bounded = p99(2)
        assert bounded < unbounded / 5
        # Bounded: a record waits at most ~capacity slow-services.
        assert bounded < 10 * SLOW_MAP_S

    def test_fast_pipeline_unaffected_by_bound(self):
        def run(capacity):
            env = make_env(buffer_capacity=capacity)
            return env.from_rate(rate=500.0, n_events=100) \
                .map(lambda v: v + 1).execute()

        free = run(None)
        tight = run(2)
        assert sorted(v for *_, v in free.results) \
            == sorted(v for *_, v in tight.results)
        assert tight.makespan == pytest.approx(free.makespan, rel=0.05)

    def test_backpressure_with_windows(self):
        from repro.streaming import WindowSpec
        env = make_env(buffer_capacity=4)
        result = env.from_rate(rate=500.0, n_events=100) \
            .key_by(lambda v: 0) \
            .window(WindowSpec.tumbling(0.05)) \
            .aggregate(lambda key, values: len(values))
        assert sum(v for *_, v in result.results) == 100
