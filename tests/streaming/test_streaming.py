"""Tests for the streaming engine: windows, modes, GPU aggregation."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec
from repro.streaming import (
    DataStream,
    ProcessingMode,
    StreamEnvironment,
    WindowSpec,
)


def make_cluster(gpus=()):
    return GFlinkCluster(ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=2), gpus_per_worker=tuple(gpus)))


class TestWindowSpec:
    def test_tumbling(self):
        spec = WindowSpec.tumbling(5.0)
        assert spec.size_s == spec.slide_s == 5.0

    def test_sliding_validation(self):
        with pytest.raises(ConfigError):
            WindowSpec.sliding(2.0, 3.0)  # gaps
        with pytest.raises(ConfigError):
            WindowSpec.tumbling(0.0)


class TestEventLevelPipeline:
    def test_map_filter_results(self):
        env = StreamEnvironment(make_cluster())
        result = env.from_rate(rate=100.0, n_events=50) \
            .map(lambda v: v * 2) \
            .filter(lambda v: v % 4 == 0) \
            .execute()
        values = sorted(v for _, _, v in result.results)
        assert values == [v * 2 for v in range(50) if (v * 2) % 4 == 0]
        assert result.events_processed == 50

    def test_event_level_latency_is_small(self):
        env = StreamEnvironment(make_cluster(),
                                mode=ProcessingMode.EVENT_LEVEL)
        result = env.from_rate(rate=1000.0, n_events=200) \
            .map(lambda v: v).execute()
        # Each record flows immediately: latency ~ per-event cost + hop.
        assert result.mean_record_latency < 1e-3

    def test_throughput_close_to_source_rate(self):
        env = StreamEnvironment(make_cluster())
        result = env.from_rate(rate=500.0, n_events=250) \
            .map(lambda v: v).execute()
        assert result.throughput == pytest.approx(500.0, rel=0.05)


class TestMiniBatchMode:
    def test_results_identical_latency_higher(self):
        def run(mode):
            env = StreamEnvironment(make_cluster(), mode=mode,
                                    batch_interval_s=0.5)
            return env.from_rate(rate=200.0, n_events=100) \
                .map(lambda v: v + 1).execute()

        event = run(ProcessingMode.EVENT_LEVEL)
        batch = run(ProcessingMode.MINI_BATCH)
        assert sorted(v for *_, v in event.results) \
            == sorted(v for *_, v in batch.results)
        # Mini-batch buffers to the boundary: ~interval/2 extra latency.
        assert batch.mean_record_latency > 50 * event.mean_record_latency
        assert batch.mean_record_latency == pytest.approx(0.25, rel=0.5)


class TestWindows:
    def test_tumbling_window_counts(self):
        env = StreamEnvironment(make_cluster())
        # 100 events at 100/s -> 1 second of stream; 0.2 s windows x 5.
        result = env.from_rate(rate=100.0, n_events=100) \
            .key_by(lambda v: 0) \
            .window(WindowSpec.tumbling(0.2)) \
            .aggregate(lambda key, values: len(values))
        counts = [v for _, _, v in sorted(result.results)]
        assert sum(counts) == 100
        # Interior windows hold size * rate events each (the first window
        # misses the event that would land exactly on t=0, and the last
        # holds the single boundary event).
        assert all(c == 20 for c in counts[1:-1])
        assert counts[0] == 19

    def test_keyed_windows_separate(self):
        env = StreamEnvironment(make_cluster())
        result = env.from_rate(rate=100.0, n_events=100,
                               value_fn=lambda i: i % 2) \
            .key_by(lambda v: v) \
            .window(WindowSpec.tumbling(0.5)) \
            .aggregate(lambda key, values: (key, len(values)))
        by_key = {}
        for _, _, (key, count) in result.results:
            by_key[key] = by_key.get(key, 0) + count
        assert by_key == {0: 50, 1: 50}

    def test_sliding_window_overlap(self):
        env = StreamEnvironment(make_cluster())
        result = env.from_rate(rate=100.0, n_events=100) \
            .key_by(lambda v: 0) \
            .window(WindowSpec.sliding(0.4, 0.2)) \
            .aggregate(lambda key, values: len(values))
        # Each event lands in 2 panes: total pane membership is ~2x events.
        assert sum(v for _, _, v in result.results) \
            == pytest.approx(200, abs=45)

    def test_window_sum_correct(self):
        env = StreamEnvironment(make_cluster())
        result = env.from_rate(rate=1000.0, n_events=1000) \
            .key_by(lambda v: 0) \
            .window(WindowSpec.tumbling(10.0)) \
            .aggregate(lambda key, values: sum(values))
        total = sum(v for _, _, v in result.results)
        assert total == sum(range(1000))


class TestGpuWindows:
    def test_gpu_aggregate_matches_cpu(self):
        cluster = make_cluster(gpus=("c2050",))
        GFlinkSession(cluster)  # registers nothing; registry lives on cluster
        cluster.registry.register(KernelSpec(
            "window_sum",
            lambda i, p: {"out": np.array([float(np.sum(i["in"]))])},
            flops_per_element=1.0, efficiency=0.4))

        env = StreamEnvironment(cluster)
        gpu = env.from_rate(rate=500.0, n_events=500) \
            .key_by(lambda v: 0) \
            .window(WindowSpec.tumbling(0.25)) \
            .gpu_aggregate("window_sum")

        env2 = StreamEnvironment(make_cluster())
        cpu = env2.from_rate(rate=500.0, n_events=500) \
            .key_by(lambda v: 0) \
            .window(WindowSpec.tumbling(0.25)) \
            .aggregate(lambda key, values: float(sum(values)))

        assert sorted(v for *_, v in gpu.results) \
            == pytest.approx(sorted(v for *_, v in cpu.results))

    def test_gpu_aggregate_needs_gpu_worker(self):
        env = StreamEnvironment(make_cluster(gpus=()))
        with pytest.raises(ConfigError, match="GPUManager"):
            env.from_rate(rate=100.0, n_events=50) \
                .key_by(lambda v: 0) \
                .window(WindowSpec.tumbling(0.2)) \
                .gpu_aggregate("whatever")

    def test_window_latency_recorded(self):
        env = StreamEnvironment(make_cluster())
        result = env.from_rate(rate=100.0, n_events=60) \
            .key_by(lambda v: 0) \
            .window(WindowSpec.tumbling(0.2)) \
            .aggregate(lambda key, values: len(values))
        assert result.window_latencies
        assert all(l >= 0 for l in result.window_latencies)
