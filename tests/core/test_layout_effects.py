"""Tests for data-layout-aware kernel costs (§2.1, §3.2)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core import DataLayout, GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec, LaunchConfig, TESLA_C2050


COLUMN_SCAN = KernelSpec(
    "colscan", lambda i, p: {"out": i["in"]},
    flops_per_element=2.0, bytes_per_element=32.0, efficiency=0.8,
    layout_efficiency={
        DataLayout.SOA.value: 1.0,   # consecutive threads, consecutive addrs
        DataLayout.AOP.value: 1.0,
        DataLayout.AOS.value: 0.4,   # strided loads: poor coalescing
    })


class TestLayoutCostModel:
    def test_layout_multiplier_lookup(self):
        assert COLUMN_SCAN.layout_multiplier(DataLayout.SOA) == 1.0
        assert COLUMN_SCAN.layout_multiplier(DataLayout.AOS) == 0.4
        assert COLUMN_SCAN.layout_multiplier(None) == 1.0

    def test_unknown_layout_defaults_to_one(self):
        spec = KernelSpec("k", lambda i, p: {}, 1.0)
        assert spec.layout_multiplier(DataLayout.AOS) == 1.0

    def test_invalid_multiplier_rejected(self):
        with pytest.raises(ConfigError):
            KernelSpec("k", lambda i, p: {}, 1.0,
                       layout_efficiency={"array-of-structures": 1.5})

    def test_execution_time_scales_with_layout(self):
        launch = LaunchConfig.for_elements(1e7)
        soa = COLUMN_SCAN.execution_seconds(1e7, launch, TESLA_C2050,
                                            layout=DataLayout.SOA)
        aos = COLUMN_SCAN.execution_seconds(1e7, launch, TESLA_C2050,
                                            layout=DataLayout.AOS)
        # Memory-bound kernel: AoS pays ~1/0.4 = 2.5x.
        assert aos / soa == pytest.approx(2.5, rel=0.05)


class TestLayoutEndToEnd:
    def _run(self, layout):
        config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=2),
                               gpus_per_worker=("c2050",))
        cluster = GFlinkCluster(config)
        session = GFlinkSession(cluster)
        session.register_kernel(COLUMN_SCAN)
        data = np.arange(10_000, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=32.0, scale=1e3,
                                     parallelism=2).persist()
        ds.materialize()
        result = ds.gpu_map_partition("colscan", layout=layout,
                                      name="m").count()
        return cluster.total_kernel_seconds(), result.value

    def test_soa_faster_than_aos_for_columnar_kernel(self):
        soa_kernel_s, soa_value = self._run(DataLayout.SOA)
        aos_kernel_s, aos_value = self._run(DataLayout.AOS)
        assert aos_kernel_s > 2.0 * soa_kernel_s
        # Functional result is layout-independent.
        assert soa_value == aos_value

    def test_aop_equivalent_to_soa_here(self):
        soa_s, _ = self._run(DataLayout.SOA)
        aop_s, _ = self._run(DataLayout.AOP)
        assert aop_s == pytest.approx(soa_s, rel=1e-9)
