"""Tests for device-mapped host memory (zero-copy) execution (§4.1.2)."""

import numpy as np
import pytest

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec, TESLA_C2050, TESLA_K20


#: Transfer-bound streaming kernel: negligible compute, bytes in == bytes out.
STREAM_KERNEL = KernelSpec(
    "stream_copy", lambda i, p: {"out": i["in"] * 2.0},
    flops_per_element=0.25, bytes_per_element=8.0, efficiency=1.0)


def run(gpu_name, mapped, scale=2_000.0, n=20_000):
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=2),
                           gpus_per_worker=(gpu_name,))
    cluster = GFlinkCluster(config)
    session = GFlinkSession(cluster)
    session.register_kernel(STREAM_KERNEL)
    data = np.arange(n, dtype=np.float64)
    ds = session.from_collection(data, element_nbytes=8.0, scale=scale,
                                 parallelism=1).persist()
    ds.materialize()
    result = ds.gpu_map_partition("stream_copy", mapped_memory=mapped,
                                  name="m").collect()
    return result


class TestMappedMemory:
    def test_functional_result_identical(self):
        explicit = run("c2050", mapped=False)
        mapped = run("c2050", mapped=True)
        assert sorted(explicit.value) == sorted(mapped.value)

    def test_full_duplex_on_one_engine_gpu(self):
        """§4.1.2: mapped memory is how a one-copy-engine GPU gets full
        duplex — for bidirectional streaming it beats explicit copies."""
        explicit = run("c2050", mapped=False)
        mapped = run("c2050", mapped=True)
        span_e = explicit.metrics.span_of("m").seconds
        span_m = mapped.metrics.span_of("m").seconds
        # Explicit pays in + out serialized on the single engine; mapped
        # overlaps them: close to half the wire time.
        assert span_m < span_e
        assert span_m < 0.7 * span_e

    def test_two_engine_gpu_gains_little(self):
        """The K20 already overlaps H2D and D2H through its two engines;
        mapped memory is no big win there."""
        explicit = run("k20", mapped=False)
        mapped = run("k20", mapped=True)
        span_e = explicit.metrics.span_of("m").seconds
        span_m = mapped.metrics.span_of("m").seconds
        assert span_m < 1.2 * span_e  # no regression...
        assert span_m > 0.6 * span_e  # ...but no c2050-style halving either

    def test_mapped_requires_pinned_buffer(self):
        from repro.core.channels import CommMode
        config = ClusterConfig(n_workers=1, gpus_per_worker=("c2050",))
        cluster = GFlinkCluster(config)
        session = GFlinkSession(cluster)
        session.register_kernel(KernelSpec(
            "k", lambda i, p: {"out": i["in"]}, 1.0, efficiency=0.5))
        data = np.arange(16, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8.0)
        with pytest.raises(Exception):
            # JNI_HEAP buffers are pageable: mapped execution must refuse.
            ds.gpu_map_partition("k", mapped_memory=True,
                                 comm_mode=CommMode.JNI_HEAP).collect()

    def test_pcie_accounting_still_tracked(self):
        result = run("c2050", mapped=True)
        assert result.metrics.pcie_bytes > 0
