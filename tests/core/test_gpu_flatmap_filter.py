"""Tests for gpuFlatMap / gpuFilter and output-scale semantics."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec


def make_session():
    config = ClusterConfig(n_workers=2, cpu=CPUSpec(cores=2),
                           gpus_per_worker=("c2050",))
    cluster = GFlinkCluster(config)
    session = GFlinkSession(cluster)
    session.register_kernel(KernelSpec(
        "expand2", lambda i, p: {"out": np.repeat(i["in"], 2)},
        flops_per_element=2.0, efficiency=0.5))
    session.register_kernel(KernelSpec(
        "keep_even", lambda i, p: {"out": i["in"][i["in"] % 2 == 0]},
        flops_per_element=1.0, efficiency=0.5))
    return session


class TestGpuFlatMap:
    def test_fan_out_result(self):
        session = make_session()
        data = np.arange(10, dtype=np.int64)
        result = session.from_collection(data, element_nbytes=8) \
            .gpu_flat_map("expand2").collect()
        assert sorted(result.value) == sorted(np.repeat(data, 2).tolist())

    def test_flatmap_scale_carries_over(self):
        session = make_session()
        data = np.arange(100, dtype=np.int64)
        result = session.from_collection(data, element_nbytes=8,
                                         scale=1000.0) \
            .gpu_flat_map("expand2").count()
        # 100 real -> 200 real; nominal 100k -> 200k.
        assert result.value == pytest.approx(200_000)


class TestGpuFilter:
    def test_filter_result(self):
        session = make_session()
        data = np.arange(20, dtype=np.int64)
        result = session.from_collection(data, element_nbytes=8) \
            .gpu_filter("keep_even").collect()
        assert sorted(result.value) == list(range(0, 20, 2))

    def test_filter_scale_proportional(self):
        session = make_session()
        data = np.arange(100, dtype=np.int64)
        result = session.from_collection(data, element_nbytes=8,
                                         scale=100.0) \
            .gpu_filter("keep_even").count()
        assert result.value == pytest.approx(5_000)  # half survive

    def test_filter_composes_with_cpu_ops(self):
        session = make_session()
        data = np.arange(12, dtype=np.int64)
        result = session.from_collection(data, element_nbytes=8) \
            .gpu_filter("keep_even") \
            .map(lambda x: int(x) + 1) \
            .collect()
        assert sorted(result.value) == [1, 3, 5, 7, 9, 11]


class TestScaleSemantics:
    def test_invalid_semantics_rejected(self):
        session = make_session()
        ds = session.from_collection(np.arange(4.0), element_nbytes=8)
        with pytest.raises(ConfigError):
            ds.gpu_map_partition("expand2", scale_semantics="bogus")

    def test_reduce_semantics_forces_real_scale(self):
        session = make_session()
        session.register_kernel(KernelSpec(
            "passthrough", lambda i, p: {"out": i["in"]},
            flops_per_element=1.0, efficiency=0.5))
        data = np.arange(50, dtype=np.float64)
        result = session.from_collection(data, element_nbytes=8,
                                         scale=100.0) \
            .gpu_map_partition("passthrough",
                               scale_semantics="reduce").count()
        assert result.value == pytest.approx(50)  # real count, unscaled

    def test_map_semantics_keeps_scale(self):
        session = make_session()
        session.register_kernel(KernelSpec(
            "ident", lambda i, p: {"out": i["in"]},
            flops_per_element=1.0, efficiency=0.5))
        data = np.arange(50, dtype=np.float64)
        result = session.from_collection(data, element_nbytes=8,
                                         scale=100.0) \
            .gpu_map("ident").count()
        assert result.value == pytest.approx(5_000)
