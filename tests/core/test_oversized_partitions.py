"""§5.1: "the size of a whole partition may be larger than that of the
device memory in GPUs.  Under such circumstances, the partition cannot be
transferred to GPUs as a whole" — the block pipeline must stream it."""

import numpy as np
import pytest

from repro.common.errors import MemoryExhaustedError
from repro.core import GFlinkCluster, GFlinkSession
from repro.core.gpumanager import GPUManagerConfig
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec


def make_session(block_mib=64):
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=1),
                           gpus_per_worker=("gtx750",))  # 1 GiB device
    cluster = GFlinkCluster(config, gpu_config=GPUManagerConfig(
        block_nbytes=block_mib << 20, streams_per_gpu=1))
    session = GFlinkSession(cluster)
    session.register_kernel(KernelSpec(
        "double", lambda i, p: {"out": i["in"] * 2.0},
        flops_per_element=2.0, efficiency=0.5))
    return cluster, session


class TestOversizedPartitions:
    def test_partition_larger_than_device_memory_streams_through(self):
        cluster, session = make_session()
        # One partition of 4 GiB nominal on a 1 GiB GTX 750.
        data = np.arange(20_000, dtype=np.float64)
        nominal = 4 * (1 << 30) / 8.0
        ds = session.from_collection(data, element_nbytes=8.0,
                                     scale=nominal / 20_000,
                                     parallelism=1).persist()
        ds.materialize()
        result = ds.gpu_map_partition("double").count()
        device = cluster.gpu_managers()[0].devices[0]
        # All 4 GiB crossed PCIe in blocks...
        assert device.h2d_bytes >= 4 * (1 << 30) * 0.99
        # ...but peak residency stayed bounded by a few pipeline blocks.
        assert device.memory.peak_allocated < 1 << 30
        assert device.memory.allocated == 0  # everything freed
        assert result.value == pytest.approx(nominal, rel=1e-6)

    def test_cache_degrades_gracefully_when_partition_exceeds_region(self):
        cluster, session = make_session()
        data = np.arange(20_000, dtype=np.float64)
        nominal = 4 * (1 << 30) / 8.0
        ds = session.from_collection(data, element_nbytes=8.0,
                                     scale=nominal / 20_000,
                                     parallelism=1).persist()
        ds.materialize()
        # cache=True with a working set 8x the (clamped 512 MiB) region:
        # FIFO thrashes but the job must still complete correctly.
        for _ in range(2):
            result = ds.gpu_map_partition("double", cache=True,
                                          cache_key_base="big").count()
            assert result.value == pytest.approx(nominal, rel=1e-6)

    def test_single_block_larger_than_memory_fails_cleanly(self):
        cluster, session = make_session(block_mib=2048)  # 2 GiB blocks
        data = np.arange(20_000, dtype=np.float64)
        nominal = 4 * (1 << 30) / 8.0
        ds = session.from_collection(data, element_nbytes=8.0,
                                     scale=nominal / 20_000,
                                     parallelism=1)
        with pytest.raises((MemoryExhaustedError, Exception)):
            ds.gpu_map_partition("double").count()
