"""Unit tests for Algorithms 5.1 and 5.2 in isolation."""

from collections import deque

import pytest

from repro.common import Environment
from repro.core.gmemory import GMemoryManager
from repro.core.gwork import GWork
from repro.core.hbuffer import HBuffer
from repro.core.scheduling import schedule_work, steal_work
from repro.gpu import GPUDevice, TESLA_C2050


class FakeStream:
    def __init__(self, device_index):
        self.device_index = device_index


def make_work(cache=False, key=("base", 0), app="app"):
    h = HBuffer([0.0] * 8, element_nbytes=8)
    return GWork(execute_name="k", in_buffers={"in": h},
                 out_buffer=HBuffer([], 8), size=8,
                 cache=cache, cache_key=key if cache else None, app_id=app)


@pytest.fixture
def gmm():
    env = Environment()
    devices = [GPUDevice(env, TESLA_C2050, index=i) for i in range(2)]
    return GMemoryManager(devices, cache_capacity_per_device=1000)


class TestAlgorithm51:
    def test_no_locality_picks_most_idle_bulk(self, gmm):
        idle = [[FakeStream(0)], [FakeStream(1), FakeStream(1)]]
        decision = schedule_work(make_work(), gmm, [], idle,
                                 [deque(), deque()])
        assert decision.dispatched
        assert decision.stream.device_index == 1

    def test_locality_prefers_gid_bulk(self, gmm):
        gmm.region("app", 0).try_insert(("base", 0, "in", 0), 500)
        idle = [[FakeStream(0)], [FakeStream(1), FakeStream(1)]]
        decision = schedule_work(make_work(cache=True), gmm,
                                 [("base", 0, "in", 0)], idle,
                                 [deque(), deque()])
        # GID=0 has an idle stream: locality wins over balance.
        assert decision.stream.device_index == 0
        assert decision.gid == 0

    def test_gid_bulk_busy_falls_back_to_most_idle(self, gmm):
        gmm.region("app", 0).try_insert(("base", 0, "in", 0), 500)
        idle = [[], [FakeStream(1)]]
        decision = schedule_work(make_work(cache=True), gmm,
                                 [("base", 0, "in", 0)], idle,
                                 [deque(), deque()])
        assert decision.stream.device_index == 1

    def test_all_busy_with_gid_queues_to_gid(self, gmm):
        gmm.region("app", 1).try_insert(("base", 0, "in", 0), 500)
        decision = schedule_work(make_work(cache=True), gmm,
                                 [("base", 0, "in", 0)], [[], []],
                                 [deque(), deque()])
        assert not decision.dispatched
        assert decision.queue_index == 1

    def test_all_busy_no_gid_queues_to_shortest(self, gmm):
        q0 = deque([make_work(), make_work()])
        q1 = deque([make_work()])
        decision = schedule_work(make_work(), gmm, [], [[], []], [q0, q1])
        assert decision.queue_index == 1

    def test_empty_cluster_balanced_queueing(self, gmm):
        # Submitting many works with no idle streams spreads them.
        queues = [deque(), deque()]
        for _ in range(6):
            d = schedule_work(make_work(), gmm, [], [[], []], queues)
            queues[d.queue_index].append(make_work())
        assert len(queues[0]) == 3 and len(queues[1]) == 3


class TestAlgorithm52:
    def test_own_queue_first(self):
        w0, w1 = make_work(), make_work()
        queues = [deque([w0]), deque([w1])]
        assert steal_work(0, queues) is w0

    def test_steal_from_longest_queue(self):
        w = [make_work() for _ in range(3)]
        queues = [deque(), deque([w[0]]), deque([w[1], w[2]])]
        assert steal_work(0, queues) is w[1]

    def test_all_empty_returns_none(self):
        assert steal_work(0, [deque(), deque()]) is None

    def test_fifo_within_queue(self):
        a, b = make_work(), make_work()
        queues = [deque([a, b])]
        assert steal_work(0, queues) is a
        assert steal_work(0, queues) is b
        assert steal_work(0, queues) is None
