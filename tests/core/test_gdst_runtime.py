"""Integration tests: GDST operators on a full GFlink cluster."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core import GFlinkCluster, GFlinkSession
from repro.core.channels import CommMode
from repro.core.gdst import ExtraInput
from repro.flink import ClusterConfig, CPUSpec, FlinkSession
from repro.gpu import KernelSpec


def make_gflink(n_workers=2, cores=2, gpus=("c2050",)):
    config = ClusterConfig(n_workers=n_workers, cpu=CPUSpec(cores=cores),
                           gpus_per_worker=tuple(gpus))
    cluster = GFlinkCluster(config)
    session = GFlinkSession(cluster)
    session.register_kernel(KernelSpec(
        "double", lambda i, p: {"out": i["in"] * 2.0},
        flops_per_element=2.0, efficiency=0.5))
    session.register_kernel(KernelSpec(
        "block_sum", lambda i, p: {"out": np.array([float(np.sum(i["in"]))])},
        flops_per_element=1.0, efficiency=0.5))
    session.register_kernel(KernelSpec(
        "shift", lambda i, p: {"out": i["in"] + i["offset"][0]},
        flops_per_element=1.0, efficiency=0.5))
    return cluster, session


class TestGpuMapPartition:
    def test_functional_result(self):
        _, session = make_gflink()
        data = np.arange(200, dtype=np.float64)
        result = session.from_collection(data, element_nbytes=8,
                                         parallelism=4) \
            .gpu_map_partition("double").collect()
        assert np.allclose(np.sort(result.value), np.sort(data * 2))

    def test_gpu_metrics_populated(self):
        cluster, session = make_gflink()
        data = np.arange(1000, dtype=np.float64)
        result = session.from_collection(data, element_nbytes=8, scale=1e4,
                                         parallelism=4) \
            .gpu_map_partition("double").count()
        assert result.metrics.gpu_kernel_s > 0
        assert result.metrics.pcie_bytes > 0
        assert cluster.total_kernel_seconds() > 0

    def test_cpu_and_gpu_ops_compose(self):
        _, session = make_gflink()
        data = np.arange(100, dtype=np.float64)
        result = session.from_collection(data, element_nbytes=8,
                                         parallelism=2) \
            .gpu_map_partition("double") \
            .map(lambda x: x + 1) \
            .collect()
        assert sorted(result.value) == sorted((data * 2 + 1).tolist())

    def test_no_gpu_worker_raises(self):
        config = ClusterConfig(n_workers=1, gpus_per_worker=())
        cluster = GFlinkCluster(config)
        session = GFlinkSession(cluster)
        ds = session.from_collection(np.arange(4.0), element_nbytes=8)
        with pytest.raises(ConfigError, match="GPUManager"):
            ds.gpu_map_partition("double").collect()

    def test_extra_inputs(self):
        _, session = make_gflink()
        data = np.arange(10, dtype=np.float64)
        offset = ExtraInput.constant(np.array([5.0]), element_nbytes=8)
        result = session.from_collection(data, element_nbytes=8,
                                         parallelism=2) \
            .gpu_map_partition("shift", extra_inputs={"offset": offset}) \
            .collect()
        assert sorted(result.value) == sorted((data + 5).tolist())

    def test_params_fn_reevaluated_each_job(self):
        _, session = make_gflink()
        session.register_kernel(KernelSpec(
            "scale_by_param", lambda i, p: {"out": i["in"] * p["factor"]},
            flops_per_element=1.0, efficiency=0.5))
        state = {"factor": 2.0}
        data = np.arange(4, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8,
                                     parallelism=1).persist()
        ds.materialize()
        gds = ds.gpu_map_partition("scale_by_param",
                                   params_fn=lambda: dict(state))
        first = gds.collect()
        state["factor"] = 10.0
        gds2 = ds.gpu_map_partition("scale_by_param",
                                    params_fn=lambda: dict(state))
        second = gds2.collect()
        assert sorted(first.value) == sorted((data * 2).tolist())
        assert sorted(second.value) == sorted((data * 10).tolist())


class TestGpuReduce:
    def test_gpu_reduce_correct(self):
        _, session = make_gflink()
        data = np.arange(1000, dtype=np.float64)
        result = session.from_collection(data, element_nbytes=8,
                                         parallelism=4) \
            .gpu_reduce("block_sum", final_fn=lambda a, b: a + b) \
            .collect()
        assert result.value[0] == pytest.approx(np.sum(data))


class TestCacheAcrossJobs:
    def test_iterations_reuse_gpu_cache(self):
        cluster, session = make_gflink(n_workers=1, cores=2)
        data = np.arange(50_000, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8, scale=100.0,
                                     parallelism=2).persist()
        ds.materialize()
        pcie = []
        for _ in range(3):
            before = cluster.total_pcie_bytes()
            ds.gpu_map_partition("double", cache=True).count()
            pcie.append(cluster.total_pcie_bytes() - before)
        # Iteration 1 uploads input + downloads output; later iterations
        # only download output.
        assert pcie[1] < pcie[0]
        assert pcie[2] == pcie[1]

    def test_release_gpu_cache_frees_regions(self):
        cluster, session = make_gflink(n_workers=1)
        data = np.arange(1000, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8,
                                     parallelism=2).persist()
        ds.materialize()
        ds.gpu_map_partition("double", cache=True).count()
        gm = cluster.gpu_managers()[0]
        assert gm.devices[0].memory.allocated > 0  # cache region held
        session.release_gpu_cache()
        assert gm.devices[0].memory.allocated == 0

    def test_distinct_apps_have_distinct_cache_regions(self):
        cluster, _ = make_gflink(n_workers=1)
        s1 = GFlinkSession(cluster)
        s2 = GFlinkSession(cluster)
        assert s1.app_id != s2.app_id


class TestCommModeAblation:
    def test_gflink_mode_faster_than_heap_and_rpc(self):
        times = {}
        for mode in (CommMode.GFLINK, CommMode.JNI_HEAP, CommMode.RPC):
            _, session = make_gflink(n_workers=1, cores=1)
            data = np.arange(100_000, dtype=np.float64)
            ds = session.from_collection(data, element_nbytes=8, scale=100.0,
                                         parallelism=1).persist()
            ds.materialize()
            r = ds.gpu_map_partition("double", comm_mode=mode,
                                     name="m").count()
            times[mode] = r.metrics.span_of("m").seconds
        assert times[CommMode.GFLINK] < times[CommMode.JNI_HEAP]
        assert times[CommMode.JNI_HEAP] < times[CommMode.RPC]


class TestGDSTTypePropagation:
    def test_cpu_transform_of_gdst_stays_gdst(self):
        from repro.core.gdst import GDST
        _, session = make_gflink()
        ds = session.from_collection(np.arange(4.0), element_nbytes=8)
        assert isinstance(ds, GDST)
        assert isinstance(ds.map(lambda x: x), GDST)
        assert isinstance(ds.gpu_map_partition("double"), GDST)
