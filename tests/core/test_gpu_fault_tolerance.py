"""Fault tolerance on the GPU path: transient GWork failures are retried."""

import numpy as np
import pytest

from repro.common.errors import JobExecutionError, KernelError
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.gpu import KernelSpec


def make_session(max_retries=3):
    config = ClusterConfig(
        n_workers=1, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",),
        flink=FlinkConfig(max_task_retries=max_retries))
    cluster = GFlinkCluster(config)
    return GFlinkSession(cluster)


class FlakyKernel:
    """Functional kernel that crashes its first ``failures`` invocations."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self, inputs, params):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("simulated device fault")
        return {"out": inputs["in"] * 2.0}


class TestGpuRetry:
    def test_transient_kernel_fault_is_retried(self):
        session = make_session()
        flaky = FlakyKernel(failures=2)
        session.register_kernel(KernelSpec(
            "flaky", flaky, flops_per_element=1.0, efficiency=0.5))
        data = np.arange(50, dtype=np.float64)
        result = session.from_collection(data, element_nbytes=8,
                                         parallelism=1) \
            .gpu_map_partition("flaky").collect()
        assert sorted(result.value) == sorted((data * 2).tolist())
        assert result.metrics.retries == 2
        assert flaky.calls == 3

    def test_permanent_fault_exhausts_retry_budget(self):
        session = make_session(max_retries=2)
        session.register_kernel(KernelSpec(
            "doomed", FlakyKernel(failures=99),
            flops_per_element=1.0, efficiency=0.5))
        ds = session.from_collection(np.arange(8.0), element_nbytes=8,
                                     parallelism=1)
        with pytest.raises(JobExecutionError):
            ds.gpu_map_partition("doomed").collect()

    def test_unknown_kernel_fails_fast_without_retries(self):
        session = make_session()
        ds = session.from_collection(np.arange(8.0), element_nbytes=8,
                                     parallelism=1)
        with pytest.raises(KernelError):
            ds.gpu_map_partition("never_registered").collect()

    def test_retries_cost_simulated_time(self):
        def run(failures):
            session = make_session()
            flaky = FlakyKernel(failures=failures)
            session.register_kernel(KernelSpec(
                "flaky", flaky, flops_per_element=1.0, efficiency=0.5))
            data = np.arange(2000, dtype=np.float64)
            ds = session.from_collection(data, element_nbytes=8,
                                         scale=1e3, parallelism=1)
            return ds.gpu_map_partition("flaky").count().seconds

        assert run(2) > run(0)


class TestNoLeakOnFailure:
    def test_failed_works_do_not_leak_device_memory(self):
        """Repeated kernel crashes must not exhaust device memory: every
        retry reclaims the failed attempt's in-flight allocations."""
        session = make_session(max_retries=3)
        flaky = FlakyKernel(failures=3)
        session.register_kernel(KernelSpec(
            "leaky", flaky, flops_per_element=1.0, efficiency=0.5))
        data = np.arange(10_000, dtype=np.float64)
        result = session.from_collection(data, element_nbytes=8,
                                         scale=1e4, parallelism=1) \
            .gpu_map_partition("leaky").count()
        assert result.metrics.retries == 3
        for gm in session.cluster.gpu_managers():
            for device in gm.devices:
                assert device.memory.allocated == 0
