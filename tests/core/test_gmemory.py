"""Tests for GMemoryManager: cache regions, FIFO/no-evict GC, locality."""

import pytest

from repro.common import Environment
from repro.common.errors import ConfigError
from repro.core.gmemory import CacheRegion, EvictionPolicy, GMemoryManager
from repro.core.gwork import GWork
from repro.core.hbuffer import HBuffer
from repro.gpu import GPUDevice, TESLA_C2050


@pytest.fixture
def devices():
    env = Environment()
    return [GPUDevice(env, TESLA_C2050, index=i) for i in range(2)]


def make_region(device, capacity=1000, policy=EvictionPolicy.FIFO):
    return CacheRegion(device, capacity, policy)


class TestCacheRegion:
    def test_insert_then_lookup(self, devices):
        region = make_region(devices[0])
        entry = region.try_insert("k1", 400)
        assert entry is not None
        assert region.lookup("k1") is entry
        assert region.used == 400

    def test_miss_counts(self, devices):
        region = make_region(devices[0])
        assert region.lookup("absent") is None
        assert region.misses == 1

    def test_fifo_eviction_oldest_first(self, devices):
        region = make_region(devices[0], capacity=1000)
        region.try_insert("a", 400)
        region.try_insert("b", 400)
        entry = region.try_insert("c", 400)  # must evict "a"
        assert entry is not None
        assert region.contains("b") and region.contains("c")
        assert not region.contains("a")
        assert region.evictions == 1
        assert region.used == 800

    def test_fifo_evicts_multiple_until_fit(self, devices):
        # Paper: "the sizes of these objects are added until the sizes are
        # bigger than the size of the new partition".
        region = make_region(devices[0], capacity=1000)
        for key in ("a", "b", "c"):
            region.try_insert(key, 300)
        entry = region.try_insert("big", 700)
        assert entry is not None
        assert not region.contains("a") and not region.contains("b")
        assert region.contains("c") and region.contains("big")

    def test_no_evict_policy_refuses_when_full(self, devices):
        region = make_region(devices[0], capacity=1000,
                             policy=EvictionPolicy.NO_EVICT)
        region.try_insert("a", 600)
        assert region.try_insert("b", 600) is None
        assert region.contains("a")
        assert region.evictions == 0

    def test_block_larger_than_region_never_cached(self, devices):
        region = make_region(devices[0], capacity=1000)
        assert region.try_insert("huge", 2000) is None

    def test_duplicate_key_rejected(self, devices):
        region = make_region(devices[0])
        region.try_insert("k", 10)
        with pytest.raises(ConfigError):
            region.try_insert("k", 10)

    def test_region_reserves_device_memory(self, devices):
        device = devices[0]
        before = device.memory.available
        region = make_region(device, capacity=10_000)
        assert device.memory.available == before - 10_000
        region.release()
        assert device.memory.available == before


class TestGMemoryManager:
    def _work(self, app="appA"):
        h = HBuffer([1.0] * 10, element_nbytes=8)
        return GWork(execute_name="k", in_buffers={"in": h},
                     out_buffer=HBuffer([], 8), size=10, cache=True,
                     cache_key=("base", 0), app_id=app)

    def test_regions_lazy_per_app_and_device(self, devices):
        gmm = GMemoryManager(devices, cache_capacity_per_device=1000)
        assert not gmm.has_region("appA", 0)
        gmm.region("appA", 0)
        assert gmm.has_region("appA", 0)
        assert not gmm.has_region("appA", 1)
        assert not gmm.has_region("appB", 0)

    def test_release_app_only_touches_that_app(self, devices):
        gmm = GMemoryManager(devices, cache_capacity_per_device=1000)
        gmm.region("appA", 0)
        gmm.region("appB", 0)
        gmm.release_app("appA")
        assert not gmm.has_region("appA", 0)
        assert gmm.has_region("appB", 0)

    def test_locality_gid_picks_device_with_most_cached_bytes(self, devices):
        gmm = GMemoryManager(devices, cache_capacity_per_device=1000)
        gmm.region("appA", 0).try_insert(("base", 0, "in", 0), 100)
        gmm.region("appA", 1).try_insert(("base", 0, "in", 1), 500)
        work = self._work()
        keys = [("base", 0, "in", 0), ("base", 0, "in", 1)]
        assert gmm.locality_gid(work, keys) == 1

    def test_locality_gid_none_when_nothing_cached(self, devices):
        gmm = GMemoryManager(devices, cache_capacity_per_device=1000)
        assert gmm.locality_gid(self._work(), [("base", 0, "in", 0)]) is None

    def test_locality_gid_none_for_uncached_work(self, devices):
        gmm = GMemoryManager(devices, cache_capacity_per_device=1000)
        work = self._work()
        work.cache = False
        gmm.region("appA", 0).try_insert(("x",), 100)
        assert gmm.locality_gid(work, [("x",)]) is None

    def test_stats(self, devices):
        gmm = GMemoryManager(devices, cache_capacity_per_device=1000)
        region = gmm.region("appA", 0)
        region.try_insert("k", 10)
        region.lookup("k")
        region.lookup("absent")
        assert gmm.stats("appA") == {0: (1, 1, 0)}
