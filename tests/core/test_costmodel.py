"""Tests for the §6.3 analytical cost model."""

import pytest

from repro.core.costmodel import (
    Calibration,
    PhaseTimes,
    map_cpu_time,
    map_gpu_time,
    map_speedup,
    observation3_overhead_fraction,
    speedup_total,
    total_time,
)
from repro.gpu import KernelSpec, TESLA_C2050


@pytest.fixture
def calib():
    return Calibration()


@pytest.fixture
def kernel():
    return KernelSpec("k", lambda i, p: {}, flops_per_element=100.0,
                      efficiency=0.5)


class TestEquations:
    def test_eq1_total_time(self):
        phases = [PhaseTimes(map_s=10, reduce_s=2, shuffle_s=1)] * 3
        t = total_time(phases, submit_s=0.6, io_s=5, schedule_s=0.4)
        assert t == pytest.approx(3 * 13 + 6.0)

    def test_eq2_speedup(self):
        assert speedup_total(100.0, 20.0) == 5.0
        with pytest.raises(ValueError):
            speedup_total(1.0, 0.0)

    def test_eq3_speedup_positive_for_compute_bound(self, calib, kernel):
        n = 1e8
        s = map_speedup(n, flops_per_element=100.0, kernel=kernel,
                        in_bytes=n * 8, out_bytes=n * 8, calib=calib)
        assert s > 1.0

    def test_eq4_components_add(self, calib, kernel):
        n = 1e7
        in_b, out_b = n * 8, n * 8
        t = map_gpu_time(n, kernel, in_b, out_b, calib)
        transfer = (in_b + out_b) / TESLA_C2050.pcie_effective_bps
        assert t > transfer  # execution adds on top
        t_cached = map_gpu_time(n, kernel, in_b, out_b, calib,
                                cached_in_bytes=in_b)
        assert t_cached == pytest.approx(t - in_b / TESLA_C2050.pcie_effective_bps)

    def test_observation1_shuffle_caps_speedup(self, calib):
        # Bigger shuffle share -> smaller overall speedup, Map speedup fixed.
        def overall(shuffle_s):
            flink = total_time([PhaseTimes(map_s=100, shuffle_s=shuffle_s)],
                               0.6, 1, 0.1)
            gflink = total_time([PhaseTimes(map_s=10, shuffle_s=shuffle_s)],
                                0.6, 1, 0.1)
            return speedup_total(flink, gflink)

        assert overall(0.0) > overall(50.0) > overall(500.0)

    def test_observation2_cache_improves_speedup(self, calib, kernel):
        n = 1e7
        without = map_speedup(n, 100.0, kernel, n * 8, n * 8, calib)
        with_cache = map_speedup(n, 100.0, kernel, n * 8, n * 8, calib,
                                 cached_in_bytes=n * 8)
        assert with_cache > without

    def test_observation3_small_inputs_overhead_bound(self):
        small = observation3_overhead_fraction(compute_s=0.1, submit_s=0.6,
                                               io_s=0.5, schedule_s=0.1)
        large = observation3_overhead_fraction(compute_s=500.0, submit_s=0.6,
                                               io_s=0.5, schedule_s=0.1)
        assert small > 0.9
        assert large < 0.01

    def test_cpu_time_scales_with_cores(self, calib):
        one = map_cpu_time(1e8, 50.0, calib, cores=1)
        four = map_cpu_time(1e8, 50.0, calib, cores=4)
        assert one == pytest.approx(4 * four)


class TestModelVsSimulation:
    """The closed-form model must agree with the discrete-event engine."""

    def test_cpu_map_phase_matches_engine(self, calib):
        from repro.flink import FlinkSession, OpCost
        from tests.flink.conftest import make_cluster

        cluster = make_cluster(n_workers=1, cores=1)
        session = FlinkSession(cluster)
        n, flops = 5e6, 200.0
        ds = session.from_collection(list(range(500)), element_nbytes=0.0,
                                     scale=1e4, parallelism=1)
        result = ds.map(lambda x: x, cost=OpCost(flops_per_element=flops),
                        name="m").count()
        span = result.metrics.span_of("m").seconds
        predicted = map_cpu_time(n, flops, calib)
        overhead = (cluster.config.flink.task_schedule_s
                    + cluster.config.flink.task_deploy_s)
        assert span == pytest.approx(predicted + overhead, rel=1e-6)
