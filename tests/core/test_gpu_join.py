"""Tests for the GPU hash join (the paper's deferred Join-on-GPU)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec


def hash_join_kernel(inputs, params):
    """Join two (key, value) int64 arrays on the key column."""
    left, right = inputs["in"], inputs["right"]
    left = np.asarray(left, dtype=np.int64).reshape(-1, 2)
    right = np.asarray(right, dtype=np.int64).reshape(-1, 2)
    out = []
    table = {}
    for k, v in right:
        table.setdefault(int(k), []).append(int(v))
    for k, v in left:
        for rv in table.get(int(k), ()):
            out.append((int(k), int(v), rv))
    return {"out": np.asarray(out, dtype=np.int64).reshape(-1, 3)}


@pytest.fixture
def session():
    cluster = GFlinkCluster(ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",)))
    s = GFlinkSession(cluster)
    s.register_kernel(KernelSpec(
        "hash_join", hash_join_kernel, flops_per_element=8.0,
        bytes_per_element=16.0, efficiency=0.3))
    return s


def pairs(items):
    return np.asarray(items, dtype=np.int64)


class TestGpuJoin:
    def test_matches_cpu_join(self, session):
        left_data = pairs([(k, k * 10) for k in range(20)])
        right_data = pairs([(k, k * 100) for k in range(0, 20, 2)])
        left = session.from_collection(left_data, element_nbytes=16)
        right = session.from_collection(right_data, element_nbytes=16)

        gpu = left.gpu_join(right,
                            left_key=lambda row: int(row[0]),
                            right_key=lambda row: int(row[0]),
                            kernel_name="hash_join").collect()
        gpu_rows = sorted(tuple(int(x) for x in row) for row in gpu.value)

        cpu = left.join(right,
                        left_key=lambda row: int(row[0]),
                        right_key=lambda row: int(row[0]),
                        join_fn=lambda l, r: (int(l[0]), int(l[1]),
                                              int(r[1]))).collect()
        cpu_rows = sorted(cpu.value)
        assert gpu_rows == cpu_rows

    def test_duplicate_keys_fan_out(self, session):
        left = session.from_collection(pairs([(1, 10), (1, 11)]),
                                       element_nbytes=16)
        right = session.from_collection(pairs([(1, 100), (1, 101)]),
                                        element_nbytes=16)
        result = left.gpu_join(right, lambda r: int(r[0]),
                               lambda r: int(r[0]), "hash_join").collect()
        assert len(result.value) == 4

    def test_empty_side_yields_empty(self, session):
        left = session.from_collection(pairs([(1, 10)]), element_nbytes=16)
        right = session.from_collection(pairs([(2, 20)]), element_nbytes=16)
        result = left.gpu_join(right, lambda r: int(r[0]),
                               lambda r: int(r[0]), "hash_join").collect()
        assert list(result.value) == []

    def test_join_ships_both_sides_over_pcie(self, session):
        left = session.from_collection(
            pairs([(k % 8, k) for k in range(64)]), element_nbytes=16)
        right = session.from_collection(
            pairs([(k % 8, k) for k in range(32)]), element_nbytes=16)
        result = left.gpu_join(right, lambda r: int(r[0]),
                               lambda r: int(r[0]), "hash_join").count()
        assert result.metrics.pcie_bytes > 0
        assert result.metrics.gpu_kernel_s > 0

    def test_requires_gpu_worker(self):
        cluster = GFlinkCluster(ClusterConfig(n_workers=1))
        s = GFlinkSession(cluster)
        left = s.from_collection(pairs([(1, 1)]), element_nbytes=16)
        right = s.from_collection(pairs([(1, 2)]), element_nbytes=16)
        with pytest.raises(ConfigError, match="GPUManager"):
            left.gpu_join(right, lambda r: int(r[0]), lambda r: int(r[0]),
                          "hash_join").collect()
