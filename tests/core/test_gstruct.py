"""Tests for GStruct: layout computation, alignment, NumPy mapping, AoS/SoA."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import LayoutError
from repro.core import (
    DataLayout,
    Double64,
    Float32,
    GStruct4,
    GStruct8,
    Int64,
    StructField,
    Unsigned32,
)
from repro.core.gstruct import struct_nbytes


class Point(GStruct8):
    """The paper's §3.5.1 example struct."""

    x = StructField(order=0, ftype=Unsigned32)
    y = StructField(order=1, ftype=Double64)
    z = StructField(order=2, ftype=Float32)


class Packed4(GStruct4):
    a = StructField(order=0, ftype=Unsigned32)
    b = StructField(order=1, ftype=Double64)


class WithArray(GStruct8):
    values = StructField(order=0, ftype=Float32, length=8)
    weight = StructField(order=1, ftype=Double64)


class TestLayout:
    def test_paper_example_layout(self):
        # C layout with 8-byte alignment: x@0 (4B), pad to 8, y@8 (8B),
        # z@16 (4B), pad struct to 24.
        lay = Point.layout()
        assert lay.offsets == (0, 8, 16)
        assert lay.itemsize == 24
        assert lay.field_names() == ["x", "y", "z"]

    def test_four_byte_alignment_packs_tighter(self):
        # GStruct_4: a@0, b@4 (double aligned to min(8,4)=4), size 12.
        lay = Packed4.layout()
        assert lay.offsets == (0, 4)
        assert lay.itemsize == 12

    def test_in_struct_array_fields(self):
        lay = WithArray.layout()
        assert lay.offsets == (0, 32)
        assert lay.itemsize == 40
        assert WithArray.layout().fields[0].nbytes == 32

    def test_duplicate_orders_rejected(self):
        with pytest.raises(LayoutError):
            class Bad(GStruct8):
                a = StructField(order=0, ftype=Float32)
                b = StructField(order=0, ftype=Float32)

    def test_non_contiguous_orders_rejected(self):
        with pytest.raises(LayoutError):
            class Bad(GStruct8):
                a = StructField(order=0, ftype=Float32)
                b = StructField(order=2, ftype=Float32)

    def test_fieldless_struct_has_no_layout(self):
        class Empty(GStruct8):
            pass

        with pytest.raises(LayoutError):
            Empty.layout()

    def test_struct_nbytes(self):
        assert struct_nbytes(Point, 100) == 2400


class TestNumpyMapping:
    def test_dtype_matches_layout(self):
        dt = Point.numpy_dtype()
        assert dt.itemsize == 24
        assert dt.fields["x"][1] == 0
        assert dt.fields["y"][1] == 8
        assert dt.fields["z"][1] == 16

    def test_raw_bytes_match_cuda_struct_layout(self):
        # Writing through the structured array places each field at its C
        # offset — the "no serialization needed" property.
        arr = Point.empty(2)
        arr["x"] = [1, 2]
        arr["y"] = [1.5, 2.5]
        arr["z"] = [9.0, 10.0]
        raw = arr.tobytes()
        assert len(raw) == 48
        assert np.frombuffer(raw[0:4], dtype="<u4")[0] == 1
        assert np.frombuffer(raw[8:16], dtype="<f8")[0] == 1.5
        assert np.frombuffer(raw[16:20], dtype="<f4")[0] == 9.0
        assert np.frombuffer(raw[24:28], dtype="<u4")[0] == 2

    def test_empty_aos(self):
        arr = Point.empty(10)
        assert arr.shape == (10,)
        assert arr.dtype == Point.numpy_dtype()

    def test_empty_soa(self):
        soa = Point.empty(10, layout=DataLayout.SOA)
        assert set(soa) == {"x", "y", "z"}
        assert soa["y"].dtype == np.dtype("<f8")
        assert all(len(a) == 10 for a in soa.values())

    def test_array_field_soa_shape(self):
        soa = WithArray.empty(5, layout=DataLayout.SOA)
        assert soa["values"].shape == (5, 8)

    def test_aos_soa_roundtrip(self):
        arr = Point.empty(4)
        arr["x"] = np.arange(4)
        arr["y"] = np.linspace(0, 1, 4)
        arr["z"] = np.arange(4, dtype=np.float32) * 2
        soa = Point.to_soa(arr)
        assert all(a.flags["C_CONTIGUOUS"] for a in soa.values())
        back = Point.from_soa(soa)
        assert np.array_equal(back, arr)


class TestFieldValidation:
    def test_negative_order_rejected(self):
        with pytest.raises(LayoutError):
            StructField(order=-1, ftype=Float32)

    def test_zero_length_rejected(self):
        with pytest.raises(LayoutError):
            StructField(order=0, ftype=Float32, length=0)


class TestRawBytes:
    def test_roundtrip(self):
        arr = Point.empty(5)
        arr["x"] = np.arange(5)
        arr["y"] = np.linspace(0, 1, 5)
        arr["z"] = np.arange(5, dtype=np.float32) * 3
        back = Point.from_bytes(Point.to_bytes(arr))
        assert np.array_equal(back, arr)

    def test_to_bytes_rejects_wrong_dtype(self):
        with pytest.raises(LayoutError):
            Point.to_bytes(np.zeros(4, dtype=np.float64))

    def test_from_bytes_rejects_partial_struct(self):
        with pytest.raises(LayoutError):
            Point.from_bytes(b"\x00" * (Point.itemsize() + 1))

    def test_bytes_len_matches_itemsize(self):
        arr = Point.empty(7)
        assert len(Point.to_bytes(arr)) == 7 * Point.itemsize()

    @given(st.integers(min_value=0, max_value=50))
    def test_roundtrip_property(self, n):
        arr = Point.empty(n)
        arr["x"] = np.arange(n, dtype=np.uint32)
        back = Point.from_bytes(Point.to_bytes(arr))
        assert np.array_equal(back, arr)


@given(st.integers(min_value=1, max_value=6))
def test_property_offsets_are_aligned_and_disjoint(n_fields):
    """Any struct the metaclass accepts has aligned, non-overlapping fields."""
    types = [Unsigned32, Double64, Float32, Int64]
    namespace = {
        f"f{i}": StructField(order=i, ftype=types[i % len(types)])
        for i in range(n_fields)
    }
    cls = type("Gen", (GStruct8,), namespace)
    lay = cls.layout()
    prev_end = 0
    for f, off in zip(lay.fields, lay.offsets):
        align = min(f.ftype.nbytes, lay.alignment)
        assert off % align == 0
        assert off >= prev_end
        prev_end = off + f.nbytes
    assert lay.itemsize >= prev_end
    assert lay.itemsize % lay.alignment == 0
    # NumPy accepts the computed layout verbatim.
    cls.numpy_dtype()
