"""Tests for HBuffer blocking and the communication channels (incl. Table 2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common import Environment
from repro.common.errors import LayoutError
from repro.core.channels import CommCosts, CommMode, CUDAWrapper
from repro.core.gstruct import Float32, GStruct8, StructField
from repro.core.hbuffer import Block, HBuffer
from repro.gpu import CUDARuntime, GPUDevice, KernelRegistry, TESLA_C2050
from repro.common.units import MB


class Vec(GStruct8):
    x = StructField(order=0, ftype=Float32)
    y = StructField(order=1, ftype=Float32)


class TestHBuffer:
    def test_for_struct_nbytes(self):
        arr = Vec.empty(100)
        h = HBuffer.for_struct(Vec, arr)
        assert h.element_nbytes == 8
        assert h.nbytes == 800
        assert h.dma_capable

    def test_heap_objects_not_dma_capable(self):
        h = HBuffer.heap_objects([1, 2, 3], element_nbytes=16)
        assert not h.dma_capable

    def test_nominal_scaling(self):
        h = HBuffer(np.zeros(100), element_nbytes=8, scale=1000.0)
        assert h.nominal_count == 100_000
        assert h.nbytes == 800_000

    def test_split_blocks_no_struct_straddles_page(self):
        arr = Vec.empty(1000)
        h = HBuffer.for_struct(Vec, arr)
        blocks = h.split_blocks(block_nbytes=100)  # 12 structs per block
        per = 100 // 8
        assert all(b.real_count <= per for b in blocks)
        assert sum(b.real_count for b in blocks) == 1000

    def test_split_blocks_preserves_nominal_total(self):
        h = HBuffer(np.zeros(777), element_nbytes=8, scale=123.0)
        blocks = h.split_blocks(block_nbytes=4096)
        assert sum(b.nominal_count for b in blocks) \
            == pytest.approx(777 * 123.0)

    def test_split_empty(self):
        h = HBuffer(np.zeros(0), element_nbytes=8)
        assert h.split_blocks(4096) == []

    def test_block_smaller_than_element_rejected(self):
        h = HBuffer(np.zeros(4), element_nbytes=64)
        with pytest.raises(LayoutError):
            h.split_blocks(32)

    @given(st.integers(min_value=1, max_value=5000),
           st.floats(min_value=1.0, max_value=1e4),
           st.integers(min_value=64, max_value=1 << 20))
    def test_property_blocks_partition_the_buffer(self, n, scale, block_b):
        h = HBuffer(np.zeros(n), element_nbytes=16, scale=scale)
        blocks = h.split_blocks(block_b)
        assert sum(b.real_count for b in blocks) == n
        assert sum(b.nominal_count for b in blocks) == pytest.approx(n * scale)
        # Block indices are consecutive from zero.
        assert [b.index for b in blocks] == list(range(len(blocks)))


def make_stack():
    env = Environment()
    device = GPUDevice(env, TESLA_C2050)
    runtime = CUDARuntime(env, [device], KernelRegistry())
    wrapper = CUDAWrapper(env, runtime, CommCosts())
    return env, device, runtime, wrapper


def transfer_time(env, device, wrapper, nbytes, mode):
    h = HBuffer(np.zeros(max(nbytes // 8, 1)), element_nbytes=8,
                off_heap=mode is CommMode.GFLINK,
                pinned=mode is CommMode.GFLINK)
    block = Block(index=0, elements=h.elements, nominal_count=nbytes / 8,
                  nbytes=nbytes)

    def proc():
        dst = yield from wrapper.cuda_malloc(device, nbytes)
        t0 = env.now
        yield from wrapper.transfer_h2d_inline(device, dst, block, h, mode)
        return env.now - t0

    return env.run(until=env.process(proc()))


class TestTransferChannel:
    """Table 2: bandwidth of the transfer channel vs the native path."""

    def native_time(self, nbytes):
        # Native: DMA with no JNI redirect.
        return TESLA_C2050.pcie_latency_s + nbytes / TESLA_C2050.pcie_effective_bps

    @pytest.mark.parametrize("nbytes,paper_gflink_mbps", [
        (2048, 776.398), (4096, 1241.311), (16384, 2195.872),
        (32768, 2556.237), (131072, 2858.368), (262144, 2968.151),
        (524288, 2960.003), (1048576, 2973.701),
    ])
    def test_gflink_bandwidth_matches_table2(self, nbytes, paper_gflink_mbps):
        env, device, runtime, wrapper = make_stack()
        t = transfer_time(env, device, wrapper, nbytes, CommMode.GFLINK)
        measured_mbps = nbytes / t / MB
        # Within 10% of the paper's measured row.
        assert measured_mbps == pytest.approx(paper_gflink_mbps, rel=0.10)

    def test_gflink_slower_than_native_for_small_transfers(self):
        env, device, runtime, wrapper = make_stack()
        t_gflink = transfer_time(env, device, wrapper, 2048, CommMode.GFLINK)
        t_native = self.native_time(2048)
        assert t_gflink > t_native
        # ...but the gap is the JNI redirect, i.e. sub-microsecond.
        assert t_gflink - t_native < 1e-6

    def test_gflink_matches_native_for_large_transfers(self):
        env, device, runtime, wrapper = make_stack()
        t_gflink = transfer_time(env, device, wrapper, 1 << 20,
                                 CommMode.GFLINK)
        assert t_gflink == pytest.approx(self.native_time(1 << 20), rel=0.01)

    def test_bandwidth_increases_with_size_then_plateaus(self):
        env, device, runtime, wrapper = make_stack()
        bws = []
        for nbytes in (2048, 16384, 131072, 1 << 20):
            t = transfer_time(env, device, wrapper, nbytes, CommMode.GFLINK)
            bws.append(nbytes / t)
        assert bws == sorted(bws)
        assert bws[-1] / bws[-2] < 1.05  # plateau


class TestCommPathAblation:
    def test_jni_heap_path_pays_conversion(self):
        env, device, runtime, wrapper = make_stack()
        nbytes = 10 * MB
        t_gflink = transfer_time(env, device, wrapper, nbytes,
                                 CommMode.GFLINK)
        t_heap = transfer_time(env, device, wrapper, nbytes,
                               CommMode.JNI_HEAP)
        assert t_heap > t_gflink * 2  # serde + heap copy dominate

    def test_rpc_path_is_worst(self):
        env, device, runtime, wrapper = make_stack()
        nbytes = 10 * MB
        t_heap = transfer_time(env, device, wrapper, nbytes,
                               CommMode.JNI_HEAP)
        t_rpc = transfer_time(env, device, wrapper, nbytes, CommMode.RPC)
        assert t_rpc > t_heap

    def test_jni_call_counted(self):
        env, device, runtime, wrapper = make_stack()
        before = wrapper.jni_calls
        transfer_time(env, device, wrapper, 2048, CommMode.GFLINK)
        assert wrapper.jni_calls > before
