"""Tests of the GStreamManager: pipeline execution, caching, stealing."""

import numpy as np
import pytest

from repro.common import Environment
from repro.core.channels import CommCosts, CommMode, CUDAWrapper
from repro.core.gmemory import EvictionPolicy, GMemoryManager
from repro.core.gstream import GStreamManager
from repro.core.gwork import GWork
from repro.core.hbuffer import HBuffer
from repro.gpu import CUDARuntime, GPUDevice, KernelRegistry, KernelSpec, TESLA_C2050


def make_stack(n_gpus=1, streams_per_gpu=2, block_nbytes=1 << 20,
               policy=EvictionPolicy.FIFO, cache_bytes=1 << 28):
    env = Environment()
    registry = KernelRegistry()
    registry.register(KernelSpec(
        "double", lambda i, p: {"out": i["in"] * 2.0},
        flops_per_element=2.0, efficiency=0.5))
    registry.register(KernelSpec(
        "block_sum", lambda i, p: {"out": np.array([float(np.sum(i["in"]))])},
        flops_per_element=1.0, efficiency=0.5))
    registry.register(KernelSpec(
        "axpy", lambda i, p: {"out": i["in"] * p["a"] + i["bias"][0]},
        flops_per_element=2.0, efficiency=0.5))
    devices = [GPUDevice(env, TESLA_C2050, index=i) for i in range(n_gpus)]
    runtime = CUDARuntime(env, devices, registry)
    wrapper = CUDAWrapper(env, runtime, CommCosts())
    gmm = GMemoryManager(devices, cache_capacity_per_device=cache_bytes,
                         policy=policy)
    manager = GStreamManager(env, devices, wrapper, gmm,
                             streams_per_gpu=streams_per_gpu,
                             block_nbytes=block_nbytes)
    return env, manager, devices


def work_for(data, kernel="double", scale=1.0, cache=False, key=("d", 0),
             app="app", extra=None, params=None):
    h = HBuffer(data, element_nbytes=8, scale=scale, off_heap=True,
                pinned=True)
    buffers = {"in": h}
    if extra:
        for name, arr in extra.items():
            buffers[name] = HBuffer(arr, element_nbytes=8, off_heap=True,
                                    pinned=True)
    return GWork(execute_name=kernel, in_buffers=buffers,
                 out_buffer=HBuffer([], 8, off_heap=True, pinned=True),
                 size=len(data) * scale, cache=cache,
                 cache_key=key if cache else None, app_id=app,
                 params=params or {})


def submit_and_wait(env, manager, work):
    done = manager.submit(work)
    return env.run(until=done)


class TestPipelineExecution:
    def test_map_kernel_roundtrip(self):
        env, manager, devices = make_stack()
        data = np.arange(100, dtype=np.float64)
        out = submit_and_wait(env, manager, work_for(data))
        assert np.allclose(out.elements, data * 2.0)
        assert manager.works_completed == 1

    def test_multi_block_output_order(self):
        env, manager, _ = make_stack(block_nbytes=160)  # 20 elements/block
        data = np.arange(100, dtype=np.float64)
        out = submit_and_wait(env, manager, work_for(data))
        assert np.allclose(out.elements, data * 2.0)  # order preserved

    def test_reduce_style_kernel_partials(self):
        env, manager, _ = make_stack(block_nbytes=160)
        data = np.ones(100, dtype=np.float64)
        out = submit_and_wait(env, manager, work_for(data, kernel="block_sum"))
        assert np.sum(out.elements) == pytest.approx(100.0)
        assert len(out.elements) == 5  # one partial per block

    def test_secondary_inputs_and_params(self):
        env, manager, _ = make_stack()
        data = np.arange(10, dtype=np.float64)
        bias = np.array([100.0])
        work = work_for(data, kernel="axpy", extra={"bias": bias},
                        params={"a": 3.0})
        out = submit_and_wait(env, manager, work)
        assert np.allclose(out.elements, data * 3.0 + 100.0)

    def test_device_memory_freed_after_uncached_work(self):
        env, manager, devices = make_stack()
        data = np.arange(1000, dtype=np.float64)
        submit_and_wait(env, manager, work_for(data))
        assert devices[0].memory.allocated == 0

    def test_kernel_error_propagates_via_completion(self):
        env, manager, _ = make_stack()
        data = np.arange(10, dtype=np.float64)
        work = work_for(data, kernel="nonexistent")
        done = manager.submit(work)
        with pytest.raises(Exception):
            env.run(until=done)

    def test_nominal_scale_drives_kernel_time(self):
        def kernel_secs(scale):
            env, manager, devices = make_stack()
            data = np.arange(1000, dtype=np.float64)
            submit_and_wait(env, manager, work_for(data, scale=scale))
            return devices[0].kernel_seconds

        # 1e5x more nominal elements -> much more kernel time (the fixed
        # launch overhead keeps the ratio below 1e5).
        assert kernel_secs(1e5) > 50 * kernel_secs(1.0)


class TestPipelineOverlap:
    def test_pipelining_beats_serial_stages(self):
        # Compute-heavy kernel whose total K time rivals the transfers: the
        # pipeline must hide most of the kernel time behind the copies.
        env, manager, devices = make_stack(block_nbytes=1 << 20)
        manager.wrapper.runtime.registry.register(KernelSpec(
            "heavy", lambda i, p: {"out": i["in"] * 2.0},
            flops_per_element=2700.0, efficiency=0.5))
        n = 200_000
        data = np.arange(n, dtype=np.float64)
        scale = 50.0  # nominal 10M elements = 80 MB in, 80 MB out
        t0 = env.now
        submit_and_wait(env, manager,
                        work_for(data, kernel="heavy", scale=scale))
        wall = env.now - t0
        nbytes = n * scale * 8
        h2d = nbytes / TESLA_C2050.pcie_effective_bps
        d2h = nbytes / TESLA_C2050.pcie_effective_bps
        kern = devices[0].kernel_seconds
        serial = h2d + d2h + kern
        # The kernel time is comparable to the total wire time...
        assert kern == pytest.approx(h2d + d2h, rel=0.1)
        # ...and the pipeline hides most of it.
        assert wall < serial * 0.8
        # C2050 has one copy engine: H2D and D2H cannot overlap each other,
        # so wall can never beat the total wire time.
        assert wall > h2d + d2h

    def test_full_duplex_device_overlaps_both_directions(self):
        # Same work on a 2-copy-engine device: D2H of block k-1 overlaps
        # H2D of block k+1, so wall time approaches max(h2d, d2h) + kernel
        # remainder instead of their sum.
        from repro.gpu import TESLA_K20
        env = Environment()
        registry = KernelRegistry()
        registry.register(KernelSpec(
            "light", lambda i, p: {"out": i["in"]}, flops_per_element=0.1,
            efficiency=1.0))
        devices = [GPUDevice(env, TESLA_K20, index=0)]
        runtime = CUDARuntime(env, devices, registry)
        wrapper = CUDAWrapper(env, runtime, CommCosts())
        gmm = GMemoryManager(devices, cache_capacity_per_device=1 << 28)
        manager = GStreamManager(env, devices, wrapper, gmm,
                                 streams_per_gpu=1, block_nbytes=1 << 20)
        n, scale = 200_000, 50.0
        data = np.arange(n, dtype=np.float64)
        submit_and_wait(env, manager,
                        work_for(data, kernel="light", scale=scale))
        nbytes = n * scale * 8
        one_way = nbytes / TESLA_K20.pcie_effective_bps
        assert env.now < 1.5 * one_way  # far below the 2x a half-duplex pays


class TestCachingBehaviour:
    def test_second_submission_skips_h2d(self):
        env, manager, devices = make_stack()
        data = np.arange(10_000, dtype=np.float64)
        submit_and_wait(env, manager,
                        work_for(data, cache=True, key=("m", 0)))
        h2d_after_first = devices[0].h2d_bytes
        submit_and_wait(env, manager,
                        work_for(data, cache=True, key=("m", 0)))
        assert devices[0].h2d_bytes == h2d_after_first  # no new input bytes

    def test_cache_speeds_up_iterations(self):
        def iteration_times(cache):
            env, manager, _ = make_stack()
            data = np.arange(100_000, dtype=np.float64)
            times = []
            for i in range(3):
                t0 = env.now
                submit_and_wait(env, manager,
                                work_for(data, scale=100.0, cache=cache,
                                         key=("m", 0)))
                times.append(env.now - t0)
            return times

        cached = iteration_times(True)
        uncached = iteration_times(False)
        assert cached[1] < uncached[1]
        assert cached[1] < cached[0]  # first iteration pays the upload

    def test_no_evict_policy_when_working_set_exceeds_region(self):
        # Region fits half the data: FIFO would thrash; NO_EVICT keeps the
        # first half resident forever.
        data = np.arange(10_000, dtype=np.float64)  # 80 KB
        env, manager, devices = make_stack(policy=EvictionPolicy.NO_EVICT,
                                           cache_bytes=40_000,
                                           block_nbytes=8_000)
        submit_and_wait(env, manager, work_for(data, cache=True, key=("m", 0)))
        region = manager.gmm.region("app", 0)
        assert region.evictions == 0
        assert region.used <= 40_000

    def test_locality_routes_to_cached_device(self):
        env, manager, devices = make_stack(n_gpus=2, streams_per_gpu=1)
        data = np.arange(10_000, dtype=np.float64)
        out = submit_and_wait(env, manager,
                              work_for(data, cache=True, key=("m", 0)))
        first_device = devices[0].h2d_bytes > 0
        gid = 0 if first_device else 1
        # Re-submission must land on the device that cached the data.
        work2 = work_for(data, cache=True, key=("m", 0))
        submit_and_wait(env, manager, work2)
        assert work2.assigned_device == gid


class TestWorkStealingIntegration:
    def test_queued_work_drains_across_gpus(self):
        env, manager, devices = make_stack(n_gpus=2, streams_per_gpu=1)
        data = np.arange(50_000, dtype=np.float64)
        events = [manager.submit(work_for(data, scale=100.0, key=None))
                  for _ in range(8)]
        env.run(until=env.all_of(events))
        assert manager.works_completed == 8
        assert manager.pending == 0
        # Both GPUs participated.
        assert devices[0].kernels_launched > 0
        assert devices[1].kernels_launched > 0

    def test_all_streams_idle_after_drain(self):
        env, manager, _ = make_stack(n_gpus=2, streams_per_gpu=2)
        data = np.arange(1000, dtype=np.float64)
        events = [manager.submit(work_for(data)) for _ in range(5)]
        env.run(until=env.all_of(events))
        env.run()
        assert manager.idle_stream_count() == 4
