"""GPU operator chaining: fused GWorks, device-resident intermediates.

Covers the three layers of the feature:

* GStream — multi-stage kernel execution, cached-stage resume, spilling
  oversized intermediates into the cache region, per-stage timings;
* optimizer — detection of maximal fusable GPU runs and the breaks
  (persist, fan-out, explicit parallelism, incompatible comm modes);
* end to end — fused results byte-identical to unfused, PCIe traffic
  reduced, chain intermediates reused across iterative jobs.
"""

import numpy as np
import pytest

from repro.common import Environment
from repro.common.errors import ConfigError
from repro.core import GFlinkCluster, GFlinkSession
from repro.core.channels import CommCosts, CommMode, CUDAWrapper
from repro.core.gdst import FusedGpuOp, GpuMapPartitionOp
from repro.core.gmemory import CacheRegion, EvictionPolicy, GMemoryManager
from repro.core.gstream import GStreamManager
from repro.core.gwork import GWork, KernelStage, STAGE_OUT
from repro.core.hbuffer import HBuffer
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.flink.optimizer import apply_chaining
from repro.flink.plan import CollectSink, topological_order
from repro.gpu import (
    CUDARuntime,
    GPUDevice,
    GPUSpec,
    KernelRegistry,
    KernelSpec,
    TESLA_C2050,
)

MiB = 1 << 20


def make_stack(n_gpus=1, streams_per_gpu=2, block_nbytes=1 << 20,
               policy=EvictionPolicy.FIFO, cache_bytes=1 << 28,
               spec=TESLA_C2050):
    env = Environment()
    registry = KernelRegistry()
    registry.register(KernelSpec(
        "double", lambda i, p: {"out": i["in"] * 2.0},
        flops_per_element=2.0, efficiency=0.5))
    registry.register(KernelSpec(
        "inc", lambda i, p: {"out": i["in"] + 1.0},
        flops_per_element=1.0, efficiency=0.5))
    registry.register(KernelSpec(
        "halve_count", lambda i, p: {"out": i["in"][::2]},
        flops_per_element=1.0, efficiency=0.5))
    devices = [GPUDevice(env, spec, index=i) for i in range(n_gpus)]
    runtime = CUDARuntime(env, devices, registry)
    wrapper = CUDAWrapper(env, runtime, CommCosts())
    gmm = GMemoryManager(devices, cache_capacity_per_device=cache_bytes,
                         policy=policy)
    manager = GStreamManager(env, devices, wrapper, gmm,
                             streams_per_gpu=streams_per_gpu,
                             block_nbytes=block_nbytes)
    return env, manager, devices


def staged_work(data, stage_specs, scale=1.0, cache=False, key=("pri", 0),
                primary_cached=True, app="app"):
    """A chained GWork; ``stage_specs`` is a list of KernelStage kwargs."""
    h = HBuffer(data, element_nbytes=8, scale=scale, off_heap=True,
                pinned=True)
    stages = [KernelStage(**kw) for kw in stage_specs]
    return GWork(execute_name="+".join(s.execute_name for s in stages),
                 in_buffers={"in": h},
                 out_buffer=HBuffer([], 8, off_heap=True, pinned=True),
                 size=len(data) * scale, cache=cache,
                 cache_key=key if cache else None, app_id=app,
                 stages=stages, primary_cached=primary_cached)


def submit_and_wait(env, manager, work):
    done = manager.submit(work)
    return env.run(until=done)


class TestStagedPipeline:
    def test_two_stage_chain_correct(self):
        env, manager, _ = make_stack()
        data = np.arange(100, dtype=np.float64)
        work = staged_work(data, [{"execute_name": "double"},
                                  {"execute_name": "inc"}])
        out = submit_and_wait(env, manager, work)
        assert np.allclose(out.elements, data * 2.0 + 1.0)

    def test_multi_block_chain_order_preserved(self):
        env, manager, _ = make_stack(block_nbytes=160)  # 20 elems/block
        data = np.arange(100, dtype=np.float64)
        work = staged_work(data, [{"execute_name": "double"},
                                  {"execute_name": "double"},
                                  {"execute_name": "inc"}])
        out = submit_and_wait(env, manager, work)
        assert np.allclose(out.elements, data * 4.0 + 1.0)

    def test_intermediates_never_cross_pcie(self):
        """A fused N-deep chain moves input + final output only — the
        unfused equivalent pays a D2H+H2D round-trip per boundary."""
        env, manager, devices = make_stack()
        data = np.arange(1000, dtype=np.float64)
        work = staged_work(data, [{"execute_name": "double"}] * 4)
        submit_and_wait(env, manager, work)
        fused_pcie = devices[0].h2d_bytes + devices[0].d2h_bytes
        assert fused_pcie == 2 * data.nbytes

        env2, manager2, devices2 = make_stack()
        current = data
        for _ in range(4):
            out = submit_and_wait(
                env2, manager2,
                staged_work(current, [{"execute_name": "double"}]))
            current = np.asarray(out.elements)
        unfused_pcie = devices2[0].h2d_bytes + devices2[0].d2h_bytes
        assert unfused_pcie == 8 * data.nbytes
        assert np.allclose(current, data * 16.0)

    def test_per_stage_seconds_recorded(self):
        env, manager, _ = make_stack()
        data = np.arange(500, dtype=np.float64)
        work = staged_work(data, [{"execute_name": "double"},
                                  {"execute_name": "inc"}])
        submit_and_wait(env, manager, work)
        assert set(work.stage_seconds) == {"double", "inc"}
        assert all(s > 0 for s in work.stage_seconds.values())

    def test_mid_chain_count_change(self):
        """A flatmap-style middle stage re-scales the nominal stream."""
        env, manager, _ = make_stack()
        data = np.arange(64, dtype=np.float64)
        work = staged_work(data, [{"execute_name": "halve_count"},
                                  {"execute_name": "double"}],
                           scale=100.0)
        out = submit_and_wait(env, manager, work)
        assert np.allclose(out.elements, data[::2] * 2.0)

    def test_single_stage_work_unchanged(self):
        """A plain GWork is the one-stage special case: same results, same
        transfer accounting as the seed pipeline."""
        env, manager, devices = make_stack()
        data = np.arange(256, dtype=np.float64)
        h = HBuffer(data, element_nbytes=8, off_heap=True, pinned=True)
        work = GWork(execute_name="double", in_buffers={"in": h},
                     out_buffer=HBuffer([], 8, off_heap=True, pinned=True),
                     size=len(data), app_id="app")
        out = submit_and_wait(env, manager, work)
        assert np.allclose(out.elements, data * 2.0)
        assert devices[0].h2d_bytes + devices[0].d2h_bytes == 2 * data.nbytes

    def test_staged_work_rejects_mapped_memory(self):
        h = HBuffer(np.arange(4.0), element_nbytes=8, off_heap=True,
                    pinned=True)
        with pytest.raises(ConfigError, match="chaining"):
            GWork(execute_name="double", in_buffers={"in": h},
                  out_buffer=HBuffer([], 8), size=4, mapped_memory=True,
                  stages=[KernelStage("double"), KernelStage("inc")])


class TestCachedStageResume:
    def _cached_chain_work(self, data):
        return staged_work(
            data,
            [{"execute_name": "double", "cache_output": True,
              "cache_key": ("mid", 0)},
             {"execute_name": "inc"}],
            cache=True, key=("pri", 0), primary_cached=False)

    def test_second_submission_skips_prefix(self):
        env, manager, devices = make_stack(block_nbytes=160)
        data = np.arange(100, dtype=np.float64)

        out1 = submit_and_wait(env, manager, self._cached_chain_work(data))
        kernels_first = devices[0].kernels_launched
        h2d_first = devices[0].h2d_bytes

        out2 = submit_and_wait(env, manager, self._cached_chain_work(data))
        # Resume from the cached stage output: no upload, only the second
        # stage's kernels run again.
        assert devices[0].h2d_bytes == h2d_first
        assert devices[0].kernels_launched == kernels_first + 5  # 5 blocks
        assert np.allclose(out2.elements, out1.elements)
        assert np.allclose(out2.elements, data * 2.0 + 1.0)

    def test_locality_routes_to_device_holding_intermediates(self):
        env, manager, _ = make_stack(n_gpus=2, block_nbytes=160)
        data = np.arange(100, dtype=np.float64)
        work1 = self._cached_chain_work(data)
        submit_and_wait(env, manager, work1)
        work2 = self._cached_chain_work(data)
        submit_and_wait(env, manager, work2)
        assert work2.assigned_device == work1.assigned_device

    def test_stage_keys_in_locality_keys(self):
        env, manager, _ = make_stack(block_nbytes=160)
        work = self._cached_chain_work(np.arange(100, dtype=np.float64))
        keys = manager._locality_keys(work)
        assert (("mid", 0), STAGE_OUT, 0) in keys
        # primary_cached=False: raw input blocks are not locality.
        assert (("pri", 0), "in", 0) not in keys


class TestSpill:
    TINY = GPUSpec(name="tiny", sm_count=2, sp_gflops=100.0,
                   mem_bytes=4 * MiB, mem_bandwidth_bps=20.0e9,
                   pcie_effective_bps=3.0e9, pcie_latency_s=1.8e-6,
                   copy_engines=1, kernel_launch_s=5e-6,
                   max_threads_resident=2 * 1024)

    def test_oversized_intermediate_spills_to_cache_region(self):
        """2 MiB region + 1 MiB cached input leave < 2 MiB free: a 2 MiB
        stage output must borrow region room instead of failing."""
        env, manager, devices = make_stack(
            spec=self.TINY, cache_bytes=2 * MiB, block_nbytes=1 * MiB)
        data = np.arange(128, dtype=np.float64)  # 1 MiB nominal at x1024
        work = staged_work(
            data,
            [{"execute_name": "double", "out_element_nbytes": 16.0},
             {"execute_name": "double", "out_element_nbytes": 16.0},
             {"execute_name": "inc", "out_element_nbytes": 8.0}],
            scale=1024.0, cache=True, key=("pri", 0))
        out = submit_and_wait(env, manager, work)
        assert np.allclose(out.elements, data * 4.0 + 1.0)
        region = manager.gmm.region("app", 0)
        assert region.spills >= 1
        # Spilled intermediates were returned: only durable cache entries
        # remain in the region.
        assert all(not (isinstance(k, tuple) and k and k[0] == "spill")
                   for k in region._entries)

    def test_without_region_oversized_chain_fails(self):
        env, manager, _ = make_stack(
            spec=self.TINY, cache_bytes=2 * MiB, block_nbytes=1 * MiB)
        # Reserve the region for another app so free memory is 2 MiB but
        # this work (cache=False, no region of its own) cannot spill.
        manager.gmm.region("other-app", 0)
        data = np.arange(128, dtype=np.float64)
        work = staged_work(
            data,
            [{"execute_name": "double", "out_element_nbytes": 16.0},
             {"execute_name": "double", "out_element_nbytes": 16.0}],
            scale=1024.0, cache=False)
        with pytest.raises(Exception):
            submit_and_wait(env, manager, work)


class TestLruPolicy:
    def _region(self, capacity=3):
        env = Environment()
        device = GPUDevice(env, TESLA_C2050, index=0)
        return CacheRegion(device, capacity, EvictionPolicy.LRU)

    def test_hit_refreshes_recency(self):
        region = self._region()
        region.try_insert("a", 1)
        region.try_insert("b", 1)
        region.try_insert("c", 1)
        region.lookup("a")              # a becomes most-recent
        region.try_insert("d", 1)       # evicts b, the LRU entry
        assert region.contains("a")
        assert not region.contains("b")
        assert region.contains("c") and region.contains("d")

    def test_fifo_ignores_recency(self):
        env = Environment()
        device = GPUDevice(env, TESLA_C2050, index=0)
        region = CacheRegion(device, 3, EvictionPolicy.FIFO)
        region.try_insert("a", 1)
        region.try_insert("b", 1)
        region.try_insert("c", 1)
        region.lookup("a")
        region.try_insert("d", 1)       # FIFO: evicts a despite the hit
        assert not region.contains("a")
        assert region.contains("b")

    def test_cache_policy_config_flag(self):
        from repro.core.gpumanager import GPUManagerConfig
        assert (GPUManagerConfig(cache_policy="lru").resolved_policy()
                is EvictionPolicy.LRU)
        assert (GPUManagerConfig().resolved_policy()
                is EvictionPolicy.FIFO)
        with pytest.raises(ValueError):
            GPUManagerConfig(cache_policy="bogus").resolved_policy()


# -- plan-level: optimizer detection -------------------------------------------

def make_session(fused=True, gpus=("c2050",), cores=2,
                 gpu_cache_bytes=None):
    flink = FlinkConfig(enable_gpu_chaining=fused)
    config = ClusterConfig(n_workers=1, cpu=CPUSpec(cores=cores),
                           gpus_per_worker=tuple(gpus), flink=flink)
    cluster = GFlinkCluster(config)
    session = GFlinkSession(cluster)
    session.register_kernel(KernelSpec(
        "double", lambda i, p: {"out": i["in"] * 2.0},
        flops_per_element=2.0, efficiency=0.5))
    session.register_kernel(KernelSpec(
        "inc", lambda i, p: {"out": i["in"] + 1.0},
        flops_per_element=1.0, efficiency=0.5))
    session.register_kernel(KernelSpec(
        "keep_small", lambda i, p: {"out": i["in"][i["in"] < p["limit"]]},
        flops_per_element=1.0, efficiency=0.5))
    return cluster, session


def fused_ops_of(sink):
    return [op for op in topological_order([sink])
            if isinstance(op, FusedGpuOp)]


class TestGpuChainOptimizer:
    def test_linear_gpu_run_fused(self):
        _, session = make_session()
        ds = session.from_collection(np.arange(16.0), element_nbytes=8)
        chain = ds.gpu_map("double").gpu_map("inc").gpu_map("double")
        sink = CollectSink(chain.op)
        apply_chaining([sink])
        fused = fused_ops_of(sink)
        assert len(fused) == 1
        assert len(fused[0].stages) == 3
        assert [s.kernel_name for s in fused[0].stages] == \
            ["double", "inc", "double"]

    def test_single_gpu_op_not_fused(self):
        _, session = make_session()
        ds = session.from_collection(np.arange(16.0), element_nbytes=8)
        sink = CollectSink(ds.gpu_map("double").op)
        apply_chaining([sink])
        assert fused_ops_of(sink) == []

    def test_persisted_member_breaks_chain(self):
        _, session = make_session()
        ds = session.from_collection(np.arange(16.0), element_nbytes=8)
        mid = ds.gpu_map("double").gpu_map("inc").gpu_map("double")
        mid.persist()  # user-visible materialization: must stay unfused
        tail = mid.gpu_map("inc").gpu_map("double")
        sink = CollectSink(tail.op)
        apply_chaining([sink])
        fused = fused_ops_of(sink)
        # Two sub-runs fuse on either side of the persisted boundary.
        assert len(fused) == 2
        assert all(len(f.stages) == 2 for f in fused)
        assert any(op is mid.op for op in topological_order([sink]))

    def test_multi_consumer_breaks_chain(self):
        _, session = make_session()
        ds = session.from_collection(np.arange(16.0), element_nbytes=8)
        shared = ds.gpu_map("double")
        left = shared.gpu_map("inc")
        right = shared.gpu_map("double")
        sink = CollectSink(left.union(right).op)
        apply_chaining([sink])
        # `shared` feeds two consumers: nothing may fuse across it, and
        # the single-op branches stay unfused.
        assert fused_ops_of(sink) == []

    def test_explicit_parallelism_breaks_chain(self):
        _, session = make_session()
        ds = session.from_collection(np.arange(16.0), element_nbytes=8)
        chain = ds.gpu_map("double").gpu_map("inc", parallelism=2) \
            .gpu_map("double")
        sink = CollectSink(chain.op)
        apply_chaining([sink])
        assert fused_ops_of(sink) == []

    def test_comm_mode_split_fuses_compatible_subruns(self):
        _, session = make_session()
        ds = session.from_collection(np.arange(16.0), element_nbytes=8)
        chain = ds.gpu_map("double").gpu_map("inc") \
            .gpu_map("double", comm_mode=CommMode.JNI_HEAP) \
            .gpu_map("inc", comm_mode=CommMode.JNI_HEAP)
        sink = CollectSink(chain.op)
        apply_chaining([sink])
        fused = fused_ops_of(sink)
        assert len(fused) == 2
        assert {f.comm_mode for f in fused} == \
            {CommMode.GFLINK, CommMode.JNI_HEAP}

    def test_mapped_memory_not_fused(self):
        _, session = make_session()
        ds = session.from_collection(np.arange(16.0), element_nbytes=8)
        chain = ds.gpu_map("double", mapped_memory=True) \
            .gpu_map("inc", mapped_memory=True)
        sink = CollectSink(chain.op)
        apply_chaining([sink])
        assert fused_ops_of(sink) == []

    def test_fused_gpu_op_requires_two_stages(self):
        _, session = make_session()
        ds = session.from_collection(np.arange(16.0), element_nbytes=8)
        op = ds.gpu_map("double").op
        assert isinstance(op, GpuMapPartitionOp)
        with pytest.raises(ConfigError, match="two stages"):
            FusedGpuOp(op.inputs[0], [op])


# -- end to end: execution under fusion ----------------------------------------

class TestChainedExecution:
    def _run(self, fused, depth=4, gpus=("c2050",)):
        _, session = make_session(fused=fused, gpus=gpus)
        data = np.arange(4000, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8, scale=1e3,
                                     parallelism=2)
        for i in range(depth):
            ds = ds.gpu_map("double" if i % 2 == 0 else "inc")
        return data, ds.collect()

    def test_results_byte_identical(self):
        data, fused = self._run(True)
        _, unfused = self._run(False)
        assert list(fused.value) == list(unfused.value)
        expected = ((data * 2.0 + 1.0) * 2.0 + 1.0)
        assert np.allclose(np.sort(np.asarray(fused.value)),
                           np.sort(expected))

    def test_fused_saves_pcie_and_time(self):
        _, fused = self._run(True)
        _, unfused = self._run(False)
        assert fused.metrics.pcie_bytes * 2 <= unfused.metrics.pcie_bytes
        assert fused.metrics.makespan < unfused.metrics.makespan

    def test_stage_timings_reach_job_report(self):
        from repro.flink.report import breakdown
        _, fused = self._run(True)
        assert set(fused.metrics.gpu_stage_seconds) == {"double", "inc"}
        text = breakdown(fused.metrics)
        assert "gpu stage double" in text
        assert "gpu stage inc" in text

    def test_chain_with_filter_stage(self):
        data = np.arange(100, dtype=np.float64)
        results = {}
        for fused in (True, False):
            _, session = make_session(fused=fused)
            ds = session.from_collection(data, element_nbytes=8,
                                         parallelism=2)
            out = ds.gpu_map("double") \
                .gpu_filter("keep_small", params={"limit": 60.0}) \
                .gpu_map("inc").collect()
            results[fused] = sorted(out.value)
        assert results[True] == results[False]
        assert results[True] == sorted((data[data * 2 < 60] * 2 + 1).tolist())

    def test_empty_partitions_through_fused_chain(self):
        _, session = make_session(cores=4)
        data = np.arange(3, dtype=np.float64)  # fewer elements than slots
        out = session.from_collection(data, element_nbytes=8,
                                      parallelism=4) \
            .gpu_map("double").gpu_map("inc").collect()
        assert sorted(out.value) == sorted((data * 2 + 1).tolist())

    def test_intermediates_cached_across_iterative_jobs(self):
        """SpMV/KMeans-style driver loop: with a stable cache_key_base the
        second iteration resumes from the cached stage output — less PCIe,
        cache hits on the stage keys."""
        cluster, session = make_session(fused=True)
        data = np.arange(2000, dtype=np.float64)
        src = session.from_collection(data, element_nbytes=8, scale=1e3,
                                      parallelism=2)
        src.materialize()
        pcie = []
        for it in range(3):
            out = src.gpu_map("double", cache=True) \
                .gpu_map("inc", cache=True, cache_key_base="mid-out") \
                .collect(job_name=f"iter-{it}")
            assert np.allclose(np.sort(np.asarray(out.value)),
                               np.sort(data * 2.0 + 1.0))
            pcie.append(out.metrics.pcie_bytes)
        # Iteration 2+ skips the upload (input + intermediate cached).
        assert pcie[1] < pcie[0]
        assert pcie[2] == pcie[1]
        stats = cluster.gpu_managers()[0].gmm.stats(session.app_id)
        hits = sum(h for (h, m, e) in stats.values())
        assert hits > 0
