"""The full workload matrix: every benchmark, both engines, one cluster.

A single cross-cutting integration test: all seven workloads run CPU and
GPU on a shared heterogeneous cluster (sequentially, fresh sessions), and
for each pair the functional results must agree and the GPU engine must not
lose on any iterative workload.
"""

import numpy as np
import pytest

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.workloads import (
    ConnectedComponentsWorkload,
    KMeansWorkload,
    LinearRegressionWorkload,
    PageRankWorkload,
    PointAddWorkload,
    SpMVWorkload,
    WordCountWorkload,
)

CASES = [
    ("kmeans", lambda: KMeansWorkload(
        nominal_elements=5e6, real_elements=4000, iterations=4), True),
    ("linreg", lambda: LinearRegressionWorkload(
        nominal_elements=5e6, real_elements=4000, iterations=4,
        learning_rate=0.1), True),
    ("spmv", lambda: SpMVWorkload(
        nominal_elements=4000, real_elements=4000, iterations=4), True),
    ("pagerank", lambda: PageRankWorkload(
        nominal_pages=1e5, real_pages=500, iterations=4), True),
    ("concomp", lambda: ConnectedComponentsWorkload(
        nominal_pages=1e5, real_pages=400, iterations=6), True),
    ("wordcount", lambda: WordCountWorkload(
        nominal_elements=1e6, real_elements=8000), False),
    ("pointadd", lambda: PointAddWorkload(
        nominal_elements=1e5, real_elements=2000, iterations=3), False),
]


@pytest.mark.parametrize("name,factory,check_value",
                         CASES, ids=[c[0] for c in CASES])
def test_matrix_cpu_gpu_agree(name, factory, check_value):
    config = ClusterConfig(n_workers=2, cpu=CPUSpec(cores=2),
                           gpus_per_worker=("c2050", "k20"))
    results = {}
    for mode in ("cpu", "gpu"):
        cluster = GFlinkCluster(config)
        results[mode] = factory().run(GFlinkSession(cluster), mode)

    cpu, gpu = results["cpu"], results["gpu"]
    assert cpu.iterations == gpu.iterations
    if check_value:
        cpu_v = np.sort(np.asarray(cpu.value, dtype=float), axis=0)
        gpu_v = np.sort(np.asarray(gpu.value, dtype=float), axis=0)
        assert np.allclose(cpu_v, gpu_v, atol=1e-4), \
            f"{name}: engines disagree"
    # GPU never loses on the iterative, compute-carrying workloads.
    if name in ("kmeans", "linreg", "spmv", "concomp", "pagerank"):
        assert gpu.total_seconds < cpu.total_seconds


def test_matrix_on_one_shared_cluster():
    """All workloads back to back on ONE cluster: no state leaks between
    applications (registry, HDFS namespace, GPU caches, memory)."""
    config = ClusterConfig(n_workers=2, cpu=CPUSpec(cores=2),
                           gpus_per_worker=("c2050",))
    cluster = GFlinkCluster(config)
    for name, factory, _ in CASES:
        session = GFlinkSession(cluster)
        result = factory().run(session, "gpu")
        assert result.iterations >= 1, name
        session.release_gpu_cache()
    # After releasing every app's cache, device memory is fully reclaimed.
    for gm in cluster.gpu_managers():
        for device in gm.devices:
            assert device.memory.allocated == 0
