"""Tests for GPU specs and device memory."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError, MemoryExhaustedError
from repro.gpu import SPECS, get_spec, GTX750, TESLA_C2050, TESLA_K20, TESLA_P100
from repro.gpu.memory import DeviceMemory, HostBuffer


class TestSpecs:
    def test_registry_contains_testbed_gpus(self):
        assert set(SPECS) == {"gtx750", "c2050", "k20", "p100"}

    def test_lookup_case_insensitive(self):
        assert get_spec("K20") is TESLA_K20

    def test_unknown_spec_raises(self):
        with pytest.raises(ConfigError):
            get_spec("h100")

    def test_duplex_matches_paper(self):
        # §4.1.2: one-engine GPUs are half duplex; "GPUs with two copy
        # engines, such as NVIDIA's Tesla K20" are full duplex.
        assert not GTX750.full_duplex
        assert not TESLA_C2050.full_duplex
        assert TESLA_K20.full_duplex
        assert TESLA_P100.full_duplex

    def test_fig8b_ordering_of_peak_throughput(self):
        # Fig 8b: P100 fastest, K20 next, GTX750 ~ C2050.
        assert TESLA_P100.sp_gflops > TESLA_K20.sp_gflops
        assert TESLA_K20.sp_gflops > GTX750.sp_gflops
        assert abs(GTX750.sp_gflops - TESLA_C2050.sp_gflops) \
            / TESLA_C2050.sp_gflops < 0.05


class TestDeviceMemory:
    def test_alloc_free_cycle(self):
        mem = DeviceMemory(1000, "gpu0")
        buf = mem.alloc(400)
        assert mem.available == 600
        mem.free(buf)
        assert mem.available == 1000
        assert mem.alloc_count == 1 and mem.free_count == 1

    def test_oom(self):
        mem = DeviceMemory(1000, "gpu0")
        mem.alloc(900)
        with pytest.raises(MemoryExhaustedError):
            mem.alloc(200)

    def test_double_free_rejected(self):
        mem = DeviceMemory(1000, "gpu0")
        buf = mem.alloc(10)
        mem.free(buf)
        with pytest.raises(ConfigError):
            mem.free(buf)

    def test_peak_tracking(self):
        mem = DeviceMemory(1000, "gpu0")
        a = mem.alloc(300)
        b = mem.alloc(500)
        mem.free(a)
        mem.free(b)
        assert mem.peak_allocated == 800

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=30))
    def test_accounting_invariant(self, sizes):
        mem = DeviceMemory(10_000, "gpu0")
        live = []
        for s in sizes:
            live.append(mem.alloc(s))
        assert mem.allocated == sum(b.nbytes for b in live)
        for b in live:
            mem.free(b)
        assert mem.allocated == 0

    def test_host_buffer_defaults(self):
        hb = HostBuffer(64)
        assert not hb.pinned
        assert hb.dma_capable
