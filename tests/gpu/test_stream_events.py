"""Tests for CUDA events, stream idling and wrapper control-channel calls."""

import pytest

from repro.common import Environment
from repro.core.channels import CommCosts, CUDAWrapper
from repro.gpu import CUDARuntime, GPUDevice, KernelRegistry, TESLA_C2050
from repro.gpu.memory import HostBuffer
from repro.gpu.stream import CUDAStream


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def device(env):
    return GPUDevice(env, TESLA_C2050)


class TestCudaEvents:
    def test_event_fires_after_prior_work(self, env, device):
        stream = CUDAStream(env, device)

        def slow_op():
            yield env.timeout(2.0)

        stream.enqueue(slow_op)
        marker = stream.record_event()
        assert not marker.done

        def waiter():
            yield marker.wait()
            return env.now

        p = env.process(waiter())
        assert env.run(until=p) == 2.0
        assert marker.done

    def test_event_on_empty_stream_fires_immediately(self, env, device):
        stream = CUDAStream(env, device)
        marker = stream.record_event()

        def waiter():
            yield marker.wait()
            return env.now

        p = env.process(waiter())
        assert env.run(until=p) == 0.0


class TestStreamIdle:
    def test_idle_transitions(self, env, device):
        stream = CUDAStream(env, device)
        assert stream.idle

        def op():
            yield env.timeout(1.0)

        stream.enqueue(op)
        env.run(until=0.5)
        assert not stream.idle
        env.run()
        assert stream.idle

    def test_ops_enqueued_counter(self, env, device):
        stream = CUDAStream(env, device)
        for _ in range(3):
            stream.enqueue(lambda: iter(()))
        assert stream.ops_enqueued == 3


class TestControlChannel:
    def test_wrapper_charges_jni_per_call(self, env, device):
        runtime = CUDARuntime(env, [device], KernelRegistry())
        wrapper = CUDAWrapper(env, runtime, CommCosts(jni_call_s=1e-6))

        def proc():
            buf = yield from wrapper.cuda_malloc(device, 1024)
            yield from wrapper.cuda_free(device, buf)

        env.run(until=env.process(proc()))
        assert wrapper.jni_calls == 2
        # Two JNI redirects plus two driver alloc overheads.
        expected = 2 * 1e-6 + 2 * CUDARuntime.alloc_overhead_s
        assert env.now == pytest.approx(expected)

    def test_wrapper_host_register(self, env, device):
        runtime = CUDARuntime(env, [device], KernelRegistry())
        wrapper = CUDAWrapper(env, runtime, CommCosts())
        host = HostBuffer(2_000_000)

        def proc():
            yield from wrapper.cuda_host_register(host)

        env.run(until=env.process(proc()))
        assert host.pinned

    def test_wrapper_device_synchronize(self, env, device):
        runtime = CUDARuntime(env, [device], KernelRegistry())
        wrapper = CUDAWrapper(env, runtime, CommCosts())
        stream = wrapper.cuda_stream_create(device)

        def op():
            yield env.timeout(3.0)

        stream.enqueue(op)

        def waiter():
            yield wrapper.cuda_device_synchronize(device)
            return env.now

        p = env.process(waiter())
        assert env.run(until=p) == 3.0
