"""Tests for the stock kernel library."""

import numpy as np
import pytest

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelRegistry
from repro.gpu.kernels import (
    HISTOGRAM,
    STANDARD_KERNELS,
    register_standard_kernels,
)


@pytest.fixture
def session():
    cluster = GFlinkCluster(ClusterConfig(
        n_workers=1, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",)))
    register_standard_kernels(cluster.registry)
    return GFlinkSession(cluster)


class TestRegistration:
    def test_all_registered(self):
        reg = KernelRegistry()
        register_standard_kernels(reg)
        for spec in STANDARD_KERNELS:
            assert spec.name in reg

    def test_idempotent(self):
        reg = KernelRegistry()
        register_standard_kernels(reg)
        register_standard_kernels(reg)  # no duplicate error
        assert len(reg.names()) == len(STANDARD_KERNELS)


class TestStockKernels:
    def test_saxpy(self, session):
        data = np.arange(100, dtype=np.float64)
        out = session.from_collection(data, element_nbytes=8) \
            .gpu_map("saxpy", params={"a": 2.0, "b": 1.0}).collect()
        assert np.allclose(sorted(out.value), sorted(2 * data + 1))

    def test_sum_min_max(self, session):
        data = np.arange(1, 201, dtype=np.float64)
        ds = session.from_collection(data, element_nbytes=8,
                                     parallelism=2).persist()
        ds.materialize()
        total = ds.gpu_reduce("sum_reduce", lambda a, b: a + b).collect()
        lo = ds.gpu_reduce("min_reduce", lambda a, b: min(a, b)).collect()
        hi = ds.gpu_reduce("max_reduce", lambda a, b: max(a, b)).collect()
        assert total.value[0] == pytest.approx(data.sum())
        assert lo.value[0] == 1.0
        assert hi.value[0] == 200.0

    def test_histogram(self, session):
        data = np.linspace(0, 1, 256, endpoint=False)
        partials = session.from_collection(data, element_nbytes=8,
                                           parallelism=2) \
            .gpu_map_partition("histogram",
                               params={"bins": 4, "lo": 0.0, "hi": 1.0},
                               scale_semantics="reduce") \
            .collect()
        counts = np.sum(np.array(partials.value).reshape(-1, 4), axis=0)
        assert counts.tolist() == [64, 64, 64, 64]

    def test_histogram_kernel_fn_direct(self):
        out = HISTOGRAM.fn({"in": np.array([0.1, 0.6, 0.7])},
                           {"bins": 2, "lo": 0.0, "hi": 1.0})
        assert out["out"].tolist() == [1, 2]
