"""Tests for streams, kernels and the CUDA runtime: semantics and timing."""

import numpy as np
import pytest

from repro.common import Environment
from repro.common.errors import ConfigError, KernelError
from repro.gpu import (
    CUDARuntime,
    GPUDevice,
    KernelRegistry,
    KernelSpec,
    LaunchConfig,
    TESLA_C2050,
    TESLA_K20,
    TESLA_P100,
)
from repro.gpu.memory import HostBuffer


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def registry():
    reg = KernelRegistry()
    reg.register(KernelSpec(
        name="scale2", flops_per_element=1.0, efficiency=1.0,
        fn=lambda inputs, params: {"out": inputs["in"] * 2.0}))
    return reg


@pytest.fixture
def device(env):
    return GPUDevice(env, TESLA_C2050)


@pytest.fixture
def runtime(env, device, registry):
    return CUDARuntime(env, [device], registry)


def run(env, gen):
    return env.run(until=env.process(gen))


class TestLaunchConfig:
    def test_for_elements_rounds_up(self):
        cfg = LaunchConfig.for_elements(1000, block_size=256)
        assert cfg.grid_size == 4
        assert cfg.total_threads == 1024

    def test_block_size_limit(self):
        with pytest.raises(ConfigError):
            LaunchConfig(grid_size=1, block_size=2048)


class TestKernelCostModel:
    def test_flop_bound_time(self):
        spec = KernelSpec("k", lambda i, p: {}, flops_per_element=100.0,
                          efficiency=0.5)
        launch = LaunchConfig.for_elements(10**7)
        t = spec.execution_seconds(1e7, launch, TESLA_C2050)
        expected = TESLA_C2050.kernel_launch_s + 1e7 * 100.0 / (1030e9 * 0.5)
        assert t == pytest.approx(expected)

    def test_memory_bound_time(self):
        spec = KernelSpec("k", lambda i, p: {}, flops_per_element=0.1,
                          bytes_per_element=100.0, efficiency=1.0)
        launch = LaunchConfig.for_elements(10**7)
        t = spec.execution_seconds(1e7, launch, TESLA_C2050)
        expected = TESLA_C2050.kernel_launch_s + 1e9 / 144.0e9
        assert t == pytest.approx(expected)

    def test_small_launch_occupancy_penalty(self):
        spec = KernelSpec("k", lambda i, p: {}, flops_per_element=100.0,
                          efficiency=1.0)
        big = spec.execution_seconds(1e7, LaunchConfig.for_elements(1e7),
                                     TESLA_P100)
        # Per-element time is much worse when the launch can't fill the GPU.
        small = spec.execution_seconds(1e3, LaunchConfig.for_elements(1e3),
                                       TESLA_P100)
        assert small / 1e3 > big / 1e7

    def test_faster_gpu_is_faster(self):
        spec = KernelSpec("k", lambda i, p: {}, flops_per_element=50.0,
                          efficiency=0.5)
        launch = LaunchConfig.for_elements(1e7)
        assert (spec.execution_seconds(1e7, launch, TESLA_P100)
                < spec.execution_seconds(1e7, launch, TESLA_K20)
                < spec.execution_seconds(1e7, launch, TESLA_C2050))


class TestKernelRegistry:
    def test_duplicate_rejected(self, registry):
        with pytest.raises(ConfigError):
            registry.register(KernelSpec("scale2", lambda i, p: {}, 1.0))

    def test_unknown_kernel_raises(self, registry):
        with pytest.raises(KernelError):
            registry.get("nope")

    def test_decorator_registration(self):
        reg = KernelRegistry()

        @reg.register_fn("addone", flops_per_element=1.0)
        def addone(inputs, params):
            return {"out": inputs["in"] + 1}

        assert "addone" in reg
        assert reg.get("addone").fn is addone


class TestRuntimeTransfers:
    def test_sync_h2d_moves_data_and_charges_time(self, env, device, runtime):
        data = np.arange(8, dtype=np.float32)
        host = HostBuffer(1_000_000, data=data, pinned=True)

        def proc():
            dev = yield from runtime.malloc(device, 1_000_000)
            yield from runtime.memcpy_h2d(device, dev, host)
            return dev

        dev = run(env, proc())
        assert np.array_equal(dev.data, data)
        wire = 1_000_000 / TESLA_C2050.pcie_effective_bps
        assert env.now == pytest.approx(
            CUDARuntime.alloc_overhead_s + TESLA_C2050.pcie_latency_s + wire)
        assert device.h2d_bytes == 1_000_000

    def test_unpinned_transfer_pays_staging(self, env, device, runtime):
        def copy(pinned):
            host = HostBuffer(10_000_000, data=None, pinned=pinned)
            start = env.now

            def proc():
                dev = yield from runtime.malloc(device, 10_000_000)
                yield from runtime.memcpy_h2d(device, dev, host)

            run(env, proc())
            return env.now - start

        pinned_t = copy(True)
        unpinned_t = copy(False)
        assert unpinned_t > pinned_t
        assert unpinned_t - pinned_t == pytest.approx(
            10_000_000 / CUDARuntime.pageable_staging_bps)

    def test_host_register_pins_once(self, env, device, runtime):
        host = HostBuffer(20_000_000)

        def proc():
            yield from runtime.host_register(host)
            t_first = env.now
            yield from runtime.host_register(host)  # already pinned: free
            return t_first

        t_first = run(env, proc())
        assert host.pinned
        assert env.now == t_first

    def test_d2h_roundtrip(self, env, device, runtime):
        data = np.arange(4, dtype=np.float64)
        host_in = HostBuffer(32, data=data, pinned=True)
        host_out = HostBuffer(32, pinned=True)

        def proc():
            dev = yield from runtime.malloc(device, 32)
            yield from runtime.memcpy_h2d(device, dev, host_in)
            yield from runtime.memcpy_d2h(device, host_out, dev)

        run(env, proc())
        assert np.array_equal(host_out.data, data)
        assert device.d2h_bytes == 32


class TestDuplexing:
    def _bidirectional_time(self, spec):
        env = Environment()
        device = GPUDevice(env, spec)
        runtime = CUDARuntime(env, [device], KernelRegistry())
        nbytes = int(1e8)
        h_in = HostBuffer(nbytes, pinned=True)
        h_out = HostBuffer(nbytes, pinned=True)

        def proc():
            dev1 = yield from runtime.malloc(device, nbytes)
            dev2 = yield from runtime.malloc(device, nbytes)
            s1 = runtime.stream_create(device)
            s2 = runtime.stream_create(device)
            e1 = runtime.memcpy_h2d_async(device, s1, dev1, h_in)
            e2 = runtime.memcpy_d2h_async(device, s2, h_out, dev2)
            yield env.all_of([e1, e2])

        env.run(until=env.process(proc()))
        return env.now

    def test_two_engines_full_duplex(self):
        # K20 (2 engines) overlaps H2D and D2H; C2050 (1 engine) cannot.
        wire_c2050 = 1e8 / TESLA_C2050.pcie_effective_bps
        t_c2050 = self._bidirectional_time(TESLA_C2050)
        assert t_c2050 > 2 * wire_c2050  # serialized on one engine

        wire_k20 = 1e8 / TESLA_K20.pcie_effective_bps
        t_k20 = self._bidirectional_time(TESLA_K20)
        assert t_k20 < 1.5 * wire_k20  # overlapped on two engines


class TestStreamsAndKernels:
    def test_kernel_computes_and_charges(self, env, device, runtime):
        data = np.arange(8, dtype=np.float64)
        host = HostBuffer(64, data=data, pinned=True)
        out_host = HostBuffer(64, pinned=True)
        stream = runtime.stream_create(device)

        def proc():
            d_in = yield from runtime.malloc(device, 64)
            d_out = yield from runtime.malloc(device, 64)
            yield from runtime.memcpy_h2d(device, d_in, host)
            runtime.launch_kernel(
                device, stream, "scale2", n_elements=8,
                launch=LaunchConfig.for_elements(8),
                inputs={"in": d_in}, outputs={"out": d_out})
            yield runtime.stream_synchronize(stream)
            yield from runtime.memcpy_d2h(device, out_host, d_out)

        run(env, proc())
        assert np.array_equal(out_host.data, data * 2.0)
        assert device.kernels_launched == 1
        assert device.kernel_seconds > 0

    def test_same_stream_ops_serialize_in_order(self, env, device, runtime):
        stream = runtime.stream_create(device)
        order = []

        def make_op(tag, dur):
            def op():
                yield env.timeout(dur)
                order.append((tag, env.now))
            return op

        stream.enqueue(make_op("a", 2.0))
        stream.enqueue(make_op("b", 1.0))
        env.run()
        assert order == [("a", 2.0), ("b", 3.0)]

    def test_different_streams_overlap(self, env, device, runtime):
        s1 = runtime.stream_create(device)
        s2 = runtime.stream_create(device)
        done = []

        def make_op(tag):
            def op():
                yield env.timeout(1.0)
                done.append((tag, env.now))
            return op

        s1.enqueue(make_op("s1"))
        s2.enqueue(make_op("s2"))
        env.run()
        assert [t for _, t in done] == [1.0, 1.0]

    def test_kernels_serialize_on_compute_engine(self, env, device, runtime):
        # Two streams, two kernels: copies could overlap, but compute is
        # exclusive, so total kernel wall time is the sum.
        s1 = runtime.stream_create(device)
        s2 = runtime.stream_create(device)
        n = 1e8
        launch = LaunchConfig.for_elements(n)
        e1 = runtime.launch_kernel(device, s1, "scale2", n, launch,
                                   inputs={"in": _dummy_buf(runtime, device)},
                                   outputs={})
        e2 = runtime.launch_kernel(device, s2, "scale2", n, launch,
                                   inputs={"in": _dummy_buf(runtime, device)},
                                   outputs={})
        env.run()
        single = TESLA_C2050.kernel_launch_s + n * 1.0 / (1030e9 * 1.0)
        assert env.now == pytest.approx(2 * single, rel=1e-3)

    def test_missing_kernel_output_raises(self, env, device, runtime):
        stream = runtime.stream_create(device)
        d_out = _dummy_buf(runtime, device)
        runtime.launch_kernel(device, stream, "scale2", 4,
                              LaunchConfig.for_elements(4),
                              inputs={"in": _dummy_buf(runtime, device)},
                              outputs={"missing": d_out})
        with pytest.raises(KernelError):
            env.run()

    def test_device_synchronize_waits_all_streams(self, env, device, runtime):
        s1 = runtime.stream_create(device)
        s2 = runtime.stream_create(device)

        def op(dur):
            def inner():
                yield env.timeout(dur)
            return inner

        s1.enqueue(op(1.0))
        s2.enqueue(op(3.0))

        def waiter():
            yield runtime.device_synchronize(device)
            return env.now

        p = env.process(waiter())
        assert env.run(until=p) == 3.0


def _dummy_buf(runtime, device):
    data = np.zeros(4)
    buf = device.memory.alloc(32)
    buf.data = data
    return buf


class TestMemset:
    def test_memset_fills_and_charges(self, env, device, runtime):
        import numpy as np

        def proc():
            buf = yield from runtime.malloc(device, 144_000_000)
            buf.data = np.ones(16, dtype=np.float64)
            t0 = env.now
            yield from runtime.memset(device, buf, 0)
            return env.now - t0, buf.data

        p = env.process(proc())
        seconds, data = env.run(until=p)
        # 144 MB at the C2050's 144 GB/s device bandwidth: 1 ms.
        assert seconds == pytest.approx(1e-3)
        assert (data == 0).all()
