"""Determinism: identical runs produce bit-identical simulated results.

The whole reproduction pipeline is seeded and event ordering is total
(time, priority, sequence), so any two runs of the same experiment must
agree exactly — this is what makes EXPERIMENTS.md's numbers reproducible.
"""

import numpy as np

from repro.core import GFlinkCluster, GFlinkSession
from repro.flink import ClusterConfig, CPUSpec
from repro.flink.chaos import ChaosSchedule, FaultKind
from repro.workloads import KMeansWorkload, SpMVWorkload, run_concurrent


def config():
    return ClusterConfig(n_workers=2, cpu=CPUSpec(cores=2),
                         gpus_per_worker=("c2050",))


class TestDeterminism:
    def test_workload_times_reproduce_exactly(self):
        def once():
            cluster = GFlinkCluster(config())
            wl = KMeansWorkload(nominal_elements=5e6, real_elements=4000,
                                iterations=4)
            return wl.run(GFlinkSession(cluster), "gpu")

        a, b = once(), once()
        assert a.iteration_seconds == b.iteration_seconds
        assert np.array_equal(np.asarray(a.value), np.asarray(b.value))

    def test_concurrent_runs_reproduce_exactly(self):
        def once():
            cluster = GFlinkCluster(config())
            apps = [(SpMVWorkload(nominal_elements=2000, real_elements=2000,
                                  iterations=2), "gpu"),
                    (KMeansWorkload(nominal_elements=2000, real_elements=2000,
                                    iterations=2), "gpu")]
            results = run_concurrent(cluster, apps)
            return [r.iteration_seconds for r in results]

        assert once() == once()

    def test_chaos_run_reproduces_exactly(self):
        """Same seed + same fault schedule -> bit-identical clock + values."""
        def once():
            cluster = GFlinkCluster(config())
            cluster.install_chaos(ChaosSchedule()
                                  .fail_gpu("worker0", 0, at=10.0,
                                            kind=FaultKind.GPU_OOM)
                                  .kill_worker("worker1", at=30.0))
            wl = KMeansWorkload(nominal_elements=5e6, real_elements=4000,
                                iterations=4)
            return wl.run(GFlinkSession(cluster), "gpu")

        a, b = once(), once()
        assert a.iteration_seconds == b.iteration_seconds
        assert np.array_equal(np.asarray(a.value), np.asarray(b.value))

    def test_empty_chaos_schedule_leaves_clock_identical(self):
        """An installed-but-empty schedule perturbs nothing: the fault-free
        clock is bit-identical with or without the chaos machinery."""
        def once(install):
            cluster = GFlinkCluster(config())
            if install:
                cluster.install_chaos(ChaosSchedule())
            wl = KMeansWorkload(nominal_elements=5e6, real_elements=4000,
                                iterations=4)
            return wl.run(GFlinkSession(cluster), "gpu").iteration_seconds

        assert once(install=False) == once(install=True)

    def test_different_seeds_differ(self):
        def once(seed):
            cluster = GFlinkCluster(config())
            wl = KMeansWorkload(nominal_elements=5e6, real_elements=4000,
                                iterations=3, seed=seed)
            return np.asarray(wl.run(GFlinkSession(cluster), "cpu").value)

        assert not np.array_equal(once(1), once(2))
