"""Tests for the Spark-flavoured facade (paper §3.6)."""

import numpy as np
import pytest

from repro.compat import SparkContext
from repro.core import GFlinkCluster
from repro.flink import ClusterConfig, CPUSpec
from repro.gpu import KernelSpec


@pytest.fixture
def sc():
    cluster = GFlinkCluster(ClusterConfig(
        n_workers=2, cpu=CPUSpec(cores=2), gpus_per_worker=("c2050",)))
    return SparkContext(cluster, app_name="test-app")


class TestRDDBasics:
    def test_parallelize_collect(self, sc):
        assert sorted(sc.parallelize([3, 1, 2]).collect()) == [1, 2, 3]

    def test_map_filter_chain(self, sc):
        out = sc.parallelize(range(10)) \
            .map(lambda x: x * 2) \
            .filter(lambda x: x > 10) \
            .collect()
        assert sorted(out) == [12, 14, 16, 18]

    def test_flat_map(self, sc):
        out = sc.parallelize(["a b", "c"]) \
            .flat_map(lambda s: s.split()).collect()
        assert sorted(out) == ["a", "b", "c"]

    def test_count(self, sc):
        assert sc.parallelize(range(37)).count() == 37

    def test_reduce(self, sc):
        assert sc.parallelize(range(1, 11)).reduce(lambda a, b: a + b) == 55

    def test_first_and_take(self, sc):
        rdd = sc.parallelize(range(100))
        assert rdd.first() in range(100)
        assert len(rdd.take(5)) == 5

    def test_distinct_union(self, sc):
        a = sc.parallelize([1, 1, 2])
        b = sc.parallelize([2, 3])
        assert sorted(a.union(b).distinct().collect()) == [1, 2, 3]

    def test_metrics_exposed(self, sc):
        sc.parallelize([1]).count()
        assert sc.last_job_metrics is not None
        assert sc.last_job_metrics.makespan > 0


class TestPairRDD:
    def test_reduce_by_key(self, sc):
        data = [("a", 1), ("b", 2), ("a", 3)]
        out = dict(sc.parallelize(data)
                   .reduce_by_key(lambda x, y: x + y).collect())
        assert out == {"a": 4, "b": 2}

    def test_group_by_key(self, sc):
        data = [("k", 1), ("k", 2), ("j", 9)]
        out = dict(sc.parallelize(data).group_by_key().collect())
        assert sorted(out["k"]) == [1, 2]
        assert out["j"] == [9]

    def test_join(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2)])
        right = sc.parallelize([("a", 10)])
        out = left.join(right).collect()
        assert out == [("a", (1, 10))]

    def test_wordcount_in_spark_style(self, sc):
        lines = ["to be or not", "to be"]
        counts = dict(
            sc.parallelize(lines)
            .flat_map(lambda line: line.split())
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect())
        assert counts == {"to": 2, "be": 2, "or": 1, "not": 1}


class TestGpuExtensions:
    def test_gpu_map_partitions_on_spark_api(self, sc):
        sc.register_kernel(KernelSpec(
            "double", lambda i, p: {"out": i["in"] * 2.0},
            flops_per_element=2.0, efficiency=0.5))
        data = np.arange(100, dtype=np.float64)
        out = sc.parallelize(data, element_nbytes=8.0).cache() \
            .gpu_map_partitions("double").collect()
        assert sorted(out) == sorted((data * 2).tolist())
        assert sc.last_job_metrics.pcie_bytes > 0

    def test_cache_reuses_across_actions(self, sc):
        rdd = sc.hdfs_rdd = None
        data = np.arange(1000, dtype=np.float64)
        rdd = sc.parallelize(data, element_nbytes=8.0).cache()
        rdd.count()
        first = sc.last_job_metrics
        rdd.count()
        second = sc.last_job_metrics
        # Cached lineage: the second action skips recomputation entirely.
        assert second.subtasks < first.subtasks

    def test_save_to_hdfs(self, sc):
        path = "/spark/out"
        sc.parallelize([1, 2, 3], element_nbytes=8.0) \
            .save_as_hdfs_file(path)
        assert sc.cluster.hdfs.exists(path)
