"""Calibration sensitivity: the reproduction's *shapes* must not hinge on
any single constant.

EXPERIMENTS.md's qualitative claims (GPU wins on iterative workloads, the
cache removes re-uploads, speedup grows with input) are supposed to emerge
from the system's structure.  Here we perturb the main calibration constants
by ±25% and assert the shapes survive — only the absolute factors may move.
"""

import pytest

from repro.core import GFlinkCluster, GFlinkSession
from repro.core.channels import CommCosts
from repro.core.gpumanager import GPUManagerConfig
from repro.flink import ClusterConfig, CPUSpec, FlinkConfig
from repro.workloads import KMeansWorkload, SpMVWorkload


def run_kmeans(serde_scale=1.0, overhead_scale=1.0, jni_scale=1.0,
               sizes=(30e6, 90e6)):
    flink = FlinkConfig(serde_bps=0.8e9 * serde_scale,
                        element_overhead_s=120e-9 * overhead_scale)
    config = ClusterConfig(n_workers=4, cpu=CPUSpec(),
                           gpus_per_worker=("c2050", "c2050"), flink=flink)
    gpu_config = GPUManagerConfig(
        comm_costs=CommCosts(jni_call_s=0.155e-6 * jni_scale,
                             serde_bps=0.8e9 * serde_scale))
    speedups = []
    for nominal in sizes:
        times = {}
        for mode in ("cpu", "gpu"):
            cluster = GFlinkCluster(config, gpu_config=gpu_config)
            wl = KMeansWorkload(nominal_elements=nominal,
                                real_elements=6000, iterations=5)
            times[mode] = wl.run(GFlinkSession(cluster), mode).total_seconds
        speedups.append(times["cpu"] / times["gpu"])
    return speedups


class TestShapeRobustness:
    @pytest.mark.parametrize("serde_scale,overhead_scale,jni_scale", [
        (1.0, 1.0, 1.0),
        (0.75, 1.0, 1.0),
        (1.25, 1.0, 1.0),
        (1.0, 0.75, 1.0),
        (1.0, 1.25, 1.0),
        (1.0, 1.0, 4.0),   # even a 4x JNI cost barely matters
    ])
    def test_kmeans_shape_survives_perturbation(self, serde_scale,
                                                overhead_scale, jni_scale):
        small, large = run_kmeans(serde_scale, overhead_scale, jni_scale)
        # GPU wins at every size and the win grows with input size.
        assert small > 1.5
        assert large > small

    def test_cache_benefit_survives_slow_pcie(self):
        # Halve PCIe bandwidth via a custom spec? The spec is frozen; the
        # equivalent stress is quadrupling the data per GPU: the cache's
        # *relative* benefit should only grow.
        def pcie_heavy(cache):
            cluster = GFlinkCluster(ClusterConfig(
                n_workers=1, cpu=CPUSpec(),
                gpus_per_worker=("c2050",)))
            wl = SpMVWorkload(nominal_elements=5e6, real_elements=5000,
                              iterations=5, gpu_cache=cache)
            return wl.run(GFlinkSession(cluster), "gpu").total_seconds

        assert pcie_heavy(True) < pcie_heavy(False)
