"""Validate a Chrome trace JSON file against the event schema.

Usage::

    python -m repro.obs.validate trace.json [more.json ...]

Exit status 0 when every file validates; 1 otherwise.  CI runs this over
the traced bench smoke's artifact (see ``scripts/ci.sh``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.export import validate_chrome_trace_file


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate <trace.json> ...",
              file=out)
        return 2
    failed = False
    for arg in argv:
        errors = validate_chrome_trace_file(arg)
        if errors:
            failed = True
            print(f"{arg}: INVALID", file=out)
            for err in errors[:20]:
                print(f"  {err}", file=out)
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more", file=out)
        else:
            try:
                n = len(json.loads(Path(arg).read_text())["traceEvents"])
            except Exception:  # pragma: no cover - validated above
                n = 0
            print(f"{arg}: OK ({n} events)", file=out)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
