"""Validate observability JSON artifacts (traces, monitor summaries).

Usage::

    python -m repro.obs.validate file.json [more.json ...]

Each file is dispatched on its ``schema`` field: documents tagged
``repro.monitor.summary/v1`` go through
:func:`repro.obs.monitor.validate_monitor_summary`, profile summaries
through :func:`repro.obs.profile.validate_profile_summary`, and anything
else is treated as a Chrome trace.  Exit status 0 when every file
validates; 1 otherwise.  CI runs this over the traced bench smoke's trace
and the monitored chaos smoke's summary (see ``scripts/ci.sh``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.obs.explain import EXPLAIN_SCHEMA, validate_explanation
from repro.obs.export import validate_chrome_trace_file
from repro.obs.flightrecorder import (
    POSTMORTEM_SCHEMA,
    validate_postmortem_bundle,
)
from repro.obs.monitor import MONITOR_SCHEMA, validate_monitor_summary
from repro.obs.profile import SUMMARY_SCHEMA, validate_profile_summary


def _validate_file(path: str) -> Tuple[str, List[str]]:
    """(document kind, errors) for one file; dispatch on the schema tag."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return "unreadable", [str(exc)]
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema == MONITOR_SCHEMA:
        return "monitor summary", validate_monitor_summary(doc)
    if schema == SUMMARY_SCHEMA:
        return "profile summary", validate_profile_summary(doc)
    if schema == EXPLAIN_SCHEMA:
        return "explanation", validate_explanation(doc)
    if schema == POSTMORTEM_SCHEMA:
        return "post-mortem bundle", validate_postmortem_bundle(doc)
    return "chrome trace", validate_chrome_trace_file(path)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate <file.json> ...",
              file=out)
        return 2
    failed = False
    for arg in argv:
        kind, errors = _validate_file(arg)
        if errors:
            failed = True
            print(f"{arg}: INVALID ({kind})", file=out)
            for err in errors[:20]:
                print(f"  {err}", file=out)
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more", file=out)
        else:
            detail = ""
            if kind == "chrome trace":
                try:
                    n = len(json.loads(
                        Path(arg).read_text())["traceEvents"])
                except Exception:  # pragma: no cover - validated above
                    n = 0
                detail = f" ({n} events)"
            print(f"{arg}: OK [{kind}]{detail}", file=out)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
