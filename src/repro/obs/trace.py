"""GTrace: structured tracing on the simulation clock.

A :class:`Tracer` records *spans* (an interval of simulated time on a named
track) and *instants* (a point marker) with string categories and free-form
``args``.  Timestamps come straight off the simulation clock, so two runs of
the same deterministic job produce byte-identical traces — traces are
diffable artifacts, not samples.

Tracks mirror Chrome's trace-event process/thread model: a *process* groups
related *threads* (e.g. process ``worker0-gpu0`` with threads ``kernel``,
``copy:h2d``, ``copy:d2h``), and the Perfetto UI renders one lane per
thread.  That is what makes transfer/compute overlap visible: kernel spans
and copy spans live on separate lanes of the same device process.

Disabled tracers are free: :meth:`Tracer.span` returns a shared no-op
context manager and :meth:`Tracer.instant` returns immediately — no events,
no allocations that grow with the run, and (because tracing never touches
the event heap) zero simulated-clock divergence either way.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple

__all__ = ["Track", "TraceEvent", "Tracer", "NULL_SPAN", "NULL_TRACK"]

#: Multiplier from simulated seconds to the microseconds Chrome traces use.
_US = 1e6


class Track(NamedTuple):
    """A (process, thread) lane pair — the address of a trace event."""

    pid: int
    tid: int


class TraceEvent:
    """One recorded occurrence: a complete span (``X``) or an instant (``i``).

    ``ts``/``dur`` are in simulated *seconds* internally; the Chrome export
    converts to microseconds.
    """

    __slots__ = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")

    def __init__(self, name: str, cat: str, ph: str, ts: float, dur: float,
                 pid: int, tid: int, args: Optional[Dict[str, Any]]):
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.pid = pid
        self.tid = tid
        self.args = args

    @property
    def end(self) -> float:
        """Span end time (== ``ts`` for instants)."""
        return self.ts + self.dur

    def overlaps(self, other: "TraceEvent") -> bool:
        """True if two spans share any open interval of simulated time."""
        return self.ts < other.end and other.ts < self.end

    def to_chrome(self) -> Dict[str, Any]:
        """This event as one Chrome trace-event JSON object."""
        obj: Dict[str, Any] = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "ts": self.ts * _US, "pid": self.pid, "tid": self.tid,
            "args": dict(self.args) if self.args else {},
        }
        if self.ph == "X":
            obj["dur"] = self.dur * _US
        elif self.ph == "i":
            obj["s"] = "t"  # instant scoped to its thread lane
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceEvent {self.ph} {self.name!r} cat={self.cat} "
                f"ts={self.ts:.6f} dur={self.dur:.6f}>")


class _Span:
    """Context manager recording one span; created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "cat", "track", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, track: Track,
                 args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.args = args
        self._t0 = 0.0

    def set(self, **kwargs: Any) -> "_Span":
        """Attach/override args mid-span (e.g. byte counts known at exit)."""
        self.args.update(kwargs)
        return self

    def __enter__(self) -> "_Span":
        self._t0 = self._tracer.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._record(TraceEvent(
            self.name, self.cat, "X", self._t0,
            self._tracer.now() - self._t0,
            self.track.pid, self.track.tid, self.args or None))
        return False


class _NullSpan:
    """Shared no-op span for disabled tracers (zero-allocation fast path)."""

    __slots__ = ()

    def set(self, **kwargs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared no-op span/track instances — also handed out by disabled tracers,
#: and usable directly by call sites that may have no tracer at all.
NULL_SPAN = _NULL_SPAN = _NullSpan()
NULL_TRACK = _NULL_TRACK = Track(0, 0)


class Tracer:
    """Collects structured trace events against a simulation environment.

    ``env`` only needs a ``now`` attribute (the sim clock); the tracer never
    schedules events, so enabling it cannot perturb simulated time.
    """

    def __init__(self, env: Any, enabled: bool = False):
        self.env = env
        self.enabled = bool(enabled)
        self.events: List[TraceEvent] = []
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self._process_names: List[Tuple[int, str]] = []
        self._thread_names: List[Tuple[int, int, str]] = []

    # -- clock ----------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.env.now

    # -- tracks ---------------------------------------------------------------
    def track(self, process: str, thread: str) -> Track:
        """The (pid, tid) lane for ``process``/``thread``, registered lazily.

        Ids are handed out in first-use order, which is deterministic under
        the sim clock — the same run always numbers tracks identically.
        """
        if not self.enabled:
            return _NULL_TRACK
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self._process_names.append((pid, process))
        tid_key = (pid, thread)
        tid = self._tids.get(tid_key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[tid_key] = tid
            self._thread_names.append((pid, tid, thread))
        return Track(pid, tid)

    # -- recording -------------------------------------------------------------
    def span(self, name: str, cat: str, track: Track, **args: Any):
        """A context manager recording ``name`` from enter to exit."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, track, args)

    def complete(self, name: str, cat: str, track: Track, start: float,
                 end: float, **args: Any) -> None:
        """Record a span with explicit bounds (for intervals measured by the
        model itself, e.g. a kernel's exclusive compute-engine occupancy)."""
        if not self.enabled:
            return
        self._record(TraceEvent(name, cat, "X", start, max(end - start, 0.0),
                                track.pid, track.tid, args or None))

    def instant(self, name: str, cat: str, track: Track, **args: Any) -> None:
        """Record a point marker at the current simulated time."""
        if not self.enabled:
            return
        self._record(TraceEvent(name, cat, "i", self.env.now, 0.0,
                                track.pid, track.tid, args or None))

    def _record(self, event: TraceEvent) -> None:
        self.events.append(event)

    # -- introspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def spans(self, cat: Optional[str] = None,
              name: Optional[str] = None) -> List[TraceEvent]:
        """Recorded spans, optionally filtered by category and/or name."""
        return [e for e in self.events if e.ph == "X"
                and (cat is None or e.cat == cat)
                and (name is None or e.name == name)]

    def instants(self, cat: Optional[str] = None,
                 name: Optional[str] = None) -> List[TraceEvent]:
        """Recorded instants, optionally filtered by category and/or name."""
        return [e for e in self.events if e.ph == "i"
                and (cat is None or e.cat == cat)
                and (name is None or e.name == name)]

    def track_names(self) -> Dict[str, List[str]]:
        """Registered lanes: process name -> list of its thread names."""
        out: Dict[str, List[str]] = {name: [] for _, name in
                                     self._process_names}
        by_pid = {pid: name for pid, name in self._process_names}
        for pid, _tid, thread in self._thread_names:
            out[by_pid[pid]].append(thread)
        return out

    # -- export -----------------------------------------------------------------
    def chrome_events(self) -> List[Dict[str, Any]]:
        """All events as Chrome trace-event objects (metadata first)."""
        meta: List[Dict[str, Any]] = []
        for pid, name in self._process_names:
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": name}})
        for pid, tid, name in self._thread_names:
            meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": name}})
        return meta + [e.to_chrome() for e in self.events]

    def to_chrome(self) -> Dict[str, Any]:
        """The full Chrome JSON document (load in Perfetto / chrome://tracing)."""
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated", "time_unit": "us"},
        }
