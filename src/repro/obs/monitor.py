"""GMonitor: an online telemetry plane over the simulated clock.

GTrace (spans) and GProfiler (post-mortem analysis) answer *where did the
time go* after the run ends.  This module watches the system **while the
simulated clock advances**: it samples the live
:class:`~repro.obs.metrics.MetricsRegistry` into fixed-width windows of
simulated time, tracks latency/availability SLOs with error budgets and
burn rates, evaluates alert rules (threshold / rate-of-change /
sustained-window) with a firing→resolved lifecycle, and rolls worker /
device / cluster health scores — the substrate for admission-control SLOs
and a profiler-driven autoscaler (ROADMAP items 1 and 4).

Clock discipline (the PR 2 contract, kept here): the monitor **never
schedules simulation events**.  Windows are closed lazily — every feed
first observes ``env.now`` and, when it has crossed a window boundary,
closes the elapsed windows, samples the registry, evaluates alert rules
and scores health, all synchronously inside whatever process was already
running.  Enabled or disabled, the simulated clock is bit-identical
(asserted by ``tests/obs/test_monitor.py``).

Window semantics:

* **counter** series: the window value is the delta accumulated in that
  window (missing window = 0).
* **gauge** series: last value set in the window (carried forward for
  alert evaluation).
* **histogram** series: per-window count/sum/min/max/p50/p95/p99
  estimated from the same bucket interpolation the registry histograms
  use.

Registry metrics are sampled at window close: counter deltas, gauge
last-values, and histogram bucket deltas (windowed percentiles).  The
sample is attributed to the window being closed — attribution granularity
is therefore bounded by how often instrumented call sites tick the
monitor, which on the hot paths (pipeline publishes, GPU stages,
heartbeats) is every few simulated milliseconds.

The machine-readable summary (``repro.monitor.summary/v1``) feeds the
dependency-free HTML dashboard (:mod:`repro.obs.dashboard`) and is
validated by :func:`validate_monitor_summary` (wired into
``python -m repro.obs.validate``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.obs.anomaly import SlidingTrend, trend_snapshot
from repro.obs.metrics import Histogram, LabelItems, metric_key, render_key

__all__ = [
    "Alert",
    "AlertRule",
    "GMonitor",
    "HealthScorer",
    "MONITOR_SCHEMA",
    "NULL_MONITOR",
    "SLObjective",
    "SLOTracker",
    "Series",
    "TimeSeriesStore",
    "validate_monitor_summary",
]

MONITOR_SCHEMA = "repro.monitor.summary/v1"

#: severity -> health penalty per active alert touching a worker/device
_SEVERITY_PENALTY = {"critical": 40.0, "warning": 15.0}


# ---------------------------------------------------------------------------
# Time-series store
# ---------------------------------------------------------------------------

class Series:
    """One labelled time series: sparse ``(window_index, value)`` points.

    Points are appended in increasing window order and trimmed to the
    store's retention.  ``kind`` follows the registry metric kinds.
    """

    __slots__ = ("name", "labels", "kind", "points",
                 "_open_idx", "_open_val", "_open_hist")

    def __init__(self, name: str, labels: LabelItems, kind: str,
                 retention: int):
        self.name = name
        self.labels = labels
        self.kind = kind
        self.points: deque = deque(maxlen=retention)
        self._open_idx: Optional[int] = None
        self._open_val = 0.0
        self._open_hist: Optional[Histogram] = None

    @property
    def key(self) -> str:
        return render_key(self.name, self.labels)

    def record(self, idx: int, value: float) -> None:
        """Accumulate ``value`` into the open window ``idx``."""
        if self._open_idx != idx:
            self._open_idx = idx
            if self.kind == "histogram":
                self._open_hist = Histogram(self.name, self.labels)
            else:
                self._open_val = 0.0
        if self.kind == "counter":
            self._open_val += value
        elif self.kind == "gauge":
            self._open_val = float(value)
        else:
            self._open_hist.observe(value)

    def close(self, idx: int):
        """Close window ``idx``; return its value or None if untouched."""
        if self._open_idx != idx:
            return None
        self._open_idx = None
        if self.kind == "histogram":
            h, self._open_hist = self._open_hist, None
            value = {
                "count": h.count, "sum": h.total,
                "min": h.vmin, "max": h.vmax,
                "p50": h.percentile(0.50), "p95": h.percentile(0.95),
                "p99": h.percentile(0.99),
            }
        else:
            value = self._open_val
        self.points.append((idx, value))
        return value

    def set_closed(self, idx: int, value) -> None:
        """Append a point for an already-closed window (derived series)."""
        self.points.append((idx, value))


class TimeSeriesStore:
    """Get-or-create registry of :class:`Series` with bounded retention."""

    def __init__(self, retention: int = 720):
        if retention < 1:
            raise ConfigError(f"retention must be >= 1, got {retention}")
        self.retention = retention
        self._series: Dict[Tuple[str, LabelItems], Series] = {}

    def series(self, name: str, kind: str, **labels: Any) -> Series:
        return self.series_items(name, kind, metric_key(name, labels)[1])

    def series_items(self, name: str, kind: str,
                     labels: LabelItems) -> Series:
        """Like :meth:`series` but with pre-sorted label items — the
        spelling registry sampling uses (label keys like ``kind`` would
        collide with the keyword signature)."""
        key = (name, labels)
        s = self._series.get(key)
        if s is None:
            s = Series(name, labels, kind, self.retention)
            self._series[key] = s
        elif s.kind != kind:
            raise ConfigError(
                f"series {render_key(*key)} already registered as "
                f"{s.kind}, requested {kind}")
        return s

    def family(self, name: str) -> List[Series]:
        """All series sharing ``name``, sorted by labels."""
        return [self._series[k] for k in sorted(self._series)
                if k[0] == name]

    def all_series(self) -> List[Series]:
        return [self._series[k] for k in sorted(self._series)]

    def __len__(self) -> int:
        return len(self._series)

    def close_window(self, idx: int) -> List[Tuple[Series, Any]]:
        """Close window ``idx`` on every open series; return the values."""
        closed = []
        for s in self._series.values():
            v = s.close(idx)
            if v is not None:
                closed.append((s, v))
        return closed


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------

@dataclass
class SLObjective:
    """One service-level objective.

    ``kind="latency"``: events are durations; an event is *bad* when it
    exceeds ``target`` seconds, and the objective promises the
    ``percentile`` quantile stays under the target — the allowed bad
    fraction is ``1 - percentile``.  ``target=None`` tracks the
    distribution without gating.

    ``kind="availability"``: events are ok/failed attempts; the objective
    promises a ``target`` fraction of events succeed — the allowed bad
    fraction (the error budget) is ``1 - target``.
    """

    name: str
    kind: str = "latency"
    target: Optional[float] = None
    percentile: float = 0.99

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ConfigError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.percentile < 1.0:
            raise ConfigError("percentile must be in (0, 1)")
        if (self.kind == "availability"
                and (self.target is None or not 0.0 < self.target < 1.0)):
            raise ConfigError("availability target must be in (0, 1)")

    @property
    def allowed_bad_frac(self) -> float:
        if self.kind == "availability":
            return 1.0 - self.target
        return 1.0 - self.percentile


class _SLOState:
    __slots__ = ("slo", "events", "bad", "hist")

    def __init__(self, slo: SLObjective):
        self.slo = slo
        self.events = 0
        self.bad = 0
        self.hist = Histogram(slo.name, ())


class SLOTracker:
    """Error-budget accounting over job/task completion events.

    Burn rate is the classic SRE ratio: the fraction of events that were
    bad divided by the fraction the objective allows.  Burn > 1 means the
    error budget is being consumed faster than it accrues — sustained,
    that is an SLO violation.
    """

    def __init__(self, store: TimeSeriesStore):
        self._store = store
        self._states: Dict[str, _SLOState] = {}

    def add(self, slo: SLObjective) -> SLObjective:
        if slo.name in self._states:
            raise ConfigError(f"SLO {slo.name!r} already registered")
        self._states[slo.name] = _SLOState(slo)
        return slo

    def get(self, name: str) -> Optional[SLObjective]:
        state = self._states.get(name)
        return state.slo if state else None

    def objectives(self) -> List[SLObjective]:
        return [s.slo for s in self._states.values()]

    def observe_latency(self, idx: int, name: str, seconds: float) -> None:
        state = self._states.get(name)
        if state is None or state.slo.kind != "latency":
            return
        state.events += 1
        state.hist.observe(seconds)
        bad = state.slo.target is not None and seconds > state.slo.target
        if bad:
            state.bad += 1
        self._store.series("slo.events", "counter", slo=name).record(idx, 1)
        if bad:
            self._store.series("slo.bad", "counter", slo=name).record(idx, 1)

    def observe_event(self, idx: int, name: str, ok: bool) -> None:
        state = self._states.get(name)
        if state is None or state.slo.kind != "availability":
            return
        state.events += 1
        if not ok:
            state.bad += 1
        self._store.series("slo.events", "counter", slo=name).record(idx, 1)
        if not ok:
            self._store.series("slo.bad", "counter", slo=name).record(idx, 1)

    def burn_rate(self, name: str) -> float:
        state = self._states[name]
        if not state.events:
            return 0.0
        bad_frac = state.bad / state.events
        allowed = state.slo.allowed_bad_frac
        return bad_frac / allowed if allowed > 0 else float("inf")

    def violated(self, name: str) -> bool:
        state = self._states[name]
        slo = state.slo
        if not state.events:
            return False
        if slo.kind == "latency":
            if slo.target is None:
                return False
            return state.hist.percentile(slo.percentile) > slo.target
        return (state.bad / state.events) > slo.allowed_bad_frac

    def summary(self) -> List[Dict[str, Any]]:
        rows = []
        for name, state in sorted(self._states.items()):
            slo = state.slo
            row: Dict[str, Any] = {
                "name": name,
                "kind": slo.kind,
                "target": slo.target,
                "events": state.events,
                "bad": state.bad,
                "bad_frac": (state.bad / state.events
                             if state.events else 0.0),
                "allowed_bad_frac": slo.allowed_bad_frac,
                "burn_rate": self.burn_rate(name),
                "budget_remaining_frac": max(
                    0.0, 1.0 - self.burn_rate(name)),
                "violated": self.violated(name),
            }
            if slo.kind == "latency":
                row["percentile"] = slo.percentile
                row["observed"] = {
                    "count": state.hist.count,
                    "p50": state.hist.percentile(0.50),
                    "p95": state.hist.percentile(0.95),
                    "p99": state.hist.percentile(0.99),
                } if state.hist.count else {"count": 0}
            rows.append(row)
        return rows


# ---------------------------------------------------------------------------
# Alerts
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AlertRule:
    """One alert rule over a series family.

    ``predicate`` is one of ``above`` / ``below`` (threshold on the window
    value), ``rate_above`` (window-over-window increase exceeds the
    threshold), or ``trend_above`` / ``trend_below`` (least-squares slope
    of the last ``trend_window`` window values, in value-per-window units,
    crosses the threshold).  The rule fires after ``sustained`` consecutive
    breaching windows and resolves after ``resolve_after`` consecutive
    quiet ones.  ``labels`` restricts matching to series whose labels are
    a superset; for histogram series ``window_field`` picks the per-window
    statistic.
    """

    name: str
    series: str
    predicate: str = "above"
    threshold: float = 0.0
    sustained: int = 1
    resolve_after: int = 2
    severity: str = "warning"
    labels: Tuple[Tuple[str, str], ...] = ()
    window_field: str = "count"
    trend_window: int = 8

    def __post_init__(self) -> None:
        if self.predicate not in ("above", "below", "rate_above",
                                  "trend_above", "trend_below"):
            raise ConfigError(f"unknown predicate {self.predicate!r}")
        if self.severity not in ("warning", "critical"):
            raise ConfigError(f"unknown severity {self.severity!r}")
        if self.sustained < 1 or self.resolve_after < 1:
            raise ConfigError("sustained/resolve_after must be >= 1")
        if self.trend_window < 2:
            raise ConfigError("trend_window must be >= 2")

    def matches(self, series: Series) -> bool:
        if series.name != self.series:
            return False
        return set(self.labels) <= set(series.labels)


@dataclass
class Alert:
    """One firing of a rule against one series, with its lifecycle."""

    rule: str
    series: str
    severity: str
    fired_at_s: float
    resolved_at_s: Optional[float] = None
    peak: float = 0.0
    labels: Dict[str, str] = field(default_factory=dict)
    #: Post-mortem bundle filename when a flight recorder dumped one.
    bundle: Optional[str] = None

    @property
    def active(self) -> bool:
        return self.resolved_at_s is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule, "series": self.series,
            "severity": self.severity, "fired_at_s": self.fired_at_s,
            "resolved_at_s": self.resolved_at_s, "peak": self.peak,
            "labels": dict(self.labels), "bundle": self.bundle,
        }


class _RuleState:
    __slots__ = ("series", "breach_run", "ok_run", "last_value", "alert",
                 "trend")

    def __init__(self, series: Series, rule: "AlertRule"):
        self.series = series
        self.breach_run = 0
        self.ok_run = 0
        self.last_value = 0.0
        self.alert: Optional[Alert] = None
        # Online slope state, only materialized for trend predicates.
        self.trend: Optional[SlidingTrend] = (
            SlidingTrend(window=rule.trend_window)
            if rule.predicate in ("trend_above", "trend_below") else None)


class AlertEngine:
    """Evaluates alert rules once per closed window, in window order.

    Firing/resolution are emitted as instants on a dedicated
    ``monitor/alerts`` trace lane so alert history lines up with the spans
    in the Chrome trace.
    """

    def __init__(self, tracer=None):
        self._tracer = tracer
        self.rules: List[AlertRule] = []
        self._states: Dict[Tuple[int, str], _RuleState] = {}
        self.history: List[Alert] = []

    def add_rule(self, rule: AlertRule) -> AlertRule:
        self.rules.append(rule)
        return rule

    def active_alerts(self) -> List[Alert]:
        return [a for a in self.history if a.active]

    def _window_value(self, rule: AlertRule, value) -> float:
        if isinstance(value, dict):
            return float(value.get(rule.window_field, 0.0))
        return float(value)

    def evaluate(self, idx: int, t_end: float,
                 closed: List[Tuple[Series, Any]]) -> List[Alert]:
        """Evaluate every rule against window ``idx`` (ending at t_end).

        Returns the alerts that *fired* this window (for flight-recorder
        dumps); lifecycle state lives in :attr:`history` as before.
        """
        fired: List[Alert] = []
        closed_by_series = {id(s): v for s, v in closed}
        # Discover series newly matching a rule.
        for ri, rule in enumerate(self.rules):
            for s, _v in closed:
                if rule.matches(s):
                    k = (ri, s.key)
                    if k not in self._states:
                        self._states[k] = _RuleState(s, rule)
        for (ri, _skey), state in self._states.items():
            rule = self.rules[ri]
            raw = closed_by_series.get(id(state.series))
            if raw is None:
                # No activity this window: counters/histograms read 0,
                # gauges carry their last value forward.
                value = (state.last_value
                         if state.series.kind == "gauge" else 0.0)
            else:
                value = self._window_value(rule, raw)
            if rule.predicate == "above":
                breach = value > rule.threshold
            elif rule.predicate == "below":
                breach = value < rule.threshold
            elif rule.predicate in ("trend_above", "trend_below"):
                state.trend.update(value)
                slope = state.trend.slope()
                # Half-full window before a slope is trusted: a single
                # early point must not fire a trend rule.
                ready = len(state.trend) >= max(2, rule.trend_window // 2)
                if rule.predicate == "trend_above":
                    breach = ready and slope > rule.threshold
                else:
                    breach = ready and slope < rule.threshold
                state.last_value = value   # raw, for gauge carry-forward
                value = slope              # reported as the alert's peak
            else:  # rate_above
                breach = (value - state.last_value) > rule.threshold
            if rule.predicate not in ("trend_above", "trend_below"):
                state.last_value = value
            if breach:
                state.breach_run += 1
                state.ok_run = 0
            else:
                state.ok_run += 1
                state.breach_run = 0
            alert = state.alert
            if alert is None and state.breach_run >= rule.sustained:
                alert = Alert(rule=rule.name, series=state.series.key,
                              severity=rule.severity, fired_at_s=t_end,
                              peak=value,
                              labels=dict(state.series.labels))
                state.alert = alert
                self.history.append(alert)
                fired.append(alert)
                self._instant("alert.fired", alert)
            elif alert is not None:
                if breach:
                    alert.peak = max(alert.peak, value)
                if state.ok_run >= rule.resolve_after:
                    alert.resolved_at_s = t_end
                    state.alert = None
                    self._instant("alert.resolved", alert)
        return fired

    def _instant(self, what: str, alert: Alert) -> None:
        if self._tracer is None:
            return
        track = self._tracer.track("monitor", "alerts")
        self._tracer.instant(f"{what}:{alert.rule}", "monitor", track,
                             series=alert.series, severity=alert.severity,
                             peak=alert.peak)

    def summary(self) -> List[Dict[str, Any]]:
        return [a.to_dict() for a in self.history]


# ---------------------------------------------------------------------------
# Health
# ---------------------------------------------------------------------------

class HealthScorer:
    """Rolling 0–100 health per worker, device and the whole cluster.

    A score starts at 100 and loses a fixed penalty per *active* alert
    whose series labels pin it to the entity (``worker=``, ``device=``,
    or a device name prefixed by the worker's).  A worker the master
    knows is down scores 0 until it is declared and recovered around.
    Cluster health is the mean worker score.
    """

    def __init__(self, store: TimeSeriesStore):
        self._store = store
        self.workers: List[str] = []
        self.devices: List[str] = []
        self.down: set = set()
        self.latest: Dict[str, float] = {}

    def register_worker(self, name: str) -> None:
        if name not in self.workers:
            self.workers.append(name)

    def register_device(self, name: str) -> None:
        if name not in self.devices:
            self.devices.append(name)

    def worker_down(self, name: str) -> None:
        self.down.add(name)

    def worker_recovered(self, name: str) -> None:
        self.down.discard(name)

    @staticmethod
    def _touches(alert: Alert, worker: Optional[str] = None,
                 device: Optional[str] = None) -> bool:
        labels = alert.labels
        if device is not None:
            return labels.get("device") == device
        w = labels.get("worker")
        d = labels.get("device", "")
        return w == worker or d.startswith(f"{worker}-")

    def _score(self, alerts: List[Alert], worker: Optional[str] = None,
               device: Optional[str] = None) -> float:
        score = 100.0
        for a in alerts:
            if self._touches(a, worker=worker, device=device):
                score -= _SEVERITY_PENALTY.get(a.severity, 15.0)
        return max(0.0, min(100.0, score))

    def score_window(self, idx: int, engine: AlertEngine) -> None:
        active = engine.active_alerts()
        worker_scores = []
        for w in self.workers:
            s = 0.0 if w in self.down else self._score(active, worker=w)
            self.latest[f"worker:{w}"] = s
            self._store.series("health.worker", "gauge",
                               worker=w).set_closed(idx, s)
            worker_scores.append(s)
        for d in self.devices:
            s = self._score(active, device=d)
            self.latest[f"device:{d}"] = s
            self._store.series("health.device", "gauge",
                               device=d).set_closed(idx, s)
        cluster = (sum(worker_scores) / len(worker_scores)
                   if worker_scores else 100.0)
        self.latest["cluster"] = cluster
        self._store.series("health.cluster", "gauge").set_closed(idx, cluster)

    def summary(self) -> Dict[str, Any]:
        return {
            "cluster": self.latest.get("cluster", 100.0),
            "workers": {w: self.latest.get(f"worker:{w}", 100.0)
                        for w in self.workers},
            "devices": {d: self.latest.get(f"device:{d}", 100.0)
                        for d in self.devices},
        }


# ---------------------------------------------------------------------------
# The monitor facade
# ---------------------------------------------------------------------------

class GMonitor:
    """The online telemetry plane: store + SLOs + alerts + health.

    Driven entirely by feeds from instrumented call sites — it owns no
    simulation process and never schedules events.  Every feed starts
    with a :meth:`tick`: when ``env.now`` has crossed into a new window,
    all elapsed windows are closed (registry sampled, alerts evaluated,
    health scored) before the new observation is recorded.
    """

    enabled = True

    DEFAULT_RULES = (
        AlertRule(name="worker_unhealthy", series="worker.heartbeat.missed",
                  predicate="above", threshold=0.0, sustained=1,
                  resolve_after=3, severity="critical"),
        AlertRule(name="backpressure_stall",
                  series="pipeline.backpressure.stall_s",
                  predicate="above", threshold=0.0, sustained=3,
                  resolve_after=3, severity="warning"),
    )

    def __init__(self, env: Any, tracer=None, registry=None,
                 window_s: float = 1.0, retention: int = 720,
                 recorder=None):
        if window_s <= 0:
            raise ConfigError(f"window_s must be positive, got {window_s}")
        self._env = env
        self._registry = registry
        #: Optional FlightRecorder: fed every closed window, dumps a
        #: post-mortem bundle per fired alert.  Never schedules events.
        self.recorder = recorder
        self.window_s = window_s
        self.store = TimeSeriesStore(retention=retention)
        self.slo = SLOTracker(self.store)
        self.alerts = AlertEngine(tracer=tracer)
        self.health = HealthScorer(self.store)
        self._cur = int(env.now / window_s) if env is not None else 0
        self._windows_closed = 0
        self._last_counters: Dict[Tuple[str, LabelItems], float] = {}
        self._last_hist: Dict[Tuple[str, LabelItems], Any] = {}
        self._finalized = False
        for rule in self.DEFAULT_RULES:
            self.alerts.add_rule(rule)
        self.slo.add(SLObjective(name="job_latency", kind="latency",
                                 target=None, percentile=0.99))
        self.slo.add(SLObjective(name="task_availability",
                                 kind="availability", target=0.999))

    # -- window machinery --------------------------------------------------------

    def _widx(self, t: float) -> int:
        return int(t / self.window_s)

    def tick(self) -> None:
        """Close any windows the simulated clock has moved past."""
        w = self._widx(self._env.now)
        if w > self._cur:
            self._advance(w)

    def _advance(self, target: int) -> None:
        # Registry deltas accrued since the last boundary belong to the
        # window being closed first (sampled-at-close attribution).
        self._sample_registry(self._cur)
        while self._cur < target:
            idx = self._cur
            t_end = (idx + 1) * self.window_s
            closed = self.store.close_window(idx)
            fired = self.alerts.evaluate(idx, t_end, closed)
            self.health.score_window(idx, self.alerts)
            if self.recorder is not None:
                self.recorder.record_windows(idx, t_end, closed)
                for alert in fired:
                    alert.bundle = self.recorder.dump_for_alert(
                        self, alert, t_end)
            self._windows_closed += 1
            self._cur += 1

    def _sample_registry(self, idx: int) -> None:
        if self._registry is None or not self._registry.enabled:
            return
        for m in list(self._registry._metrics.values()):
            key = (m.name, m.labels)
            kind = m.kind
            if kind == "counter":
                last = self._last_counters.get(key, 0.0)
                delta = m.value - last
                if delta:
                    self._last_counters[key] = m.value
                    self.store.series_items(
                        m.name, "counter", m.labels).record(idx, delta)
            elif kind == "gauge":
                self.store.series_items(
                    m.name, "gauge", m.labels).record(idx, m.value)
            elif kind == "histogram":
                self._sample_histogram(idx, key, m)

    def _sample_histogram(self, idx: int, key, m) -> None:
        last_count, last_total, last_buckets = self._last_hist.get(
            key, (0, 0.0, None))
        dcount = m.count - last_count
        if not dcount:
            return
        deltas = ([c - lc for c, lc in zip(m.bucket_counts, last_buckets)]
                  if last_buckets else list(m.bucket_counts))
        self._last_hist[key] = (m.count, m.total, list(m.bucket_counts))
        # Windowed percentiles via the registry's own bucket estimator:
        # rebuild a histogram from the bucket deltas.  min/max are the
        # lifetime extremes (best effort — the buckets don't retain them
        # per window), which only loosens the clamp.
        h = Histogram(m.name, m.labels, bounds=m.bounds)
        h.count = dcount
        h.total = m.total - last_total
        h.vmin, h.vmax = m.vmin, m.vmax
        h.bucket_counts = deltas
        s = self.store.series_items(m.name, "histogram", m.labels)
        s.set_closed(idx, {
            "count": dcount, "sum": h.total, "min": h.vmin, "max": h.vmax,
            "p50": h.percentile(0.50), "p95": h.percentile(0.95),
            "p99": h.percentile(0.99),
        })

    # -- direct feeds (all tick first) -------------------------------------------

    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self.tick()
        self.store.series(name, "counter", **labels).record(self._cur, amount)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.tick()
        self.store.series(name, "gauge", **labels).record(self._cur, value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.tick()
        self.store.series(name, "histogram",
                          **labels).record(self._cur, value)

    def job_completed(self, job: str, makespan_s: float,
                      ok: bool = True) -> None:
        self.tick()
        self.slo.observe_latency(self._cur, "job_latency", makespan_s)
        self.store.series("job.makespan_s", "histogram",
                          job=job).record(self._cur, makespan_s)

    def task_attempt(self, op: str, ok: bool, seconds: float = 0.0) -> None:
        self.tick()
        self.slo.observe_event(self._cur, "task_availability", ok)
        if not ok:
            self.store.series("task.failures", "counter",
                              op=op).record(self._cur, 1)

    def heartbeat_missed(self, worker: str) -> None:
        self.count("worker.heartbeat.missed", 1, worker=worker)

    def worker_down(self, worker: str) -> None:
        self.tick()
        self.health.worker_down(worker)
        self.store.series("worker.down", "counter",
                          worker=worker).record(self._cur, 1)

    def worker_declared_dead(self, worker: str) -> None:
        # The runtime's worker.declared_dead registry counter is sampled
        # into the store; this hook only advances the clock so detection
        # is attributed to the right window.
        self.tick()

    # -- topology / rules --------------------------------------------------------

    def register_worker(self, name: str) -> None:
        self.health.register_worker(name)

    def register_device(self, name: str,
                        pcie_bps: Optional[float] = None) -> None:
        self.health.register_device(name)
        if pcie_bps:
            # PCIe bytes moved in one window vs 90% of the calibrated bus
            # ceiling over the same span — the paper's Observation 2 made
            # an online signal.
            self.alerts.add_rule(AlertRule(
                name="pcie_saturated", series="gpu.pcie.bytes",
                labels=(("device", name),), predicate="above",
                threshold=0.9 * pcie_bps * self.window_s,
                sustained=2, resolve_after=2, severity="warning"))

    def add_rule(self, rule: AlertRule) -> AlertRule:
        return self.alerts.add_rule(rule)

    # -- trends ------------------------------------------------------------------

    def trends(self, name: Optional[str] = None, window: int = 8,
               alpha: float = 0.3) -> Dict[str, Dict[str, Any]]:
        """Per-series trend snapshots over the stored (closed) windows.

        Keyed by the series key; each snapshot carries ``slope`` (value
        per window, least-squares over the last ``window`` points),
        ``zscore`` (EWMA drift of the latest point), ``mean``, ``last``
        and ``direction``.  ``name`` restricts to one series family —
        the autoscaler reads ``trends("scheduler.slot_pressure")`` for
        its predictive policies.  Pure arithmetic over already-closed
        windows; never advances the clock.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for s in self.store.all_series():
            if name is not None and s.name != name:
                continue
            snap = trend_snapshot(s.points, window=window, alpha=alpha)
            snap["name"] = s.name
            snap["labels"] = dict(s.labels)
            out[s.key] = snap
        return out

    def set_latency_target(self, target: float,
                           percentile: float = 0.99) -> None:
        """Point the built-in job_latency SLO at a concrete target."""
        state = self.slo._states["job_latency"]
        state.slo.target = target
        state.slo.percentile = percentile

    def set_availability_target(self, target: float) -> None:
        self.slo._states["task_availability"].slo.target = target

    # -- finalization / export ---------------------------------------------------

    def finalize(self) -> None:
        """Close the trailing (partial) window at the end of a run."""
        if self._finalized:
            return
        self._finalized = True
        self._advance(self._widx(self._env.now) + 1)

    def __len__(self) -> int:
        return len(self.store) + len(self.alerts.history)

    def summary(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": MONITOR_SCHEMA,
            "window_s": self.window_s,
            "generated_at_s": float(self._env.now),
            "windows_closed": self._windows_closed,
            "series": [
                {"name": s.name, "labels": dict(s.labels), "kind": s.kind,
                 "points": [[i, v] for i, v in s.points]}
                for s in self.store.all_series()
            ],
            "rules": [
                {"name": r.name, "series": r.series,
                 "predicate": r.predicate, "threshold": r.threshold,
                 "sustained": r.sustained, "resolve_after": r.resolve_after,
                 "severity": r.severity, "labels": dict(r.labels),
                 "trend_window": r.trend_window}
                for r in self.alerts.rules
            ],
            "alerts": self.alerts.summary(),
            "slos": self.slo.summary(),
            "health": self.health.summary(),
        }
        return doc


class _NullMonitor:
    """Shared no-op monitor handed out when monitoring is disabled.

    Mirrors the GMonitor feed surface so instrumentation call sites stay
    unconditional — the monitoring half of the zero-cost guarantee.
    """

    __slots__ = ()

    enabled = False

    def tick(self) -> None:
        pass

    def count(self, name, amount=1.0, **labels) -> None:
        pass

    def gauge(self, name, value, **labels) -> None:
        pass

    def observe(self, name, value, **labels) -> None:
        pass

    def job_completed(self, job, makespan_s, ok=True) -> None:
        pass

    def task_attempt(self, op, ok, seconds=0.0) -> None:
        pass

    def heartbeat_missed(self, worker) -> None:
        pass

    def worker_down(self, worker) -> None:
        pass

    def worker_declared_dead(self, worker) -> None:
        pass

    def register_worker(self, name) -> None:
        pass

    def register_device(self, name, pcie_bps=None) -> None:
        pass

    def add_rule(self, rule) -> None:
        pass

    def trends(self, name=None, window=8, alpha=0.3) -> dict:
        return {}

    def set_latency_target(self, target, percentile=0.99) -> None:
        pass

    def set_availability_target(self, target) -> None:
        pass

    def finalize(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_MONITOR = _NullMonitor()


# ---------------------------------------------------------------------------
# Summary validation
# ---------------------------------------------------------------------------

def validate_monitor_summary(doc: Any) -> List[str]:
    """Structural validation of a ``repro.monitor.summary/v1`` document.

    Returns a list of error strings (empty = valid), mirroring
    :func:`repro.obs.export.validate_chrome_trace`.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["summary must be a JSON object"]
    if doc.get("schema") != MONITOR_SCHEMA:
        errors.append(f"schema must be {MONITOR_SCHEMA!r}: "
                      f"{doc.get('schema')!r}")
    window_s = doc.get("window_s")
    if not isinstance(window_s, (int, float)) or window_s <= 0:
        errors.append(f"window_s must be a positive number: {window_s!r}")
    for field_name in ("series", "rules", "alerts", "slos"):
        if not isinstance(doc.get(field_name), list):
            errors.append(f"{field_name} must be a list")
    if errors:
        return errors
    for i, s in enumerate(doc["series"]):
        where = f"series[{i}]"
        if not isinstance(s, dict) or not s.get("name"):
            errors.append(f"{where}: missing name")
            continue
        if s.get("kind") not in ("counter", "gauge", "histogram"):
            errors.append(f"{where}: bad kind {s.get('kind')!r}")
        points = s.get("points")
        if not isinstance(points, list):
            errors.append(f"{where}: points must be a list")
            continue
        last_idx = None
        for p in points:
            if (not isinstance(p, list) or len(p) != 2
                    or not isinstance(p[0], int)):
                errors.append(f"{where}: malformed point {p!r}")
                break
            if last_idx is not None and p[0] < last_idx:
                errors.append(f"{where}: points out of order at {p[0]}")
                break
            last_idx = p[0]
    for i, a in enumerate(doc["alerts"]):
        where = f"alerts[{i}]"
        if not isinstance(a, dict):
            errors.append(f"{where}: must be an object")
            continue
        for req in ("rule", "series", "severity", "fired_at_s"):
            if req not in a:
                errors.append(f"{where}: missing {req}")
        if a.get("severity") not in ("warning", "critical"):
            errors.append(f"{where}: bad severity {a.get('severity')!r}")
        fired = a.get("fired_at_s")
        resolved = a.get("resolved_at_s")
        if (isinstance(fired, (int, float)) and resolved is not None
                and isinstance(resolved, (int, float)) and resolved < fired):
            errors.append(f"{where}: resolved before fired")
    for i, s in enumerate(doc["slos"]):
        where = f"slos[{i}]"
        if not isinstance(s, dict) or s.get("kind") not in (
                "latency", "availability"):
            errors.append(f"{where}: bad SLO kind")
            continue
        if not isinstance(s.get("burn_rate"), (int, float)) \
                or s["burn_rate"] < 0:
            errors.append(f"{where}: burn_rate must be >= 0")
        if s.get("bad", 0) > s.get("events", 0):
            errors.append(f"{where}: bad exceeds events")
    health = doc.get("health")
    if not isinstance(health, dict):
        errors.append("health must be an object")
    else:
        flat = [health.get("cluster", 100.0)]
        flat += list(health.get("workers", {}).values())
        flat += list(health.get("devices", {}).values())
        for v in flat:
            if not isinstance(v, (int, float)) or not 0 <= v <= 100:
                errors.append(f"health score out of range: {v!r}")
                break
    return errors
