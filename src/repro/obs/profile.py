"""GProfiler: critical-path analysis, bottleneck attribution, regression gate.

GTrace (:mod:`repro.obs.trace`) answers "what happened when"; this module
answers the paper's evaluation questions (§6, Figs. 5–8): *where does the
makespan go* — PCIe transfers, kernel compute, JVM-side compute, scheduling
wait, shuffle, HDFS — and *did this change make it worse*.  It consumes a
finished :class:`~repro.obs.trace.Tracer` or an exported Chrome-trace JSON
file (so it works offline on ``traces/*.json``) and produces:

* **critical-path extraction** — a backward walk over the span DAG from the
  last job's finish to the first job's start, following task / exchange /
  submit edges.  The walk partitions the job window exactly, so the path's
  per-category attribution sums to the makespan to within float noise.
* **utilization timelines** — per device engine (kernel lane busy %, copy
  lanes busy %, copy-with-compute overlap %, PCIe bytes/s) and per-worker
  slot occupancy, all derived from exact span occupancy (copy spans record
  the engine-held window only — see ``CUDARuntime._transfer_op``).
* **bottleneck classification** — each operator's wall time is partitioned
  into kernel / h2d / d2h / shuffle / hdfs / cpu / sched shares; the
  dominating share names the class (``kernel_bound``, ``pcie_bound``, …).
* **a regression gate** — :func:`compare_summaries` diffs two summaries
  against configurable relative thresholds; ``repro profile --baseline``
  exits non-zero on regression (wired into ``scripts/ci.sh``).

Everything here is read-only analysis over recorded events: profiling a
trace never touches the simulation, and runs with tracing disabled simply
produce an empty profile.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "SUMMARY_SCHEMA",
    "CATEGORIES",
    "ProfileTrace",
    "PSpan",
    "Segment",
    "Delta",
    "summarize",
    "summarize_tracer",
    "profile_file",
    "load_summary",
    "compare_summaries",
    "default_thresholds",
    "validate_profile_summary",
    "render_text",
    "render_comparison",
]

#: Version tag of the machine-readable summary document.
SUMMARY_SCHEMA = "repro.profile.summary/v1"

#: Critical-path attribution categories, in coverage-priority order: when
#: fine-grained spans overlap inside one path segment, earlier categories
#: claim the time first (a kernel running during a copy is kernel time).
CATEGORIES = ("kernel", "h2d", "d2h", "shuffle", "hdfs", "cpu", "sched")

#: One simulated-clock tick: float-comparison slack for span boundaries.
TICK_S = 1e-9

#: Microseconds (Chrome trace units) → seconds.
_US = 1e6

Interval = Tuple[float, float]


@dataclass(frozen=True)
class PSpan:
    """One complete span, normalized to seconds with resolved lane names."""

    name: str
    cat: str
    ts: float
    dur: float
    pid: int
    tid: int
    process: str
    thread: str
    args: Dict[str, Any]

    @property
    def end(self) -> float:
        return self.ts + self.dur


class ProfileTrace:
    """A parsed trace: spans with resolved process/thread names, in seconds.

    Build one with :meth:`from_tracer` (live run) or :meth:`from_chrome`
    (exported JSON document); :meth:`load` reads a file.
    """

    def __init__(self, spans: Sequence[PSpan],
                 processes: Dict[int, str],
                 threads: Dict[Tuple[int, int], str]):
        self.spans = list(spans)
        self.processes = dict(processes)
        self.threads = dict(threads)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer: Any) -> "ProfileTrace":
        """From a live :class:`repro.obs.trace.Tracer` (timestamps already
        in seconds)."""
        processes = {pid: name for pid, name in tracer._process_names}
        threads = {(pid, tid): name
                   for pid, tid, name in tracer._thread_names}
        spans = [PSpan(e.name, e.cat, e.ts, e.dur, e.pid, e.tid,
                       processes.get(e.pid, f"pid{e.pid}"),
                       threads.get((e.pid, e.tid), f"tid{e.tid}"),
                       dict(e.args) if e.args else {})
                 for e in tracer.events if e.ph == "X"]
        return cls(spans, processes, threads)

    @classmethod
    def from_chrome(cls, doc: Dict[str, Any]) -> "ProfileTrace":
        """From a Chrome trace-event document (µs timestamps)."""
        events = doc.get("traceEvents", [])
        processes: Dict[int, str] = {}
        threads: Dict[Tuple[int, int], str] = {}
        for ev in events:
            if not isinstance(ev, dict) or ev.get("ph") != "M":
                continue
            name = (ev.get("args") or {}).get("name")
            if ev.get("name") == "process_name":
                processes[ev.get("pid")] = name
            elif ev.get("name") == "thread_name":
                threads[(ev.get("pid"), ev.get("tid"))] = name
        spans = []
        for ev in events:
            if not isinstance(ev, dict) or ev.get("ph") != "X":
                continue
            pid, tid = ev.get("pid", 0), ev.get("tid", 0)
            spans.append(PSpan(
                ev.get("name", ""), ev.get("cat", ""),
                float(ev.get("ts", 0.0)) / _US,
                float(ev.get("dur", 0.0)) / _US,
                pid, tid,
                processes.get(pid, f"pid{pid}"),
                threads.get((pid, tid), f"tid{tid}"),
                dict(ev.get("args") or {})))
        return cls(spans, processes, threads)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ProfileTrace":
        """Read a Chrome trace JSON file from disk."""
        return cls.from_chrome(json.loads(Path(path).read_text()))

    # -- selectors -------------------------------------------------------------
    def by_cat(self, *cats: str) -> List[PSpan]:
        wanted = set(cats)
        return [s for s in self.spans if s.cat in wanted]

    def window(self) -> Interval:
        """The analysis window: union of job spans, else full span extent."""
        jobs = [s for s in self.by_cat("job")
                if s.name.startswith("job:")]
        pool = jobs or self.spans
        if not pool:
            return 0.0, 0.0
        return (min(s.ts for s in pool), max(s.end for s in pool))


# -- interval arithmetic -----------------------------------------------------------
def _union(intervals: List[Interval]) -> List[Interval]:
    """Merged, sorted, non-overlapping cover of ``intervals``."""
    out: List[Interval] = []
    for lo, hi in sorted(i for i in intervals if i[1] > i[0]):
        if out and lo <= out[-1][1] + TICK_S:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out

def _length(intervals: List[Interval]) -> float:
    return sum(hi - lo for lo, hi in intervals)

def _clip(intervals: List[Interval], lo: float, hi: float) -> List[Interval]:
    return [(max(a, lo), min(b, hi)) for a, b in intervals
            if min(b, hi) > max(a, lo)]

def _subtract(base: List[Interval],
              minus: List[Interval]) -> List[Interval]:
    """``base − minus``; both inputs must be merged/sorted (``_union``)."""
    out: List[Interval] = []
    for lo, hi in base:
        cursor = lo
        for mlo, mhi in minus:
            if mhi <= cursor or mlo >= hi:
                continue
            if mlo > cursor:
                out.append((cursor, mlo))
            cursor = max(cursor, mhi)
            if cursor >= hi:
                break
        if cursor < hi:
            out.append((cursor, hi))
    return out

def _intersect(a: List[Interval], b: List[Interval]) -> List[Interval]:
    """Pairwise intersection of two merged interval lists."""
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


# -- critical path -----------------------------------------------------------------
@dataclass
class Segment:
    """One stretch of the critical path."""

    t0: float
    t1: float
    kind: str                      # "task" / "shuffle" / "submit" / "wait"
    name: str
    categories: Dict[str, float] = field(default_factory=dict)

    @property
    def dur(self) -> float:
        return self.t1 - self.t0


def _device_cat(span: PSpan) -> str:
    if span.name == "h2d":
        return "h2d"
    if span.name == "d2h":
        return "d2h"
    return "kernel"


def _fine_spans_for_worker(trace: ProfileTrace,
                           worker: str) -> Dict[str, List[Interval]]:
    """Fine-grained activity intervals attributable to one worker: its GPU
    devices' engine lanes plus its HDFS lane."""
    out: Dict[str, List[Interval]] = {"kernel": [], "h2d": [], "d2h": [],
                                      "hdfs": []}
    gpu_prefix = f"{worker}-gpu"
    for s in trace.by_cat("gpu.device"):
        if s.process.startswith(gpu_prefix):
            out[_device_cat(s)].append((s.ts, s.end))
    for s in trace.by_cat("hdfs"):
        if s.process == worker:
            out["hdfs"].append((s.ts, s.end))
    return out


def _attribute_window(t0: float, t1: float,
                      fine: Dict[str, List[Interval]],
                      rest_cat: str = "cpu") -> Dict[str, float]:
    """Partition ``[t0, t1]`` by coverage priority; remainder → rest_cat."""
    remaining = [(t0, t1)]
    out: Dict[str, float] = {}
    for cat in ("kernel", "h2d", "d2h", "shuffle", "hdfs"):
        cover = _union(_clip(fine.get(cat, []), t0, t1))
        if not cover:
            continue
        claimed = _intersect(remaining, cover)
        if claimed:
            out[cat] = out.get(cat, 0.0) + _length(claimed)
            remaining = _subtract(remaining, _union(claimed))
    rest = _length(remaining)
    if rest > 0.0:
        out[rest_cat] = out.get(rest_cat, 0.0) + rest
    return out


def extract_critical_path(trace: ProfileTrace) -> List[Segment]:
    """Backward walk from the last job end to the window start.

    At each cursor the chain element is the candidate span reaching
    furthest toward the cursor (task, exchange, recovery or ``job.submit``
    span); uncovered stretches become ``wait`` segments (scheduling).  The
    returned segments partition the window exactly, so their category
    attribution sums to the makespan.
    """
    lo, hi = trace.window()
    if hi - lo <= TICK_S:
        return []
    chain: List[PSpan] = list(trace.by_cat("task", "shuffle", "recovery"))
    chain += [s for s in trace.by_cat("job") if s.name == "job.submit"]
    worker_fine: Dict[str, Dict[str, List[Interval]]] = {}
    segments: List[Segment] = []

    def fine_for(span: PSpan) -> Dict[str, List[Interval]]:
        worker = span.process
        if worker not in worker_fine:
            worker_fine[worker] = _fine_spans_for_worker(trace, worker)
        return worker_fine[worker]

    def close(seg_span: PSpan, t0: float, t1: float) -> Segment:
        if seg_span.cat == "shuffle":
            return Segment(t0, t1, "shuffle", seg_span.name,
                           {"shuffle": t1 - t0})
        if seg_span.cat == "job":
            return Segment(t0, t1, "submit", seg_span.name,
                           {"sched": t1 - t0})
        cats = _attribute_window(t0, t1, fine_for(seg_span))
        return Segment(t0, t1, "task", seg_span.name, cats)

    cursor = hi
    while cursor > lo + TICK_S:
        best: Optional[PSpan] = None
        best_reach = -math.inf
        for s in chain:
            if s.ts >= cursor - TICK_S:
                continue
            reach = min(s.end, cursor)
            # Prefer the furthest reach; tie-break on the earliest start
            # (covers more of the remaining window), then name for
            # determinism.
            key = (reach, -s.ts, s.name)
            if best is None or key > (best_reach, -best.ts, best.name):
                best, best_reach = s, reach
        if best is None:
            segments.append(Segment(lo, cursor, "wait", "wait",
                                    {"sched": cursor - lo}))
            break
        if best_reach < cursor - TICK_S:
            segments.append(Segment(best_reach, cursor, "wait", "wait",
                                    {"sched": cursor - best_reach}))
            cursor = best_reach
        start = max(best.ts, lo)
        segments.append(close(best, start, cursor))
        cursor = start
    segments.reverse()
    return segments


# -- operator bottlenecks ----------------------------------------------------------
def classify_operators(trace: ProfileTrace) -> Dict[str, Dict[str, Any]]:
    """Per-operator wall-time shares and the bottleneck class.

    Each operator's wall window is partitioned (priority coverage over
    exact span occupancy) into kernel / h2d / d2h / shuffle / hdfs plus
    ``cpu`` (subtask running, nothing finer covering) and ``sched`` (no
    subtask running).  The class is ``<dominant>_bound`` with h2d+d2h
    folded into ``pcie``.
    """
    from repro.obs.metrics import Histogram
    out: Dict[str, Dict[str, Any]] = {}
    tasks = trace.by_cat("task")
    exchanges = trace.by_cat("shuffle")
    device = trace.by_cat("gpu.device")
    hdfs = trace.by_cat("hdfs")
    for op_span in trace.by_cat("operator", "recovery"):
        op = op_span.args.get("op") or op_span.name.split(":", 1)[-1]
        t0, t1 = op_span.ts, op_span.end
        wall = t1 - t0
        if wall <= 0.0:
            continue
        op_tasks = [s for s in tasks if s.args.get("op") == op]
        workers = {s.process for s in op_tasks}
        fine: Dict[str, List[Interval]] = {
            "kernel": [], "h2d": [], "d2h": [], "hdfs": [], "shuffle": []}
        for s in device:
            if any(s.process.startswith(f"{w}-gpu") for w in workers):
                fine[_device_cat(s)].append((s.ts, s.end))
        for s in hdfs:
            if s.process in workers:
                fine["hdfs"].append((s.ts, s.end))
        for s in exchanges:
            if s.args.get("op") == op:
                fine["shuffle"].append((s.ts, s.end))
        busy = _union(_clip([(s.ts, s.end) for s in op_tasks], t0, t1))
        # Partition the operator window: engine categories first, then CPU
        # where a subtask ran, scheduling wait where none did.
        remaining = [(t0, t1)]
        shares: Dict[str, float] = {}
        for cat in ("kernel", "h2d", "d2h", "shuffle", "hdfs"):
            cover = _union(_clip(fine[cat], t0, t1))
            claimed = _intersect(remaining, cover)
            if claimed:
                shares[cat] = _length(claimed)
                remaining = _subtract(remaining, _union(claimed))
        cpu = _intersect(remaining, busy)
        if cpu:
            shares["cpu"] = _length(cpu)
            remaining = _subtract(remaining, _union(cpu))
        sched = _length(remaining)
        if sched > 0.0:
            shares["sched"] = sched
        grouped = {
            "pcie": shares.get("h2d", 0.0) + shares.get("d2h", 0.0),
            "kernel": shares.get("kernel", 0.0),
            "cpu": shares.get("cpu", 0.0),
            "sched": shares.get("sched", 0.0),
            "shuffle": shares.get("shuffle", 0.0),
            "hdfs": shares.get("hdfs", 0.0),
        }
        dominant = max(sorted(grouped), key=lambda k: grouped[k])
        # Per-subtask latency distribution: the task spans of this operator
        # fed through a Histogram so the text report can print percentiles.
        hist = Histogram("op.task_s", ())
        for s in op_tasks:
            hist.observe(s.dur)
        latency: Dict[str, float] = {}
        if op_tasks:
            latency = {
                "count": float(hist.count),
                "min": hist.vmin,
                "max": hist.vmax,
                "stddev": hist.stddev,
                "p50": hist.percentile(0.50),
                "p95": hist.percentile(0.95),
                "p99": hist.percentile(0.99),
            }
        out[op] = {
            "wall_s": wall,
            "parallelism": int(op_span.args.get("parallelism",
                                                len(op_tasks)) or 0),
            "shares": {k: v / wall for k, v in sorted(shares.items())},
            "class": f"{dominant}_bound",
            "dominant_share": grouped[dominant] / wall,
            "task_latency_s": latency,
        }
    return out


# -- utilization -------------------------------------------------------------------
def device_utilization(trace: ProfileTrace) -> Dict[str, Dict[str, Any]]:
    """Per-device engine busy time, copy/compute overlap and PCIe rates.

    Two overlap views per device:

    ``copy_compute_overlap_pct``
        |copies ∩ kernels| / copy time — the device-local view (how much
        PCIe traffic hides under kernels on the *same* device).

    ``copy_pipeline_overlap_pct``
        |copies ∩ (kernels ∪ the owning worker's HDFS reads)| / copy time —
        the whole-pipeline view the streaming executor optimizes for.  On
        I/O-bound workloads kernel time is a sliver of copy time, capping
        the device-local metric low even at perfect pipelining; a copy that
        runs while the host is still streaming the input off disk *is*
        overlapped work, and this metric credits it.
    """
    lo, hi = trace.window()
    makespan = max(hi - lo, TICK_S)
    out: Dict[str, Dict[str, Any]] = {}
    by_device: Dict[str, List[PSpan]] = {}
    for s in trace.by_cat("gpu.device"):
        by_device.setdefault(s.process, []).append(s)
    hdfs_by_worker: Dict[str, List[Interval]] = {}
    for s in trace.by_cat("hdfs"):
        hdfs_by_worker.setdefault(s.process, []).append((s.ts, s.end))
    for name in sorted(by_device):
        spans = by_device[name]
        kernel = _union([(s.ts, s.end) for s in spans
                         if _device_cat(s) == "kernel"])
        copies = _union([(s.ts, s.end) for s in spans
                         if _device_cat(s) in ("h2d", "d2h")])
        overlap = _intersect(kernel, copies)
        # The worker that owns this device (process names are
        # "<worker>-gpu<idx>"); its disk activity counts as pipeline work.
        worker = name.rsplit("-gpu", 1)[0]
        pipeline_cover = _union(list(kernel)
                                + hdfs_by_worker.get(worker, []))
        pipeline_overlap = _intersect(copies, pipeline_cover)
        kernel_busy = _length(kernel)
        copy_busy = _length(copies)
        h2d_bytes = sum(int(s.args.get("nbytes", 0)) for s in spans
                        if _device_cat(s) == "h2d")
        d2h_bytes = sum(int(s.args.get("nbytes", 0)) for s in spans
                        if _device_cat(s) == "d2h")
        out[name] = {
            "kernel_busy_s": kernel_busy,
            "kernel_busy_pct": kernel_busy / makespan,
            "copy_busy_s": copy_busy,
            "copy_busy_pct": copy_busy / makespan,
            "copy_compute_overlap_s": _length(overlap),
            "copy_compute_overlap_pct": (_length(overlap) / copy_busy
                                         if copy_busy > 0 else 0.0),
            "copy_pipeline_overlap_s": _length(pipeline_overlap),
            "copy_pipeline_overlap_pct": (
                _length(pipeline_overlap) / copy_busy
                if copy_busy > 0 else 0.0),
            "h2d_bytes": h2d_bytes,
            "d2h_bytes": d2h_bytes,
            "pcie_bytes_per_s": ((h2d_bytes + d2h_bytes) / copy_busy
                                 if copy_busy > 0 else 0.0),
        }
    return out


def worker_occupancy(trace: ProfileTrace) -> Dict[str, Dict[str, Any]]:
    """Per-worker slot-lane busy fraction over the analysis window."""
    lo, hi = trace.window()
    makespan = max(hi - lo, TICK_S)
    lanes: Dict[Tuple[str, str], List[Interval]] = {}
    for s in trace.by_cat("task"):
        if s.thread.startswith("slot"):
            lanes.setdefault((s.process, s.thread), []).append((s.ts, s.end))
    out: Dict[str, Dict[str, Any]] = {}
    for (worker, slot), intervals in sorted(lanes.items()):
        entry = out.setdefault(worker, {"slots": 0, "slot_busy_s": 0.0})
        entry["slots"] += 1
        entry["slot_busy_s"] += _length(_union(intervals))
    for worker, entry in out.items():
        entry["occupancy_pct"] = (entry["slot_busy_s"]
                                  / (entry["slots"] * makespan))
    return out


# -- summary -----------------------------------------------------------------------
def summarize(trace: ProfileTrace,
              source: str = "tracer") -> Dict[str, Any]:
    """The full machine-readable profile summary (see SUMMARY_SCHEMA)."""
    lo, hi = trace.window()
    makespan = hi - lo
    segments = extract_critical_path(trace)
    categories = {cat: 0.0 for cat in CATEGORIES}
    for seg in segments:
        for cat, seconds in seg.categories.items():
            categories[cat] = categories.get(cat, 0.0) + seconds
    operators = classify_operators(trace)
    devices = device_utilization(trace)
    workers = worker_occupancy(trace)
    jobs = [s.name[len("job:"):] for s in trace.by_cat("job")
            if s.name.startswith("job:")]
    total_overlap = sum(d["copy_compute_overlap_s"] for d in devices.values())
    total_pipeline = sum(d["copy_pipeline_overlap_s"]
                         for d in devices.values())
    total_copy = sum(d["copy_busy_s"] for d in devices.values())
    return {
        "schema": SUMMARY_SCHEMA,
        "source": source,
        "jobs": jobs,
        "makespan_s": makespan,
        "clock_tick_s": TICK_S,
        "span_count": len(trace.spans),
        "critical_path": {
            "length_s": sum(seg.dur for seg in segments),
            "categories": categories,
            "segments": [
                {"t0": seg.t0, "t1": seg.t1, "dur_s": seg.dur,
                 "kind": seg.kind, "name": seg.name,
                 "categories": {k: v for k, v in
                                sorted(seg.categories.items())}}
                for seg in segments],
        },
        "operators": operators,
        "devices": devices,
        "workers": workers,
        "totals": {
            "kernel_busy_s": sum(d["kernel_busy_s"]
                                 for d in devices.values()),
            "copy_busy_s": total_copy,
            "copy_compute_overlap_pct": (total_overlap / total_copy
                                         if total_copy > 0 else 0.0),
            "copy_pipeline_overlap_pct": (total_pipeline / total_copy
                                          if total_copy > 0 else 0.0),
            "pcie_bytes": sum(d["h2d_bytes"] + d["d2h_bytes"]
                              for d in devices.values()),
        },
    }


def summarize_tracer(tracer: Any, source: str = "tracer") -> Dict[str, Any]:
    """Profile a live tracer (convenience wrapper)."""
    return summarize(ProfileTrace.from_tracer(tracer), source=source)


def profile_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Profile a file: a Chrome trace, or an already-computed summary."""
    doc = json.loads(Path(path).read_text())
    if isinstance(doc, dict) and doc.get("schema") == SUMMARY_SCHEMA:
        return doc
    if isinstance(doc, dict) and "traceEvents" in doc:
        return summarize(ProfileTrace.from_chrome(doc), source=str(path))
    raise ValueError(f"{path}: neither a Chrome trace nor a profile summary")


def load_summary(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a baseline: summary JSON, or a trace (profiled on the fly)."""
    return profile_file(path)


# -- summary schema validation ------------------------------------------------------
def validate_profile_summary(doc: Any) -> List[str]:
    """Structural check of a profile summary document; [] when valid."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["summary root must be an object"]
    if doc.get("schema") != SUMMARY_SCHEMA:
        errors.append(f"schema must be {SUMMARY_SCHEMA!r}, "
                      f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("makespan_s"), (int, float)):
        errors.append("makespan_s must be a number")
    cp = doc.get("critical_path")
    if not isinstance(cp, dict):
        errors.append("critical_path must be an object")
    else:
        cats = cp.get("categories")
        if not isinstance(cats, dict):
            errors.append("critical_path.categories must be an object")
        else:
            for cat in CATEGORIES:
                if not isinstance(cats.get(cat), (int, float)):
                    errors.append(f"critical_path.categories.{cat} missing")
        if not isinstance(cp.get("segments"), list):
            errors.append("critical_path.segments must be an array")
        elif isinstance(cats, dict) and \
                isinstance(doc.get("makespan_s"), (int, float)):
            total = sum(v for v in cats.values()
                        if isinstance(v, (int, float)))
            if abs(total - doc["makespan_s"]) > max(
                    1e-6 * max(abs(doc["makespan_s"]), 1.0), 10 * TICK_S):
                errors.append(
                    f"critical-path categories sum {total!r} != "
                    f"makespan {doc['makespan_s']!r}")
    for section in ("operators", "devices", "workers", "totals"):
        if not isinstance(doc.get(section), dict):
            errors.append(f"{section} must be an object")
    if isinstance(doc.get("operators"), dict):
        for op, entry in doc["operators"].items():
            if not isinstance(entry, dict) or \
                    not str(entry.get("class", "")).endswith("_bound"):
                errors.append(f"operators[{op!r}].class must be *_bound")
    return errors


# -- regression gate ---------------------------------------------------------------
@dataclass
class Delta:
    """One compared metric between a current and a baseline summary."""

    metric: str
    base: float
    current: float
    rel_change: float              # signed; positive = metric went up
    threshold: float
    regressed: bool

    def describe(self) -> str:
        arrow = "worse" if self.regressed else "ok"
        return (f"{self.metric}: {self.base:.6g} -> {self.current:.6g} "
                f"({self.rel_change:+.1%}, threshold "
                f"{self.threshold:.0%}) {arrow}")


def default_thresholds() -> Dict[str, float]:
    """Relative thresholds per metric family (override per full name)."""
    return {
        "makespan_s": 0.10,
        "critical_path": 0.25,     # per-category seconds on the path
        "operator_wall": 0.25,     # per-operator wall seconds
        "overlap_pct": 0.20,       # copy/compute overlap may not *drop*
    }


#: Metrics whose *decrease* is a regression (higher is better).
_HIGHER_IS_BETTER = {"overlap_pct"}

#: Below this many seconds a seconds-metric is noise, never a regression.
_MIN_SECONDS = 1e-6


def _threshold_for(metric: str, family: str,
                   thresholds: Dict[str, float]) -> float:
    if metric in thresholds:
        return thresholds[metric]
    return thresholds.get(family, 0.25)


def compare_summaries(current: Dict[str, Any], baseline: Dict[str, Any],
                      thresholds: Optional[Dict[str, float]] = None
                      ) -> List[Delta]:
    """Diff two summaries; a Delta per compared metric, regressions flagged.

    A metric regresses when its relative change exceeds the configured
    threshold in the bad direction (up for times, down for overlap).
    Metrics below the noise floor or absent from either side are skipped.
    """
    thr = default_thresholds()
    thr.update(thresholds or {})
    deltas: List[Delta] = []

    def scalar(metric: str, family: str, base: Any, cur: Any,
               floor: float = _MIN_SECONDS) -> None:
        if not isinstance(base, (int, float)) or \
                not isinstance(cur, (int, float)):
            return
        if max(abs(base), abs(cur)) < floor:
            return
        rel = (cur - base) / max(abs(base), floor)
        t = _threshold_for(metric, family, thr)
        if family in _HIGHER_IS_BETTER:
            regressed = rel < -t
        else:
            regressed = rel > t
        deltas.append(Delta(metric, float(base), float(cur), rel, t,
                            regressed))

    scalar("makespan_s", "makespan_s",
           baseline.get("makespan_s"), current.get("makespan_s"))
    base_cats = (baseline.get("critical_path") or {}).get("categories", {})
    cur_cats = (current.get("critical_path") or {}).get("categories", {})
    for cat in CATEGORIES:
        scalar(f"critical_path.{cat}", "critical_path",
               base_cats.get(cat, 0.0), cur_cats.get(cat, 0.0))
    base_ops = baseline.get("operators") or {}
    cur_ops = current.get("operators") or {}
    for op in sorted(set(base_ops) | set(cur_ops)):
        if op in base_ops and op in cur_ops:
            scalar(f"operator.{op}.wall_s", "operator_wall",
                   base_ops[op].get("wall_s"), cur_ops[op].get("wall_s"))
            continue
        # An operator present in only one summary is a plan change, not a
        # noisy scalar: a new operator — however hot — must not pass the
        # gate unflagged, and a vanished one is worth a line in the report.
        entry = cur_ops.get(op) if op in cur_ops else base_ops.get(op)
        wall = (entry or {}).get("wall_s")
        if not isinstance(wall, (int, float)) or abs(wall) < _MIN_SECONDS:
            continue
        t = _threshold_for(f"operator.{op}.wall_s", "operator_wall", thr)
        if op in cur_ops:
            deltas.append(Delta(f"operator.{op}.wall_s", 0.0, float(wall),
                                math.inf, t, True))
        else:
            deltas.append(Delta(f"operator.{op}.wall_s", float(wall), 0.0,
                                -1.0, t, False))
    base_tot = baseline.get("totals") or {}
    cur_tot = current.get("totals") or {}
    scalar("totals.copy_compute_overlap_pct", "overlap_pct",
           base_tot.get("copy_compute_overlap_pct"),
           cur_tot.get("copy_compute_overlap_pct"), floor=1e-3)
    scalar("totals.copy_pipeline_overlap_pct", "overlap_pct",
           base_tot.get("copy_pipeline_overlap_pct"),
           cur_tot.get("copy_pipeline_overlap_pct"), floor=1e-3)
    return deltas


# -- text rendering ----------------------------------------------------------------
def _pct(x: float) -> str:
    return f"{x:6.1%}"


def render_text(summary: Dict[str, Any]) -> str:
    """Human-readable profile report."""
    lines = [f"profile: makespan {summary['makespan_s']:.3f} s over "
             f"{len(summary.get('jobs', []))} job(s), "
             f"{summary.get('span_count', 0)} spans"]
    cp = summary.get("critical_path", {})
    cats = cp.get("categories", {})
    total = max(sum(cats.values()), TICK_S)
    lines.append(f"critical path ({cp.get('length_s', 0.0):.3f} s, "
                 f"{len(cp.get('segments', []))} segments):")
    for cat in CATEGORIES:
        seconds = cats.get(cat, 0.0)
        if seconds > 0.0:
            lines.append(f"  {cat:<8} {seconds:10.3f} s "
                         f"{_pct(seconds / total)}")
    operators = summary.get("operators", {})
    if operators:
        width = min(max(len(op) for op in operators), 44)
        lines.append("operator bottlenecks:")
        for op in sorted(operators,
                         key=lambda o: -operators[o]["wall_s"]):
            entry = operators[op]
            line = (
                f"  {op[:width]:<{width}} {entry['wall_s']:9.3f} s  "
                f"{entry['class']:<13} "
                f"({_pct(entry['dominant_share']).strip()} dominant)")
            latency = entry.get("task_latency_s") or {}
            if latency:
                line += (f"  p50 {latency['p50']:7.3f} "
                         f"p95 {latency['p95']:7.3f} "
                         f"p99 {latency['p99']:7.3f}")
            lines.append(line)
    devices = summary.get("devices", {})
    if devices:
        lines.append("device utilization "
                     "(busy% of makespan, overlap% of copy time):")
        for name in sorted(devices):
            d = devices[name]
            lines.append(
                f"  {name:<22} kernel {_pct(d['kernel_busy_pct'])}  "
                f"copy {_pct(d['copy_busy_pct'])}  "
                f"overlap {_pct(d['copy_compute_overlap_pct'])}  "
                f"pipeline {_pct(d.get('copy_pipeline_overlap_pct', 0.0))}  "
                f"pcie {d['pcie_bytes_per_s'] / 1e9:6.2f} GB/s")
    workers = summary.get("workers", {})
    if workers:
        lines.append("worker slot occupancy:")
        for name in sorted(workers):
            w = workers[name]
            lines.append(f"  {name:<22} {w['slots']} slots  "
                         f"busy {_pct(w['occupancy_pct'])}")
    return "\n".join(lines)


def render_comparison(deltas: List[Delta]) -> str:
    """Human-readable regression-gate report."""
    if not deltas:
        return "baseline comparison: no comparable metrics"
    lines = ["baseline comparison:"]
    for d in sorted(deltas, key=lambda d: (not d.regressed, d.metric)):
        marker = "REGRESSION" if d.regressed else "ok"
        lines.append(f"  [{marker:<10}] {d.metric:<42} "
                     f"{d.base:12.6g} -> {d.current:12.6g} "
                     f"({d.rel_change:+.1%}, thr {d.threshold:.0%})")
    n = sum(d.regressed for d in deltas)
    lines.append(f"  {n} regression(s) out of {len(deltas)} metrics"
                 if n else
                 f"  all {len(deltas)} metrics within thresholds")
    return "\n".join(lines)
