"""GXplain: causal attribution of makespan regressions.

``compare_summaries`` (the regression gate) says *that* a run got slower;
this module says *why*.  Two GProfiler summaries — a baseline and a
current run — are aligned by critical-path structure, operator, and
device, and the makespan delta is attributed to a **ranked list of
causes** whose magnitudes sum to the observed delta (up to a recorded
residual of sub-noise-floor buckets).

The attribution leans on the GProfiler invariant that the critical-path
segments partition the job window exactly: each segment is folded into
one of a fixed set of *buckets* —

* ``recovery``      — segments re-executing lost work (``recover:*``),
* ``sched.wait``    — uncovered stretches (nothing runnable),
* ``sched.submit``  — job-submission overhead,
* ``shuffle``       — exchange segments,
* and, for ordinary task segments, their fine-grained category split
  (``kernel`` / ``h2d`` / ``d2h`` / ``cpu`` / ``hdfs`` / ``shuffle`` /
  ``sched.gaps``).

Because both summaries bucket to the same keys, per-bucket deltas sum
exactly to the makespan delta; buckets whose |delta| clears the noise
floor become causes, ranked by magnitude, each carrying drill-down
evidence (which operator, which device) mined from the summaries'
operator shares and device utilization tables.

Everything here is offline arithmetic over summary dicts — it never
touches the simulated clock.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

EXPLAIN_SCHEMA = "repro.obs.explain/v1"

#: Human labels for the attribution buckets, in a stable order.
_BUCKET_LABELS = {
    "kernel": "GPU kernel time on the critical path",
    "h2d": "host->device copy time on the critical path",
    "d2h": "device->host copy time on the critical path",
    "cpu": "CPU execution time on the critical path",
    "hdfs": "HDFS I/O time on the critical path",
    "shuffle": "shuffle/exchange time on the critical path",
    "sched.gaps": "in-task scheduling gaps on the critical path",
    "sched.wait": "scheduling wait (no task runnable)",
    "sched.submit": "job submission overhead",
    "recovery": "failure-recovery re-execution on the critical path",
}

#: Operator share keys that feed evidence for each bucket.
_BUCKET_SHARE_KEY = {
    "kernel": "kernel", "h2d": "h2d", "d2h": "d2h",
    "cpu": "cpu", "hdfs": "hdfs", "shuffle": "shuffle",
}


def _segments(summary: Dict[str, Any]) -> List[Dict[str, Any]]:
    cp = summary.get("critical_path") or {}
    segs = cp.get("segments")
    return segs if isinstance(segs, list) else []


def attribution_buckets(summary: Dict[str, Any]) -> Dict[str, float]:
    """Fold one summary's critical-path segments into named buckets.

    The buckets partition the makespan exactly (segments partition the
    window; a task segment's categories partition the segment).
    """
    buckets: Dict[str, float] = {k: 0.0 for k in _BUCKET_LABELS}
    for seg in _segments(summary):
        dur = float(seg.get("dur_s") or 0.0)
        kind = seg.get("kind")
        name = str(seg.get("name") or "")
        if name.startswith("recover:"):
            buckets["recovery"] += dur
        elif kind == "wait":
            buckets["sched.wait"] += dur
        elif kind == "submit":
            buckets["sched.submit"] += dur
        elif kind == "shuffle":
            buckets["shuffle"] += dur
        else:
            cats = seg.get("categories") or {}
            claimed = 0.0
            for cat, secs in cats.items():
                if not isinstance(secs, (int, float)):
                    continue
                key = "sched.gaps" if cat == "sched" else str(cat)
                buckets[key] = buckets.get(key, 0.0) + float(secs)
                claimed += float(secs)
            # Keep the partition exact even for a malformed segment.
            if dur - claimed > 1e-12:
                buckets["cpu"] += dur - claimed
    return buckets


def _op_cat_seconds(summary: Dict[str, Any], cat: str) -> Dict[str, float]:
    """Per-operator seconds spent in ``cat`` (share x wall)."""
    out: Dict[str, float] = {}
    for op, entry in (summary.get("operators") or {}).items():
        if not isinstance(entry, dict):
            continue
        wall = entry.get("wall_s") or 0.0
        share = (entry.get("shares") or {}).get(cat, 0.0)
        if isinstance(wall, (int, float)) and isinstance(share, (int, float)):
            out[str(op)] = float(wall) * float(share)
    return out


def _device_metric(summary: Dict[str, Any], field: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for dev, entry in (summary.get("devices") or {}).items():
        val = (entry or {}).get(field)
        if isinstance(val, (int, float)):
            out[str(dev)] = float(val)
    return out


def _top_deltas(base: Dict[str, float], cur: Dict[str, float],
                floor: float, limit: int = 3) -> List[Tuple[str, float, float, float]]:
    """(name, base, cur, delta) rows sorted by |delta|, above ``floor``."""
    rows = []
    for name in sorted(set(base) | set(cur)):
        b, c = base.get(name, 0.0), cur.get(name, 0.0)
        if abs(c - b) >= floor:
            rows.append((name, b, c, c - b))
    rows.sort(key=lambda r: (-abs(r[3]), r[0]))
    return rows[:limit]


def _recovery_evidence(base: Dict[str, Any], cur: Dict[str, Any]
                       ) -> List[Dict[str, Any]]:
    def recov(summary: Dict[str, Any]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for seg in _segments(summary):
            name = str(seg.get("name") or "")
            if name.startswith("recover:"):
                op = name.split(":", 1)[1]
                counts[op] = counts.get(op, 0) + 1
        return counts

    b, c = recov(base), recov(cur)
    items: List[Dict[str, Any]] = []
    for op in sorted(set(b) | set(c), key=lambda o: -(c.get(o, 0) - b.get(o, 0))):
        db, dc = b.get(op, 0), c.get(op, 0)
        if db == dc:
            continue
        items.append({
            "kind": "recovery", "name": op,
            "base": float(db), "current": float(dc), "delta_s": 0.0,
            "label": (f"recovery segments for `{op}`: "
                      f"{db} -> {dc} on the critical path"),
        })
    return items


def _segment_count_evidence(base: Dict[str, Any], cur: Dict[str, Any],
                            kind: str, what: str) -> List[Dict[str, Any]]:
    nb = sum(1 for s in _segments(base) if s.get("kind") == kind)
    nc = sum(1 for s in _segments(cur) if s.get("kind") == kind)
    if nb == nc:
        return []
    return [{"kind": "segments", "name": kind,
             "base": float(nb), "current": float(nc), "delta_s": 0.0,
             "label": f"{what} segments: {nb} -> {nc}"}]


def _evidence_for(key: str, base: Dict[str, Any], cur: Dict[str, Any],
                  floor: float) -> List[Dict[str, Any]]:
    """Drill-down rows supporting one bucket cause (informational)."""
    items: List[Dict[str, Any]] = []
    share_key = _BUCKET_SHARE_KEY.get(key)
    if share_key is not None:
        op_rows = _top_deltas(_op_cat_seconds(base, share_key),
                              _op_cat_seconds(cur, share_key), floor)
        for name, b, c, d in op_rows:
            items.append({
                "kind": "operator", "name": name,
                "base": b, "current": c, "delta_s": d,
                "label": (f"operator `{name}` {share_key} time "
                          f"{d:+.3f} s ({b:.3f} -> {c:.3f})"),
            })
    if key == "kernel":
        dev_field = "kernel_busy_s"
    elif key in ("h2d", "d2h"):
        dev_field = "copy_busy_s"
    else:
        dev_field = None
    if dev_field is not None:
        for name, b, c, d in _top_deltas(_device_metric(base, dev_field),
                                         _device_metric(cur, dev_field),
                                         floor):
            items.append({
                "kind": "device", "name": name,
                "base": b, "current": c, "delta_s": d,
                "label": (f"device {name} {dev_field.replace('_', ' ')} "
                          f"{d:+.3f} s ({b:.3f} -> {c:.3f})"),
            })
    if key == "recovery":
        items.extend(_recovery_evidence(base, cur))
    elif key == "sched.wait":
        items.extend(_segment_count_evidence(base, cur, "wait",
                                             "scheduling-wait"))
    elif key == "sched.submit":
        items.extend(_segment_count_evidence(base, cur, "submit",
                                             "job-submit"))
    return items


def _operator_changes(base: Dict[str, Any], cur: Dict[str, Any]
                      ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    base_ops = base.get("operators") or {}
    cur_ops = cur.get("operators") or {}

    def row(name: str, entry: Any) -> Dict[str, Any]:
        wall = (entry or {}).get("wall_s") if isinstance(entry, dict) else None
        return {"name": name,
                "wall_s": float(wall) if isinstance(wall, (int, float))
                else 0.0}

    added = [row(op, cur_ops[op]) for op in sorted(set(cur_ops) - set(base_ops))]
    removed = [row(op, base_ops[op]) for op in sorted(set(base_ops) - set(cur_ops))]
    return added, removed


def default_noise_floor(baseline: Dict[str, Any],
                        current: Dict[str, Any]) -> float:
    """0.5% of the larger makespan, at least a millisecond."""
    scale = max(float(baseline.get("makespan_s") or 0.0),
                float(current.get("makespan_s") or 0.0), 0.0)
    return max(1e-3, 0.005 * scale)


def explain_summaries(current: Dict[str, Any], baseline: Dict[str, Any],
                      noise_floor_s: Optional[float] = None
                      ) -> Dict[str, Any]:
    """Attribute the makespan delta between two summaries to ranked causes.

    Returns a ``repro.obs.explain/v1`` document.  The invariant the CI
    gate relies on: ``sum(cause.delta_s) + residual_s == makespan_delta_s``
    (exactly, up to float addition), residual being the sum of buckets
    below the noise floor plus any tick-level critical-path slack.
    """
    floor = (default_noise_floor(baseline, current)
             if noise_floor_s is None else float(noise_floor_s))
    base_m = float(baseline.get("makespan_s") or 0.0)
    cur_m = float(current.get("makespan_s") or 0.0)
    delta_m = cur_m - base_m

    base_buckets = attribution_buckets(baseline)
    cur_buckets = attribution_buckets(current)
    causes: List[Dict[str, Any]] = []
    attributed = 0.0
    for key in sorted(set(base_buckets) | set(cur_buckets)):
        b = base_buckets.get(key, 0.0)
        c = cur_buckets.get(key, 0.0)
        d = c - b
        if abs(d) < floor:
            continue
        attributed += d
        causes.append({
            "key": key,
            "label": _BUCKET_LABELS.get(key, key),
            "base_s": b,
            "current_s": c,
            "delta_s": d,
            "share_of_delta": (d / delta_m) if abs(delta_m) >= floor else None,
            "evidence": _evidence_for(key, baseline, current,
                                      min(floor, abs(d) / 4.0)),
        })
    causes.sort(key=lambda cause: (-abs(cause["delta_s"]), cause["key"]))
    for rank, cause in enumerate(causes, start=1):
        cause["rank"] = rank

    added, removed = _operator_changes(baseline, current)
    return {
        "schema": EXPLAIN_SCHEMA,
        "baseline": {"source": baseline.get("source"), "makespan_s": base_m},
        "current": {"source": current.get("source"), "makespan_s": cur_m},
        "makespan_delta_s": delta_m,
        "noise_floor_s": floor,
        "attributed_delta_s": attributed,
        "residual_s": delta_m - attributed,
        "causes": causes,
        "operators_added": added,
        "operators_removed": removed,
    }


# -- validation --------------------------------------------------------------------
def validate_explanation(doc: Any) -> List[str]:
    """Structural checks for an explain document; empty list == valid."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["explanation must be a JSON object"]
    if doc.get("schema") != EXPLAIN_SCHEMA:
        errors.append(f"schema must be {EXPLAIN_SCHEMA!r}, "
                      f"got {doc.get('schema')!r}")
    for field in ("makespan_delta_s", "noise_floor_s",
                  "attributed_delta_s", "residual_s"):
        if not isinstance(doc.get(field), (int, float)):
            errors.append(f"{field} must be a number")
    for side in ("baseline", "current"):
        entry = doc.get(side)
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("makespan_s"), (int, float)):
            errors.append(f"{side}.makespan_s must be a number")
    causes = doc.get("causes")
    if not isinstance(causes, list):
        errors.append("causes must be an array")
        causes = []
    prev_mag = math.inf
    for i, cause in enumerate(causes):
        if not isinstance(cause, dict):
            errors.append(f"causes[{i}] must be an object")
            continue
        if cause.get("rank") != i + 1:
            errors.append(f"causes[{i}].rank must be {i + 1}")
        if not isinstance(cause.get("label"), str) or not cause.get("key"):
            errors.append(f"causes[{i}] needs key and label")
        d = cause.get("delta_s")
        if not isinstance(d, (int, float)):
            errors.append(f"causes[{i}].delta_s must be a number")
            continue
        if abs(d) > prev_mag + 1e-12:
            errors.append(f"causes[{i}] not sorted by |delta_s|")
        prev_mag = abs(d)
        if not isinstance(cause.get("evidence", []), list):
            errors.append(f"causes[{i}].evidence must be an array")
    if not errors:
        total = sum(c["delta_s"] for c in causes)
        if abs(total - doc["attributed_delta_s"]) > 1e-9:
            errors.append("attributed_delta_s != sum of cause deltas")
        if abs(doc["attributed_delta_s"] + doc["residual_s"]
               - doc["makespan_delta_s"]) > 1e-9:
            errors.append("attributed + residual != makespan delta")
    for field in ("operators_added", "operators_removed"):
        if not isinstance(doc.get(field), list):
            errors.append(f"{field} must be an array")
    return errors


# -- text rendering ----------------------------------------------------------------
def render_explanation(doc: Dict[str, Any], top_k: int = 5) -> str:
    """Human-readable ranked-cause report for one explain document."""
    base_m = doc["baseline"]["makespan_s"]
    cur_m = doc["current"]["makespan_s"]
    delta = doc["makespan_delta_s"]
    floor = doc["noise_floor_s"]
    lines = [f"explain: makespan {delta:+.3f} s "
             f"({base_m:.3f} s -> {cur_m:.3f} s), "
             f"noise floor {floor:.3f} s"]
    causes = doc.get("causes") or []
    if not causes:
        lines.append("  no causes above the noise floor")
    for cause in causes[:top_k]:
        share = cause.get("share_of_delta")
        share_txt = f" ({share:+.0%} of delta)" if share is not None else ""
        lines.append(f"  {cause['rank']}. {cause['delta_s']:+8.3f} s"
                     f"{share_txt}  {cause['label']}")
        for ev in (cause.get("evidence") or [])[:4]:
            lines.append(f"       - {ev['label']}")
    if len(causes) > top_k:
        lines.append(f"  ... {len(causes) - top_k} further cause(s) "
                     f"below rank {top_k}")
    for row in doc.get("operators_added") or []:
        lines.append(f"  + operator `{row['name']}` appeared "
                     f"({row['wall_s']:.3f} s wall)")
    for row in doc.get("operators_removed") or []:
        lines.append(f"  - operator `{row['name']}` disappeared "
                     f"({row['wall_s']:.3f} s wall in baseline)")
    residual = doc.get("residual_s", 0.0)
    if causes:
        lines.append(f"  residual (sub-floor buckets): {residual:+.3f} s")
    return "\n".join(lines)
