"""Metrics registry: labelled counters, gauges and histograms.

The registry is the export surface the ad-hoc per-object counters
(``device.h2d_bytes``, cache hit fields, ``JobMetrics`` totals) feed into:
hot paths either increment a registry metric directly (cheap: one dict
lookup amortized by caching the returned object) or stay plain attributes
that :func:`repro.obs.export.collect_cluster` gathers into gauges at
snapshot time — the Prometheus collector pattern.

Metric identity is ``(name, sorted labels)``; the flat rendering is
``name{k=v,...}`` so snapshots diff cleanly across runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metric_key",
           "parse_prometheus", "prometheus_name"]

LabelItems = Tuple[Tuple[str, str], ...]


def metric_key(name: str, labels: Dict[str, Any]) -> Tuple[str, LabelItems]:
    """Canonical identity of a metric: name plus sorted stringified labels."""
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_key(name: str, labels: LabelItems) -> str:
    """``name{k=v,...}`` — the flat-snapshot spelling of a metric."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot_value(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot_value(self) -> float:
        return self.value


class Histogram:
    """Summary statistics of observed values (count/sum/min/max/buckets).

    Buckets are cumulative upper bounds, Prometheus-style; the defaults span
    the microsecond-to-kilosecond range the simulation produces.
    """

    __slots__ = ("name", "labels", "count", "total", "sumsq", "vmin",
                 "vmax", "bounds", "bucket_counts")

    kind = "histogram"

    DEFAULT_BOUNDS = (1e-6, 1e-4, 1e-2, 1.0, 10.0, 100.0, 1000.0)

    def __init__(self, name: str, labels: LabelItems,
                 bounds: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self.bounds = tuple(bounds) if bounds else self.DEFAULT_BOUNDS
        self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation of the observed values."""
        if not self.count:
            return 0.0
        var = self.sumsq / self.count - self.mean ** 2
        return var ** 0.5 if var > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the bucket that holds the target rank
        (the ``histogram_quantile`` estimator), clamped to the observed
        ``[min, max]`` so one-bucket histograms don't report bucket edges
        the data never reached.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"percentile q must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = self.vmin
        for bound, in_bucket in zip(self.bounds, self.bucket_counts):
            upper = bound
            if in_bucket and cumulative + in_bucket >= rank:
                frac = (rank - cumulative) / in_bucket
                value = lower + (upper - lower) * max(frac, 0.0)
                return min(max(value, self.vmin), self.vmax)
            cumulative += in_bucket
            lower = bound
        # Target rank lives in the overflow bucket: its only known upper
        # edge is the observed maximum.
        return self.vmax

    def snapshot_value(self) -> Dict[str, Any]:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "stddev": self.stddev,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "buckets": {
                **{f"le_{b:g}": c
                   for b, c in zip(self.bounds, self.bucket_counts)},
                "le_inf": self.bucket_counts[-1],
            },
        }


class _NullMetric:
    """Shared no-op instrument handed out by a disabled registry.

    Quacks like Counter, Gauge and Histogram so instrumentation call sites
    stay unconditional; nothing is ever registered or stored.
    """

    __slots__ = ()

    kind = "null"

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Get-or-create registry of labelled metrics.

    ``counter``/``gauge``/``histogram`` return the live metric object so hot
    paths can hold it and skip the lookup.  Registering the same (name,
    labels) with a different kind is an error — one name, one meaning.

    A registry constructed with ``enabled=False`` hands out a shared no-op
    instrument and records nothing — the metrics half of the zero-cost
    guarantee for untraced runs.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, LabelItems], Any] = {}

    def _get_or_create(self, cls, name: str, labels: Dict[str, Any],
                       **kwargs: Any):
        if not self.enabled:
            return _NULL_METRIC
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key[0], key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ConfigError(
                f"metric {render_key(*key)} already registered as "
                f"{metric.kind}, requested {cls.kind}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: Optional[Tuple[float, ...]] = None,
                  **labels: Any) -> Histogram:
        if bounds is not None:
            return self._get_or_create(Histogram, name, labels, bounds=bounds)
        return self._get_or_create(Histogram, name, labels)

    # -- introspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> List[Any]:
        """All registered metric objects, sorted by (name, labels)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def value(self, name: str, **labels: Any) -> Any:
        """Current value of one metric, or None if never registered."""
        metric = self._metrics.get(metric_key(name, labels))
        return None if metric is None else metric.snapshot_value()

    def sum_values(self, name: str) -> float:
        """Sum of a counter/gauge family's values across all label sets."""
        return sum(m.value for key, m in self._metrics.items()
                   if key[0] == name and not isinstance(m, Histogram))

    # -- export ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Flat ``name{labels} -> value`` mapping (histograms -> dicts)."""
        return {render_key(m.name, m.labels): m.snapshot_value()
                for m in self.metrics()}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry.

        Metric names are sanitized (``.`` → ``_``); histograms emit the
        standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
        triplet.  :func:`parse_prometheus` reads this format back — the
        round trip is asserted by ``tests/obs/test_metrics.py``.
        """
        by_name: Dict[str, List[Any]] = {}
        for m in self.metrics():
            by_name.setdefault(m.name, []).append(m)
        lines: List[str] = []
        for name in sorted(by_name):
            family = by_name[name]
            pname = prometheus_name(name)
            kind = family[0].kind
            lines.append(f"# TYPE {pname} {kind}")
            for m in family:
                if isinstance(m, Histogram):
                    cumulative = 0
                    for bound, in_bucket in zip(m.bounds, m.bucket_counts):
                        cumulative += in_bucket
                        lines.append(_prom_sample(
                            f"{pname}_bucket", m.labels, cumulative,
                            extra=("le", f"{bound:g}")))
                    lines.append(_prom_sample(
                        f"{pname}_bucket", m.labels, m.count,
                        extra=("le", "+Inf")))
                    lines.append(_prom_sample(f"{pname}_sum", m.labels,
                                              m.total))
                    lines.append(_prom_sample(f"{pname}_count", m.labels,
                                              m.count))
                else:
                    lines.append(_prom_sample(pname, m.labels, m.value))
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Human-readable snapshot, one metric per line."""
        lines = []
        for m in self.metrics():
            key = render_key(m.name, m.labels)
            if isinstance(m, Histogram):
                s = m.snapshot_value()
                lines.append(f"{key:58s} count={s['count']} "
                             f"sum={s.get('sum', 0.0):.6g} "
                             f"mean={s.get('mean', 0.0):.6g}")
            elif isinstance(m.value, float) and not m.value.is_integer():
                lines.append(f"{key:58s} {m.value:.6g}")
            else:
                lines.append(f"{key:58s} {int(m.value)}")
        return "\n".join(lines) if lines else "no metrics recorded"


# ---------------------------------------------------------------------------
# Prometheus text exposition helpers
# ---------------------------------------------------------------------------

def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus-legal one."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace(
        "\n", r"\n")


def _prom_sample(name: str, labels: LabelItems, value: float,
                 extra: Optional[Tuple[str, str]] = None) -> str:
    items = list(labels)
    if extra is not None:
        items.append(extra)
    if items:
        inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                         for k, v in items)
        return f"{name}{{{inner}}} {float(value):g}"
    return f"{name} {float(value):g}"


def parse_prometheus(text: str) -> Dict[Tuple[str, LabelItems], float]:
    """Parse text produced by :meth:`MetricsRegistry.render_prometheus`.

    Returns ``{(name, sorted_labels): value}``; histogram samples appear
    under their ``_bucket``/``_sum``/``_count`` spellings (with the
    ``le`` label intact on buckets).  A deliberately small parser for the
    subset the renderer emits — enough for the round-trip test and for
    diffing scrapes across runs.
    """
    out: Dict[Tuple[str, LabelItems], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        if "{" in body:
            name, _, rest = body.partition("{")
            rest = rest.rstrip("}")
            labels = []
            for part in _split_label_pairs(rest):
                k, _, v = part.partition("=")
                v = v.strip('"').replace(r"\"", '"').replace(
                    r"\n", "\n").replace(r"\\", "\\")
                labels.append((k, v))
            key = (name, tuple(sorted(labels)))
        else:
            key = (body, ())
        out[key] = float(value)
    return out


def _split_label_pairs(rest: str) -> List[str]:
    """Split ``k="v",k2="v2"`` on commas outside quoted values."""
    parts, buf, in_quote, prev = [], [], False, ""
    for ch in rest:
        if ch == '"' and prev != "\\":
            in_quote = not in_quote
        if ch == "," and not in_quote:
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        prev = ch
    if buf:
        parts.append("".join(buf))
    return parts
