"""GTrace: end-to-end structured tracing + metrics for the GFlink stack.

The paper's whole evaluation (§6, Eq. 1, Observations 1–3) is a story about
*where time goes* — submit/schedule overheads, PCIe transfers, kernel time,
cache hits.  This package is the unified instrumentation layer that tells
that story per run instead of per aggregate:

* :class:`~repro.obs.trace.Tracer` — structured spans/instants with
  sim-clock timestamps, organized into per-worker / per-device /
  per-copy-engine tracks so transfer/compute overlap is visible.
* :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters, gauges
  and histograms the runtime's ad-hoc counters feed into.
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in Perfetto) and
  flat metrics JSON, plus a dependency-free schema validator.
* :mod:`repro.obs.profile` — GProfiler: critical-path extraction,
  per-operator bottleneck classification, engine-utilization timelines and
  a baseline regression gate (``repro profile``), over a live tracer or an
  exported trace file.

Wiring: every :class:`~repro.flink.runtime.Cluster` owns an
:class:`Observability` (tracer + registry), switched by
``FlinkConfig.enable_tracing`` — off by default (tests), on in benchmarks.
Tracing never schedules simulation events, so the simulated clock is
bit-identical with tracing on or off.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    ProfileTrace,
    compare_summaries,
    profile_file,
    summarize_tracer,
    validate_profile_summary,
)
from repro.obs.trace import TraceEvent, Tracer, Track

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ProfileTrace",
    "TraceEvent",
    "Tracer",
    "Track",
    "compare_summaries",
    "profile_file",
    "summarize_tracer",
    "validate_profile_summary",
]


class Observability:
    """One cluster's tracer + metrics registry, passed through the stack."""

    def __init__(self, env: Any, enabled: bool = False):
        self.tracer = Tracer(env, enabled=enabled)
        self.registry = MetricsRegistry(enabled=enabled)

    @property
    def enabled(self) -> bool:
        """True when the tracer and registry are recording."""
        return self.tracer.enabled
