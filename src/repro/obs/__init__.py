"""GTrace: end-to-end structured tracing + metrics for the GFlink stack.

The paper's whole evaluation (§6, Eq. 1, Observations 1–3) is a story about
*where time goes* — submit/schedule overheads, PCIe transfers, kernel time,
cache hits.  This package is the unified instrumentation layer that tells
that story per run instead of per aggregate:

* :class:`~repro.obs.trace.Tracer` — structured spans/instants with
  sim-clock timestamps, organized into per-worker / per-device /
  per-copy-engine tracks so transfer/compute overlap is visible.
* :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters, gauges
  and histograms the runtime's ad-hoc counters feed into.
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in Perfetto) and
  flat metrics JSON, plus a dependency-free schema validator.
* :mod:`repro.obs.profile` — GProfiler: critical-path extraction,
  per-operator bottleneck classification, engine-utilization timelines and
  a baseline regression gate (``repro profile``), over a live tracer or an
  exported trace file.

Wiring: every :class:`~repro.flink.runtime.Cluster` owns an
:class:`Observability` (tracer + registry), switched by
``FlinkConfig.enable_tracing`` — off by default (tests), on in benchmarks.
Tracing never schedules simulation events, so the simulated clock is
bit-identical with tracing on or off.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any

from repro.obs.explain import (
    explain_summaries,
    render_explanation,
    validate_explanation,
)
from repro.obs.flightrecorder import (
    FlightRecorder,
    render_bundle,
    validate_postmortem_bundle,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.monitor import (
    NULL_MONITOR,
    AlertRule,
    GMonitor,
    SLObjective,
    validate_monitor_summary,
)
from repro.obs.profile import (
    ProfileTrace,
    compare_summaries,
    profile_file,
    summarize_tracer,
    validate_profile_summary,
)
from repro.obs.trace import TraceEvent, Tracer, Track

__all__ = [
    "AlertRule",
    "Counter",
    "FlightRecorder",
    "GMonitor",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_MONITOR",
    "Observability",
    "ProfileTrace",
    "SLObjective",
    "TraceEvent",
    "Tracer",
    "Track",
    "compare_summaries",
    "explain_summaries",
    "profile_file",
    "render_bundle",
    "render_explanation",
    "summarize_tracer",
    "validate_explanation",
    "validate_monitor_summary",
    "validate_postmortem_bundle",
    "validate_profile_summary",
]


class Observability:
    """One cluster's tracer + registry + monitor, passed through the stack.

    ``enabled`` switches tracing; ``monitoring`` additionally attaches a
    live :class:`~repro.obs.monitor.GMonitor` (which needs the registry,
    so monitoring alone also enables it).  When monitoring is off the
    shared :data:`~repro.obs.monitor.NULL_MONITOR` is handed out — call
    sites stay unconditional and allocate nothing.
    """

    def __init__(self, env: Any, enabled: bool = False,
                 monitoring: bool = False, monitor_window_s: float = 1.0,
                 monitor_retention: int = 720,
                 flight_recorder: bool = False,
                 flight_recorder_dir: Any = None,
                 flight_recorder_spans: int = 512,
                 flight_recorder_windows: int = 512,
                 flight_recorder_max_bundles: int = 16):
        self.tracer = Tracer(env, enabled=enabled)
        self.registry = MetricsRegistry(enabled=enabled or monitoring)
        # The recorder is passive (bounded deques + dump-time file I/O):
        # it works with monitoring (alert-triggered bundles with metric
        # windows) or with bare chaos runs (fault-triggered bundles).
        self.recorder = (FlightRecorder(
            env, tracer=self.tracer, dirpath=flight_recorder_dir,
            span_capacity=flight_recorder_spans,
            window_capacity=flight_recorder_windows,
            max_bundles=flight_recorder_max_bundles)
            if flight_recorder else None)
        if monitoring:
            self.monitor = GMonitor(env, tracer=self.tracer,
                                    registry=self.registry,
                                    window_s=monitor_window_s,
                                    retention=monitor_retention,
                                    recorder=self.recorder)
        else:
            self.monitor = NULL_MONITOR

    @property
    def enabled(self) -> bool:
        """True when the tracer and registry are recording."""
        return self.tracer.enabled
