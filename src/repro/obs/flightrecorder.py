"""Flight recorder: bounded post-mortem capture for faults and alerts.

Black-box style: the recorder passively retains a bounded ring of the
most recent *closed metric windows* (fed by :class:`~repro.obs.monitor.
GMonitor` at window close) and, at dump time, snapshots the tail of the
tracer's span list.  When an alert fires or the chaos engine injects a
fault, it writes a **post-mortem bundle** — one JSON document with the
trace slice, metric windows, health scores, alert timeline, trend
snapshots, and any attached explain deltas — to a directory, rendered
later by ``repro postmortem``.

Capture is append-only arithmetic on bounded deques; the dump itself is
host-side file I/O.  Neither ever touches the simulation event heap, so
enabling the recorder keeps the simulated clock bit-identical (asserted
in ``tests/obs/test_monitor.py``).
"""

from __future__ import annotations

import json
import re
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

POSTMORTEM_SCHEMA = "repro.obs.postmortem/v1"

_SLUG_RE = re.compile(r"[^a-zA-Z0-9_.-]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("-", text).strip("-") or "event"


class FlightRecorder:
    """Bounded capture + bundle dumps; one per cluster, always passive.

    ``dirpath`` may be None (bundles are then only kept in memory via
    :attr:`last_bundle`, still bounded by ``max_bundles``).
    """

    def __init__(self, env: Any, tracer=None,
                 dirpath: Optional[str] = None,
                 span_capacity: int = 512,
                 window_capacity: int = 512,
                 max_bundles: int = 16):
        if span_capacity < 1 or window_capacity < 1 or max_bundles < 1:
            raise ValueError("flight recorder capacities must be >= 1")
        self._env = env
        self._tracer = tracer
        self.dirpath = Path(dirpath) if dirpath else None
        self.span_capacity = span_capacity
        self.max_bundles = max_bundles
        #: Ring of recently closed metric windows (newest last).
        self.windows: Deque[Dict[str, Any]] = deque(maxlen=window_capacity)
        #: Filenames of bundles written, in dump order.
        self.bundles: List[str] = []
        #: Bundles skipped after :attr:`max_bundles` was reached.
        self.skipped = 0
        #: The most recent bundle document (for tests / in-memory use).
        self.last_bundle: Optional[Dict[str, Any]] = None
        self._seq = 0
        self._explain: Optional[Dict[str, Any]] = None

    # -- capture -----------------------------------------------------------------

    def record_windows(self, idx: int, t_end: float,
                       closed: List[Tuple[Any, Any]]) -> None:
        """Retain one batch of closed windows (called by GMonitor)."""
        for series, value in closed:
            self.windows.append({
                "idx": idx, "t_end_s": t_end, "series": series.key,
                "kind": series.kind, "value": value,
            })

    def attach_explanation(self, doc: Dict[str, Any]) -> None:
        """Carry the active explain deltas into subsequent bundles.

        Typically the explanation of the current run against a committed
        baseline — bundles then show the regression context a fault or
        alert happened under.
        """
        self._explain = doc

    # -- dump triggers -----------------------------------------------------------

    def dump_for_alert(self, monitor, alert, t_end: float) -> Optional[str]:
        """Bundle for one fired alert; returns the bundle filename."""
        return self.dump(f"alert:{alert.rule}",
                         detail=alert.to_dict(), monitor=monitor)

    def record_fault(self, cluster, event) -> Optional[str]:
        """Bundle for one applied chaos event (ChaosEngine hook)."""
        detail = {
            "kind": event.kind.value, "at_s": event.at,
            "worker": event.worker, "device": event.device,
        }
        monitor = cluster.obs.monitor
        return self.dump(f"fault:{event.kind.value}", detail=detail,
                         monitor=monitor if monitor.enabled else None)

    # -- the bundle --------------------------------------------------------------

    def _trace_slice(self) -> List[Dict[str, Any]]:
        tracer = self._tracer
        if tracer is None or not getattr(tracer, "enabled", False):
            return []
        pid_names = dict(tracer._process_names)
        tid_names = {(pid, tid): name
                     for pid, tid, name in tracer._thread_names}
        out = []
        for e in tracer.events[-self.span_capacity:]:
            out.append({
                "name": e.name, "cat": e.cat, "ph": e.ph,
                "ts": e.ts, "dur": e.dur,
                "process": pid_names.get(e.pid, str(e.pid)),
                "thread": tid_names.get((e.pid, e.tid), str(e.tid)),
                "args": dict(e.args) if e.args else {},
            })
        return out

    def build_bundle(self, reason: str,
                     detail: Optional[Dict[str, Any]] = None,
                     monitor=None) -> Dict[str, Any]:
        """The bundle document (no file write) for ``reason``."""
        doc: Dict[str, Any] = {
            "schema": POSTMORTEM_SCHEMA,
            "reason": reason,
            "detail": detail or {},
            "triggered_at_s": float(self._env.now),
            "seq": self._seq,
            "trace_slice": self._trace_slice(),
            "metric_windows": list(self.windows),
            "health": {}, "alerts": [], "slos": [], "trends": {},
            "explain": self._explain,
        }
        if monitor is not None and getattr(monitor, "enabled", False):
            doc["health"] = monitor.health.summary()
            doc["alerts"] = monitor.alerts.summary()
            doc["slos"] = monitor.slo.summary()
            doc["trends"] = monitor.trends()
        return doc

    def dump(self, reason: str, detail: Optional[Dict[str, Any]] = None,
             monitor=None) -> Optional[str]:
        """Write one bundle; returns its filename (None once capped)."""
        if len(self.bundles) >= self.max_bundles:
            self.skipped += 1
            return None
        doc = self.build_bundle(reason, detail=detail, monitor=monitor)
        filename = f"postmortem-{self._seq:03d}-{_slug(reason)}.json"
        self._seq += 1
        if self.dirpath is not None:
            self.dirpath.mkdir(parents=True, exist_ok=True)
            (self.dirpath / filename).write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n")
        self.bundles.append(filename)
        self.last_bundle = doc
        return filename


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def validate_postmortem_bundle(doc: Any) -> List[str]:
    """Structural checks for one bundle document; empty list == valid."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["bundle must be a JSON object"]
    if doc.get("schema") != POSTMORTEM_SCHEMA:
        errors.append(f"schema must be {POSTMORTEM_SCHEMA!r}, "
                      f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("reason"), str) or not doc.get("reason"):
        errors.append("reason must be a non-empty string")
    if not isinstance(doc.get("triggered_at_s"), (int, float)):
        errors.append("triggered_at_s must be a number")
    for field in ("trace_slice", "metric_windows", "alerts", "slos"):
        if not isinstance(doc.get(field), list):
            errors.append(f"{field} must be an array")
    for obj_field in ("detail", "health", "trends"):
        if not isinstance(doc.get(obj_field), dict):
            errors.append(f"{obj_field} must be an object")
    for i, span in enumerate(doc.get("trace_slice") or []):
        if not isinstance(span, dict) or \
                not isinstance(span.get("ts"), (int, float)) or \
                not isinstance(span.get("dur"), (int, float)):
            errors.append(f"trace_slice[{i}] needs numeric ts/dur")
            break
    last = None
    for i, w in enumerate(doc.get("metric_windows") or []):
        if not isinstance(w, dict) or not isinstance(w.get("idx"), int):
            errors.append(f"metric_windows[{i}] needs an integer idx")
            break
        if last is not None and w["idx"] < last:
            errors.append(f"metric_windows[{i}] out of window order")
            break
        last = w["idx"]
    explain = doc.get("explain")
    if explain is not None:
        from repro.obs.explain import validate_explanation
        errors.extend(f"explain: {e}"
                      for e in validate_explanation(explain))
    return errors


# ---------------------------------------------------------------------------
# Text rendering (the `repro postmortem` CLI)
# ---------------------------------------------------------------------------

def render_bundle(doc: Dict[str, Any], spans: int = 12) -> str:
    """Human-readable post-mortem report for one bundle."""
    lines = [f"post-mortem: {doc.get('reason')} "
             f"at t={doc.get('triggered_at_s', 0.0):.3f} s"]
    detail = doc.get("detail") or {}
    if detail:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(detail.items())
                          if v is not None)
        lines.append(f"  detail: {pairs}")
    health = doc.get("health") or {}
    if health:
        workers = health.get("workers") or {}
        worst = sorted(workers.items(), key=lambda kv: kv[1])[:4]
        worst_txt = ", ".join(f"{w}={s:.0f}" for w, s in worst)
        lines.append(f"  health: cluster {health.get('cluster', 100.0):.0f}"
                     + (f"  (lowest workers: {worst_txt})" if worst else ""))
    alerts = doc.get("alerts") or []
    if alerts:
        lines.append(f"  alert timeline ({len(alerts)}):")
        for a in alerts[-8:]:
            state = ("resolved@{:.1f}s".format(a["resolved_at_s"])
                     if a.get("resolved_at_s") is not None else "ACTIVE")
            lines.append(f"    [{a.get('severity', '?'):<8}] "
                         f"{a.get('rule')} on {a.get('series')} "
                         f"fired@{a.get('fired_at_s', 0.0):.1f}s {state}")
    trends = doc.get("trends") or {}
    moving = sorted((t for t in trends.values()
                     if abs(t.get("slope") or 0.0) > 0.0),
                    key=lambda t: -abs(t.get("zscore") or 0.0))[:5]
    if moving:
        lines.append("  trending series:")
        for t in moving:
            lines.append(f"    {t.get('name'):<36} slope "
                         f"{t.get('slope', 0.0):+.4g}/win "
                         f"z {t.get('zscore', 0.0):+.2f} "
                         f"({t.get('direction')})")
    windows = doc.get("metric_windows") or []
    if windows:
        lines.append(f"  metric windows retained: {len(windows)} "
                     f"(last idx {windows[-1].get('idx')})")
    slice_ = doc.get("trace_slice") or []
    if slice_:
        lines.append(f"  trace slice: {len(slice_)} recent events, "
                     f"tail:")
        for e in slice_[-spans:]:
            lines.append(f"    {e.get('ts', 0.0):9.3f}s "
                         f"{e.get('dur', 0.0):8.3f}s  "
                         f"{e.get('process', '?')}/{e.get('thread', '?')}  "
                         f"{e.get('name')}")
    explain = doc.get("explain")
    if explain:
        from repro.obs.explain import render_explanation
        lines.append("  active explain deltas:")
        for ln in render_explanation(explain, top_k=3).splitlines():
            lines.append(f"    {ln}")
    return "\n".join(lines)


def load_bundles(path: str) -> List[Tuple[str, Dict[str, Any]]]:
    """(filename, doc) pairs from a bundle file or a directory of them."""
    p = Path(path)
    files = (sorted(p.glob("postmortem-*.json")) if p.is_dir() else [p])
    out: List[Tuple[str, Dict[str, Any]]] = []
    for f in files:
        out.append((f.name, json.loads(f.read_text())))
    return out
