"""Deterministic anomaly and trend detectors over metric windows.

GMonitor's :class:`~repro.obs.monitor.TimeSeriesStore` yields one value
per closed window ``(idx, value)``; the detectors here turn those points
into drift scores, slopes, and changepoints:

* :func:`ewma_zscores` — online EWMA mean/variance; each point scored
  against the smoothed state *before* it arrived (drift z-score).
* :func:`slope_of` / :func:`window_slopes` — least-squares slope of a
  trailing window (trend estimation, units: value per window).
* :func:`changepoints` — split a trailing window in half and flag a
  mean shift larger than ``z_threshold`` pooled standard deviations.
* :class:`SlidingTrend` — the online form used by
  :class:`~repro.obs.monitor.AlertEngine` ``trend_above``/``trend_below``
  predicates and by the autoscaler's predictive policies.

Everything is pure arithmetic over the values fed in — no randomness, no
clock access — so identical seeded simulation runs produce bit-identical
detector output (asserted in ``tests/obs/test_monitor.py``).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

Point = Tuple[int, float]

#: Variance below this is treated as "flat": z-scores saturate instead of
#: exploding on near-constant series.
_MIN_STD = 1e-9

#: Cap for z-scores on (near-)flat history so a single first deviation
#: reads "anomalous" rather than "infinite".
_MAX_Z = 1e6


def ewma_zscores(points: Sequence[Point], alpha: float = 0.3,
                 warmup: int = 3) -> List[Tuple[int, float]]:
    """Drift z-score per point against the EWMA state before it.

    The first ``warmup`` points only train the smoother (score 0.0).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
    out: List[Tuple[int, float]] = []
    mean = 0.0
    var = 0.0
    n = 0
    for idx, value in points:
        value = float(value)
        if n < warmup:
            z = 0.0
        else:
            std = math.sqrt(var)
            if std < _MIN_STD:
                z = 0.0 if abs(value - mean) < _MIN_STD else \
                    math.copysign(_MAX_Z, value - mean)
            else:
                z = (value - mean) / std
        out.append((idx, z))
        if n == 0:
            mean, var = value, 0.0
        else:
            diff = value - mean
            # Standard EWMA recursions for mean and variance.
            mean += alpha * diff
            var = (1.0 - alpha) * (var + alpha * diff * diff)
        n += 1
    return out


def slope_of(values: Sequence[float]) -> float:
    """Least-squares slope of equally spaced values (per-step units)."""
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    num = sum((i - mean_x) * (float(v) - mean_y)
              for i, v in enumerate(values))
    den = sum((i - mean_x) ** 2 for i in range(n))
    return num / den if den else 0.0


def window_slopes(points: Sequence[Point], window: int = 8
                  ) -> List[Tuple[int, float]]:
    """Trailing-window least-squares slope at each point."""
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window!r}")
    out: List[Tuple[int, float]] = []
    values: Deque[float] = deque(maxlen=window)
    for idx, value in points:
        values.append(float(value))
        out.append((idx, slope_of(list(values)) if len(values) >= 2 else 0.0))
    return out


def changepoints(points: Sequence[Point], window: int = 8,
                 z_threshold: float = 3.0) -> List[int]:
    """Indices where the trailing window's two halves differ in mean.

    A simple two-sample mean-shift test: the trailing ``window`` values
    are split in half; flag the point when |mean2 - mean1| exceeds
    ``z_threshold`` pooled standard deviations (with a flat-series guard).
    Consecutive detections are collapsed to the first.
    """
    if window < 4:
        raise ValueError(f"window must be >= 4, got {window!r}")
    values: Deque[Tuple[int, float]] = deque(maxlen=window)
    out: List[int] = []
    in_shift = False
    for idx, value in points:
        values.append((idx, float(value)))
        if len(values) < window:
            in_shift = False
            continue
        half = window // 2
        first = [v for _, v in list(values)[:half]]
        second = [v for _, v in list(values)[half:]]
        m1 = sum(first) / len(first)
        m2 = sum(second) / len(second)
        var1 = sum((v - m1) ** 2 for v in first) / len(first)
        var2 = sum((v - m2) ** 2 for v in second) / len(second)
        pooled = math.sqrt((var1 + var2) / 2.0)
        scale = max(pooled, _MIN_STD, 1e-3 * max(abs(m1), abs(m2)))
        shifted = abs(m2 - m1) > z_threshold * scale
        if shifted and not in_shift:
            out.append(idx)
        in_shift = shifted
    return out


class SlidingTrend:
    """Online trend state over the last ``window`` values of one series.

    Feed one value per closed window (or per autoscaler tick); read the
    current :meth:`slope`, :meth:`zscore`, and :meth:`mean` at any time.
    Pure arithmetic — safe to drive from simulation processes without
    touching the clock.
    """

    __slots__ = ("window", "alpha", "warmup", "values",
                 "_ewma_mean", "_ewma_var", "_count", "_last_z")

    def __init__(self, window: int = 8, alpha: float = 0.3,
                 warmup: int = 3):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window!r}")
        self.window = window
        self.alpha = alpha
        self.warmup = warmup
        self.values: Deque[float] = deque(maxlen=window)
        self._ewma_mean = 0.0
        self._ewma_var = 0.0
        self._count = 0
        self._last_z = 0.0

    def update(self, value: float) -> None:
        value = float(value)
        if self._count < self.warmup:
            self._last_z = 0.0
        else:
            std = math.sqrt(self._ewma_var)
            if std < _MIN_STD:
                self._last_z = 0.0 if abs(value - self._ewma_mean) < _MIN_STD \
                    else math.copysign(_MAX_Z, value - self._ewma_mean)
            else:
                self._last_z = (value - self._ewma_mean) / std
        if self._count == 0:
            self._ewma_mean, self._ewma_var = value, 0.0
        else:
            diff = value - self._ewma_mean
            self._ewma_mean += self.alpha * diff
            self._ewma_var = (1.0 - self.alpha) * \
                (self._ewma_var + self.alpha * diff * diff)
        self._count += 1
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        """Total values ever fed (not capped by the window)."""
        return self._count

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def slope(self) -> float:
        """Least-squares slope over the retained window (per step)."""
        return slope_of(list(self.values))

    def zscore(self) -> float:
        """EWMA drift z-score of the most recent value."""
        return self._last_z

    def snapshot(self) -> dict:
        """A JSON-able view (used by ``GMonitor.trends()``)."""
        return {
            "n": len(self.values),
            "last": self.last(),
            "mean": self.mean(),
            "slope": self.slope(),
            "zscore": self.zscore(),
            "direction": ("up" if self.slope() > 0.0
                          else "down" if self.slope() < 0.0 else "flat"),
        }


def trend_snapshot(points: Iterable[Point], window: int = 8,
                   alpha: float = 0.3, warmup: int = 3) -> dict:
    """One-shot :class:`SlidingTrend` snapshot over stored points."""
    trend = SlidingTrend(window=window, alpha=alpha, warmup=warmup)
    for _, value in points:
        if isinstance(value, dict):
            # Histogram windows: score the count by default.
            value = value.get("count", 0.0)
        trend.update(float(value))
    return trend.snapshot()
