"""Exporters: Chrome trace-event JSON, flat metrics JSON, schema validation.

The trace format is the Chrome/Perfetto "JSON Array with metadata" flavour:
``{"traceEvents": [...]}`` where each event is a complete span (``"ph":
"X"``, explicit ``ts``/``dur`` in microseconds), an instant (``"ph": "i"``)
or a metadata record (``"ph": "M"`` naming processes/threads).  Open a
written file at https://ui.perfetto.dev or chrome://tracing.

:func:`validate_chrome_trace` is a self-contained structural validator (no
third-party jsonschema dependency): it returns a list of human-readable
errors, empty when the document conforms.  CI runs it over the traced bench
smoke via ``python -m repro.obs.validate``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "write_chrome_trace",
    "write_metrics",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "collect_cluster",
]

#: Event phases the exporter emits (and the validator accepts).
_PHASES = {"X", "i", "M"}


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write the tracer's events as a Chrome trace JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(tracer.to_chrome()) + "\n")
    return path


def write_metrics(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write the registry snapshot as flat JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry.to_json() + "\n")
    return path


# -- schema validation ----------------------------------------------------------
def _check_event(i: int, ev: Any, errors: List[str]) -> None:
    where = f"traceEvents[{i}]"
    if not isinstance(ev, dict):
        errors.append(f"{where}: not an object")
        return
    ph = ev.get("ph")
    if ph not in _PHASES:
        errors.append(f"{where}: ph must be one of {sorted(_PHASES)}, "
                      f"got {ph!r}")
        return
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        errors.append(f"{where}: missing/empty name")
    for field in ("pid", "tid"):
        if not isinstance(ev.get(field), int):
            errors.append(f"{where}: {field} must be an int")
    if "args" in ev and not isinstance(ev["args"], dict):
        errors.append(f"{where}: args must be an object")
    if ph == "M":
        if ev.get("name") not in ("process_name", "thread_name"):
            errors.append(f"{where}: unknown metadata record {ev.get('name')!r}")
        elif not isinstance(ev.get("args", {}).get("name"), str):
            errors.append(f"{where}: metadata args.name must be a string")
        return
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        errors.append(f"{where}: ts must be a non-negative number")
    if not isinstance(ev.get("cat"), str) or not ev["cat"]:
        errors.append(f"{where}: missing/empty cat")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"{where}: X event needs non-negative dur")
    elif ph == "i":
        if ev.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant scope s must be t/p/g")


#: Thread-lane names that model an exclusive hardware engine: at most one
#: span may occupy the lane at any instant.  (``copy:*`` covers both copy
#: directions; streams/slots are virtual and may legitimately overlap.)
def _is_exclusive_lane(thread_name: str) -> bool:
    return thread_name == "kernel" or thread_name.startswith("copy:")


#: Slack for float µs comparisons: spans recorded back-to-back may differ
#: by rounding noise after the seconds→µs conversion (1 ns of slack).
_OVERLAP_EPS_US = 1e-3


def _check_exclusive_lanes(events: List[Any], errors: List[str]) -> None:
    """No two X spans on the same kernel / copy-engine lane may overlap."""
    exclusive = set()
    for ev in events:
        if isinstance(ev, dict) and ev.get("ph") == "M" \
                and ev.get("name") == "thread_name" \
                and isinstance(ev.get("args", {}).get("name"), str) \
                and _is_exclusive_lane(ev["args"]["name"]):
            exclusive.add((ev.get("pid"), ev.get("tid")))
    if not exclusive:
        return
    lanes: Dict[Any, List[Any]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        key = (ev.get("pid"), ev.get("tid"))
        if key not in exclusive:
            continue
        ts, dur = ev.get("ts"), ev.get("dur")
        if isinstance(ts, (int, float)) and isinstance(dur, (int, float)):
            lanes.setdefault(key, []).append((float(ts), float(ts + dur), i))
    for key in sorted(lanes):
        spans = sorted(lanes[key])
        for (ts0, end0, i0), (ts1, _end1, i1) in zip(spans, spans[1:]):
            if ts1 < end0 - _OVERLAP_EPS_US:
                errors.append(
                    f"traceEvents[{i1}]: overlaps traceEvents[{i0}] on "
                    f"exclusive lane pid={key[0]} tid={key[1]} "
                    f"({ts1:.3f} < {end0:.3f})")


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural validation of a Chrome trace document; [] when valid.

    Beyond per-event shape checks, spans on *exclusive* engine lanes
    (``kernel`` and ``copy:*`` thread names) must never overlap: those
    lanes model one physical engine each, and the tracer records exact
    occupancy windows for them.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document root must be an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["document must contain a traceEvents array"]
    pids_named = set()
    for i, ev in enumerate(events):
        _check_event(i, ev, errors)
        if isinstance(ev, dict) and ev.get("ph") == "M" \
                and ev.get("name") == "process_name":
            pids_named.add(ev.get("pid"))
    for i, ev in enumerate(events):
        if isinstance(ev, dict) and ev.get("ph") in ("X", "i") \
                and ev.get("pid") not in pids_named:
            errors.append(f"traceEvents[{i}]: pid {ev.get('pid')!r} has no "
                          f"process_name metadata")
    _check_exclusive_lanes(events, errors)
    return errors


def validate_chrome_trace_file(path: Union[str, Path]) -> List[str]:
    """Validate a trace file on disk; returns the error list."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_chrome_trace(doc)


# -- snapshot-time collection ------------------------------------------------------
def collect_cluster(registry: MetricsRegistry, cluster: Any) -> MetricsRegistry:
    """Gather a cluster's public counters into registry gauges.

    The hot paths keep their plain attribute counters (a per-block increment
    must stay an attribute add); this collector turns them into labelled
    gauges at export time, reading only public APIs — notably
    :meth:`repro.core.gmemory.GMemoryManager.cache_stats` rather than the
    private region table.
    """
    hdfs = getattr(cluster, "hdfs", None)
    if hdfs is not None:
        registry.gauge("hdfs.read.bytes").set(hdfs.total_bytes_read())
        registry.gauge("hdfs.write.bytes").set(hdfs.total_bytes_written())
    for worker in getattr(cluster, "workers", {}).values():
        registry.gauge("tasks.executed", worker=worker.name).set(
            worker.taskmanager.tasks_executed)
    managers = getattr(cluster, "gpu_managers", lambda: [])()
    for gm in managers:
        for device in gm.devices:
            labels = {"device": device.name}
            registry.gauge("gpu.device.kernel_seconds", **labels).set(
                device.kernel_seconds)
            registry.gauge("gpu.device.kernels_launched", **labels).set(
                device.kernels_launched)
            registry.gauge("gpu.device.h2d_bytes", **labels).set(
                device.h2d_bytes)
            registry.gauge("gpu.device.d2h_bytes", **labels).set(
                device.d2h_bytes)
        for gid, stats in gm.gmm.cache_stats().items():
            labels = {"device": gm.devices[gid].name}
            registry.gauge("gpu.cache.hits", **labels).set(stats.hits)
            registry.gauge("gpu.cache.misses", **labels).set(stats.misses)
            registry.gauge("gpu.cache.evictions", **labels).set(
                stats.evictions)
            registry.gauge("gpu.cache.spills", **labels).set(stats.spills)
            registry.gauge("gpu.cache.used_bytes", **labels).set(
                stats.used_bytes)
        sm = gm.gstream_manager
        registry.gauge("gstream.works_submitted",
                       worker=gm.worker_name).set(sm.works_submitted)
        registry.gauge("gstream.works_completed",
                       worker=gm.worker_name).set(sm.works_completed)
    return registry
