"""Self-contained HTML dashboard for a GMonitor summary.

Renders a ``repro.monitor.summary/v1`` document into one standalone HTML
file: inline CSS + inline SVG only, no external scripts, stylesheets or
fonts — the file opens offline and survives being committed next to the
trace artifacts.  Sections: cluster health banner, SLO burn-down, alert
timeline, per-device engine-utilization heatmap, and sparklines for every
retained series.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.anomaly import changepoints, slope_of

__all__ = ["render_dashboard", "write_dashboard"]

_MAX_SPARKLINES = 60
_SPARK_W, _SPARK_H = 260, 36
_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 24px; background: #fafafa; color: #222; }
h1 { font-size: 20px; } h2 { font-size: 15px; margin-top: 28px;
     border-bottom: 1px solid #ddd; padding-bottom: 4px; }
table { border-collapse: collapse; font-size: 12px; }
th, td { padding: 3px 10px; border-bottom: 1px solid #eee;
         text-align: left; white-space: nowrap; }
.badge { display: inline-block; padding: 2px 10px; border-radius: 10px;
         color: #fff; font-weight: 600; font-size: 13px; }
.ok { background: #2a9d3e; } .warn { background: #e0a010; }
.bad { background: #d03030; }
.grid { display: flex; flex-wrap: wrap; gap: 10px; }
.card { background: #fff; border: 1px solid #e5e5e5; border-radius: 4px;
        padding: 6px 10px; }
.card .k { font-size: 11px; color: #666; font-family: monospace; }
.muted { color: #888; font-size: 12px; }
svg text { font-family: monospace; }
"""


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.4g}"


def _series_values(points: List[List[Any]]) -> List[Tuple[int, float]]:
    out = []
    for idx, v in points:
        if isinstance(v, dict):
            v = v.get("p99", v.get("count", 0.0))
        out.append((idx, float(v)))
    return out


def _trend_glyph(points: List[Tuple[int, float]]) -> str:
    """Direction arrow for the trailing-window slope of a series."""
    tail = [v for _, v in points[-8:]]
    if len(tail) < 3:
        return ""
    s = slope_of(tail)
    scale = max(1e-9, max(abs(v) for v in tail))
    if abs(s) < 0.01 * scale:
        arrow, color = "&#8594;", "#888"       # → flat
    elif s > 0:
        arrow, color = "&#8599;", "#d03030"    # ↗ rising
    else:
        arrow, color = "&#8600;", "#2a9d3e"    # ↘ falling
    return (f'<text x="2" y="10" font-size="10" fill="{color}">'
            f'{arrow}<title>trailing slope {s:.3g}/window</title>'
            f'</text>')


def _sparkline(points: List[Tuple[int, float]], lo_idx: int,
               hi_idx: int) -> str:
    """One polyline SVG over the window range [lo_idx, hi_idx].

    Overlays the anomaly detectors from :mod:`repro.obs.anomaly`:
    mean-shift changepoints as red dots, the trailing-window slope as a
    direction arrow in the top-left corner.
    """
    if not points:
        return ""
    span = max(1, hi_idx - lo_idx)
    vmax = max(v for _, v in points)
    vmin = min(0.0, min(v for _, v in points))
    vspan = (vmax - vmin) or 1.0
    coords = []
    xy = {}
    for idx, v in points:
        x = (idx - lo_idx) / span * (_SPARK_W - 4) + 2
        y = _SPARK_H - 4 - (v - vmin) / vspan * (_SPARK_H - 8)
        coords.append(f"{x:.1f},{y:.1f}")
        xy[idx] = (x, y)
    markers = []
    if len(points) >= 8:
        for cp in changepoints(points):
            if cp in xy:
                x, y = xy[cp]
                markers.append(
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5" '
                    f'fill="#d03030"><title>mean shift at window '
                    f'{cp}</title></circle>')
    return (
        f'<svg width="{_SPARK_W}" height="{_SPARK_H}">'
        f'<polyline points="{" ".join(coords)}" fill="none" '
        f'stroke="#3465a4" stroke-width="1.2"/>{"".join(markers)}'
        f'{_trend_glyph(points)}'
        f'<text x="{_SPARK_W - 2}" y="10" text-anchor="end" font-size="9" '
        f'fill="#888">max {_fmt(vmax)}</text></svg>')


def _health_badge(score: float) -> str:
    cls = "ok" if score >= 85 else ("warn" if score >= 50 else "bad")
    return f'<span class="badge {cls}">{score:.0f}</span>'


def _window_range(doc: Dict[str, Any]) -> Tuple[int, int]:
    lo, hi = None, None
    for s in doc.get("series", []):
        for idx, _v in s.get("points", []):
            lo = idx if lo is None else min(lo, idx)
            hi = idx if hi is None else max(hi, idx)
    if lo is None:
        return 0, 1
    return lo, max(hi, lo + 1)


def _alert_timeline(doc: Dict[str, Any]) -> str:
    alerts = doc.get("alerts", [])
    if not alerts:
        return '<p class="muted">no alerts fired</p>'
    t_end = float(doc.get("generated_at_s", 0.0)) or max(
        float(a.get("resolved_at_s") or a["fired_at_s"]) for a in alerts)
    t0 = min(float(a["fired_at_s"]) for a in alerts)
    span = max(t_end - t0, 1e-9)
    width, row_h = 640, 18
    rows = []
    for i, a in enumerate(alerts):
        fired = float(a["fired_at_s"])
        resolved = a.get("resolved_at_s")
        x0 = (fired - t0) / span * (width - 220) + 200
        x1 = ((float(resolved) if resolved is not None else t_end) - t0) \
            / span * (width - 220) + 200
        color = "#d03030" if a["severity"] == "critical" else "#e0a010"
        y = i * row_h + 4
        label = html.escape(f'{a["rule"]} [{a["series"]}]')[:38]
        state = "" if resolved is not None else " (unresolved)"
        rows.append(
            f'<text x="0" y="{y + 10}" font-size="10">{label}{state}</text>'
            f'<rect x="{x0:.1f}" y="{y}" '
            f'width="{max(x1 - x0, 2):.1f}" height="12" fill="{color}" '
            f'rx="2" opacity="{1.0 if resolved is None else 0.75}"/>')
    h = len(alerts) * row_h + 24
    axis = (f'<text x="200" y="{h - 4}" font-size="9" fill="#888">'
            f't={_fmt(t0)}s</text>'
            f'<text x="{width - 4}" y="{h - 4}" font-size="9" fill="#888" '
            f'text-anchor="end">t={_fmt(t_end)}s</text>')
    svg = f'<svg width="{width}" height="{h}">{"".join(rows)}{axis}</svg>'
    # Flight-recorder bundles are written next to the dashboard's
    # artifacts; relative links keep the file self-contained offline.
    bundled = [a for a in alerts if a.get("bundle")]
    if bundled:
        items = "".join(
            f'<li><code>{html.escape(a["rule"])}</code> fired @ '
            f'{float(a["fired_at_s"]):.2f}s &#8594; '
            f'<a href="{html.escape(a["bundle"])}">'
            f'{html.escape(a["bundle"])}</a></li>'
            for a in bundled)
        svg += (f'<p class="muted">post-mortem bundles:</p>'
                f'<ul class="muted">{items}</ul>')
    return svg


def _slo_section(doc: Dict[str, Any]) -> str:
    slos = doc.get("slos", [])
    if not slos:
        return '<p class="muted">no SLOs tracked</p>'
    # Budget burn-down per SLO from the slo.events / slo.bad series.
    series = {(s["name"], s["labels"].get("slo")): s["points"]
              for s in doc.get("series", [])
              if s["name"] in ("slo.events", "slo.bad")}
    rows = ['<table><tr><th>SLO</th><th>kind</th><th>target</th>'
            '<th>events</th><th>bad</th><th>burn rate</th>'
            '<th>budget left</th><th>status</th><th>burn-down</th></tr>']
    for slo in slos:
        name = slo["name"]
        burn = slo.get("burn_rate", 0.0)
        burndown = _burndown_svg(
            series.get(("slo.events", name), []),
            series.get(("slo.bad", name), []),
            slo.get("allowed_bad_frac", 0.0))
        status = ('<span class="badge bad">violated</span>'
                  if slo.get("violated")
                  else '<span class="badge ok">ok</span>')
        target = slo.get("target")
        if slo["kind"] == "latency" and target is not None:
            target_txt = f'p{int(slo.get("percentile", 0.99) * 100)} ≤ ' \
                         f'{_fmt(target)}s'
        elif slo["kind"] == "latency":
            target_txt = "(tracking only)"
        else:
            target_txt = f'≥ {target:.3%} ok'
        rows.append(
            f'<tr><td>{html.escape(name)}</td><td>{slo["kind"]}</td>'
            f'<td>{target_txt}</td><td>{slo.get("events", 0)}</td>'
            f'<td>{slo.get("bad", 0)}</td><td>{burn:.3g}</td>'
            f'<td>{slo.get("budget_remaining_frac", 0.0):.1%}</td>'
            f'<td>{status}</td><td>{burndown}</td></tr>')
    rows.append("</table>")
    return "".join(rows)


def _burndown_svg(events_pts: List[List[Any]], bad_pts: List[List[Any]],
                  allowed_frac: float) -> str:
    """Remaining error budget over windows (1.0 → 0.0)."""
    if not events_pts:
        return ""
    bad_by_idx = {idx: float(v) for idx, v in bad_pts}
    cum_events = cum_bad = 0.0
    pts = []
    for idx, v in events_pts:
        cum_events += float(v)
        cum_bad += bad_by_idx.get(idx, 0.0)
        if cum_events and allowed_frac > 0:
            remaining = max(0.0, 1.0 - (cum_bad / cum_events) / allowed_frac)
        else:
            remaining = 1.0
        pts.append((idx, remaining))
    lo, hi = pts[0][0], max(pts[-1][0], pts[0][0] + 1)
    coords = " ".join(
        f"{(i - lo) / (hi - lo) * 156 + 2:.1f},"
        f"{30 - r * 26:.1f}" for i, r in pts)
    return (f'<svg width="160" height="34">'
            f'<line x1="2" y1="4" x2="158" y2="4" stroke="#eee"/>'
            f'<line x1="2" y1="30" x2="158" y2="30" stroke="#eee"/>'
            f'<polyline points="{coords}" fill="none" stroke="#2a9d3e" '
            f'stroke-width="1.5"/></svg>')


def _utilization_heatmap(doc: Dict[str, Any]) -> str:
    """Per-device engine busy fraction per window, as colored cells."""
    window_s = float(doc.get("window_s", 1.0))
    per_device: Dict[str, Dict[int, float]] = {}
    for s in doc.get("series", []):
        if s["name"] != "gstream.engine_busy_s":
            continue
        device = s["labels"].get("device", "?")
        cells = per_device.setdefault(device, {})
        for idx, v in s["points"]:
            cells[idx] = cells.get(idx, 0.0) + float(v)
    if not per_device:
        return '<p class="muted">no GPU engine activity recorded</p>'
    lo, hi = _window_range(doc)
    n = hi - lo + 1
    cell_w = max(2, min(14, 620 // n))
    rows = []
    for r, device in enumerate(sorted(per_device)):
        y = r * 16
        rows.append(f'<text x="0" y="{y + 12}" font-size="10">'
                    f'{html.escape(device)}</text>')
        for idx, busy in sorted(per_device[device].items()):
            frac = min(1.0, busy / window_s)
            # White → deep blue ramp.
            shade = int(235 - frac * 180)
            x = 130 + (idx - lo) * cell_w
            rows.append(f'<rect x="{x}" y="{y + 2}" width="{cell_w}" '
                        f'height="12" fill="rgb({shade},{shade},235)">'
                        f'<title>{device} w{idx}: '
                        f'{frac:.0%} busy</title></rect>')
    h = len(per_device) * 16 + 8
    return f'<svg width="660" height="{h}">{"".join(rows)}</svg>'


def _series_cards(doc: Dict[str, Any]) -> str:
    lo, hi = _window_range(doc)
    cards = []
    series = doc.get("series", [])
    for s in series[:_MAX_SPARKLINES]:
        pts = _series_values(s.get("points", []))
        if not pts:
            continue
        key = s["name"] + (
            "{" + ",".join(f"{k}={v}"
                           for k, v in sorted(s["labels"].items())) + "}"
            if s.get("labels") else "")
        cards.append(f'<div class="card"><div class="k">'
                     f'{html.escape(key)}</div>'
                     f'{_sparkline(pts, lo, hi)}</div>')
    note = ""
    if len(series) > _MAX_SPARKLINES:
        note = (f'<p class="muted">showing {_MAX_SPARKLINES} of '
                f'{len(series)} series — the rest are in the summary '
                f'JSON</p>')
    return f'<div class="grid">{"".join(cards)}</div>{note}'


def render_dashboard(doc: Dict[str, Any],
                     title: str = "GMonitor dashboard") -> str:
    """Render a monitor summary document into standalone HTML."""
    health = doc.get("health", {})
    cluster = float(health.get("cluster", 100.0))
    worker_rows = "".join(
        f"<tr><td>{html.escape(w)}</td><td>{_health_badge(s)}</td></tr>"
        for w, s in sorted(health.get("workers", {}).items()))
    device_rows = "".join(
        f"<tr><td>{html.escape(d)}</td><td>{_health_badge(s)}</td></tr>"
        for d, s in sorted(health.get("devices", {}).items()))
    n_alerts = len(doc.get("alerts", []))
    unresolved = sum(1 for a in doc.get("alerts", [])
                     if a.get("resolved_at_s") is None)
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_CSS}</style></head><body>
<h1>{html.escape(title)}</h1>
<p>cluster health {_health_badge(cluster)} &nbsp;·&nbsp;
window {_fmt(float(doc.get("window_s", 1.0)))}s ·
{doc.get("windows_closed", 0)} windows ·
sim t={_fmt(float(doc.get("generated_at_s", 0.0)))}s ·
{n_alerts} alert(s), {unresolved} unresolved</p>
<h2>SLOs &amp; error budget</h2>
{_slo_section(doc)}
<h2>Alert timeline</h2>
{_alert_timeline(doc)}
<h2>Engine utilization (per device, per window)</h2>
{_utilization_heatmap(doc)}
<h2>Health</h2>
<div class="grid">
<div class="card"><table><tr><th>worker</th><th>health</th></tr>
{worker_rows or '<tr><td colspan="2" class="muted">none</td></tr>'}
</table></div>
<div class="card"><table><tr><th>device</th><th>health</th></tr>
{device_rows or '<tr><td colspan="2" class="muted">none</td></tr>'}
</table></div>
</div>
<h2>Time series</h2>
{_series_cards(doc)}
</body></html>
"""


def write_dashboard(doc: Dict[str, Any], path: str,
                    title: str = "GMonitor dashboard") -> str:
    """Write the rendered dashboard to ``path``; returns the path."""
    from pathlib import Path
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_dashboard(doc, title=title))
    return str(p)
