"""Sparse matrix-vector multiplication, iterated (power method).

The paper's best-behaved cache demonstration (§6.6.1, Figs. 7b/8a): "SpMV is
an iterative application so that we can cache the matrix into GPUs in the
first iteration to reduce the running time of the following iterations."
The matrix rides the GPU cache; the vector changes per iteration and is
re-uploaded; the final vector is written to HDFS in the last iteration.

Rows are stored in ELLPACK form as a GStruct — a fixed number of
``(column, value)`` slots per row — so each row is one fixed-size struct and
the block-splitting rule (no struct straddles a page) applies unchanged.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.gdst import ExtraInput
from repro.core.gstruct import Float32, GStruct4, Int32, StructField
from repro.flink.dataset import OpCost
from repro.gpu.kernel import KernelSpec
from repro.workloads.base import Workload, ensure_kernel, even_chunk_sizes

NNZ = 16  # non-zeros per row (ELL width)


class EllRow(GStruct4):
    """One matrix row: NNZ column indices + NNZ values."""

    cols = StructField(order=0, ftype=Int32, length=NNZ)
    vals = StructField(order=1, ftype=Float32, length=NNZ)


def _spmv_block(rows: np.ndarray, x: np.ndarray) -> np.ndarray:
    """y = A_block @ x for an ELL block."""
    return (rows["vals"].astype(np.float64)
            * x[rows["cols"]]).sum(axis=1).astype(np.float32)


def spmv_ell_kernel(inputs, params):
    return {"out": _spmv_block(inputs["in"], inputs["x"])}


class SpMVWorkload(Workload):
    """Iterated y = A x with x normalized between iterations."""

    name = "spmv"
    #: 2 flops per non-zero; gathers from x make it memory-bound.
    CPU_FLOPS = 2 * NNZ
    #: Per-row JVM overhead: iterating a sparse-row object's NNZ entries
    #: with boxed accessors.  Calibrated to Fig. 7b: the paper's own numbers
    #: (~300 s/iteration on one CPU for the 1 GB matrix, i.e. tens of us per
    #: row) show the Flink SpMV row path is extremely object-heavy; 14 us/row
    #: reproduces the ~10x mid-iteration CPU/GPU ratio and Fig. 6a's ~6.3x
    #: overall.
    CPU_OVERHEAD_S = 12.5e-6
    GPU_FLOPS = 2 * NNZ
    #: SpMV sustains a small fraction of peak (irregular gathers).
    GPU_EFFICIENCY = 0.12
    GPU_BYTES_PER_ELEMENT = EllRow.itemsize() + NNZ * 4  # row + x gathers

    def __init__(self, nominal_elements: float = 10e6,
                 real_elements: int = 20_000, iterations: int = 10,
                 gpu_cache: bool = True, **kw):
        super().__init__(nominal_elements, real_elements,
                         element_nbytes=EllRow.itemsize(),
                         iterations=iterations, **kw)
        self.n_rows = self.real_elements  # square: #cols == #rows (real)
        # Fig. 8a ablation: disable the GPU cache to show the matrix being
        # re-transferred every iteration.
        self.gpu_cache = gpu_cache

    # -- data ---------------------------------------------------------------------
    def _generate_chunks(self, n_chunks: int) -> List[Tuple[np.ndarray, int]]:
        chunks = []
        for n in even_chunk_sizes(self.real_elements, n_chunks):
            arr = EllRow.empty(n)
            arr["cols"] = self.rng.integers(0, self.n_rows,
                                            size=(n, NNZ)).astype(np.int32)
            arr["vals"] = self.rng.uniform(
                0, 1, size=(n, NNZ)).astype(np.float32) / NNZ
            chunks.append((arr, int(n * self.scale * self.element_nbytes)))
        return chunks

    def register_kernels(self, registry) -> None:
        ensure_kernel(registry, KernelSpec(
            "spmv_ell", spmv_ell_kernel,
            flops_per_element=self.GPU_FLOPS,
            bytes_per_element=self.GPU_BYTES_PER_ELEMENT,
            efficiency=self.GPU_EFFICIENCY))

    # -- drivers ------------------------------------------------------------------
    #: Nominal bytes of the dense vector ("the vector is 123 MB" for the
    #: 1 GB matrix): nominal rows x 4 bytes.
    def _vector_nbytes_scale(self) -> float:
        return self.scale  # one float per nominal row

    def _iterate(self, session, matrix, gpu: bool):
        x = np.full(self.n_rows, 1.0 / self.n_rows, dtype=np.float32)
        state = {"x": x}
        x_input = ExtraInput(lambda: state["x"], element_nbytes=4.0,
                             scale=self._vector_nbytes_scale(),
                             cacheable=False)
        times = []
        for it in range(self.iterations):
            if gpu:
                y_ds = matrix.gpu_map_partition(
                    "spmv_ell", extra_inputs={"x": x_input},
                    cache=self.gpu_cache,
                    cache_key_base=("spmv", self.path),
                    out_element_nbytes=4.0)
            else:
                xs = state["x"].copy()
                y_ds = matrix.map_partition(
                    lambda rows, xs=xs: _spmv_block(rows, xs),
                    cost=OpCost(flops_per_element=self.CPU_FLOPS,
                                out_element_nbytes=4.0,
                                element_overhead_s=self.CPU_OVERHEAD_S),
                    name="spmv-mult")
            result = yield from y_ds.collect_job(
                job_name=f"spmv-{'gpu' if gpu else 'cpu'}-iter{it}")
            y = np.asarray(result.value, dtype=np.float64)
            norm = np.linalg.norm(y)
            state["x"] = (y / max(norm, 1e-30)).astype(np.float32)
            seconds = result.seconds
            if it == self.iterations - 1:
                write = yield from session.from_collection(
                    state["x"], element_nbytes=4.0,
                    scale=self._vector_nbytes_scale()
                ).write_hdfs_job(self.output_path)
                seconds += write.seconds
            times.append(seconds)
        return state["x"], times

    def _run_cpu(self, session):
        matrix = session.read_hdfs(self.path, self.element_nbytes,
                                   scale=self.scale).persist()
        result = yield from self._iterate(session, matrix, gpu=False)
        return result

    def _run_gpu(self, session):
        # One partition per GPU: the dense vector is a whole-buffer operand
        # uploaded per GWork, so fewer/larger partitions upload it once per
        # device per iteration (the paper shards work per GPU the same way).
        n_gpus = _total_gpus(session)
        matrix = session.read_hdfs(self.path, self.element_nbytes,
                                   scale=self.scale,
                                   parallelism=n_gpus).persist()
        result = yield from self._iterate(session, matrix, gpu=True)
        return result


def _total_gpus(session) -> int:
    """GPU-count parallelism for one-partition-per-device datasets.

    Uses the cluster's pinned ``default_gpu_parallelism`` (configured
    shape) when available so elastic joiners never change partition counts
    mid-run — partials per partition decide bits, so this is what keeps
    GPU workloads churn-identical.  Falls back to counting live devices
    for bare clusters without the pinned property.
    """
    pinned = getattr(session.cluster, "default_gpu_parallelism", None)
    if pinned is not None:
        return int(pinned)
    managers = session.cluster.gpu_managers()
    return max(sum(len(gm.devices) for gm in managers), 1)
