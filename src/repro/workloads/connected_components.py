"""ConnectedComponents (HiBench "ComponentConnect") — label propagation.

Each vertex starts with its own id as component label; every iteration each
edge proposes ``min(label[src], label[dst])`` to both endpoints, labels are
min-reduced per vertex (a shuffle) and the driver folds the update in.
Iterations run to the configured bound (the paper runs fixed iteration
counts), and the workload also reports when labels converged.

Structure matches PageRank (per-partition partials, keyed min-reduce), so
the paper's relative speedups (CC ~4.8x > PageRank ~3.5x: CC's per-edge work
is cheaper to shuffle — one int vs one float per vertex — and converging
labels shrink traffic) emerge from the same machinery.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.gdst import ExtraInput
from repro.flink.dataset import OpCost
from repro.gpu.kernel import KernelSpec
from repro.workloads.base import Workload, ensure_kernel, even_chunk_sizes
from repro.workloads.pagerank import Edge, EDGES_PER_PAGE


def _min_label_partials(edges: np.ndarray,
                        labels: np.ndarray) -> np.ndarray:
    """Rows ``[vertex, candidate_label]`` with per-partition min applied."""
    src, dst = edges["src"], edges["dst"]
    candidate = np.minimum(labels[src], labels[dst])
    n = len(labels)
    best = np.full(n, np.iinfo(np.int64).max)
    np.minimum.at(best, src, candidate)
    np.minimum.at(best, dst, candidate)
    touched = np.nonzero(best != np.iinfo(np.int64).max)[0]
    improved = touched[best[touched] < labels[touched]]
    return np.stack([improved.astype(np.int64), best[improved]], axis=1)


def cc_minlabel_kernel(inputs, params):
    return {"out": _min_label_partials(inputs["in"], inputs["labels"])}


class ConnectedComponentsWorkload(Workload):
    """Iterative min-label propagation over GStruct edges."""

    name = "connected_components"
    CPU_FLOPS = 4.0
    CPU_OVERHEAD_S = 1.08e-6  # per-edge tuple handling
    GPU_FLOPS = 4.0
    GPU_EFFICIENCY = 0.18

    def __init__(self, nominal_pages: float = 5e6, real_pages: int = 4_000,
                 iterations: int = 10, **kw):
        super().__init__(nominal_pages * EDGES_PER_PAGE,
                         real_pages * EDGES_PER_PAGE,
                         element_nbytes=Edge.itemsize(),
                         iterations=iterations, **kw)
        self.nominal_pages = float(nominal_pages)
        self.real_pages = int(real_pages)
        self.converged_at: int | None = None

    # -- data: a few disconnected communities ------------------------------------
    def _generate_chunks(self, n_chunks: int) -> List[Tuple[np.ndarray, int]]:
        n_communities = 8
        community = self.rng.integers(0, n_communities, size=self.real_pages)
        chunks = []
        for n in even_chunk_sizes(self.real_elements, n_chunks):
            arr = Edge.empty(n)
            src = self.rng.integers(0, self.real_pages, size=n)
            # Keep edges within a community so components are non-trivial.
            offsets = self.rng.integers(1, max(self.real_pages // 16, 2),
                                        size=n)
            dst = np.zeros(n, dtype=np.int64)
            for c in range(n_communities):
                members = np.nonzero(community == c)[0]
                mine = np.nonzero(community[src] == c)[0]
                if len(members) and len(mine):
                    dst[mine] = members[
                        (offsets[mine]) % len(members)]
            arr["src"] = src.astype(np.int32)
            arr["dst"] = dst.astype(np.int32)
            chunks.append((arr, int(n * self.scale * self.element_nbytes)))
        return chunks

    def register_kernels(self, registry) -> None:
        ensure_kernel(registry, KernelSpec(
            "cc_minlabel", cc_minlabel_kernel,
            flops_per_element=self.GPU_FLOPS,
            bytes_per_element=Edge.itemsize() + 8.0,
            efficiency=self.GPU_EFFICIENCY))

    # -- drivers ------------------------------------------------------------------
    def _iterate(self, session, edges, gpu: bool):
        labels = np.arange(self.real_pages, dtype=np.int64)
        state = {"labels": labels}
        labels_input = ExtraInput(lambda: state["labels"], element_nbytes=8.0,
                                  scale=self.nominal_pages / self.real_pages,
                                  cacheable=False)
        times = []
        self.converged_at = None
        for it in range(self.iterations):
            if gpu:
                partial_rows = edges.gpu_map_partition(
                    "cc_minlabel", extra_inputs={"labels": labels_input},
                    cache=True, cache_key_base=("cc", self.path),
                    out_element_nbytes=12.0)
            else:
                snapshot = state["labels"].copy()
                partial_rows = edges.map_partition(
                    lambda e, l=snapshot: _min_label_partials(e, l),
                    cost=OpCost(flops_per_element=self.CPU_FLOPS,
                                out_element_nbytes=12.0,
                                element_overhead_s=self.CPU_OVERHEAD_S),
                    name="cc-minlabel")
            merged = partial_rows.map_partition(
                lambda rows: [(int(r[0]), int(r[1])) for r in rows],
                cost=OpCost(flops_per_element=0.0), name="cc-tuples") \
                .group_by(lambda kv: kv[0]) \
                .reduce(lambda a, b: (a[0], min(a[1], b[1])),
                        cost=OpCost(flops_per_element=1.0), name="cc-min")
            result = yield from merged.collect_job(
                job_name=f"cc-{'gpu' if gpu else 'cpu'}-iter{it}")
            changed = 0
            new_labels = state["labels"].copy()
            for vertex, label in result.value:
                if label < new_labels[vertex]:
                    new_labels[vertex] = label
                    changed += 1
            state["labels"] = new_labels
            if changed == 0 and self.converged_at is None:
                self.converged_at = it
            seconds = result.seconds
            if it == self.iterations - 1:
                write = yield from session.from_collection(
                    state["labels"], element_nbytes=8.0,
                    scale=self.nominal_pages / self.real_pages
                ).write_hdfs_job(self.output_path)
                seconds += write.seconds
            times.append(seconds)
        return state["labels"], times

    def _run_cpu(self, session):
        edges = session.read_hdfs(self.path, self.element_nbytes,
                                  scale=self.scale).persist()
        result = yield from self._iterate(session, edges, gpu=False)
        return result

    def _run_gpu(self, session):
        from repro.workloads.spmv import _total_gpus
        # One partition per GPU: the label vector uploads once per device.
        edges = session.read_hdfs(self.path, self.element_nbytes,
                                  scale=self.scale,
                                  parallelism=_total_gpus(session)).persist()
        result = yield from self._iterate(session, edges, gpu=True)
        return result
