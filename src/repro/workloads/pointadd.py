"""PointAdd — the paper's running example (Algorithm 3.1) and the third
application of the concurrency experiment (§6.6.4, Fig. 8c/d).

A GDST of ``Tuple2<Point, Point>`` is mapped through ``cudaAddPoint`` for
``iTimes`` iterations: each iteration adds the two points element-wise.
Cheap per-element work, so its GMapper speedup is the smallest of the three
concurrent applications (Fig. 8b: "the speedup of GMapper of PointAdd is
smaller than that of KMeans and SpMV").
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.gstruct import Float32, GStruct8, StructField
from repro.flink.dataset import OpCost
from repro.gpu.kernel import KernelSpec
from repro.workloads.base import Workload, ensure_kernel, even_chunk_sizes


class PointPair(GStruct8):
    """Tuple2<Point, Point> flattened into one struct."""

    ax = StructField(order=0, ftype=Float32)
    ay = StructField(order=1, ftype=Float32)
    bx = StructField(order=2, ftype=Float32)
    by = StructField(order=3, ftype=Float32)


def _add_points(pairs: np.ndarray) -> np.ndarray:
    out = PointPair.empty(len(pairs))
    out["ax"] = pairs["ax"] + pairs["bx"]
    out["ay"] = pairs["ay"] + pairs["by"]
    out["bx"] = pairs["bx"]
    out["by"] = pairs["by"]
    return out


def add_point_kernel(inputs, params):
    """The paper's ``cudaAddPoint``."""
    return {"out": _add_points(inputs["in"])}


class PointAddWorkload(Workload):
    """Algorithm 3.1: iterated gpuMapPartition(addPoint)."""

    name = "pointadd"
    CPU_FLOPS = 2.0
    CPU_OVERHEAD_S = 0.4e-6  # light per-pair work
    GPU_FLOPS = 2.0
    GPU_EFFICIENCY = 0.5  # trivially coalesced, bandwidth-bound

    def __init__(self, nominal_elements: float = 100e6,
                 real_elements: int = 50_000, iterations: int = 5, **kw):
        super().__init__(nominal_elements, real_elements,
                         element_nbytes=PointPair.itemsize(),
                         iterations=iterations, **kw)

    def _generate_chunks(self, n_chunks: int) -> List[Tuple[np.ndarray, int]]:
        chunks = []
        for n in even_chunk_sizes(self.real_elements, n_chunks):
            arr = PointPair.empty(n)
            for f in ("ax", "ay", "bx", "by"):
                arr[f] = self.rng.uniform(-1, 1, size=n).astype(np.float32)
            chunks.append((arr, int(n * self.scale * self.element_nbytes)))
        return chunks

    def register_kernels(self, registry) -> None:
        ensure_kernel(registry, KernelSpec(
            "cudaAddPoint", add_point_kernel,
            flops_per_element=self.GPU_FLOPS,
            bytes_per_element=2 * PointPair.itemsize(),
            efficiency=self.GPU_EFFICIENCY))

    # -- drivers (Algorithm 3.1's Driver(A)) ----------------------------------------
    def _run_cpu(self, session):
        current = session.read_hdfs(self.path, self.element_nbytes,
                                    scale=self.scale).persist()
        times = []
        for it in range(self.iterations):
            current = current.map_partition(
                _add_points,
                cost=OpCost(flops_per_element=self.CPU_FLOPS,
                            element_overhead_s=self.CPU_OVERHEAD_S),
                name="pointadd").persist()
            result = yield from current.materialize_job(
                job_name=f"pointadd-cpu-iter{it}")
            seconds = result.seconds
            if it == self.iterations - 1:
                write = yield from current.write_hdfs_job(self.output_path)
                seconds += write.seconds
            times.append(seconds)
        return result.value, times

    def _run_gpu(self, session):
        current = session.read_hdfs(self.path, self.element_nbytes,
                                    scale=self.scale).persist()
        times = []
        for it in range(self.iterations):
            # cache=False: the input changes every iteration (V = M.map(...)).
            current = current.gpu_map_partition(
                "cudaAddPoint", name="pointadd-gpu").persist()
            result = yield from current.materialize_job(
                job_name=f"pointadd-gpu-iter{it}")
            seconds = result.seconds
            if it == self.iterations - 1:
                write = yield from current.write_hdfs_job(self.output_path)
                seconds += write.seconds
            times.append(seconds)
        return result.value, times
