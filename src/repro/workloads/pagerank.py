"""PageRank (HiBench) — iterative, shuffle-heavy graph workload.

The paper reports ~3.5x overall: the contribution computation accelerates
well on the GPU, but every iteration must shuffle per-vertex contributions
(Observation 1: "the larger space the Shuffle phases occupy, the smaller
speedup can be obtained").

Graph model: a synthetic web graph of ``pages`` vertices with
``EDGES_PER_PAGE`` out-links each (Zipf-ish preferential targets); edges are
8-byte GStructs partitioned by source block.  Ranks live in the driver and
are broadcast each iteration; per-partition partial contributions are
pre-aggregated (``np.bincount``) before the shuffle, as a combinable Flink
job would.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.gdst import ExtraInput
from repro.core.gstruct import GStruct4, Int32, StructField
from repro.flink.dataset import OpCost
from repro.flink.iterators import vectorized
from repro.gpu.kernel import KernelSpec
from repro.workloads.base import Workload, ensure_kernel, even_chunk_sizes

EDGES_PER_PAGE = 8
DAMPING = 0.85


class Edge(GStruct4):
    src = StructField(order=0, ftype=Int32)
    dst = StructField(order=1, ftype=Int32)


def _contrib_partials(edges: np.ndarray, ranks: np.ndarray,
                      out_degree: np.ndarray) -> np.ndarray:
    """Per-destination partial contributions: rows ``[dst, partial]``."""
    contrib = ranks[edges["src"]] / out_degree[edges["src"]]
    sums = np.bincount(edges["dst"], weights=contrib,
                       minlength=len(ranks))
    nz = np.nonzero(sums)[0]
    return np.stack([nz.astype(np.float64), sums[nz]], axis=1)


def pagerank_contrib_kernel(inputs, params):
    return {"out": _contrib_partials(inputs["in"], inputs["ranks"],
                                     inputs["out_degree"])}


def _sum_contrib(group: np.ndarray) -> np.ndarray:
    """Vectorized per-destination reducer over a (rows, 2) group block.

    Accumulates sequentially in group order so the float result is
    bit-identical to the element path's left fold over the same rows.
    """
    out = group[0].copy()
    acc = out[1]
    for v in group[1:, 1]:
        acc = acc + v
    out[1] = acc
    return out


class PageRankWorkload(Workload):
    """Power-iteration PageRank over GStruct edges."""

    name = "pagerank"
    CPU_FLOPS = 6.0          # divide + scatter-add per edge
    CPU_OVERHEAD_S = 0.72e-6  # per-edge tuple handling
    GPU_FLOPS = 6.0
    GPU_EFFICIENCY = 0.15    # scattered atomics

    def __init__(self, nominal_pages: float = 5e6, real_pages: int = 4_000,
                 iterations: int = 10, **kw):
        super().__init__(nominal_pages * EDGES_PER_PAGE,
                         real_pages * EDGES_PER_PAGE,
                         element_nbytes=Edge.itemsize(),
                         iterations=iterations, **kw)
        self.nominal_pages = float(nominal_pages)
        self.real_pages = int(real_pages)

    # -- data ---------------------------------------------------------------
    def _make_edges(self, n: int) -> np.ndarray:
        arr = Edge.empty(n)
        arr["src"] = self.rng.integers(0, self.real_pages,
                                       size=n).astype(np.int32)
        # Preferential attachment-ish targets: low ids are popular.
        dst = (self.rng.zipf(1.4, size=n) - 1) % self.real_pages
        arr["dst"] = dst.astype(np.int32)
        return arr

    def _generate_chunks(self, n_chunks: int) -> List[Tuple[np.ndarray, int]]:
        chunks = []
        for n in even_chunk_sizes(self.real_elements, n_chunks):
            chunks.append((self._make_edges(n),
                           int(n * self.scale * self.element_nbytes)))
        return chunks

    def register_kernels(self, registry) -> None:
        ensure_kernel(registry, KernelSpec(
            "pagerank_contrib", pagerank_contrib_kernel,
            flops_per_element=self.GPU_FLOPS,
            bytes_per_element=Edge.itemsize() + 8.0,
            efficiency=self.GPU_EFFICIENCY))

    # -- drivers -----------------------------------------------------------------
    def _out_degrees(self, session) -> np.ndarray:
        # Degree table computed once (driver-side metadata job in real
        # deployments; here from the generator for determinism).
        degrees = np.zeros(self.real_pages, dtype=np.float64)
        for block in session.cluster.hdfs.locate(self.path):
            np.add.at(degrees, block.payload["src"], 1.0)
        degrees[degrees == 0] = 1.0
        return degrees

    def _iterate(self, session, edges, gpu: bool):
        n = self.real_pages
        ranks = np.full(n, 1.0 / n)
        out_degree = self._out_degrees(session)
        state = {"ranks": ranks}
        ranks_input = ExtraInput(lambda: state["ranks"], element_nbytes=8.0,
                                 scale=self.nominal_pages / self.real_pages,
                                 cacheable=False)
        degree_input = ExtraInput.constant(
            out_degree, element_nbytes=8.0,
            scale=self.nominal_pages / self.real_pages, cacheable=True)
        times = []
        for it in range(self.iterations):
            if gpu:
                partial_rows = edges.gpu_map_partition(
                    "pagerank_contrib",
                    extra_inputs={"ranks": ranks_input,
                                  "out_degree": degree_input},
                    cache=True, cache_key_base=("pagerank", self.path),
                    out_element_nbytes=16.0)
            else:
                r, d = state["ranks"].copy(), out_degree
                contrib_fn = lambda e, r=r, d=d: _contrib_partials(e, r, d)
                if self.vectorized:
                    contrib_fn = vectorized(contrib_fn)
                partial_rows = edges.map_partition(
                    contrib_fn,
                    cost=OpCost(flops_per_element=self.CPU_FLOPS,
                                out_element_nbytes=16.0,
                                element_overhead_s=self.CPU_OVERHEAD_S),
                    name="pagerank-contrib")
            # Shuffle the partials by destination and sum — the phase that
            # caps PageRank's speedup.
            if self.vectorized:
                # Columnar end to end: no tuple materialization; the float64
                # [dst, partial] rows shuffle zero-copy and are group-summed
                # in blocks (same fold order: results are bit-identical).
                summed = partial_rows \
                    .group_by(vectorized(
                        lambda rows: rows[:, 0].astype(np.int64))) \
                    .reduce(vectorized(_sum_contrib),
                            cost=OpCost(flops_per_element=1.0),
                            name="pagerank-sum")
            else:
                summed = partial_rows.map_partition(
                    lambda rows: [(int(r[0]), float(r[1])) for r in rows],
                    cost=OpCost(flops_per_element=0.0),
                    name="pagerank-tuples") \
                    .group_by(lambda kv: kv[0]) \
                    .reduce(lambda a, b: (a[0], a[1] + b[1]),
                            cost=OpCost(flops_per_element=1.0),
                            name="pagerank-sum")
            result = yield from summed.collect_job(
                job_name=f"pagerank-{'gpu' if gpu else 'cpu'}-iter{it}")
            new_ranks = np.full(n, (1.0 - DAMPING) / n)
            for dst, total in result.value:
                new_ranks[int(dst)] += DAMPING * float(total)
            state["ranks"] = new_ranks
            seconds = result.seconds
            if it == self.iterations - 1:
                write = yield from session.from_collection(
                    state["ranks"], element_nbytes=8.0,
                    scale=self.nominal_pages / self.real_pages
                ).write_hdfs_job(self.output_path)
                seconds += write.seconds
            times.append(seconds)
        return state["ranks"], times

    def _run_cpu(self, session):
        edges = session.read_hdfs(self.path, self.element_nbytes,
                                  scale=self.scale).persist()
        result = yield from self._iterate(session, edges, gpu=False)
        return result

    def _run_gpu(self, session):
        from repro.workloads.spmv import _total_gpus
        # One partition per GPU: ranks/degrees upload once per device.
        edges = session.read_hdfs(self.path, self.element_nbytes,
                                  scale=self.scale,
                                  parallelism=_total_gpus(session)).persist()
        result = yield from self._iterate(session, edges, gpu=True)
        return result
