"""Dataset catalog: Table 1 of the paper, plus the real-sample sizes.

"For each benchmark, we employ five different sizes of input datasets" —
the nominal sizes below are the paper's.  ``real`` is the in-memory sample
each nominal dataset is represented by (dual-scale execution, DESIGN.md §2);
the ``scale`` is nominal/real and drives all timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigError
from repro.common.units import GB

MILLION = 1_000_000


@dataclass(frozen=True)
class SizeSpec:
    """One input-size point of Table 1."""

    label: str               # as printed in the paper ("150 million points")
    nominal_elements: float  # elements the timing model simulates
    real_elements: int       # in-memory sample size


def _points(millions: int, real: int = 50_000) -> SizeSpec:
    return SizeSpec(f"{millions}M points", millions * MILLION, real)


def _pages(millions: int, real: int = 4_000) -> SizeSpec:
    return SizeSpec(f"{millions}M pages", millions * MILLION, real)


def _gb_words(gb: int, bytes_per_word: float = 10.0,
              real: int = 60_000) -> SizeSpec:
    return SizeSpec(f"{gb} GB", gb * GB / bytes_per_word, real)


def _gb_rows(gb: int, bytes_per_row: float = 192.0,
             real: int = 20_000) -> SizeSpec:
    # SpMV rows in ELL format: 16 nnz x (4B col + 4B val) x 1.5 = 192 B/row.
    return SizeSpec(f"{gb} GB", gb * GB / bytes_per_row, real)


#: Table 1 — Benchmarks from HiBench (plus the two Flink examples).
TABLE1: Dict[str, List[SizeSpec]] = {
    "kmeans": [_points(m) for m in (150, 180, 210, 240, 270)],
    "pagerank": [_pages(m) for m in (5, 10, 15, 20, 25)],
    "wordcount": [_gb_words(g) for g in (24, 32, 40, 48, 56)],
    "connected_components": [_pages(m) for m in (5, 10, 15, 20, 25)],
    "linear_regression": [_points(m) for m in (150, 180, 210, 240, 270)],
    "spmv": [_gb_rows(g) for g in (2, 4, 8, 16, 32)],
}


def table1_sizes(benchmark: str) -> List[SizeSpec]:
    """The five Table 1 input sizes for ``benchmark``."""
    try:
        return list(TABLE1[benchmark])
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {benchmark!r}; known: {sorted(TABLE1)}"
        ) from None
