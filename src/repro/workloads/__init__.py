"""The paper's benchmark workloads (§6.2, Table 1).

Six benchmarks — KMeans, PageRank, WordCount, ConnectedComponents (from the
in-memory HiBench suite), LinearRegression and SpMV (from Flink's examples) —
plus PointAdd (the paper's running example, Algorithm 3.1), each with a CPU
(Flink) and a GPU (GFlink) implementation over the same synthetic generators.

Every workload follows the paper's driver structure: read the input from
HDFS (first iteration), iterate in memory with the GPU cache active, write
the result back to HDFS (last iteration).  ``run(...)`` returns per-iteration
simulated times, which is what Figs. 5–8 plot.
"""

from repro.workloads.base import (
    Workload,
    WorkloadResult,
    ensure_kernel,
    even_chunk_sizes,
    run_concurrent,
)
from repro.workloads.generators import TABLE1, table1_sizes
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.linear_regression import LinearRegressionWorkload
from repro.workloads.spmv import SpMVWorkload
from repro.workloads.wordcount import WordCountWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.connected_components import ConnectedComponentsWorkload
from repro.workloads.pointadd import PointAddWorkload

__all__ = [
    "Workload",
    "WorkloadResult",
    "ensure_kernel",
    "even_chunk_sizes",
    "run_concurrent",
    "TABLE1",
    "table1_sizes",
    "KMeansWorkload",
    "LinearRegressionWorkload",
    "SpMVWorkload",
    "WordCountWorkload",
    "PageRankWorkload",
    "ConnectedComponentsWorkload",
    "PointAddWorkload",
]
