"""Linear regression by batch gradient descent (Flink example workload).

"The linear regression is bounded by calculations on each data point, which
can benefit from the GPU's high computation powers" (§6.5) — the paper's
largest overall speedup (~9.2x).  Structure mirrors KMeans: per-partition
partial gradients, tiny collect, driver-side weight update; the feature
matrix is GPU-cached, the weight vector is re-uploaded each iteration.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.gdst import ExtraInput
from repro.core.gstruct import Float32, GStruct8, StructField
from repro.flink.dataset import OpCost
from repro.gpu.kernel import KernelSpec
from repro.workloads.base import Workload, ensure_kernel, even_chunk_sizes

DIM = 8  # feature dimensionality (HiBench-like)


class Sample(GStruct8):
    """One training sample: DIM features + target."""

    features = StructField(order=0, ftype=Float32, length=DIM)
    target = StructField(order=1, ftype=Float32)


def _partial_gradient(samples: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Row ``[n, g_0..g_{DIM-1}, loss]`` of partial gradient sums."""
    x = samples["features"].astype(np.float64)
    y = samples["target"].astype(np.float64)
    err = x @ weights - y
    grad = x.T @ err
    loss = float(err @ err)
    return np.concatenate([[len(samples)], grad, [loss]]).reshape(1, -1)


def linreg_grad_kernel(inputs, params):
    return {"out": _partial_gradient(inputs["in"], inputs["weights"])}


class LinearRegressionWorkload(Workload):
    """Full-batch gradient descent on GStruct samples."""

    name = "linear_regression"
    #: per-element CPU work: dot product + gradient accumulation.
    CPU_FLOPS = 4 * DIM
    #: Per-sample JVM overhead: a DIM-element feature loop with boxing.
    CPU_OVERHEAD_S = 2.0e-6
    GPU_FLOPS = 4 * DIM
    #: dense FMA-friendly kernel: high efficiency (§6.5's "bounded by
    #: calculations on each data point").
    GPU_EFFICIENCY = 0.6

    def __init__(self, nominal_elements: float = 150e6,
                 real_elements: int = 50_000, iterations: int = 10,
                 learning_rate: float = 1e-3, **kw):
        super().__init__(nominal_elements, real_elements,
                         element_nbytes=Sample.itemsize(),
                         iterations=iterations, **kw)
        self.learning_rate = learning_rate
        self.true_weights = self.rng.normal(0, 1, size=DIM)

    def _generate_chunks(self, n_chunks: int) -> List[Tuple[np.ndarray, int]]:
        chunks = []
        for n in even_chunk_sizes(self.real_elements, n_chunks):
            arr = Sample.empty(n)
            x = self.rng.normal(0, 1, size=(n, DIM))
            noise = self.rng.normal(0, 0.05, size=n)
            arr["features"] = x.astype(np.float32)
            arr["target"] = (x @ self.true_weights + noise).astype(np.float32)
            chunks.append((arr, int(n * self.scale * self.element_nbytes)))
        return chunks

    def register_kernels(self, registry) -> None:
        ensure_kernel(registry, KernelSpec(
            "linreg_grad", linreg_grad_kernel,
            flops_per_element=self.GPU_FLOPS,
            bytes_per_element=Sample.itemsize(),
            efficiency=self.GPU_EFFICIENCY))

    # -- drivers ------------------------------------------------------------------
    def _update(self, weights: np.ndarray,
                rows: List[np.ndarray]) -> Tuple[np.ndarray, float]:
        table = np.vstack([np.asarray(r, dtype=np.float64).reshape(1, -1)
                           for r in rows])
        n = table[:, 0].sum()
        grad = table[:, 1:1 + DIM].sum(axis=0) / max(n, 1.0)
        loss = table[:, -1].sum() / max(n, 1.0)
        return weights - self.learning_rate * grad, loss

    def _run_cpu(self, session):
        samples = session.read_hdfs(self.path, self.element_nbytes,
                                    scale=self.scale).persist()
        weights = np.zeros(DIM)
        times = []
        for it in range(self.iterations):
            w = weights.copy()
            partials = samples.map_partition(
                lambda elems, w=w: list(_partial_gradient(elems, w)),
                cost=OpCost(flops_per_element=self.CPU_FLOPS,
                            element_overhead_s=self.CPU_OVERHEAD_S),
                name="linreg-grad")
            result = yield from partials.collect_job(
                job_name=f"linreg-cpu-iter{it}")
            weights, loss = self._update(weights, result.value)
            seconds = result.seconds
            if it == self.iterations - 1:
                extra = yield from self._write_predictions(
                    session, samples, weights, gpu=False)
                seconds += extra
            times.append(seconds)
        return weights, times

    def _run_gpu(self, session):
        samples = session.read_hdfs(self.path, self.element_nbytes,
                                    scale=self.scale).persist()
        state = {"weights": np.zeros(DIM)}
        weights_input = ExtraInput(lambda: state["weights"],
                                   element_nbytes=8.0, cacheable=False)
        times = []
        for it in range(self.iterations):
            partials = samples.gpu_map_partition(
                "linreg_grad", extra_inputs={"weights": weights_input},
                cache=True, cache_key_base=("linreg", self.path),
                out_element_nbytes=8.0 * (DIM + 2))
            result = yield from partials.collect_job(
                job_name=f"linreg-gpu-iter{it}")
            state["weights"], _ = self._update(state["weights"], result.value)
            seconds = result.seconds
            if it == self.iterations - 1:
                extra = yield from self._write_predictions(
                    session, samples, state["weights"], gpu=True)
                seconds += extra
            times.append(seconds)
        return state["weights"], times

    def _write_predictions(self, session, samples, weights, gpu: bool):
        if gpu:
            ensure_kernel(session.cluster.registry, KernelSpec(
                "linreg_predict",
                lambda i, p: {"out": (i["in"]["features"].astype(np.float64)
                                      @ i["weights"]).astype(np.float32)},
                flops_per_element=2 * DIM,
                bytes_per_element=Sample.itemsize(),
                efficiency=self.GPU_EFFICIENCY))
            out = samples.gpu_map_partition(
                "linreg_predict",
                extra_inputs={"weights": ExtraInput.constant(
                    weights, element_nbytes=8.0, cacheable=False)},
                cache=True, cache_key_base=("linreg", self.path),
                out_element_nbytes=4.0)
        else:
            w = weights.copy()
            out = samples.map_partition(
                lambda elems, w=w: (elems["features"].astype(np.float64)
                                    @ w).astype(np.float32),
                cost=OpCost(flops_per_element=2 * DIM,
                            out_element_nbytes=4.0,
                            element_overhead_s=self.CPU_OVERHEAD_S),
                name="linreg-predict")
        result = yield from out.write_hdfs_job(self.output_path)
        return result.seconds
