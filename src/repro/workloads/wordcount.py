"""WordCount (HiBench) — the paper's batch, I/O-bound workload.

"The speedup of WordCount is not high (only 1.1x), because WordCount is a
batch application without iterative execution ... Moreover, the I/O overhead
of WordCount is the bottleneck" (§6.5).  Both paths read the whole corpus
from HDFS, count words, shuffle the per-partition partial counts and write
the totals — the GPU only accelerates the (cheap) counting.

The corpus is pre-tokenized to 32-bit word ids drawn from a Zipf
distribution, matching how a GStruct-based GFlink program would lay the data
out (one ``Unsigned32`` per word).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.flink.dataset import OpCost
from repro.flink.iterators import vectorized
from repro.gpu.kernel import KernelSpec
from repro.workloads.base import Workload, ensure_kernel, even_chunk_sizes

VOCABULARY = 10_000
ZIPF_A = 1.3


def _partial_counts(word_ids: np.ndarray) -> List[Tuple[int, int]]:
    """(word, count) partials for one partition/block."""
    counts = np.bincount(word_ids, minlength=0)
    nz = np.nonzero(counts)[0]
    return [(int(w), int(counts[w])) for w in nz]


def _partial_rows(word_ids: np.ndarray) -> np.ndarray:
    """Columnar (word, count) partials: same values as
    :func:`_partial_counts`, kept as one int64 block so the exchange ships
    it zero-copy."""
    counts = np.bincount(word_ids, minlength=0)
    nz = np.nonzero(counts)[0]
    return np.stack([nz, counts[nz]], axis=1).astype(np.int64)


def _sum_rows(group: np.ndarray) -> np.ndarray:
    """Vectorized per-key reducer over a (count-rows, 2) group block.

    Integer sums are exact, so totals are bit-identical to the element
    path's pairwise fold whatever the summation order.
    """
    out = group[0].copy()
    out[1] = group[:, 1].sum()
    return out


def wordcount_kernel(inputs, params):
    counts = np.bincount(inputs["in"], minlength=0)
    nz = np.nonzero(counts)[0]
    return {"out": np.stack([nz, counts[nz]], axis=1).astype(np.int64)}


class WordCountWorkload(Workload):
    """Count word occurrences across the corpus."""

    name = "wordcount"
    CPU_FLOPS = 8.0            # hash + increment per word
    #: Tokenisation (text -> word tokens) runs on the CPU in *both* paths —
    #: the GPU only accelerates counting, which is why the paper measures
    #: only ~1.1x end to end.
    TOKENIZE_OVERHEAD_S = 0.15e-6
    COUNT_OVERHEAD_S = 0.035e-6  # per-word hash-map access (CPU path)
    GPU_FLOPS = 8.0
    GPU_EFFICIENCY = 0.25      # atomics-heavy histogram kernel

    def __init__(self, nominal_elements: float = 2.4e9,
                 real_elements: int = 60_000, **kw):
        kw.setdefault("iterations", 1)  # batch: single pass
        super().__init__(nominal_elements, real_elements,
                         element_nbytes=4.0, **kw)

    def _generate_chunks(self, n_chunks: int) -> List[Tuple[np.ndarray, int]]:
        chunks = []
        for n in even_chunk_sizes(self.real_elements, n_chunks):
            ids = self.rng.zipf(ZIPF_A, size=n) % VOCABULARY
            chunks.append((ids.astype(np.int32),
                           int(n * self.scale * self.element_nbytes)))
        return chunks

    def register_kernels(self, registry) -> None:
        ensure_kernel(registry, KernelSpec(
            "wordcount_hist", wordcount_kernel,
            flops_per_element=self.GPU_FLOPS, bytes_per_element=4.0,
            efficiency=self.GPU_EFFICIENCY))

    # -- drivers ------------------------------------------------------------------
    def _finish(self, partials_ds):
        if self.vectorized:
            totals = partials_ds \
                .group_by(vectorized(lambda rows: rows[:, 0])) \
                .reduce(vectorized(_sum_rows),
                        cost=OpCost(flops_per_element=1.0),
                        name="wordcount-sum")
        else:
            totals = partials_ds \
                .group_by(lambda wc: int(wc[0])) \
                .reduce(lambda a, b: (a[0], a[1] + b[1]),
                        cost=OpCost(flops_per_element=1.0),
                        name="wordcount-sum")
        write = yield from totals.write_hdfs_job(self.output_path)
        return write

    def _tokenize(self, session):
        words = session.read_hdfs(self.path, self.element_nbytes,
                                  scale=self.scale)
        tokenize = lambda ids: ids  # text -> word ids; identity on sample
        if self.vectorized:
            tokenize = vectorized(tokenize)
        return words.map_partition(
            tokenize,
            cost=OpCost(flops_per_element=2.0,
                        element_overhead_s=self.TOKENIZE_OVERHEAD_S),
            name="wordcount-tokenize")

    def _run_cpu(self, session):
        if self.vectorized:
            count_fn = vectorized(_partial_rows)
        else:
            count_fn = lambda ids: _partial_counts(ids)
        partials = self._tokenize(session).map_partition(
            count_fn,
            cost=OpCost(flops_per_element=self.CPU_FLOPS,
                        out_element_nbytes=12.0,
                        element_overhead_s=self.COUNT_OVERHEAD_S),
            name="wordcount-map")
        write = yield from self._finish(partials)
        return write.value, [write.seconds]

    def _run_gpu(self, session):
        pairs = self._tokenize(session).gpu_map_partition(
            "wordcount_hist", out_element_nbytes=12.0)
        if not self.vectorized:
            # Row boundary: vectorized mode keeps the kernel's int64 rows
            # columnar instead of materializing Python tuples.
            pairs = pairs.map_partition(
                lambda rows: [(int(r[0]), int(r[1])) for r in rows],
                cost=OpCost(flops_per_element=0.0),
                name="wordcount-tuples")
        write = yield from self._finish(pairs)
        return write.value, [write.seconds]
