"""Shared workload framework: prepare → iterate → write, with timing capture."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import DEFAULT_SEED, generator
from repro.core.runtime import GFlinkSession
from repro.flink.jobmanager import JobMetrics
from repro.flink.runtime import Cluster
from repro.gpu.kernel import KernelRegistry, KernelSpec


def ensure_kernel(registry: KernelRegistry, spec: KernelSpec) -> None:
    """Register ``spec`` unless a kernel with that name already exists."""
    if spec.name not in registry:
        registry.register(spec)


def even_chunk_sizes(total: int, n_chunks: int) -> List[int]:
    """Split ``total`` elements into exactly ``n_chunks`` near-equal sizes.

    Generators must produce exactly as many chunks as there are source
    subtasks: a stray remainder chunk would hand one subtask double data and
    create a two-wave straggler in every iteration.
    """
    n = max(1, min(n_chunks, total))
    bounds = [round(i * total / n) for i in range(n + 1)]
    return [hi - lo for lo, hi in zip(bounds, bounds[1:]) if hi > lo]


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    name: str
    mode: str                                   # "cpu" or "gpu"
    iteration_seconds: List[float]
    value: Any
    job_metrics: List[JobMetrics] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Total simulated run time (sum over iterations incl. I/O phases)."""
        return sum(self.iteration_seconds)

    @property
    def iterations(self) -> int:
        return len(self.iteration_seconds)


class Workload:
    """Base class: input generation + the CPU/GPU driver programs.

    Subclasses implement :meth:`_generate_chunks`,
    :meth:`register_kernels`, :meth:`_run_cpu` and :meth:`_run_gpu`.
    """

    name = "workload"

    def __init__(self, nominal_elements: float, real_elements: int,
                 element_nbytes: float, iterations: int = 5,
                 seed: int = DEFAULT_SEED, path: Optional[str] = None,
                 output_path: Optional[str] = None,
                 vectorized: bool = False):
        if real_elements <= 0:
            raise ConfigError("real_elements must be positive")
        if nominal_elements < real_elements:
            # Tiny test configurations run un-scaled.
            nominal_elements = float(real_elements)
        self.nominal_elements = float(nominal_elements)
        self.real_elements = int(real_elements)
        self.element_nbytes = float(element_nbytes)
        self.iterations = iterations
        #: Use block-vectorized CPU UDFs (repro.flink.iterators.vectorized):
        #: same results bit for bit, but operators are charged the SIMD
        #: block model and exchanges take the columnar zero-copy path.
        self.vectorized = bool(vectorized)
        self.seed = seed
        self.path = path or f"/{self.name}/input-{int(nominal_elements)}"
        # Derived from the input path so two instances of the same workload
        # with distinct inputs (e.g. concurrent tenants) never collide.
        self._output_path = output_path or f"{self.path}-output"
        self.rng = generator(seed, self.name, str(int(nominal_elements)))

    @property
    def scale(self) -> float:
        """Nominal elements per real element."""
        return self.nominal_elements / self.real_elements

    @property
    def output_path(self) -> str:
        return self._output_path

    # -- data preparation -----------------------------------------------------------
    def prepare(self, cluster: Cluster, n_chunks: Optional[int] = None) -> None:
        """Generate the input and load it into the cluster's HDFS.

        Chunk count defaults to the cluster's total slot count so every
        source subtask gets one block (the paper's on-demand parallelism).
        """
        if cluster.hdfs.exists(self.path):
            return
        chunks = self._generate_chunks(n_chunks or cluster.default_parallelism)
        cluster.load_hdfs_file(self.path, chunks)

    def _generate_chunks(self, n_chunks: int):
        """Return [(payload, nominal_nbytes)] — one entry per HDFS block."""
        raise NotImplementedError

    # -- kernels ---------------------------------------------------------------
    def register_kernels(self, registry: KernelRegistry) -> None:
        """Register this workload's GPU kernels (idempotent)."""

    # -- execution ------------------------------------------------------------
    def run(self, session: GFlinkSession, mode: str = "cpu") -> WorkloadResult:
        """Run the workload end to end; returns per-iteration times."""
        if mode not in ("cpu", "gpu"):
            raise ConfigError(f"mode must be 'cpu' or 'gpu': {mode!r}")
        self.prepare(session.cluster)
        if mode == "gpu":
            self.register_kernels(session.cluster.registry)
        if session.cluster.hdfs.exists(self.output_path):
            session.cluster.hdfs.delete(self.output_path)
        history_start = len(session.history)
        proc = session.cluster.env.process(
            self.driver(session, mode), name=f"{self.name}-{mode}-driver")
        value, iteration_seconds = session.cluster.env.run(until=proc)
        return WorkloadResult(
            name=self.name, mode=mode,
            iteration_seconds=iteration_seconds, value=value,
            job_metrics=list(session.history[history_start:]))

    def driver(self, session: GFlinkSession, mode: str):
        """The driver program as a simulation process (generator).

        Multiple drivers may run concurrently on one cluster (Fig. 8c/d):
        see :func:`repro.workloads.base.run_concurrent`.
        """
        if mode == "cpu":
            return self._run_cpu(session)
        return self._run_gpu(session)

    def _run_cpu(self, session: GFlinkSession):
        raise NotImplementedError

    def _run_gpu(self, session: GFlinkSession):
        raise NotImplementedError


def run_concurrent(cluster, apps) -> List["WorkloadResult"]:
    """Run several applications concurrently on one cluster (§6.6.4).

    ``apps`` is a list of ``(workload, mode)``; each application gets its own
    driver session (its own ``app_id``, hence its own GPU cache regions) and
    all drivers run as simultaneous simulation processes, contending for
    task slots, GPUs, network and disks.  Returns one result per app whose
    ``iteration_seconds`` reflect the contended execution.
    """
    env = cluster.env
    sessions, procs, starts = [], [], []
    for workload, mode in apps:
        workload.prepare(cluster)
        if mode == "gpu":
            workload.register_kernels(cluster.registry)
        if cluster.hdfs.exists(workload.output_path):
            cluster.hdfs.delete(workload.output_path)
    for workload, mode in apps:
        session = GFlinkSession(cluster)
        sessions.append(session)
        starts.append(env.now)
        procs.append(env.process(
            workload.driver(session, mode),
            name=f"{workload.name}-{mode}-driver"))
    done = env.all_of(procs)
    env.run(until=done)
    results = []
    for (workload, mode), proc, session in zip(apps, procs, sessions):
        value, iteration_seconds = proc.value
        results.append(WorkloadResult(
            name=workload.name, mode=mode,
            iteration_seconds=iteration_seconds, value=value,
            job_metrics=list(session.history)))
    return results
