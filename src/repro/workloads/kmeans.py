"""KMeans clustering (HiBench) — the paper's flagship iterative workload.

Driver structure (both modes):

1. iteration 1 reads the point set from HDFS (and, on GFlink, uploads it to
   the GPU cache);
2. every iteration computes per-partition partial sums of the points
   assigned to each center ("the dominant operation is searching for the
   closest centers", §6.5), collects the tiny partials and updates the
   centers — "KMeans only shuffles centers in each iteration";
3. the last iteration additionally writes per-point assignments to HDFS.

The GPU kernel processes a block of points against the (re-uploaded each
iteration) centers and emits one ``k x (2 + dim)`` partial-sum table per
block — a reduce-style kernel, so only kilobytes come back over PCIe.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.gdst import ExtraInput
from repro.core.gstruct import Float32, GStruct8, StructField
from repro.flink.dataset import OpCost
from repro.flink.iterators import vectorized
from repro.gpu.kernel import KernelSpec
from repro.workloads.base import Workload, ensure_kernel, even_chunk_sizes

K = 16      # number of clusters (HiBench default scale)
DIM = 2     # point dimensionality


class KMeansPoint(GStruct8):
    """The paper's §3.5.1 Point, specialized to the benchmark."""

    x = StructField(order=0, ftype=Float32)
    y = StructField(order=1, ftype=Float32)


def _assign_partials(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Partial sums per center: rows ``[center_id, count, sum_x, sum_y]``."""
    xy = np.stack([points["x"], points["y"]], axis=1).astype(np.float64)
    d2 = ((xy[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    assign = np.argmin(d2, axis=1)
    out = np.zeros((centers.shape[0], 2 + DIM))
    out[:, 0] = np.arange(centers.shape[0])
    np.add.at(out[:, 1], assign, 1.0)
    np.add.at(out[:, 2], assign, xy[:, 0])
    np.add.at(out[:, 3], assign, xy[:, 1])
    return out


def kmeans_assign_kernel(inputs, params):
    """GPU kernel: block of points + centers -> partial-sum table."""
    return {"out": _assign_partials(inputs["in"], inputs["centers"])}


def _combine_partials(rows: List[np.ndarray],
                      old_centers: np.ndarray) -> np.ndarray:
    table = np.vstack([np.asarray(r, dtype=np.float64).reshape(-1, 2 + DIM)
                       for r in rows])
    new_centers = old_centers.copy()
    for cid in range(old_centers.shape[0]):
        mine = table[table[:, 0] == cid]
        count = mine[:, 1].sum()
        if count > 0:
            new_centers[cid] = mine[:, 2:].sum(axis=0) / count
    return new_centers


class KMeansWorkload(Workload):
    """Lloyd's algorithm over GStruct points."""

    name = "kmeans"
    #: CPU cost: k distance computations of 3*DIM flops each, plus argmin.
    CPU_FLOPS = K * (3 * DIM + 1)
    #: Per-point JVM overhead: a k-way distance loop over boxed points
    #: (HiBench KMeans on Flink processes ~1M points/s/core).
    CPU_OVERHEAD_S = 0.65e-6
    #: GPU kernel: same arithmetic; efficiency reflects divergence + atomics.
    GPU_FLOPS = K * 3 * DIM
    GPU_EFFICIENCY = 0.35

    def __init__(self, nominal_elements: float = 150e6,
                 real_elements: int = 50_000, iterations: int = 10, **kw):
        super().__init__(nominal_elements, real_elements,
                         element_nbytes=KMeansPoint.itemsize(),
                         iterations=iterations, **kw)
        self.k = K
        centers = self.rng.uniform(-10, 10, size=(self.k, DIM))
        self.true_centers = centers

    # -- data ------------------------------------------------------------------
    def _generate_chunks(self, n_chunks: int) -> List[Tuple[np.ndarray, int]]:
        chunks = []
        for n in even_chunk_sizes(self.real_elements, n_chunks):
            pts = KMeansPoint.empty(n)
            which = self.rng.integers(0, self.k, size=n)
            noise = self.rng.normal(0, 0.6, size=(n, DIM))
            coords = self.true_centers[which] + noise
            pts["x"], pts["y"] = coords[:, 0], coords[:, 1]
            nominal = int(n * self.scale * self.element_nbytes)
            chunks.append((pts, nominal))
        return chunks

    # -- kernels ---------------------------------------------------------------
    def register_kernels(self, registry) -> None:
        ensure_kernel(registry, KernelSpec(
            "kmeans_assign", kmeans_assign_kernel,
            flops_per_element=self.GPU_FLOPS,
            bytes_per_element=KMeansPoint.itemsize(),
            efficiency=self.GPU_EFFICIENCY))
        ensure_kernel(registry, KernelSpec(
            "kmeans_label", lambda i, p: {
                "out": _label(i["in"], i["centers"])},
            flops_per_element=self.GPU_FLOPS,
            bytes_per_element=KMeansPoint.itemsize(),
            efficiency=self.GPU_EFFICIENCY))

    # -- drivers -----------------------------------------------------------------
    def _initial_centers(self) -> np.ndarray:
        jitter = self.rng.normal(0, 2.0, size=(self.k, DIM))
        return self.true_centers + jitter

    def _run_cpu(self, session):
        points = session.read_hdfs(self.path, self.element_nbytes,
                                   scale=self.scale).persist()
        centers = self._initial_centers()
        times = []
        for it in range(self.iterations):
            partial_fn = _make_cpu_partial(centers, self.vectorized)
            partials = points.map_partition(
                partial_fn,
                cost=OpCost(flops_per_element=self.CPU_FLOPS,
                            element_overhead_s=self.CPU_OVERHEAD_S),
                name="kmeans-assign")
            result = yield from partials.collect_job(
                job_name=f"kmeans-cpu-iter{it}")
            centers = _combine_partials(result.value, centers)
            seconds = result.seconds
            if it == self.iterations - 1:
                extra = yield from self._write_labels_cpu(
                    session, points, centers)
                seconds += extra
            times.append(seconds)
        return centers, times

    def _write_labels_cpu(self, session, points, centers):
        label_fn = _make_cpu_label(centers, self.vectorized)
        out = points.map_partition(
            label_fn,
            cost=OpCost(flops_per_element=self.CPU_FLOPS,
                        out_element_nbytes=4.0,
                        element_overhead_s=self.CPU_OVERHEAD_S),
            name="kmeans-label")
        result = yield from out.write_hdfs_job(self.output_path)
        return result.seconds

    def _run_gpu(self, session):
        points = session.read_hdfs(self.path, self.element_nbytes,
                                   scale=self.scale).persist()
        state = {"centers": self._initial_centers().astype(np.float32)}
        centers_input = ExtraInput(
            lambda: state["centers"], element_nbytes=4.0 * DIM,
            cacheable=False)  # centers change every iteration
        times = []
        for it in range(self.iterations):
            partials = points.gpu_map_partition(
                "kmeans_assign", extra_inputs={"centers": centers_input},
                cache=True, cache_key_base=("kmeans", self.path),
                out_element_nbytes=8.0 * (2 + DIM))
            result = yield from partials.collect_job(
                job_name=f"kmeans-gpu-iter{it}")
            state["centers"] = _combine_partials(
                result.value, state["centers"]).astype(np.float32)
            seconds = result.seconds
            if it == self.iterations - 1:
                out = points.gpu_map_partition(
                    "kmeans_label", extra_inputs={"centers": centers_input},
                    cache=True, cache_key_base=("kmeans", self.path),
                    out_element_nbytes=4.0)
                write = yield from out.write_hdfs_job(self.output_path)
                seconds += write.seconds
            times.append(seconds)
        return state["centers"], times


def _label(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    xy = np.stack([points["x"], points["y"]], axis=1).astype(np.float64)
    d2 = ((xy[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    return np.argmin(d2, axis=1).astype(np.int32)


def _make_cpu_partial(centers: np.ndarray, vec: bool = False):
    snapshot = np.array(centers, dtype=np.float64)

    if vec:
        # Same arithmetic; the (k, 2+DIM) table stays one columnar block,
        # and the vectorized marker selects the SIMD block charge model.
        return vectorized(
            lambda elements: _assign_partials(elements, snapshot))

    def partial(elements: np.ndarray) -> List[np.ndarray]:
        return list(_assign_partials(elements, snapshot))

    return partial


def _make_cpu_label(centers: np.ndarray, vec: bool = False):
    snapshot = np.array(centers, dtype=np.float64)

    def label(elements: np.ndarray) -> np.ndarray:
        return _label(elements, snapshot)

    return vectorized(label) if vec else label
