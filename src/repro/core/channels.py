"""The JVM↔GPU communication strategy: control and transfer channels.

§4.1 splits communication into a **control channel** — CUDAWrapper (Java)
redirects API calls over JNI to CUDAStub (C++), paying a small per-call
redirect cost — and a **transfer channel** — bulk data moved by the DMA
engine over PCIe directly from off-heap direct buffers.

Three communication paths are implemented, because the paper's argument is
comparative:

* ``CommMode.GFLINK`` — the proposed path: raw GStruct bytes already sit in
  off-heap memory matching the CUDA struct layout, so a transfer is just
  JNI-redirect + DMA.  (Table 2 shows this within a whisker of native.)
* ``CommMode.JNI_HEAP`` — the naive JNI path of [12], [13] (§3.1): convert
  and accumulate JVM objects into a heap buffer (serialization-rate cost),
  copy heap→native (the GC makes heap addresses unstable), then DMA from
  unpinned memory.
* ``CommMode.RPC`` — the HeteroSpark-style path [10]: serialize and push the
  data through the local TCP/IP stack to a GPU-owning process, then DMA.

The calibration (``jni_call_s`` = 0.155 µs) is fitted so the GFlink column of
Table 2 reproduces alongside the native column.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Generator, Optional

from repro.common.simclock import Environment, Event
from repro.core.hbuffer import Block, HBuffer
from repro.gpu.device import GPUDevice
from repro.gpu.kernel import LaunchConfig
from repro.gpu.memory import DeviceBuffer, HostBuffer
from repro.gpu.runtime import CUDARuntime
from repro.gpu.stream import CUDAStream


class CommMode(Enum):
    """Which JVM→GPU communication path a transfer uses."""

    GFLINK = "gflink"      # off-heap direct buffer, zero-copy DMA
    JNI_HEAP = "jni-heap"  # convert + heap->native copy + pageable DMA
    RPC = "rpc"            # serialize + loopback TCP + DMA


@dataclass(frozen=True)
class CommCosts:
    """Calibration of the communication paths (DESIGN.md §5)."""

    jni_call_s: float = 0.155e-6    # CUDAWrapper -> CUDAStub redirect
    serde_bps: float = 0.8e9        # JVM object <-> byte conversion
    heap_copy_bps: float = 4.0e9    # JVM heap -> native memcpy
    rpc_loopback_bps: float = 1.2e9 # TCP/IP stack on localhost
    rpc_call_s: float = 45e-6       # RPC marshalling + syscalls per call


class CUDAWrapper:
    """The Java-side wrapper: control channel + transfer channel.

    Every method charges one JNI redirect (the control channel) before
    delegating to the native :class:`~repro.gpu.runtime.CUDARuntime`
    ("CUDAStub").
    """

    def __init__(self, env: Environment, runtime: CUDARuntime,
                 costs: Optional[CommCosts] = None):
        self.env = env
        self.runtime = runtime
        self.costs = costs or CommCosts()
        self.jni_calls = 0

    # -- control channel -----------------------------------------------------------
    def _jni(self) -> Event:
        """One redirect through the control channel."""
        self.jni_calls += 1
        return self.env.timeout(self.costs.jni_call_s)

    def cuda_malloc(self, device: GPUDevice,
                    nbytes: int) -> Generator[Event, None, DeviceBuffer]:
        """``cudaMalloc`` via JNI."""
        yield self._jni()
        buf = yield from self.runtime.malloc(device, nbytes)
        return buf

    def cuda_free(self, device: GPUDevice,
                  buf: DeviceBuffer) -> Generator[Event, None, None]:
        """``cudaFree`` via JNI."""
        yield self._jni()
        yield from self.runtime.free(device, buf)

    def cuda_stream_create(self, device: GPUDevice) -> CUDAStream:
        """``cudaStreamCreate`` via JNI (wrapper-side object, no wait)."""
        self.jni_calls += 1
        return self.runtime.stream_create(device)

    def cuda_host_register(self, host: HostBuffer
                           ) -> Generator[Event, None, HostBuffer]:
        """``cudaHostRegister``: page-lock a host buffer."""
        yield self._jni()
        result = yield from self.runtime.host_register(host)
        return result

    def cuda_device_synchronize(self, device: GPUDevice) -> Event:
        """``cudaDeviceSynchronize`` via JNI."""
        self.jni_calls += 1
        return self.runtime.device_synchronize(device)

    def cuda_event_record(self, stream: CUDAStream):
        """``cudaEventRecord``: a Java-side virtualized CUDA event (§3.4:
        "many objects in CUDA (e.g., Streams, cudaEvent) are also
        virtualized in CUDAWrapper in the form of Java")."""
        self.jni_calls += 1
        return stream.record_event()

    def cuda_event_synchronize(self, event) -> Event:
        """``cudaEventSynchronize``: wait for a recorded event."""
        self.jni_calls += 1
        return event.wait()

    # -- transfer channel ----------------------------------------------------------
    def host_view(self, block: Block, hbuffer: HBuffer,
                  mode: CommMode) -> HostBuffer:
        """A native-side view of one block of an HBuffer."""
        pinned = hbuffer.pinned and mode is CommMode.GFLINK
        return HostBuffer(nbytes=block.nbytes, data=block.elements,
                          pinned=pinned, dma_capable=hbuffer.dma_capable)

    def transfer_h2d(self, device: GPUDevice, stream: CUDAStream,
                     dst: DeviceBuffer, block: Block, hbuffer: HBuffer,
                     mode: CommMode = CommMode.GFLINK,
                     sync: bool = False) -> Event:
        """Move one block host→device via the chosen path.

        Returns the completion event (enqueued on ``stream``).  The path
        premium (conversion, heap copy, RPC) is charged in-stream: in a real
        implementation the feeding thread serializes with the stream's DMA.
        """
        self.jni_calls += 1
        host = self.host_view(block, hbuffer, mode)
        premium = self._path_premium_s(block.nbytes, mode)

        def op():
            if premium:
                yield self.env.timeout(premium)
            yield self.env.timeout(self.costs.jni_call_s)
            yield from self.runtime.memcpy_h2d(device, dst, host)

        return stream.enqueue(op, name=f"h2d-{mode.value}")

    def transfer_d2h(self, device: GPUDevice, stream: CUDAStream,
                     dst_hbuffer: HBuffer, src: DeviceBuffer,
                     nbytes: int, nominal_count: float,
                     mode: CommMode = CommMode.GFLINK) -> Event:
        """Move results device→host via the chosen path.

        The functional payload lands on the returned event's value (the
        caller assembles output blocks in order).
        """
        self.jni_calls += 1
        host = HostBuffer(nbytes=nbytes,
                          pinned=dst_hbuffer.pinned and mode is CommMode.GFLINK,
                          dma_capable=dst_hbuffer.dma_capable)
        premium = self._path_premium_s(nbytes, mode)

        def op():
            yield self.env.timeout(self.costs.jni_call_s)
            yield from self.runtime.memcpy_d2h(device, host, src, nbytes=nbytes)
            if premium:
                yield self.env.timeout(premium)
            return host.data

        return stream.enqueue(op, name=f"d2h-{mode.value}")

    # -- inline variants (used by the three-stage pipeline's stage processes,
    # which provide their own ordering and must not hold a stream lock) -------
    def transfer_h2d_inline(self, device: GPUDevice, dst: DeviceBuffer,
                            block: Block, hbuffer: HBuffer,
                            mode: CommMode = CommMode.GFLINK
                            ) -> Generator[Event, None, "tuple[float, float]"]:
        """One block host→device, run inside the calling process.

        Returns the copy engine's exact ``(start, end)`` occupancy window.
        """
        premium = self._path_premium_s(block.nbytes, mode)
        if premium:
            yield self.env.timeout(premium)
        yield self._jni()
        host = self.host_view(block, hbuffer, mode)
        window = yield from self.runtime.memcpy_h2d(device, dst, host)
        return window

    def transfer_d2h_inline(self, device: GPUDevice, dst_hbuffer: HBuffer,
                            src: DeviceBuffer, nbytes: int,
                            mode: CommMode = CommMode.GFLINK
                            ) -> Generator[Event, None, "tuple[object, tuple[float, float]]"]:
        """One result block device→host.

        Returns ``(payload, engine_window)`` — the payload plus the copy
        engine's exact occupancy interval.
        """
        yield self._jni()
        host = HostBuffer(
            nbytes=nbytes,
            pinned=dst_hbuffer.pinned and mode is CommMode.GFLINK,
            dma_capable=dst_hbuffer.dma_capable)
        window = yield from self.runtime.memcpy_d2h(device, host, src,
                                                    nbytes=nbytes)
        premium = self._path_premium_s(nbytes, mode)
        if premium:
            yield self.env.timeout(premium)
        return host.data, window

    def launch_kernel_inline(self, device: GPUDevice, kernel_name: str,
                             n_elements: float, launch: LaunchConfig,
                             inputs, outputs, params=None,
                             layout=None) -> Generator[Event, None, dict]:
        """Kernel execution inside the calling process (pipeline stage)."""
        yield self._jni()
        results = yield from self.runtime.kernel_op(
            device, kernel_name, n_elements, launch, inputs, outputs, params,
            layout=layout)
        return results

    def _path_premium_s(self, nbytes: float, mode: CommMode) -> float:
        """Extra per-byte cost the non-GFlink paths pay (one direction)."""
        c = self.costs
        if mode is CommMode.GFLINK:
            return 0.0
        if mode is CommMode.JNI_HEAP:
            # Convert objects to a buffer, then copy the buffer off-heap.
            return nbytes / c.serde_bps + nbytes / c.heap_copy_bps
        if mode is CommMode.RPC:
            return (c.rpc_call_s + nbytes / c.serde_bps
                    + nbytes / c.rpc_loopback_bps)
        raise ValueError(mode)  # pragma: no cover - exhaustive

    # -- kernels ------------------------------------------------------------------
    def launch_kernel(self, device: GPUDevice, stream: CUDAStream,
                      kernel_name: str, n_elements: float,
                      launch: LaunchConfig, inputs, outputs,
                      params=None) -> Event:
        """Kernel launch via JNI (asynchronous, on ``stream``).

        The JNI redirect is enqueued as its own tiny stream operation ahead
        of the kernel (streams are in-order), because the kernel operation
        itself is enqueued by the native runtime — nesting them would
        deadlock on the stream lock.
        """
        self.jni_calls += 1

        def jni_op():
            yield self.env.timeout(self.costs.jni_call_s)

        stream.enqueue(jni_op, name=f"jni-launch-{kernel_name}")
        return self.runtime.launch_kernel(
            device, stream, kernel_name, n_elements, launch,
            inputs, outputs, params)
