"""GPUManager: the per-worker component GFlink adds to every slave (§3.4).

"GPUManager, which resides in each worker in the cluster, manages GPU
computing resources (e.g., GPU memory, GPU context) and cooperates with
TaskManager to accomplish the tasks assigned to GPUs."  It owns:

* the node's :class:`~repro.gpu.device.GPUDevice` s,
* the native runtime + :class:`~repro.core.channels.CUDAWrapper`
  (CUDAWrapper/CUDAStub communication, §4.1),
* the :class:`~repro.core.gmemory.GMemoryManager` (automatic device memory
  + cache, §4.2),
* the :class:`~repro.core.gstream.GStreamManager` (scheduling + pipeline, §5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.common.errors import DeviceFaultError
from repro.common.simclock import Environment, Event
from repro.core.channels import CommCosts, CUDAWrapper
from repro.core.gmemory import EvictionPolicy, GMemoryManager
from repro.core.gstream import GStreamManager
from repro.core.gwork import GWork
from repro.gpu.device import GPUDevice
from repro.gpu.kernel import KernelRegistry
from repro.gpu.runtime import CUDARuntime
from repro.gpu.specs import get_spec


@dataclass(frozen=True)
class GPUManagerConfig:
    """Tunables of the per-worker GPU stack."""

    cache_bytes_per_device: int = 1 << 30     # per-app cache region capacity
    eviction_policy: EvictionPolicy = EvictionPolicy.FIFO
    #: String form of the eviction policy ("fifo" | "no-evict" | "lru");
    #: when set, overrides ``eviction_policy`` — the config-file-friendly
    #: spelling of the same knob.
    cache_policy: Optional[str] = None
    streams_per_gpu: int = 2
    block_nbytes: int = 8 * (1 << 20)         # pipeline block ("page") size
    comm_costs: CommCosts = CommCosts()
    locality_aware: bool = True               # Algorithm 5.1's GID step
    #: Device faults (ECC / OOM / hang / PCIe) before a device is taken out
    #: of service.  An uncorrectable ECC error blacklists immediately.
    blacklist_threshold: int = 3
    #: With every device of a worker blacklisted, GPU operators degrade to
    #: CPU execution of the same kernel function instead of failing the job.
    cpu_fallback: bool = True
    #: Simulated time charged before a hang / stalled-transfer fault is
    #: detected (the driver watchdog window).
    fault_timeout_s: float = 2.0

    def resolved_policy(self) -> EvictionPolicy:
        if self.cache_policy is None:
            return self.eviction_policy
        return EvictionPolicy(self.cache_policy.lower())


class GPUManager:
    """All GPU machinery of one worker node."""

    def __init__(self, env: Environment, worker_name: str,
                 gpu_spec_names: Sequence[str], registry: KernelRegistry,
                 config: Optional[GPUManagerConfig] = None, obs=None):
        self.env = env
        self.worker_name = worker_name
        self.config = config or GPUManagerConfig()
        self.obs = obs
        self.devices: List[GPUDevice] = [
            GPUDevice(env, get_spec(name), index=i,
                      name=f"{worker_name}-gpu{i}")
            for i, name in enumerate(gpu_spec_names)
        ]
        if obs is not None:
            # Health scoring per device, plus a pcie_saturated alert rule
            # pinned to each device's calibrated bus ceiling.
            for device in self.devices:
                obs.monitor.register_device(
                    device.name, pcie_bps=device.spec.pcie_effective_bps)
        self.runtime = CUDARuntime(env, self.devices, registry)
        self.wrapper = CUDAWrapper(env, self.runtime,
                                   self.config.comm_costs)
        self.gmm = GMemoryManager(
            self.devices,
            cache_capacity_per_device=self.config.cache_bytes_per_device,
            policy=self.config.resolved_policy())
        self.gstream_manager = GStreamManager(
            env, self.devices, self.wrapper, self.gmm,
            streams_per_gpu=self.config.streams_per_gpu,
            block_nbytes=self.config.block_nbytes,
            locality_aware=self.config.locality_aware,
            obs=obs)
        # Failure-domain state: injected faults waiting to hit the next GWork
        # on a device, per-device fault counts, and the blacklist.
        self.gstream_manager.faults = self
        self.device_failures: Dict[int, int] = {
            i: 0 for i in range(len(self.devices))}
        self.blacklisted: Set[int] = set()
        self._pending_faults: Dict[int, Deque[str]] = {
            i: deque() for i in range(len(self.devices))}

    # -- the TaskManager-facing API ------------------------------------------------
    def submit(self, work: GWork) -> Event:
        """Submit a GWork produced by a Flink task (producer→consumer edge)."""
        return self.gstream_manager.submit(work)

    def release_app(self, app_id: str) -> None:
        """Drop an application's GPU cache regions (job/application end)."""
        self.gmm.release_app(app_id)

    # -- failure domains ------------------------------------------------------------
    def inject_device_fault(self, device_index: int, kind) -> None:
        """Queue a fault against a device (chaos engine / tests).

        ``kind`` is a :class:`repro.flink.chaos.FaultKind` or its string
        value.  An uncorrectable ECC error kills the device outright; the
        transient kinds hit the next GWork executing there (which fails,
        counts toward the blacklist threshold, and is retried elsewhere).
        """
        kind = getattr(kind, "value", kind)
        if device_index not in self._pending_faults:
            raise ValueError(f"no GPU {device_index} on {self.worker_name}")
        self._pending_faults[device_index].append(kind)
        if kind == "gpu-ecc":
            self._blacklist(device_index, cause=kind)

    def consume_fault(self, device_index: int) -> Optional[str]:
        """Pop the oldest pending fault for a device (stream-side hook)."""
        pending = self._pending_faults.get(device_index)
        if pending:
            return pending.popleft()
        return None

    def record_device_failure(self, device_index: int,
                              exc: BaseException) -> None:
        """Count a failed GWork toward the device's blacklist threshold.

        Only :class:`~repro.common.errors.DeviceFaultError` counts —
        programming errors (bad kernels) and resource exhaustion are not
        evidence of broken hardware.
        """
        if not isinstance(exc, DeviceFaultError):
            return
        self.device_failures[device_index] += 1
        if self.device_failures[device_index] >= \
                self.config.blacklist_threshold:
            self._blacklist(device_index, cause=exc.kind)

    def _blacklist(self, device_index: int, cause: str) -> None:
        if device_index in self.blacklisted:
            return
        self.blacklisted.add(device_index)
        # Its cached blocks are unreachable: invalidate so locality-aware
        # scheduling stops steering work at the dead device.
        self.gmm.invalidate_device(device_index)
        self.gstream_manager.mark_blacklisted(device_index)
        if self.obs is not None:
            device = self.devices[device_index]
            tracer = self.obs.tracer
            tracer.instant("device.blacklisted", "fault",
                           tracer.track(device.name, "sched"),
                           device=device.name, cause=cause)
            self.obs.registry.counter("device.blacklisted",
                                      device=device.name).inc()

    def healthy_device_indices(self) -> List[int]:
        """Indices of in-service (non-blacklisted) devices."""
        return [i for i in range(len(self.devices))
                if i not in self.blacklisted]

    def gpu_available(self) -> bool:
        """True while at least one device remains in service."""
        return bool(self.healthy_device_indices())

    # -- metrics ------------------------------------------------------------------
    def kernel_seconds(self) -> float:
        """Total kernel execution time across this worker's devices."""
        return sum(d.kernel_seconds for d in self.devices)

    def pcie_bytes(self) -> int:
        """Total H2D + D2H traffic across this worker's devices."""
        return sum(d.h2d_bytes + d.d2h_bytes for d in self.devices)
