"""GPUManager: the per-worker component GFlink adds to every slave (§3.4).

"GPUManager, which resides in each worker in the cluster, manages GPU
computing resources (e.g., GPU memory, GPU context) and cooperates with
TaskManager to accomplish the tasks assigned to GPUs."  It owns:

* the node's :class:`~repro.gpu.device.GPUDevice` s,
* the native runtime + :class:`~repro.core.channels.CUDAWrapper`
  (CUDAWrapper/CUDAStub communication, §4.1),
* the :class:`~repro.core.gmemory.GMemoryManager` (automatic device memory
  + cache, §4.2),
* the :class:`~repro.core.gstream.GStreamManager` (scheduling + pipeline, §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.simclock import Environment, Event
from repro.core.channels import CommCosts, CUDAWrapper
from repro.core.gmemory import EvictionPolicy, GMemoryManager
from repro.core.gstream import GStreamManager
from repro.core.gwork import GWork
from repro.gpu.device import GPUDevice
from repro.gpu.kernel import KernelRegistry
from repro.gpu.runtime import CUDARuntime
from repro.gpu.specs import get_spec


@dataclass(frozen=True)
class GPUManagerConfig:
    """Tunables of the per-worker GPU stack."""

    cache_bytes_per_device: int = 1 << 30     # per-app cache region capacity
    eviction_policy: EvictionPolicy = EvictionPolicy.FIFO
    #: String form of the eviction policy ("fifo" | "no-evict" | "lru");
    #: when set, overrides ``eviction_policy`` — the config-file-friendly
    #: spelling of the same knob.
    cache_policy: Optional[str] = None
    streams_per_gpu: int = 2
    block_nbytes: int = 8 * (1 << 20)         # pipeline block ("page") size
    comm_costs: CommCosts = CommCosts()
    locality_aware: bool = True               # Algorithm 5.1's GID step

    def resolved_policy(self) -> EvictionPolicy:
        if self.cache_policy is None:
            return self.eviction_policy
        return EvictionPolicy(self.cache_policy.lower())


class GPUManager:
    """All GPU machinery of one worker node."""

    def __init__(self, env: Environment, worker_name: str,
                 gpu_spec_names: Sequence[str], registry: KernelRegistry,
                 config: Optional[GPUManagerConfig] = None, obs=None):
        self.env = env
        self.worker_name = worker_name
        self.config = config or GPUManagerConfig()
        self.obs = obs
        self.devices: List[GPUDevice] = [
            GPUDevice(env, get_spec(name), index=i,
                      name=f"{worker_name}-gpu{i}")
            for i, name in enumerate(gpu_spec_names)
        ]
        self.runtime = CUDARuntime(env, self.devices, registry)
        self.wrapper = CUDAWrapper(env, self.runtime,
                                   self.config.comm_costs)
        self.gmm = GMemoryManager(
            self.devices,
            cache_capacity_per_device=self.config.cache_bytes_per_device,
            policy=self.config.resolved_policy())
        self.gstream_manager = GStreamManager(
            env, self.devices, self.wrapper, self.gmm,
            streams_per_gpu=self.config.streams_per_gpu,
            block_nbytes=self.config.block_nbytes,
            locality_aware=self.config.locality_aware,
            obs=obs)

    # -- the TaskManager-facing API ------------------------------------------------
    def submit(self, work: GWork) -> Event:
        """Submit a GWork produced by a Flink task (producer→consumer edge)."""
        return self.gstream_manager.submit(work)

    def release_app(self, app_id: str) -> None:
        """Drop an application's GPU cache regions (job/application end)."""
        self.gmm.release_app(app_id)

    # -- metrics ------------------------------------------------------------------
    def kernel_seconds(self) -> float:
        """Total kernel execution time across this worker's devices."""
        return sum(d.kernel_seconds for d in self.devices)

    def pcie_bytes(self) -> int:
        """Total H2D + D2H traffic across this worker's devices."""
        return sum(d.h2d_bytes + d.d2h_bytes for d in self.devices)
