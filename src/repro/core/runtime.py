"""GFlink cluster runtime and session.

``GFlinkCluster`` is a :class:`~repro.flink.runtime.Cluster` whose workers
carry a :class:`~repro.core.gpumanager.GPUManager` each — "when the GFlink
system is started, it brings up one JobManager in the master, and one
TaskManager and GPUManager in every worker" (§3.3).  Everything else — HDFS,
the DAG scheduler, JobManager, TaskManagers — is inherited unchanged, which
is the paper's compatibility claim in code.

``GFlinkSession`` is the driver facade: it hands out :class:`~repro.core.gdst.GDST`
datasets, owns the application id that keys GPU cache regions, and augments
job metrics with GPU counters.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.common.simclock import Environment
from repro.core.gdst import GDST
from repro.core.gpumanager import GPUManager, GPUManagerConfig
from repro.flink.config import ClusterConfig
from repro.flink.fault import FailureInjector
from repro.flink.plan import Operator
from repro.flink.runtime import Cluster, FlinkSession
from repro.gpu.kernel import KernelRegistry, KernelSpec

_app_ids = itertools.count()


class GFlinkCluster(Cluster):
    """A heterogeneous CPU-GPU cluster: Flink runtime + per-worker GPUManagers."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 env: Optional[Environment] = None,
                 registry: Optional[KernelRegistry] = None,
                 gpu_config: Optional[GPUManagerConfig] = None):
        super().__init__(config, env)
        self.registry = registry or KernelRegistry()
        self.gpu_config = gpu_config or GPUManagerConfig()
        if self.config.gpus_per_worker:
            for worker in self.workers.values():
                if worker.gpumanager is None:
                    worker.gpumanager = GPUManager(
                        self.env, worker.name, self.config.gpus_per_worker,
                        self.registry, self.gpu_config, obs=self.obs)

    def _make_worker(self, name: str):
        """Elastic joiners get a GPUManager too (initial workers are armed
        by ``__init__`` above — the kernel registry does not exist yet while
        the base constructor builds them)."""
        worker = super()._make_worker(name)
        registry = getattr(self, "registry", None)
        if registry is not None and self.config.gpus_per_worker:
            worker.gpumanager = GPUManager(
                self.env, name, self.config.gpus_per_worker,
                registry, self.gpu_config, obs=self.obs)
        return worker

    @property
    def default_gpu_parallelism(self) -> int:
        """Default parallelism for one-partition-per-GPU datasets.

        Pinned to the *configured* shape (workers x GPUs per worker), not
        live membership, for the same reason as
        :attr:`~repro.flink.runtime.Cluster.default_parallelism`: partition
        counts decide per-partition kernel partials (block sums, bincounts),
        so counting joiners' devices would change results under churn.
        Joiners add capacity for placing the pinned partitions, not more
        partitions.
        """
        return max(self.config.n_workers * len(self.config.gpus_per_worker),
                   1)

    # -- cluster-wide GPU metrics ---------------------------------------------------
    def gpu_managers(self) -> list[GPUManager]:
        return [w.gpumanager for w in self.workers.values()
                if w.gpumanager is not None]

    def total_kernel_seconds(self) -> float:
        """Kernel time across every GPU in the cluster."""
        return sum(gm.kernel_seconds() for gm in self.gpu_managers())

    def total_pcie_bytes(self) -> int:
        """H2D+D2H bytes across every GPU in the cluster."""
        return sum(gm.pcie_bytes() for gm in self.gpu_managers())

    def release_app(self, app_id: str) -> None:
        """Release an application's GPU cache regions on all workers."""
        for gm in self.gpu_managers():
            gm.release_app(app_id)


class GFlinkSession(FlinkSession):
    """Driver session on a GFlink cluster.

    ``app_id`` identifies the application for GPU cache ownership: iterative
    drivers run many jobs under one app, sharing cached partitions (the
    paper's per-job cache region — a Flink iterative job maps to a session
    here, see DESIGN.md §3).
    """

    def __init__(self, cluster: GFlinkCluster,
                 failure_injector: Optional[FailureInjector] = None,
                 app_id: Optional[str] = None):
        super().__init__(cluster, failure_injector=failure_injector)
        self.app_id = app_id or f"app-{next(_app_ids)}"

    # -- GDST sources ------------------------------------------------------------
    def _as_gdst(self, ds) -> GDST:
        return GDST(self, ds.op)

    def from_collection(self, elements: Any, element_nbytes: float = 32.0,
                        scale: float = 1.0,
                        parallelism: Optional[int] = None) -> GDST:
        """A GDST from a driver-side collection."""
        return self._as_gdst(super().from_collection(
            elements, element_nbytes, scale=scale, parallelism=parallelism))

    def read_hdfs(self, path: str, element_nbytes: float,
                  parser: Optional[Callable[[Any], Any]] = None,
                  scale: float = 1.0,
                  parallelism: Optional[int] = None) -> GDST:
        """A GDST backed by an HDFS file."""
        return self._as_gdst(super().read_hdfs(
            path, element_nbytes, parser=parser, scale=scale,
            parallelism=parallelism))

    # -- kernels -----------------------------------------------------------------
    def register_kernel(self, spec: KernelSpec) -> KernelSpec:
        """Register a CUDA kernel ("provide CUDA kernels", §3.5)."""
        return self.cluster.registry.register(spec)

    # -- execution with GPU accounting ----------------------------------------------
    def execute_job(self, sink: Operator, job_name: str = "job"):
        cluster = self.cluster
        is_gflink = isinstance(cluster, GFlinkCluster)
        kernel0 = cluster.total_kernel_seconds() if is_gflink else 0.0
        pcie0 = cluster.total_pcie_bytes() if is_gflink else 0
        result = yield from super().execute_job(sink, job_name=job_name)
        if is_gflink:
            # Cluster-wide deltas: under concurrent applications these
            # include neighbours' traffic; per-app isolation would need
            # per-work attribution, which the benchmarks do not require.
            result.metrics.gpu_kernel_s = (cluster.total_kernel_seconds()
                                           - kernel0)
            result.metrics.pcie_bytes = cluster.total_pcie_bytes() - pcie0
        return result

    def release_gpu_cache(self) -> None:
        """End-of-application hook: release this app's GPU cache regions."""
        cluster = self.cluster
        if isinstance(cluster, GFlinkCluster):
            cluster.release_app(self.app_id)
