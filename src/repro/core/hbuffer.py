"""HBuffer: off-heap direct buffers, the GFlink-side half of the transfer path.

§4.1.2: "GFlink caches data in the off-heap memory (direct buffers in Java).
The contents of direct buffers reside outside of the normal garbage-collected
heap ... local libraries can get the user space's virtual address and then
read or write the buffer."  An :class:`HBuffer` therefore:

* has a stable "address" (is ``dma_capable``) when off-heap — the DMA engine
  can read it directly, skipping the heap→native copy of the naive path;
* can be page-locked (``cudaHostRegister``) for asynchronous transfers;
* knows its nominal byte size independently of the real sample it carries
  (dual-scale execution, DESIGN.md §2);
* splits into page-sized **blocks** for the block-processing model — §5.1:
  "the size of a block is set the same as that of a memory page ... the
  content of a GStruct can not be stored across pages", which we honor by
  flooring the per-block struct count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Type

import numpy as np

from repro.common.errors import LayoutError
from repro.core.gstruct import DataLayout, GStruct
from repro.flink.partition import real_len


@dataclass
class Block:
    """One page-sized slice of an HBuffer (unit of transfer and caching)."""

    index: int
    elements: Any            # real payload slice
    nominal_count: float     # elements the timing model charges for
    nbytes: int              # nominal bytes (<= page/block size)

    @property
    def real_count(self) -> int:
        return real_len(self.elements)


class HBuffer:
    """A host-side data region as GFlink manages it."""

    def __init__(self, elements: Any, element_nbytes: float,
                 scale: float = 1.0, off_heap: bool = True,
                 pinned: bool = False,
                 struct_cls: Optional[Type[GStruct]] = None,
                 layout: DataLayout = DataLayout.AOS,
                 cacheable: bool = True):
        if element_nbytes < 0:
            raise LayoutError(f"element_nbytes must be >= 0: {element_nbytes}")
        self.elements = elements
        self.element_nbytes = float(element_nbytes)
        self.scale = float(scale)
        self.off_heap = off_heap
        self.pinned = pinned
        self.struct_cls = struct_cls
        self.layout = layout
        # Per-buffer cache eligibility (§4.2.2 marks buffers Cache
        # individually): iteration-varying operands — KMeans centers, the
        # SpMV vector — must be re-uploaded every submission even when the
        # work's other inputs are cached.
        self.cacheable = cacheable

    # -- constructors ------------------------------------------------------------
    @classmethod
    def for_struct(cls, struct_cls: Type[GStruct], elements: np.ndarray,
                   scale: float = 1.0,
                   layout: DataLayout = DataLayout.AOS) -> "HBuffer":
        """An off-heap buffer whose bytes follow ``struct_cls``'s layout."""
        return cls(elements, element_nbytes=struct_cls.itemsize(),
                   scale=scale, off_heap=True, struct_cls=struct_cls,
                   layout=layout)

    @classmethod
    def heap_objects(cls, elements: Any, element_nbytes: float,
                     scale: float = 1.0) -> "HBuffer":
        """A JVM-heap collection of objects (the naive path's starting point).

        Not DMA-capable: the GC may move it, so any GPU transfer must first
        convert/copy it to native memory (§3.1).
        """
        return cls(elements, element_nbytes=element_nbytes, scale=scale,
                   off_heap=False)

    # -- sizes ----------------------------------------------------------------
    @property
    def real_count(self) -> int:
        return real_len(self.elements)

    @property
    def nominal_count(self) -> float:
        return self.real_count * self.scale

    @property
    def nbytes(self) -> float:
        """Nominal byte size — what transfers are charged for."""
        return self.nominal_count * self.element_nbytes

    @property
    def dma_capable(self) -> bool:
        """Off-heap buffers have stable addresses the DMA engine can use."""
        return self.off_heap

    # -- block splitting -----------------------------------------------------------
    def elements_per_block(self, block_nbytes: int) -> int:
        """Whole structs per block (§5.1: no struct straddles a page)."""
        if self.element_nbytes <= 0:
            return max(self.real_count, 1)
        per = int(block_nbytes // self.element_nbytes)
        if per < 1:
            raise LayoutError(
                f"block size {block_nbytes} smaller than one element "
                f"({self.element_nbytes} B)")
        return per

    def split_blocks(self, block_nbytes: int) -> List[Block]:
        """Split into page-sized blocks of whole elements.

        The *nominal* element count is spread over the blocks: each block
        carries nominal ``real_count_of_block * scale`` elements, so the sum
        over blocks equals the buffer's nominal size.
        """
        n = self.real_count
        if n == 0:
            return []
        # Nominal elements per block is bounded by the page; real elements
        # per block shrink proportionally so every block is page-sized in
        # nominal terms.
        nominal_per_block = self.elements_per_block(block_nbytes)
        real_per_block = max(1, int(nominal_per_block / self.scale))
        blocks: List[Block] = []
        for index, lo in enumerate(range(0, n, real_per_block)):
            hi = min(lo + real_per_block, n)
            chunk = self.elements[lo:hi]
            nominal = (hi - lo) * self.scale
            blocks.append(Block(index=index, elements=chunk,
                                nominal_count=nominal,
                                nbytes=int(nominal * self.element_nbytes)))
        return blocks

    def derive(self, elements: Any,
               element_nbytes: Optional[float] = None) -> "HBuffer":
        """A new buffer with the same placement flags and new contents."""
        return HBuffer(
            elements,
            element_nbytes=self.element_nbytes
            if element_nbytes is None else element_nbytes,
            scale=self.scale, off_heap=self.off_heap, pinned=self.pinned,
            struct_cls=self.struct_cls, layout=self.layout)

    def __repr__(self) -> str:  # pragma: no cover
        where = "off-heap" if self.off_heap else "heap"
        return (f"<HBuffer {where} n={self.real_count} "
                f"(nominal {self.nominal_count:.3g}, {self.nbytes:.3g} B)>")
