"""GDST: the GPU-based DataSet (§3.5).

Adds the GPU-based user interfaces to the DST abstraction: ``gpu_map``,
``gpu_map_partition`` (the paper's ``gpuMapPartition``/``gpuMapBlock`` —
block processing is implicit: the GStreamManager splits partitions into
page-sized blocks) and ``gpu_reduce``.  Each GPU transformation compiles to
a :class:`GpuMapPartitionOp`, whose subtasks *produce* a
:class:`~repro.core.gwork.GWork` and hand it to the worker's GPUManager —
the producer–consumer decoupling of §5.

CPU transformations inherited from :class:`~repro.flink.dataset.DataSet`
remain available and return GDSTs, because GFlink "is compatible with the
compile-time and run-time of Flink".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigError, KernelError
from repro.core.channels import CommMode
from repro.core.gstream import _assemble
from repro.core.gstruct import DataLayout
from repro.flink.fault import TaskFailure
from repro.core.gwork import GWork, KernelStage
from repro.core.hbuffer import HBuffer
from repro.flink.dataset import DataSet, OpCost
from repro.flink.partition import Partition, real_len
from repro.flink.plan import Operator, ShipStrategy


def _attach_host_stream(ctx, work: GWork) -> None:
    """Wire the pipelined executor's input block stream into a GWork.

    When the subtask's primary input is still being streamed onto the host
    (``ctx.in_stream``), the GPU pipeline's H2D stage must wait for each
    device block's bytes to arrive — the three-stage pipeline becomes
    demand-driven by upstream availability.  Mapped-memory works read host
    buffers from inside the kernel, block by block, with no staging queue
    to gate — they run ungated and the JobManager's end-of-task barrier
    keeps their timing honest.
    """
    stream = getattr(ctx, "in_stream", None)
    if stream is None or work.mapped_memory:
        return
    work.host_stream = stream
    work.host_stream_slot = getattr(ctx, "in_slot", None)
    # The stream is consumed at H2D granularity; any later CPU charge on
    # this context (e.g. result handling) must not re-consume it.
    ctx._stream_consumed = True


def _submit_gwork(op_name: str, ctx, gpumanager, work: GWork):
    """Submit a GWork and unwrap the result (shared by all GPU operators).

    Kernel errors are deterministic and not retryable; anything else is a
    task failure the JobManager schedules around.  Per-kernel stage timings
    recorded by the pipeline are folded into the job metrics.
    """
    try:
        out_hbuf = yield gpumanager.submit(work)
    except KernelError:
        # Bad kernel name / wrong outputs: deterministic, not retryable.
        raise
    except Exception as exc:
        # A failed GWork (device fault, transient kernel crash) is a
        # task failure: the JobManager re-executes the subtask, which
        # re-submits the work — Flink's schedule-around-failures story
        # extended to the GPU path.
        raise TaskFailure(op_name, ctx.subtask_index, attempt=-1,
                          cause=repr(exc)) from exc
    totals = getattr(ctx.metrics, "gpu_stage_seconds", None)
    if totals is not None:
        for kernel_name, seconds in work.stage_seconds.items():
            totals[kernel_name] = totals.get(kernel_name, 0.0) + seconds
    return out_hbuf


def _check_degraded(op_name: str, ctx, gpumanager) -> bool:
    """True when this subtask must run its kernels on the CPU.

    Every device of the worker is blacklisted: with ``cpu_fallback`` on the
    subtask degrades gracefully; otherwise it fails as a (retryable) task
    failure — a re-placed attempt may land on a worker with healthy GPUs.
    """
    if gpumanager.gpu_available():
        return False
    if not gpumanager.config.cpu_fallback:
        raise TaskFailure(op_name, ctx.subtask_index, attempt=-1,
                          cause="all GPU devices blacklisted")
    return True


def _cpu_fallback(op_name: str, ctx, gpumanager, part: Partition,
                  stage_specs: List[tuple]):
    """Execute a kernel chain on the CPU (GPU→CPU graceful degradation).

    Kernels are functional (``fn(inputs, params) -> {"out": ...}``), so the
    *same* function runs on the host — over the same page-sized blocks the
    GPU pipeline would use, so reduce-style kernels emit identical per-block
    partials and results match the fault-free run bit for bit.  Time is
    charged through the CPU iterator cost model at the kernel's per-element
    FLOPs.  ``stage_specs`` is ``[(kernel_name, params, extra_arrays), ...]``.
    """
    registry = gpumanager.runtime.registry
    primary = HBuffer(part.elements, part.element_nbytes, scale=part.scale)
    blocks = primary.split_blocks(gpumanager.config.block_nbytes)
    results: Dict[int, Any] = {}
    for blk in blocks:
        cur = blk.elements
        for kernel_name, params, extras in stage_specs:
            spec = registry.get(kernel_name)
            in_arrays = {"in": cur}
            in_arrays.update(extras)
            out = spec.fn(in_arrays, dict(params))
            if "out" not in out:
                raise ConfigError(
                    f"kernel {kernel_name!r} produced no 'out'")
            cur = out["out"]
        results[blk.index] = cur
    for kernel_name, params, extras in stage_specs:
        spec = registry.get(kernel_name)
        yield from ctx.charge_compute(part.nominal_count,
                                      spec.flops_per_element)
    metrics = ctx.metrics
    if hasattr(metrics, "fallback_tasks"):
        metrics.fallback_tasks += 1
    obs = getattr(getattr(ctx, "cluster", None), "obs", None)
    if obs is not None:
        tracer = obs.tracer
        tracer.instant("task.cpu_fallback", "fault",
                       tracer.track(ctx.worker.name, "fallback"),
                       op=op_name, subtask=ctx.subtask_index)
        obs.registry.counter("fallback.cpu_tasks", op=op_name).inc()
    return _assemble(results)


class GpuMapPartitionOp(Operator):
    """A partition-wise GPU transformation (gpuMapPartition, Alg. 3.1)."""

    def __init__(self, source: Operator, kernel_name: str, app_id: str,
                 extra_inputs: Optional[Dict[str, "ExtraInput"]] = None,
                 params: Optional[Dict[str, Any]] = None,
                 params_fn: Optional[Callable[[], Dict[str, Any]]] = None,
                 cache: bool = False,
                 cache_key_base: Optional[Any] = None,
                 out_element_nbytes: Optional[float] = None,
                 comm_mode: CommMode = CommMode.GFLINK,
                 cuda_block_size: int = 256,
                 layout: DataLayout = DataLayout.AOS,
                 scale_semantics: str = "auto",
                 mapped_memory: bool = False,
                 parallelism: Optional[int] = None,
                 name: Optional[str] = None):
        super().__init__(name or f"gpu-map-partition({kernel_name})",
                         [source], parallelism, [ShipStrategy.FORWARD],
                         OpCost())
        if scale_semantics not in ("auto", "map", "flatmap", "reduce"):
            raise ConfigError(
                f"scale_semantics must be auto/map/flatmap/reduce: "
                f"{scale_semantics!r}")
        self.scale_semantics = scale_semantics
        self.kernel_name = kernel_name
        self.app_id = app_id
        self.extra_inputs = dict(extra_inputs or {})
        self.params = dict(params or {})
        self.params_fn = params_fn
        self.cache = cache
        self.cache_key_base = (cache_key_base if cache_key_base is not None
                               else source.uid)
        self.out_elem_nbytes = out_element_nbytes
        self.comm_mode = comm_mode
        self.cuda_block_size = cuda_block_size
        self.layout = layout
        self.mapped_memory = mapped_memory

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        gpumanager = ctx.worker.gpumanager
        if gpumanager is None:
            raise ConfigError(
                f"worker {ctx.worker.name} has no GPUManager; use a "
                f"GFlinkCluster with gpus_per_worker configured")
        if part.real_count == 0:
            return Partition(index=ctx.subtask_index, elements=[],
                             element_nbytes=self.out_element_nbytes(part),
                             scale=part.scale, worker=ctx.worker.name)
        if _check_degraded(self.name, ctx, gpumanager):
            params = dict(self.params)
            if self.params_fn is not None:
                params.update(self.params_fn())
            extras = {name: extra.supplier()
                      for name, extra in self.extra_inputs.items()}
            out_elements = yield from _cpu_fallback(
                self.name, ctx, gpumanager, part,
                [(self.kernel_name, params, extras)])
        else:
            work = self._build_gwork(ctx, part)
            out_hbuf = yield from _submit_gwork(self.name, ctx, gpumanager,
                                                work)
            out_elements = out_hbuf.elements
        out_real = real_len(out_elements)
        scale = self._output_scale(part, out_real)
        return Partition(index=ctx.subtask_index, elements=out_elements,
                         element_nbytes=self.out_element_nbytes(part),
                         scale=scale, worker=ctx.worker.name)

    def _output_scale(self, part: Partition, out_real: int) -> float:
        """Nominal scaling of the kernel output.

        * ``map`` — one out per in: keep the input's scale.
        * ``flatmap`` — variable fan-out realized on the sample: the sample
          selectivity stands for the nominal one, so the scale carries over.
        * ``reduce`` — the kernel emits *real* partials (per block): scale 1.
        * ``auto`` — map when counts match, reduce otherwise (the two common
          kernel shapes).
        """
        if self.scale_semantics in ("map", "flatmap"):
            return part.scale
        if self.scale_semantics == "reduce":
            return 1.0
        return part.scale if out_real == part.real_count else 1.0

    def _build_gwork(self, ctx, part: Partition) -> GWork:
        # GStruct data is raw bytes in off-heap memory already: creating the
        # HBuffer is free.  Non-array payloads model plain JVM objects and
        # pay the conversion penalty via the JNI_HEAP path semantics.
        primary = HBuffer(part.elements, part.element_nbytes,
                          scale=part.scale,
                          off_heap=self.comm_mode is CommMode.GFLINK,
                          pinned=self.comm_mode is CommMode.GFLINK,
                          layout=self.layout)
        in_buffers = {"in": primary}
        for name, extra in self.extra_inputs.items():
            in_buffers[name] = extra.to_hbuffer(self.comm_mode)
        out_buffer = HBuffer(
            [], self.out_element_nbytes(part), scale=part.scale,
            off_heap=self.comm_mode is CommMode.GFLINK,
            pinned=self.comm_mode is CommMode.GFLINK)
        params = dict(self.params)
        if self.params_fn is not None:
            params.update(self.params_fn())
        work = GWork(
            execute_name=self.kernel_name,
            ptx_path=f"/{self.kernel_name}.ptx",
            in_buffers=in_buffers,
            out_buffer=out_buffer,
            size=part.nominal_count,
            block_size=self.cuda_block_size,
            cache=self.cache,
            cache_key=(self.cache_key_base, part.index),
            params=params,
            app_id=self.app_id,
            out_element_nbytes=self.out_elem_nbytes,
            comm_mode=self.comm_mode,
            mapped_memory=self.mapped_memory,
        )
        _attach_host_stream(ctx, work)
        return work

    def out_element_nbytes(self, input_partition) -> float:
        if self.out_elem_nbytes is not None:
            return self.out_elem_nbytes
        if input_partition is not None:
            return input_partition.element_nbytes
        return 8.0


class FusedGpuOp(Operator):
    """A chain of element-wise GPU operators executing as ONE GWork.

    The GPU analogue of :class:`repro.flink.optimizer.FusedMapOp`: the
    subtask builds a single GWork whose :class:`~repro.core.gwork.KernelStage`
    list holds every member's kernel.  The pipeline uploads the primary
    input once, launches the stages back-to-back against device-resident
    buffers and downloads only the final output — the intermediates never
    cross PCIe.

    Cache mapping: operator *i+1* asking to cache its input (``cache=True``)
    becomes stage *i* caching its output, keyed by *i+1*'s
    ``cache_key_base`` — so iterative jobs hit the same keys fused or not,
    and a resumed chain skips the already-computed prefix.
    """

    def __init__(self, source: Operator, stages: List[GpuMapPartitionOp]):
        name = "gpu-chain(" + "->".join(s.name for s in stages) + ")"
        super().__init__(name, [source], None, [ShipStrategy.FORWARD],
                         OpCost())
        if len(stages) < 2:
            raise ConfigError("a GPU chain needs at least two stages")
        for op in stages:
            if op.mapped_memory:
                raise ConfigError(
                    "mapped-memory GPU operators cannot be chained")
        self.stages = list(stages)
        first = self.stages[0]
        self.app_id = first.app_id
        self.comm_mode = first.comm_mode
        self.layout = first.layout

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        gpumanager = ctx.worker.gpumanager
        if gpumanager is None:
            raise ConfigError(
                f"worker {ctx.worker.name} has no GPUManager; use a "
                f"GFlinkCluster with gpus_per_worker configured")
        if part.real_count == 0:
            return Partition(index=ctx.subtask_index, elements=[],
                             element_nbytes=self.out_element_nbytes(part),
                             scale=part.scale, worker=ctx.worker.name)
        if _check_degraded(self.name, ctx, gpumanager):
            stage_specs = []
            for op in self.stages:
                params = dict(op.params)
                if op.params_fn is not None:
                    params.update(op.params_fn())
                extras = {name: extra.supplier()
                          for name, extra in op.extra_inputs.items()}
                stage_specs.append((op.kernel_name, params, extras))
            out_elements = yield from _cpu_fallback(
                self.name, ctx, gpumanager, part, stage_specs)
        else:
            work = self._build_gwork(ctx, part)
            out_hbuf = yield from _submit_gwork(self.name, ctx, gpumanager,
                                                work)
            out_elements = out_hbuf.elements
        out_real = real_len(out_elements)
        scale = self._output_scale(part, out_real)
        return Partition(index=ctx.subtask_index, elements=out_elements,
                         element_nbytes=self.out_element_nbytes(part),
                         scale=scale, worker=ctx.worker.name)

    def _output_scale(self, part: Partition, out_real: int) -> float:
        """Nominal scaling of the chain's final output.

        The last stage's semantics decide, exactly as unfused — except that
        an ``auto`` tail downstream of a flatmap-style stage must keep the
        input's scale (the count change is explained upstream, not by a
        reduce-style contraction)."""
        last = self.stages[-1]
        if last.scale_semantics in ("map", "flatmap"):
            return part.scale
        if last.scale_semantics == "reduce":
            return 1.0
        if any(s.scale_semantics == "flatmap" for s in self.stages[:-1]):
            return part.scale
        return part.scale if out_real == part.real_count else 1.0

    def _build_gwork(self, ctx, part: Partition) -> GWork:
        first = self.stages[0]
        primary = HBuffer(part.elements, part.element_nbytes,
                          scale=part.scale,
                          off_heap=self.comm_mode is CommMode.GFLINK,
                          pinned=self.comm_mode is CommMode.GFLINK,
                          layout=self.layout)
        in_buffers = {"in": primary}
        kernel_stages: List[KernelStage] = []
        per_elem = float(part.element_nbytes)
        for i, op in enumerate(self.stages):
            # Namespace each member's secondary operands so two stages may
            # both have e.g. a "centers" input without colliding.
            extra: Dict[str, str] = {}
            for arg, operand in op.extra_inputs.items():
                alias = f"s{i}:{arg}"
                in_buffers[alias] = operand.to_hbuffer(self.comm_mode)
                extra[arg] = alias
            params = dict(op.params)
            if op.params_fn is not None:
                params.update(op.params_fn())
            if op.out_elem_nbytes is not None:
                per_elem = op.out_elem_nbytes
            nxt = self.stages[i + 1] if i + 1 < len(self.stages) else None
            kernel_stages.append(KernelStage(
                execute_name=op.kernel_name,
                params=params,
                out_element_nbytes=per_elem,
                block_size=op.cuda_block_size,
                extra=extra,
                # Operator i+1 caching its input == stage i caching its
                # output, under i+1's (stable) cache_key_base.
                cache_output=nxt is not None and nxt.cache,
                cache_key=((nxt.cache_key_base, part.index)
                           if nxt is not None and nxt.cache else None),
            ))
        cache = first.cache or any(s.cache_output for s in kernel_stages)
        out_buffer = HBuffer(
            [], per_elem, scale=part.scale,
            off_heap=self.comm_mode is CommMode.GFLINK,
            pinned=self.comm_mode is CommMode.GFLINK)
        work = GWork(
            execute_name="+".join(op.kernel_name for op in self.stages),
            ptx_path=f"/{self.stages[0].kernel_name}.ptx",
            in_buffers=in_buffers,
            out_buffer=out_buffer,
            size=part.nominal_count,
            block_size=first.cuda_block_size,
            cache=cache,
            cache_key=((first.cache_key_base, part.index) if cache
                       else None),
            app_id=self.app_id,
            out_element_nbytes=per_elem,
            comm_mode=self.comm_mode,
            stages=kernel_stages,
            primary_cached=first.cache,
        )
        _attach_host_stream(ctx, work)
        return work

    def out_element_nbytes(self, input_partition) -> float:
        per_elem = (float(input_partition.element_nbytes)
                    if input_partition is not None else 8.0)
        for op in self.stages:
            if op.out_elem_nbytes is not None:
                per_elem = op.out_elem_nbytes
        return per_elem


class GpuJoinOp(Operator):
    """GPU hash equi-join (§3.5.2's deferred "Join ... can also be
    implemented in GPUs").

    Both inputs are hash-shuffled by key (the CPU-side exchange, exactly as
    for a CPU join); each subtask then runs the registered join kernel on
    its bucket pair: the left bucket streams through the block pipeline as
    the primary input, the right bucket uploads whole as a secondary
    operand (the build side of a GPU hash join).
    """

    def __init__(self, left: Operator, right: Operator,
                 left_key: Callable, right_key: Callable,
                 kernel_name: str, app_id: str,
                 params: Optional[Dict[str, Any]] = None,
                 out_element_nbytes: Optional[float] = None,
                 comm_mode: CommMode = CommMode.GFLINK,
                 parallelism: Optional[int] = None,
                 name: Optional[str] = None):
        super().__init__(name or f"gpu-join({kernel_name})",
                         [left, right], parallelism,
                         [ShipStrategy.HASH, ShipStrategy.HASH], OpCost())
        self.left_key = left_key
        self.right_key = right_key
        self.kernel_name = kernel_name
        self.app_id = app_id
        self.params = dict(params or {})
        self.out_elem_nbytes = out_element_nbytes
        self.comm_mode = comm_mode

    def key_fn_for_input(self, i):
        return self.left_key if i == 0 else self.right_key

    def execute_subtask(self, ctx, inputs):
        left, right = inputs
        gpumanager = ctx.worker.gpumanager
        if gpumanager is None:
            raise ConfigError(
                f"worker {ctx.worker.name} has no GPUManager")
        if left.real_count == 0 or right.real_count == 0:
            return Partition(index=ctx.subtask_index, elements=[],
                             element_nbytes=self.out_element_nbytes(left),
                             scale=1.0, worker=ctx.worker.name)
        if _check_degraded(self.name, ctx, gpumanager):
            out_elements = yield from _cpu_fallback(
                self.name, ctx, gpumanager,
                left.derive(_as_array(left.elements)),
                [(self.kernel_name, dict(self.params),
                  {"right": _as_array(right.elements)})])
            scale = max(left.scale, right.scale)
            return Partition(index=ctx.subtask_index, elements=out_elements,
                             element_nbytes=self.out_element_nbytes(left),
                             scale=scale, worker=ctx.worker.name)
        primary = HBuffer(_as_array(left.elements), left.element_nbytes,
                          scale=left.scale, off_heap=True, pinned=True)
        build_side = HBuffer(_as_array(right.elements),
                             right.element_nbytes, scale=right.scale,
                             off_heap=True, pinned=True, cacheable=False)
        work = GWork(
            execute_name=self.kernel_name,
            in_buffers={"in": primary, "right": build_side},
            out_buffer=HBuffer([], self.out_element_nbytes(left),
                               pinned=True),
            size=left.nominal_count + right.nominal_count,
            params=dict(self.params), app_id=self.app_id,
            out_element_nbytes=self.out_elem_nbytes,
            comm_mode=self.comm_mode)
        out_hbuf = yield from _submit_gwork(self.name, ctx, gpumanager, work)
        out_elements = out_hbuf.elements
        # Join fan-out realized on the sample stands for the nominal one.
        scale = max(left.scale, right.scale)
        return Partition(index=ctx.subtask_index, elements=out_elements,
                         element_nbytes=self.out_element_nbytes(left),
                         scale=scale, worker=ctx.worker.name)

    def out_element_nbytes(self, input_partition) -> float:
        if self.out_elem_nbytes is not None:
            return self.out_elem_nbytes
        if input_partition is not None:
            return input_partition.element_nbytes
        return 8.0


def _as_array(elements: Any) -> Any:
    """Hash-exchange buckets arrive as lists; kernels want arrays."""
    if isinstance(elements, np.ndarray):
        return elements
    try:
        return np.asarray(elements)
    except Exception:  # heterogeneous payloads stay as lists
        return elements


class ExtraInput:
    """A broadcast-style secondary kernel operand (e.g. KMeans centers).

    ``cacheable`` controls GPU caching: iteration-varying operands (KMeans
    centers, the SpMV vector) must stay ``cacheable=False`` so every
    submission re-uploads the fresh value; static operands (PageRank's
    out-degree table) may ride the GPU cache with the primary input
    (use :meth:`constant`).
    """

    def __init__(self, supplier: Callable[[], Any], element_nbytes: float,
                 scale: float = 1.0, cacheable: bool = False):
        self.supplier = supplier
        self.element_nbytes = element_nbytes
        self.scale = scale
        self.cacheable = cacheable

    @classmethod
    def constant(cls, value: Any, element_nbytes: float, scale: float = 1.0,
                 cacheable: bool = True) -> "ExtraInput":
        """An operand whose value never changes (cache-eligible by default)."""
        return cls(lambda: value, element_nbytes, scale, cacheable=cacheable)

    def to_hbuffer(self, mode: CommMode) -> HBuffer:
        return HBuffer(self.supplier(), self.element_nbytes, scale=self.scale,
                       off_heap=mode is CommMode.GFLINK,
                       pinned=mode is CommMode.GFLINK,
                       cacheable=self.cacheable)


class GDST(DataSet):
    """GPU-based DataSet: DST plus gpuMap/gpuReduce interfaces."""

    def gpu_map_partition(self, kernel_name: str,
                          extra_inputs: Optional[Dict[str, ExtraInput]] = None,
                          params: Optional[Dict[str, Any]] = None,
                          params_fn: Optional[Callable[[], Dict]] = None,
                          cache: bool = False,
                          cache_key_base: Optional[Any] = None,
                          out_element_nbytes: Optional[float] = None,
                          comm_mode: CommMode = CommMode.GFLINK,
                          cuda_block_size: int = 256,
                          layout: DataLayout = DataLayout.AOS,
                          scale_semantics: str = "auto",
                          mapped_memory: bool = False,
                          parallelism: Optional[int] = None,
                          name: Optional[str] = None) -> "GDST":
        """Run a registered kernel over each partition, block by block.

        ``cache=True`` keeps the partition's blocks in the GPU cache keyed by
        ``(cache_key_base, partition index)`` — reuse across iterations needs
        a stable ``cache_key_base`` (defaults to the source dataset's plan
        uid, which is stable when the driver reuses the same persisted
        dataset object).
        """
        app_id = getattr(self.session, "app_id", "default")
        return self._derive(GpuMapPartitionOp(
            self.op, kernel_name, app_id, extra_inputs=extra_inputs,
            params=params, params_fn=params_fn, cache=cache,
            cache_key_base=cache_key_base,
            out_element_nbytes=out_element_nbytes, comm_mode=comm_mode,
            cuda_block_size=cuda_block_size, layout=layout,
            scale_semantics=scale_semantics, mapped_memory=mapped_memory,
            parallelism=parallelism, name=name))

    def gpu_map(self, kernel_name: str, **kwargs) -> "GDST":
        """Element-wise GPU map — same machinery, one output per input."""
        kwargs.setdefault("name", f"gpu-map({kernel_name})")
        kwargs.setdefault("scale_semantics", "map")
        return self.gpu_map_partition(kernel_name, **kwargs)

    def gpu_flat_map(self, kernel_name: str, **kwargs) -> "GDST":
        """``gpuFlatMap`` (§3.5.2): zero-or-more outputs per input element.

        The kernel returns the flattened output block; the sample's fan-out
        stands in for the nominal one (nominal scaling carries over).
        """
        kwargs.setdefault("name", f"gpu-flat-map({kernel_name})")
        kwargs.setdefault("scale_semantics", "flatmap")
        return self.gpu_map_partition(kernel_name, **kwargs)

    def gpu_filter(self, kernel_name: str, **kwargs) -> "GDST":
        """GPU-side filter: the kernel returns the surviving elements."""
        kwargs.setdefault("name", f"gpu-filter({kernel_name})")
        kwargs.setdefault("scale_semantics", "flatmap")
        return self.gpu_map_partition(kernel_name, **kwargs)

    def gpu_join(self, other: "GDST", left_key: Callable,
                 right_key: Callable, kernel_name: str,
                 params: Optional[Dict[str, Any]] = None,
                 out_element_nbytes: Optional[float] = None,
                 parallelism: Optional[int] = None,
                 name: Optional[str] = None) -> "GDST":
        """GPU hash equi-join with ``other`` (§3.5.2's deferred Join).

        The registered kernel receives ``{"in": left_block, "right":
        right_bucket}`` and returns the joined block as ``{"out": ...}``.
        """
        if other.session is not self.session:
            raise ValueError("cannot join datasets from different sessions")
        app_id = getattr(self.session, "app_id", "default")
        return self._derive(GpuJoinOp(
            self.op, other.op, left_key, right_key, kernel_name, app_id,
            params=params, out_element_nbytes=out_element_nbytes,
            parallelism=parallelism, name=name))

    def gpu_reduce(self, kernel_name: str, final_fn: Callable,
                   cost: OpCost = OpCost(),
                   **kwargs) -> "GDST":
        """GPU partial reduction per block + CPU final combine.

        The kernel emits one (or few) partials per block; the tiny final
        fold runs on the CPU ("The GReducer ... cannot obtain good speedup
        as it is not compute-intensive", §6.6.2 — so only the bulk phase
        goes to the GPU).
        """
        kwargs.setdefault("name", f"gpu-reduce({kernel_name})")
        partials = self.gpu_map_partition(kernel_name, **kwargs)
        return partials.reduce(final_fn, cost=cost,
                               name=f"final-reduce({kernel_name})")
