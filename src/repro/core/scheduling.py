"""The adaptive locality-aware scheduling scheme (paper §5.3).

Two algorithms, implemented verbatim so they can be unit-tested in
isolation from the stream machinery:

* :func:`schedule_work` — **Algorithm 5.1** ``Scheduling(inBuffer, outBuffer)``:
  ask the GMemoryManager which GPU caches the most input bytes (``GID``);
  prefer an idle stream in that GPU's bulk; otherwise balance to the bulk
  with the most idle streams; if no stream is idle anywhere, push the work
  into the GWork pool — the ``GID`` queue when locality exists, else the
  shortest queue.
* :func:`steal_work` — **Algorithm 5.2** ``Stealing(GID)``: a stream that
  finished its work first drains its own GPU's queue; if that is empty it
  steals from the longest queue; if all queues are empty it returns None
  (the stream goes idle).

:func:`locality_keys` feeds Algorithm 5.1: it enumerates every cache key a
GWork could hit on a device — primary input blocks, whole secondary
operands, and (for fused chains) per-block stage outputs — so iterative
jobs land on the GPU already holding their chain intermediates.
"""

from __future__ import annotations

from typing import Deque, Hashable, List, Optional, Protocol, Sequence

from repro.core.gmemory import GMemoryManager
from repro.core.gwork import GWork, PRIMARY, STAGE_OUT


class StreamLike(Protocol):  # pragma: no cover - structural typing only
    device_index: int


class ScheduleDecision:
    """Outcome of Algorithm 5.1 for one GWork."""

    __slots__ = ("stream", "queue_index", "gid")

    def __init__(self, stream: Optional[StreamLike],
                 queue_index: Optional[int], gid: Optional[int]):
        self.stream = stream          # idle stream to run on, if any
        self.queue_index = queue_index  # pool queue to park in, otherwise
        self.gid = gid                # locality GPU (None = no affinity)

    @property
    def dispatched(self) -> bool:
        """True when an idle stream was found (streamID != -1)."""
        return self.stream is not None


def schedule_work(work: GWork, gmm: GMemoryManager,
                  locality_keys: List[Hashable],
                  idle_by_bulk: Sequence[List[StreamLike]],
                  queues: Sequence[Deque[GWork]]) -> ScheduleDecision:
    """Algorithm 5.1: pick an idle stream or a pool queue for ``work``.

    ``idle_by_bulk[g]`` lists the idle streams of GPU ``g``'s bulk;
    ``queues[g]`` is GPU ``g``'s FIFO queue in the GWork pool.  The chosen
    stream is *not* removed from ``idle_by_bulk`` — the caller owns that
    state transition.
    """
    # Step 1: GMemoryManager determines the locality GPU.
    gid = gmm.locality_gid(work, locality_keys)

    def most_idle_bulk() -> Optional[StreamLike]:
        best = max(range(len(idle_by_bulk)),
                   key=lambda g: (len(idle_by_bulk[g]), -g))
        if idle_by_bulk[best]:
            return idle_by_bulk[best][0]
        return None

    # Step 2: prefer an idle stream in the GID bulk; else balance.
    if gid is not None:
        if idle_by_bulk[gid]:
            return ScheduleDecision(idle_by_bulk[gid][0], None, gid)
        stream = most_idle_bulk()
        if stream is not None:
            return ScheduleDecision(stream, None, gid)
    else:
        stream = most_idle_bulk()
        if stream is not None:
            return ScheduleDecision(stream, None, None)

    # Step 3: no idle stream anywhere -> park in the GWork pool.
    if gid is not None:
        return ScheduleDecision(None, gid, gid)
    shortest = min(range(len(queues)), key=lambda g: (len(queues[g]), g))
    return ScheduleDecision(None, shortest, None)


def locality_keys(work: GWork, block_nbytes: int) -> List[Hashable]:
    """All cache keys whose presence on a device makes it a locality GPU.

    Covers the primary input's per-block keys, the whole-operand keys of
    secondary inputs, and — for a chained GWork — the per-block stage-output
    keys of every caching stage, so a resumable chain counts as locality
    even when its raw input was never cached.
    """
    if not work.cache:
        return []
    keys: List[Hashable] = []
    n_primary_blocks = 0
    for name, hbuf in work.in_buffers.items():
        if name == PRIMARY:
            blocks = hbuf.split_blocks(block_nbytes)
            n_primary_blocks = len(blocks)
            if work.primary_cached:
                keys.extend((work.cache_key, PRIMARY, b.index)
                            for b in blocks)
        else:
            keys.append((work.cache_key, name))
    for stage in work.kernel_stages:
        if stage.cache_output and stage.cache_key is not None:
            keys.extend((stage.cache_key, STAGE_OUT, i)
                        for i in range(n_primary_blocks))
    return keys


def steal_work(gid: int, queues: Sequence[Deque[GWork]]) -> Optional[GWork]:
    """Algorithm 5.2: next work for an idle stream of GPU ``gid``."""
    if queues[gid]:
        return queues[gid].popleft()
    if all(not q for q in queues):
        return None
    longest = max(range(len(queues)), key=lambda g: (len(queues[g]), -g))
    return queues[longest].popleft()
