"""GWork: the unit of GPU work (paper §3.5.3, Algorithm 3.1).

The driver assembles a GWork — input/output buffers, the kernel ("ptx path"
plus the exported function name), launch geometry, cache flags — and submits
it to the worker's GStreamManager.  "After submission, the input buffer and
output buffer will be transformed to GPUs automatically ... After executions
on GPUs, the results are pulled from GPUs to output buffer automatically."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional

from repro.common.errors import ConfigError
from repro.common.simclock import Event
from repro.core.channels import CommMode
from repro.core.hbuffer import HBuffer

_gwork_ids = itertools.count()


@dataclass
class GWork:
    """One schedulable piece of GPU work.

    Field names mirror Algorithm 3.1 (``ptxPath``, ``executeName``,
    ``blockSize``/``gridSize``, ``inBuffer``/``outBuffer``, ``cache``,
    ``cacheKey``), pythonized.
    """

    execute_name: str                       # registered kernel name
    in_buffers: Dict[str, HBuffer]          # kernel arg name -> host buffer
    out_buffer: HBuffer                     # results land here
    size: float                             # nominal element count
    ptx_path: str = ""                      # informational, as in the paper
    block_size: int = 256                   # CUDA threads per block
    grid_size: Optional[int] = None         # None: derived from size
    cache: bool = False                     # cache inputs on the device
    cache_key: Optional[Hashable] = None    # e.g. (partition id, block id)
    params: Dict[str, Any] = field(default_factory=dict)
    app_id: str = "default"                 # owns the device cache region
    out_element_nbytes: Optional[float] = None
    #: §4.1.2: "The only way for these [one-copy-engine] GPUs to use the
    #: PCIe bus in full duplex is to use device-mapped host memory instead."
    #: When set, the kernel reads/writes the pinned host buffers directly
    #: over PCIe (zero copy): no explicit H2D/D2H, reads and writes overlap.
    mapped_memory: bool = False

    # Runtime state (set by the GStreamManager).
    work_id: int = field(default_factory=lambda: next(_gwork_ids))
    comm_mode: CommMode = CommMode.GFLINK
    completion: Optional[Event] = None
    assigned_device: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigError(f"GWork size must be >= 0: {self.size}")
        if self.cache and self.cache_key is None:
            raise ConfigError("cache=True requires a cache_key")
        if not self.in_buffers:
            raise ConfigError("GWork needs at least one input buffer")

    @property
    def input_nbytes(self) -> float:
        """Total nominal input bytes (drives locality decisions)."""
        return sum(h.nbytes for h in self.in_buffers.values())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<GWork #{self.work_id} {self.execute_name} "
                f"n={self.size:.3g} cache={self.cache}>")
