"""GWork: the unit of GPU work (paper §3.5.3, Algorithm 3.1).

The driver assembles a GWork — input/output buffers, the kernel ("ptx path"
plus the exported function name), launch geometry, cache flags — and submits
it to the worker's GStreamManager.  "After submission, the input buffer and
output buffer will be transformed to GPUs automatically ... After executions
on GPUs, the results are pulled from GPUs to output buffer automatically."

A GWork may carry a *chain* of kernel stages (GPU operator chaining): the
pipeline uploads the primary input once, launches the stages back-to-back
against device-resident intermediates, and downloads only the final output.
A plain single-kernel GWork is the one-stage special case.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.common.errors import ConfigError
from repro.common.simclock import Event
from repro.core.channels import CommMode
from repro.core.hbuffer import HBuffer

#: Primary input name: this buffer is blocked and pipelined; all other
#: inputs ship whole before the pipeline starts (broadcast-style operands
#: such as KMeans centers or the SpMV vector).
PRIMARY = "in"

#: Cache-key tag for a chained stage's device-resident output block.
#: Full keys are ``(stage.cache_key, STAGE_OUT, block index)``.
STAGE_OUT = "stage-out"

_gwork_ids = itertools.count()


@dataclass
class KernelStage:
    """One kernel launch inside a (possibly fused) GWork.

    ``extra`` maps the kernel's secondary argument names to keys of the
    work's ``in_buffers`` — fused chains namespace their per-stage operands
    (``"s2:centers"``) while each kernel still sees its own plain names.

    ``cache_output`` keeps this stage's per-block output resident in the
    application's cache region under ``(cache_key, STAGE_OUT, block)``, so
    iterative jobs resume the chain mid-way on the next submission.
    """

    execute_name: str
    params: Dict[str, Any] = field(default_factory=dict)
    out_element_nbytes: Optional[float] = None
    block_size: int = 256
    extra: Dict[str, str] = field(default_factory=dict)
    cache_output: bool = False
    cache_key: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if self.cache_output and self.cache_key is None:
            raise ConfigError(
                f"stage {self.execute_name!r}: cache_output requires a "
                f"cache_key")


@dataclass
class GWork:
    """One schedulable piece of GPU work.

    Field names mirror Algorithm 3.1 (``ptxPath``, ``executeName``,
    ``blockSize``/``gridSize``, ``inBuffer``/``outBuffer``, ``cache``,
    ``cacheKey``), pythonized.
    """

    execute_name: str                       # registered kernel name
    in_buffers: Dict[str, HBuffer]          # kernel arg name -> host buffer
    out_buffer: HBuffer                     # results land here
    size: float                             # nominal element count
    ptx_path: str = ""                      # informational, as in the paper
    block_size: int = 256                   # CUDA threads per block
    grid_size: Optional[int] = None         # None: derived from size
    cache: bool = False                     # cache inputs on the device
    cache_key: Optional[Hashable] = None    # e.g. (partition id, block id)
    params: Dict[str, Any] = field(default_factory=dict)
    app_id: str = "default"                 # owns the device cache region
    out_element_nbytes: Optional[float] = None
    #: §4.1.2: "The only way for these [one-copy-engine] GPUs to use the
    #: PCIe bus in full duplex is to use device-mapped host memory instead."
    #: When set, the kernel reads/writes the pinned host buffers directly
    #: over PCIe (zero copy): no explicit H2D/D2H, reads and writes overlap.
    mapped_memory: bool = False
    #: GPU operator chaining: ordered kernel stages sharing device-resident
    #: intermediates.  None means "one stage": execute_name/params as-is.
    stages: Optional[List[KernelStage]] = None
    #: Whether the primary input's blocks may use the cache region (a fused
    #: chain caches stage outputs without necessarily caching its input).
    primary_cached: bool = True

    #: Pipelined executor wiring (repro.flink.pipeline.BlockStream): when
    #: the producing operator is still streaming the primary input's blocks
    #: onto the host, the H2D stage waits for each device block's bytes to
    #: be host-resident before uploading and acknowledges consumption so
    #: upstream backpressure credits return.  None = input fully resident.
    host_stream: Optional[Any] = None
    host_stream_slot: Optional[int] = None

    # Runtime state (set by the GStreamManager).
    work_id: int = field(default_factory=lambda: next(_gwork_ids))
    comm_mode: CommMode = CommMode.GFLINK
    completion: Optional[Event] = None
    assigned_device: Optional[int] = None
    #: Per-kernel execution seconds, filled by the pipeline as stages run.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigError(f"GWork size must be >= 0: {self.size}")
        if self.cache and self.cache_key is None:
            raise ConfigError("cache=True requires a cache_key")
        if not self.in_buffers:
            raise ConfigError("GWork needs at least one input buffer")
        if self.stages is not None and not self.stages:
            raise ConfigError("stages, when given, must be non-empty")
        if self.stages and self.mapped_memory:
            raise ConfigError(
                "mapped-memory execution does not support kernel chaining")

    @property
    def input_nbytes(self) -> float:
        """Total nominal input bytes (drives locality decisions)."""
        return sum(h.nbytes for h in self.in_buffers.values())

    @property
    def kernel_stages(self) -> List[KernelStage]:
        """The stage list; a plain GWork synthesizes its single stage."""
        if self.stages is not None:
            return list(self.stages)
        extra = {name: name for name in self.in_buffers if name != PRIMARY}
        return [KernelStage(execute_name=self.execute_name,
                            params=dict(self.params),
                            out_element_nbytes=self.out_element_nbytes,
                            block_size=self.block_size,
                            extra=extra)]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<GWork #{self.work_id} {self.execute_name} "
                f"n={self.size:.3g} cache={self.cache}>")
