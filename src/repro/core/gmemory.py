"""GMemoryManager: automatic device memory management + the GPU cache (§4.2).

Explicit ``cudaMalloc``/``cudaFree`` management is "complicated, error-prone
and a heavy burden" (§4.2) — GFlink's GMemoryManager does it automatically:
input/output buffers for a GWork are allocated before the transfers and
released after execution *unless* the data is marked for caching.

The cache (§4.2.2): each application owns a cache region per device,
reserved when the application starts and released when it ends.  Entries are
kept in a hash table keyed by ``(partition id, block id)``-style keys, each
mapping to the offset/size of the cached block, with a FIFO list for garbage
collection.  Two GC policies are provided, exactly the paper's two schemes:

* ``FIFO`` — evict oldest entries one by one until the new block fits;
* ``NO_EVICT`` — "when the cache region is fully utilized, no data can be
  cached", for working sets larger than the region (one iteration's data
  would otherwise evict itself before reuse).

A third policy, ``LRU``, goes beyond the paper: hits refresh an entry's
position in the list, so eviction removes the *least recently used* block —
better than FIFO when a hot subset (e.g. a fused chain's cached stage
outputs) is re-probed every iteration while cold blocks stream past.
Select it with the ``cache_policy`` config flag
(:class:`repro.core.gpumanager.GPUManagerConfig`).

The region also serves as the *spill* target for chained-kernel
intermediates: when a stage output of a fused GWork exceeds free device
memory, it borrows room in the region (and is removed as soon as the next
stage has consumed it) instead of failing the work.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Hashable, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.core.gwork import GWork
from repro.gpu.device import GPUDevice
from repro.gpu.memory import DeviceBuffer


class EvictionPolicy(Enum):
    """The two garbage-collection schemes of §4.2.2, plus LRU."""

    FIFO = "fifo"
    NO_EVICT = "no-evict"
    LRU = "lru"


@dataclass
class CacheEntry:
    """One cached block inside a region."""

    key: Hashable
    offset: int
    nbytes: int
    buffer: DeviceBuffer  # unregistered view into the region's reservation


@dataclass(frozen=True)
class CacheStats:
    """Aggregated cache statistics — the public observability view.

    Reports (:func:`repro.flink.report.gpu_report`) and metrics collection
    (:func:`repro.obs.export.collect_cluster`) read this instead of poking
    at the manager's private region table.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    spills: int = 0
    used_bytes: int = 0
    capacity_bytes: int = 0
    entries: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Optional[float]:
        """Hits over probes, or None when the cache was never probed."""
        return self.hits / self.probes if self.probes else None

    def merged(self, region: "CacheRegion") -> "CacheStats":
        """These stats plus one region's counters."""
        return CacheStats(
            hits=self.hits + region.hits,
            misses=self.misses + region.misses,
            evictions=self.evictions + region.evictions,
            spills=self.spills + region.spills,
            used_bytes=self.used_bytes + region.used,
            capacity_bytes=self.capacity_bytes + region.capacity,
            entries=self.entries + len(region))


class CacheRegion:
    """A per-application reservation of one device's memory.

    The hash table is an :class:`OrderedDict`, which doubles as the FIFO
    list ("a corresponding FIFO list is utilized to store the elements in the
    hash table").
    """

    def __init__(self, device: GPUDevice, capacity: int,
                 policy: EvictionPolicy):
        if capacity <= 0:
            raise ConfigError(f"cache capacity must be positive: {capacity}")
        self.device = device
        self.capacity = capacity
        self.policy = policy
        # One reservation from the device allocator backs the whole region.
        self.reservation = device.memory.alloc(capacity)
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._cursor = 0  # sequential allocation within the region
        self.used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spills = 0

    # -- lookup ----------------------------------------------------------------
    def lookup(self, key: Hashable) -> Optional[CacheEntry]:
        """Hash-table probe; counts hit/miss statistics."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
            if self.policy is EvictionPolicy.LRU:
                # Refresh recency: the list front stays the eviction victim.
                self._entries.move_to_end(key)
        return entry

    def entry(self, key: Hashable) -> Optional[CacheEntry]:
        """Probe without touching statistics or recency (internal reuse)."""
        return self._entries.get(key)

    def contains(self, key: Hashable) -> bool:
        """Probe without touching statistics (scheduling uses this)."""
        return key in self._entries

    def cached_bytes_for(self, keys: List[Hashable]) -> int:
        """Sum of cached sizes among ``keys`` (Algorithm 5.1's input)."""
        return sum(self._entries[k].nbytes
                   for k in keys if k in self._entries)

    # -- insertion -----------------------------------------------------------------
    def try_insert(self, key: Hashable, nbytes: int) -> Optional[CacheEntry]:
        """Reserve room for a new block; returns its entry or None.

        FIFO: evict oldest entries until the block fits (paper: "the first
        objects in the FIFO list will be selected one by one ... until the
        sizes are bigger than the size of the new partition").
        NO_EVICT: fail when the region is full.
        """
        if nbytes > self.capacity:
            return None
        if key in self._entries:
            raise ConfigError(f"cache key {key!r} already present")
        if nbytes > self.capacity - self.used:
            if self.policy is EvictionPolicy.NO_EVICT:
                return None
            while nbytes > self.capacity - self.used and self._entries:
                _, victim = self._entries.popitem(last=False)
                self.used -= victim.nbytes
                victim.buffer.data = None
                self.evictions += 1
        buffer = DeviceBuffer(nbytes, self.device.name)
        entry = CacheEntry(key=key, offset=self._cursor, nbytes=nbytes,
                           buffer=buffer)
        self._cursor = (self._cursor + nbytes) % max(self.capacity, 1)
        self._entries[key] = entry
        self.used += nbytes
        return entry

    # -- removal -------------------------------------------------------------------
    def remove(self, key: Hashable) -> None:
        """Drop an entry (spilled intermediates, invalidated blocks)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self.used -= entry.nbytes
        entry.buffer.data = None

    def remove_spills(self, work_id: int) -> None:
        """Sweep any spill entries a failed GWork left behind."""
        stale = [k for k in self._entries
                 if isinstance(k, tuple) and len(k) >= 2
                 and k[0] == "spill" and k[1] == work_id]
        for key in stale:
            self.remove(key)

    def release(self) -> None:
        """Free the reservation (application finished)."""
        self._entries.clear()
        self.used = 0
        if not self.reservation.freed:
            self.device.memory.free(self.reservation)

    def __len__(self) -> int:
        return len(self._entries)


class GMemoryManager:
    """Per-worker automatic device memory management and cache coordination."""

    def __init__(self, devices: List[GPUDevice],
                 cache_capacity_per_device: int,
                 policy: EvictionPolicy = EvictionPolicy.FIFO):
        self.devices = list(devices)
        self.cache_capacity = cache_capacity_per_device
        self.policy = policy
        # (app_id, device_index) -> CacheRegion, created lazily per §4.2.2
        # ("allocated when the job starts").
        self._regions: Dict[Tuple[str, int], CacheRegion] = {}

    # -- regions -------------------------------------------------------------------
    def region(self, app_id: str, device_index: int) -> CacheRegion:
        """The cache region of ``app_id`` on device ``device_index``.

        The user-requested capacity is clamped to half the device's memory
        so working buffers (kernel inputs/outputs in flight) always fit —
        a 1 GiB region request must not brick a 1 GiB GTX 750.
        """
        key = (app_id, device_index)
        if key not in self._regions:
            device = self.devices[device_index]
            capacity = min(self.cache_capacity, device.memory.capacity // 2)
            self._regions[key] = CacheRegion(device, capacity, self.policy)
        return self._regions[key]

    def release_app(self, app_id: str) -> None:
        """Release all of an application's cache regions (job end)."""
        for key in [k for k in self._regions if k[0] == app_id]:
            self._regions.pop(key).release()

    def has_region(self, app_id: str, device_index: int) -> bool:
        return (app_id, device_index) in self._regions

    def invalidate_device(self, device_index: int) -> None:
        """Drop every application's cache region on one device.

        Called when a device is blacklisted after faults: its cached blocks
        are unreachable and must stop attracting locality-aware scheduling
        (``locality_gid`` never returns a device with no regions).
        """
        for key in [k for k in self._regions if k[1] == device_index]:
            self._regions.pop(key).release()

    # -- Algorithm 5.1, step 1 ---------------------------------------------------
    def locality_gid(self, work: GWork,
                     keys: List[Hashable]) -> Optional[int]:
        """Device holding the most cached input bytes for ``work``.

        ``keys`` are the work's block-level cache keys; the paper: "select
        the GPU with the biggest sum of input bytes in its device memory and
        return its index named GID".  Returns None when nothing relevant is
        cached anywhere.
        """
        if not work.cache:
            return None
        best_gid, best_bytes = None, 0
        for gid in range(len(self.devices)):
            if not self.has_region(work.app_id, gid):
                continue
            region = self._regions[(work.app_id, gid)]
            cached = region.cached_bytes_for(keys)
            if cached > best_bytes:
                best_gid, best_bytes = gid, cached
        return best_gid

    # -- statistics ----------------------------------------------------------------
    def stats(self, app_id: str) -> Dict[int, Tuple[int, int, int]]:
        """Per-device (hits, misses, evictions) for an application."""
        out = {}
        for (app, gid), region in self._regions.items():
            if app == app_id:
                out[gid] = (region.hits, region.misses, region.evictions)
        return out

    def apps(self) -> List[str]:
        """Application ids currently holding cache regions."""
        return sorted({app for app, _ in self._regions})

    def cache_stats(self, app_id: Optional[str] = None
                    ) -> Dict[int, CacheStats]:
        """Per-device aggregated :class:`CacheStats`.

        With ``app_id``, only that application's regions count; otherwise
        every application's regions are folded together per device.  This is
        the supported way to read cache statistics from outside.
        """
        out: Dict[int, CacheStats] = {}
        for (app, gid), region in self._regions.items():
            if app_id is not None and app != app_id:
                continue
            out[gid] = out.get(gid, CacheStats()).merged(region)
        return out
