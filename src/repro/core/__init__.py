"""GFlink core: the paper's contribution.

This package extends the Flink substrate (:mod:`repro.flink`) to the
simulated CPU-GPU cluster (:mod:`repro.gpu`), implementing every mechanism
§3–§5 of the paper describe:

* :mod:`repro.core.gstruct` — ``GStruct``: C-style struct declarations with
  explicit field order and alignment whose raw bytes match the layout of the
  CUDA-side struct, in AoS, SoA or AoP form (§3.5.1, §2.1).
* :mod:`repro.core.hbuffer` — ``HBuffer``: off-heap direct buffers outside
  the garbage-collected heap, page-locked for async DMA, split into
  page-sized blocks for the block-processing model (§4.1.2, §5.1).
* :mod:`repro.core.channels` — the JVM↔GPU communication strategy: a control
  channel (CUDAWrapper→JNI→CUDAStub, per-call redirect overhead) and a
  transfer channel (direct DMA from off-heap memory), plus the baseline
  paths (JVM-heap copy + serde, RPC) the paper compares against (§4.1).
* :mod:`repro.core.gwork` — ``GWork``: the unit of GPU work the driver
  assembles and submits (Algorithm 3.1).
* :mod:`repro.core.gmemory` — ``GMemoryManager``: automatic device memory
  management and the GPU cache (hash table + FIFO or no-evict garbage
  collection) (§4.2).
* :mod:`repro.core.gstream` — ``GStreamManager``: producer–consumer
  execution, GWork pool with per-GPU FIFO queues, GStream pool with per-GPU
  bulks, and the three-stage H2D/K/D2H pipeline (§5).
* :mod:`repro.core.scheduling` — Algorithm 5.1 (locality-aware scheduling)
  and Algorithm 5.2 (locality-aware work stealing).
* :mod:`repro.core.gpumanager` — the per-worker GPUManager tying the above
  together (§3.4).
* :mod:`repro.core.gdst` — ``GDST``: the GPU-based DataSet with ``gpu_map``,
  ``gpu_map_partition``, ``gpu_reduce`` (§3.5).
* :mod:`repro.core.runtime` — ``GFlinkCluster`` / ``GFlinkSession``: the
  drop-in runtime ("compatible with the compile-time and run-time of
  Flink").
* :mod:`repro.core.costmodel` — the §6.3 analytical model (Eq. 1–4 and
  Observations 1–3).
"""

from repro.core.gstruct import (
    GStruct,
    GStruct4,
    GStruct8,
    StructField,
    DataLayout,
    Float32,
    Double64,
    Int32,
    Int64,
    Unsigned32,
    Unsigned64,
)
from repro.core.hbuffer import HBuffer
from repro.core.gwork import GWork, KernelStage
from repro.core.runtime import GFlinkCluster, GFlinkSession
from repro.core.gdst import GDST, FusedGpuOp
from repro.core.costmodel import Calibration

__all__ = [
    "GStruct",
    "GStruct4",
    "GStruct8",
    "StructField",
    "DataLayout",
    "Float32",
    "Double64",
    "Int32",
    "Int64",
    "Unsigned32",
    "Unsigned64",
    "HBuffer",
    "GWork",
    "KernelStage",
    "GFlinkCluster",
    "GFlinkSession",
    "GDST",
    "FusedGpuOp",
    "Calibration",
]
