"""The analytical time-cost model of §6.3 (Eq. 1–4, Observations 1–3).

Benchmarks use this to sanity-check measured simulation times against the
closed-form model, and EXPERIMENTS.md quotes both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.flink.config import CPUSpec, FlinkConfig
from repro.gpu.kernel import KernelSpec, LaunchConfig
from repro.gpu.specs import GPUSpec, TESLA_C2050


@dataclass(frozen=True)
class Calibration:
    """All calibration constants in one place (DESIGN.md §5)."""

    cpu: CPUSpec = field(default_factory=CPUSpec)
    flink: FlinkConfig = field(default_factory=FlinkConfig)
    gpu: GPUSpec = TESLA_C2050


@dataclass
class PhaseTimes:
    """Per-MapReduce-phase times feeding Eq. 1."""

    map_s: float = 0.0
    reduce_s: float = 0.0
    shuffle_s: float = 0.0


def total_time(phases: List[PhaseTimes], submit_s: float, io_s: float,
               schedule_s: float) -> float:
    """Eq. 1: ``T_total = Σ_i (T_map_i + T_reduce_i + T_shuffle_i)
    + T_submit + T_IO + T_schedule``."""
    return (sum(p.map_s + p.reduce_s + p.shuffle_s for p in phases)
            + submit_s + io_s + schedule_s)


def speedup_total(t_flink: float, t_gflink: float) -> float:
    """Eq. 2: overall speedup of an application on GFlink."""
    if t_gflink <= 0:
        raise ValueError("GFlink time must be positive")
    return t_flink / t_gflink


def map_cpu_time(n_elements: float, flops_per_element: float,
                 calib: Calibration, cores: int = 1) -> float:
    """CPU-side Map-phase time under the iterator model (denominator of Eq. 3)."""
    per = (calib.flink.element_overhead_s
           + flops_per_element / calib.cpu.flops_per_core)
    return n_elements * per / cores


def map_gpu_time(n_elements: float, kernel: KernelSpec,
                 in_bytes: float, out_bytes: float,
                 calib: Calibration, cached_in_bytes: float = 0.0) -> float:
    """Eq. 4: ``T_map_gpu = T_gt_data + T_ge + T_gt_result``.

    ``cached_in_bytes`` models the GPU cache scheme removing part of the
    input transfer (Observation 2's second clause).
    """
    spec = calib.gpu
    transfer_in = max(in_bytes - cached_in_bytes, 0.0) / spec.pcie_effective_bps
    launch = LaunchConfig.for_elements(max(n_elements, 1))
    execute = kernel.execution_seconds(n_elements, launch, spec)
    transfer_out = out_bytes / spec.pcie_effective_bps
    return transfer_in + execute + transfer_out


def map_speedup(n_elements: float, flops_per_element: float,
                kernel: KernelSpec, in_bytes: float, out_bytes: float,
                calib: Calibration, cached_in_bytes: float = 0.0) -> float:
    """Eq. 3: ``Speedup_map = T_map_cpu / T_map_gpu`` (single core vs one GPU)."""
    cpu = map_cpu_time(n_elements, flops_per_element, calib)
    gpu = map_gpu_time(n_elements, kernel, in_bytes, out_bytes, calib,
                       cached_in_bytes)
    return cpu / gpu


def observation3_overhead_fraction(compute_s: float, submit_s: float,
                                   io_s: float, schedule_s: float) -> float:
    """Observation 3: the fraction of runtime spent in fixed overheads.

    "If the data to be processed is small, the T_submit, T_IO and T_schedule
    will occupy a large part of the total execution time."
    """
    total = compute_s + submit_s + io_s + schedule_s
    if total <= 0:
        return 0.0
    return (submit_s + io_s + schedule_s) / total
