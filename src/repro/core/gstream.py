"""GStreamManager: producer–consumer GPU execution with pipelining (§5).

Flink tasks *produce* GWork; GStreams *consume* it.  A GStream is a
"high-level virtual computing resource which [is] similar to threads for
CPUs" — a simulation process bound to one GPU that executes GWork through
the **three-stage pipeline**: host-to-device transfers (H2D), kernel
execution (K) and device-to-host transfers (D2H) run as three coupled stage
processes over the work's page-sized blocks, so block *k*'s kernel overlaps
block *k+1*'s upload and block *k−1*'s download.  Whether H2D and D2H can
overlap each other is decided by the device's copy-engine count (§4.1.2).

Components (Fig. 4): the **GWork Scheduler** (Algorithm 5.1, in
:mod:`repro.core.scheduling`), the **GWork Pool** (one FIFO queue per GPU),
and the **GStream Pool** (streams grouped into per-GPU bulks, each stream
stealing per Algorithm 5.2 when it runs dry).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, Hashable, List, Optional

import numpy as np

from repro.common.errors import ConfigError, DeviceFaultError, InterruptError
from repro.common.resources import Store
from repro.common.simclock import Environment, Event
from repro.core.channels import CUDAWrapper
from repro.core.gmemory import CacheRegion, GMemoryManager
from repro.core.gwork import GWork, KernelStage, PRIMARY, STAGE_OUT
from repro.core.hbuffer import Block, HBuffer
from repro.core.scheduling import locality_keys, schedule_work, steal_work
from repro.gpu.device import GPUDevice
from repro.gpu.kernel import LaunchConfig
from repro.gpu.memory import DeviceBuffer
from repro.obs import Observability

#: Depth of the inter-stage queues: how many blocks may be in flight between
#: two stages.  2 suffices for full overlap of a 3-stage linear pipeline.
PIPELINE_DEPTH = 2


class GStream:
    """One virtual stream: a consumer process bound to a device."""

    def __init__(self, env: Environment, manager: "GStreamManager",
                 device_index: int, stream_index: int):
        self.env = env
        self.manager = manager
        self.device_index = device_index
        self.stream_index = stream_index
        self.mailbox: Store = Store(env, capacity=1)
        self.works_executed = 0
        self.process = env.process(
            self._run(), name=f"gstream-{device_index}-{stream_index}")

    @property
    def device(self) -> GPUDevice:
        return self.manager.devices[self.device_index]

    def _run(self) -> Generator[Event, None, None]:
        while True:
            work = yield self.mailbox.get()
            if work is None:  # shutdown sentinel (tests)
                return
            while work is not None:
                yield from self._execute(work)
                if self.manager.is_blacklisted(self.device_index):
                    break  # out-of-service streams stop pulling work
                # Algorithm 5.2: steal before going idle.
                work = steal_work(self.device_index, self.manager.queues)
            self.manager.mark_idle(self)

    # -- one GWork through the three-stage pipeline --------------------------------
    def _execute(self, work: GWork) -> Generator[Event, None, None]:
        mgr = self.manager
        work.assigned_device = self.device_index
        device = self.device
        region = (mgr.gmm.region(work.app_id, self.device_index)
                  if work.cache else None)
        # Chained works may borrow an already-existing region to spill
        # oversized intermediates even when they cache nothing themselves.
        spill_region = region
        if (spill_region is None and work.stages
                and mgr.gmm.has_region(work.app_id, self.device_index)):
            spill_region = mgr.gmm.region(work.app_id, self.device_index)
        live_before = {buf.buffer_id for buf in device.memory.live_buffers()}
        tracer = mgr.obs.tracer
        with tracer.span(f"gwork:{work.execute_name}", "gpu.pipeline",
                         tracer.track(device.name,
                                      f"stream{self.stream_index}"),
                         kernel=work.execute_name, work=work.work_id,
                         cached=bool(work.cache)) as wsp:
            try:
                injected = (mgr.faults.consume_fault(self.device_index)
                            if mgr.faults is not None else None)
                if injected is not None:
                    if injected in ("gpu-hang", "pcie-timeout"):
                        # The fault is only *detected* after the driver
                        # watchdog window — the stream is stuck that long.
                        yield self.env.timeout(
                            mgr.faults.config.fault_timeout_s)
                    raise DeviceFaultError(injected, device.name)
                secondary = yield from self._stage_secondary_inputs(
                    work, device, region)
                if work.mapped_memory:
                    output_elements = yield from self._mapped_execute(
                        work, device, secondary)
                else:
                    output_elements = yield from self._pipeline(
                        work, device, region, spill_region, secondary)
            except Exception as exc:  # surface through the completion event
                # Reclaim this work's in-flight allocations (cache-region
                # buffers are unregistered views and survive): a retried work
                # must not leak the device dry.
                wsp.set(error=type(exc).__name__)
                for buf in device.memory.live_buffers():
                    if buf.buffer_id not in live_before:
                        device.memory.free(buf)
                if spill_region is not None:
                    spill_region.remove_spills(work.work_id)
                self._temp_secondary = []
                if mgr.faults is not None:
                    mgr.faults.record_device_failure(self.device_index, exc)
                if (work.completion is not None
                        and not work.completion.triggered):
                    work.completion.fail(exc)
                    # The producer may have been interrupted (its worker
                    # died) and no longer waits: an unclaimed failure must
                    # not crash the simulation loop.
                    work.completion.defused()
                self.works_executed += 1
                return
        out = work.out_buffer.derive(output_elements)
        if work.out_element_nbytes is not None:
            out.element_nbytes = work.out_element_nbytes
        self.works_executed += 1
        mgr.works_completed += 1
        mgr.obs.registry.counter("gwork.completed", device=device.name).inc()
        if work.completion is not None:
            work.completion.succeed(out)

    def _stage_secondary_inputs(self, work: GWork, device: GPUDevice,
                                region: Optional[CacheRegion]
                                ) -> Generator[Event, None, Dict[str, DeviceBuffer]]:
        """Upload non-primary operands whole (cache-aware)."""
        secondary: Dict[str, DeviceBuffer] = {}
        self._temp_secondary: List[DeviceBuffer] = []
        obs = self.manager.obs
        tracer = obs.tracer
        for name, hbuf in work.in_buffers.items():
            if name == PRIMARY:
                continue
            key = (work.cache_key, name)
            use_cache = region is not None and hbuf.cacheable
            if use_cache:
                entry = region.lookup(key)
                outcome = "hit" if entry is not None else "miss"
                tracer.instant("cache.probe", "gpu.cache",
                               tracer.track(device.name, "cache"),
                               operand=name, outcome=outcome)
                obs.registry.counter("gpu.cache.probe", device=device.name,
                                     outcome=outcome).inc()
                if entry is not None:
                    secondary[name] = entry.buffer
                    continue
                entry = region.try_insert(key, int(hbuf.nbytes))
            else:
                entry = None
            if entry is not None:
                dev_buf = entry.buffer
            else:
                dev_buf = yield from self.manager.wrapper.cuda_malloc(
                    device, int(hbuf.nbytes))
                self._temp_secondary.append(dev_buf)
            whole = Block(index=0, elements=hbuf.elements,
                          nominal_count=hbuf.nominal_count,
                          nbytes=int(hbuf.nbytes))
            window = yield from self.manager.wrapper.transfer_h2d_inline(
                device, dev_buf, whole, hbuf, work.comm_mode)
            # The engine-occupancy window is exact: spans on a copy lane
            # never overlap (queue wait is excluded, not hidden inside).
            tracer.complete("h2d", "gpu.device",
                            tracer.track(device.name, "copy:h2d"),
                            start=window[0], end=window[1],
                            nbytes=int(hbuf.nbytes), operand=name)
            obs.registry.counter("gpu.pcie.h2d.bytes",
                                 device=device.name).inc(int(hbuf.nbytes))
            obs.monitor.count("gpu.pcie.bytes", int(hbuf.nbytes),
                              device=device.name)
            secondary[name] = dev_buf
        return secondary

    def _pipeline(self, work: GWork, device: GPUDevice,
                  region: Optional[CacheRegion],
                  spill_region: Optional[CacheRegion],
                  secondary: Dict[str, DeviceBuffer]
                  ) -> Generator[Event, None, object]:
        wrapper = self.manager.wrapper
        primary = work.in_buffers[PRIMARY]
        stages = work.kernel_stages
        blocks = primary.split_blocks(self.manager.block_nbytes)
        to_kernel: Store = Store(self.env, capacity=PIPELINE_DEPTH)
        to_d2h: Store = Store(self.env, capacity=PIPELINE_DEPTH)
        results: Dict[int, object] = {}
        primary_region = region if work.primary_cached else None
        obs = self.manager.obs
        tracer = obs.tracer
        reg = obs.registry
        monitor = obs.monitor
        # Distinct lanes per engine role make the paper's overlap argument
        # visible in Perfetto: kernels on one row, each copy direction on
        # its own, cache probes as markers.
        h2d_track = tracer.track(device.name, "copy:h2d")
        d2h_track = tracer.track(device.name, "copy:d2h")
        kernel_track = tracer.track(device.name, "kernel")
        cache_track = tracer.track(device.name, "cache")
        h2d_bytes_ctr = reg.counter("gpu.pcie.h2d.bytes", device=device.name)
        d2h_bytes_ctr = reg.counter("gpu.pcie.d2h.bytes", device=device.name)
        # Pipelined executor: the producing operator may still be streaming
        # the primary input onto the host.  The H2D stage waits for each
        # device block's byte prefix before uploading (cache hits skip the
        # wait) and acknowledges consumption so backpressure credits return.
        host_stream = work.host_stream
        host_total = float(sum(b.nbytes for b in blocks)) or 1.0
        pipeline_track = tracer.track(device.name, "pipeline")

        def h2d_stage():
            host_cum = 0.0
            for blk in blocks:
                host_cum += blk.nbytes
                # A cached stage output lets the chain resume mid-way with
                # no upload at all: prefer the deepest one available.
                dev_buf, temp, resume = None, False, 0
                if region is not None:
                    for idx in range(len(stages) - 1, -1, -1):
                        st = stages[idx]
                        if not st.cache_output or st.cache_key is None:
                            continue
                        entry = region.lookup(
                            (st.cache_key, STAGE_OUT, blk.index))
                        if (entry is not None
                                and entry.buffer.data is not None):
                            dev_buf, resume = entry.buffer, idx + 1
                            break
                if dev_buf is None and primary_region is not None:
                    entry = primary_region.lookup(
                        (work.cache_key, PRIMARY, blk.index))
                    if entry is not None and entry.buffer.data is not None:
                        dev_buf = entry.buffer
                if region is not None or primary_region is not None:
                    outcome = ("stage-hit" if resume
                               else "primary-hit" if dev_buf is not None
                               else "miss")
                    tracer.instant("cache.probe", "gpu.cache", cache_track,
                                   block=blk.index, outcome=outcome)
                    reg.counter("gpu.cache.probe", device=device.name,
                                outcome=outcome).inc()
                if dev_buf is None:
                    if host_stream is not None:
                        evt = host_stream.when_fraction(host_cum / host_total)
                        if not evt.triggered:
                            host_stream.stall_count += 1
                            host_stream.starved_count += 1
                            reg.counter("pipeline.h2d.starved",
                                        device=device.name).inc()
                            stall_start = self.env.now
                            yield evt
                            starved = self.env.now - stall_start
                            host_stream.stall_seconds += starved
                            host_stream.starved_seconds += starved
                            # The registry counter above is sampled into
                            # the store; just drive the window clock here.
                            monitor.tick()
                            tracer.complete(
                                "h2d.starved", "pipeline", pipeline_track,
                                start=stall_start, end=self.env.now,
                                block=blk.index)
                    entry = (primary_region.try_insert(
                                 (work.cache_key, PRIMARY, blk.index),
                                 blk.nbytes)
                             if primary_region is not None else None)
                    if entry is not None:
                        dev_buf = entry.buffer
                    else:
                        dev_buf = yield from wrapper.cuda_malloc(
                            device, blk.nbytes)
                        temp = True
                    window = yield from wrapper.transfer_h2d_inline(
                        device, dev_buf, blk, primary, work.comm_mode)
                    tracer.complete("h2d", "gpu.device", h2d_track,
                                    start=window[0], end=window[1],
                                    nbytes=blk.nbytes, block=blk.index)
                    h2d_bytes_ctr.inc(blk.nbytes)
                    monitor.count("gpu.pcie.bytes", blk.nbytes,
                                  device=device.name)
                if host_stream is not None:
                    host_stream.ack_nbytes(
                        work.host_stream_slot,
                        host_cum / host_total * host_stream.total_nbytes)
                yield to_kernel.put((blk, dev_buf, temp, resume))
            yield to_kernel.put(None)

        def kernel_stage():
            while True:
                item = yield to_kernel.get()
                if item is None:
                    yield to_d2h.put(None)
                    return
                blk, cur, cur_temp, resume = item
                cur_spill = None
                real = blk.real_count
                nominal = blk.nominal_count
                if resume:
                    # Resuming from a cached intermediate: counts reflect
                    # that stage's output, not the raw block.
                    real = _result_len(cur.data)
                    nominal = (blk.nominal_count * real / blk.real_count
                               if blk.real_count else float(real))
                d2h_nominal = nominal
                out_per_elem = self._out_nbytes_per_element(work, primary)
                for idx in range(resume, len(stages)):
                    st = stages[idx]
                    out_per_elem = (st.out_element_nbytes
                                    if st.out_element_nbytes is not None
                                    else self._out_nbytes_per_element(
                                        work, primary))
                    out_nbytes = int(max(nominal * out_per_elem, 8))
                    out_dev, out_temp, out_spill = (
                        yield from self._stage_out_buffer(
                            work, device, region, spill_region, st, blk,
                            idx, out_nbytes))
                    launch = LaunchConfig.for_elements(
                        max(nominal, 1), st.block_size)
                    stage_inputs = {PRIMARY: cur}
                    for arg, alias in st.extra.items():
                        stage_inputs[arg] = secondary[alias]
                    kernel_result = yield from wrapper.launch_kernel_inline(
                        device, st.execute_name, nominal, launch,
                        inputs=stage_inputs,
                        outputs={"out": out_dev}, params=st.params,
                        layout=primary.layout)
                    spec = wrapper.runtime.registry.get(st.execute_name)
                    ksec = spec.execution_seconds(nominal, launch,
                                                  device.spec,
                                                  layout=primary.layout)
                    work.stage_seconds[st.execute_name] = (
                        work.stage_seconds.get(st.execute_name, 0.0) + ksec)
                    # The launch returns at kernel end while holding the
                    # exclusive compute engine, so [now - ksec, now] is the
                    # engine's occupancy window — kernel spans never overlap.
                    tracer.complete(st.execute_name, "gpu.device",
                                    kernel_track, start=self.env.now - ksec,
                                    end=self.env.now, block=blk.index,
                                    stage=idx)
                    reg.counter("gpu.kernel.seconds", device=device.name,
                                kernel=st.execute_name).inc(ksec)
                    monitor.count("gstream.engine_busy_s", ksec,
                                  device=device.name)
                    # Retire this stage's input: spilled intermediates give
                    # their region room back, temporaries are freed, cached
                    # buffers stay resident.
                    if cur_spill is not None and spill_region is not None:
                        spill_region.remove(cur_spill)
                    elif cur_temp:
                        yield from wrapper.cuda_free(device, cur)
                    cur, cur_temp, cur_spill = out_dev, out_temp, out_spill
                    out_real = _result_len(kernel_result.get("out"))
                    if idx == len(stages) - 1:
                        if out_real == real:
                            d2h_nominal = nominal  # map-style kernel
                        else:
                            d2h_nominal = out_real  # reduce-style partials
                    elif out_real != real:
                        # Mid-chain fan-out/-in realized on the sample
                        # stands for the nominal one (flatmap semantics).
                        nominal = (nominal * out_real / real if real
                                   else float(out_real))
                    real = out_real
                yield to_d2h.put((blk, cur, cur_temp, cur_spill,
                                  d2h_nominal, out_per_elem))

        def d2h_stage():
            while True:
                item = yield to_d2h.get()
                if item is None:
                    return
                blk, out_dev, out_temp, out_spill, d2h_nominal, per_elem = item
                nbytes = int(max(d2h_nominal * per_elem, 1))
                data, window = yield from wrapper.transfer_d2h_inline(
                    device, work.out_buffer, out_dev, nbytes,
                    work.comm_mode)
                tracer.complete("d2h", "gpu.device", d2h_track,
                                start=window[0], end=window[1],
                                nbytes=nbytes, block=blk.index)
                d2h_bytes_ctr.inc(nbytes)
                monitor.count("gpu.pcie.bytes", nbytes, device=device.name)
                if out_spill is not None and spill_region is not None:
                    spill_region.remove(out_spill)
                elif out_temp:
                    yield from wrapper.cuda_free(device, out_dev)
                results[blk.index] = data

        def guarded(stage_fn):
            # A failing stage aborts the pipeline; its siblings are then
            # interrupted and must exit quietly (no further allocations).
            def runner():
                try:
                    yield from stage_fn()
                except InterruptError:
                    pass
            return runner

        procs = [self.env.process(guarded(h2d_stage)(), name="h2d-stage"),
                 self.env.process(guarded(kernel_stage)(),
                                  name="kernel-stage"),
                 self.env.process(guarded(d2h_stage)(), name="d2h-stage")]
        try:
            yield self.env.all_of(procs)
        except Exception:
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt("pipeline failed")
            raise

        for buf in self._temp_secondary:
            yield from wrapper.cuda_free(device, buf)
        self._temp_secondary = []
        return _assemble(results)

    def _stage_out_buffer(self, work: GWork, device: GPUDevice,
                          region: Optional[CacheRegion],
                          spill_region: Optional[CacheRegion],
                          stage: KernelStage, blk: Block, stage_index: int,
                          nbytes: int):
        """Device room for one stage's output block.

        Caching stages write straight into their cache-region entry (created
        on first use, reused across iterations).  Everything else is a
        ``cudaMalloc`` temporary — unless the device is out of memory, in
        which case the block borrows room in the cache region ("spill") and
        returns it as soon as the next stage has consumed the data.

        Returns ``(buffer, is_temp, spill_key)``.
        """
        if (stage.cache_output and region is not None
                and stage.cache_key is not None):
            key = (stage.cache_key, STAGE_OUT, blk.index)
            entry = region.entry(key)
            if entry is None:
                entry = region.try_insert(key, nbytes)
            if entry is not None:
                return entry.buffer, False, None
        if nbytes > device.memory.available and spill_region is not None:
            spill_key = ("spill", work.work_id, blk.index, stage_index)
            entry = spill_region.try_insert(spill_key, nbytes)
            if entry is not None:
                spill_region.spills += 1
                return entry.buffer, False, spill_key
        buf = yield from self.manager.wrapper.cuda_malloc(device, nbytes)
        return buf, True, None

    def _mapped_execute(self, work: GWork, device: GPUDevice,
                        secondary: Dict[str, DeviceBuffer]
                        ) -> Generator[Event, None, object]:
        """Zero-copy execution over device-mapped host memory (§4.1.2).

        The kernel's loads and stores traverse PCIe directly: no explicit
        copies, no copy-engine involvement — reads and writes overlap even
        on a one-engine GPU (that is the whole point of mapped memory).
        The cost is that every byte moves at PCIe speed *during* the kernel,
        so the per-block time is ``max(kernel, max(in, out) wire time)``.
        """
        wrapper = self.manager.wrapper
        primary = work.in_buffers[PRIMARY]
        if not primary.pinned:
            raise ConfigError(
                "device-mapped execution requires a pinned (page-locked) "
                "host buffer")
        results: Dict[int, object] = {}
        out_per_elem = self._out_nbytes_per_element(work, primary)
        obs = self.manager.obs
        tracer = obs.tracer
        kernel_track = tracer.track(device.name, "kernel")
        for blk in primary.split_blocks(self.manager.block_nbytes):
            host_view = DeviceBuffer(blk.nbytes, device.name)
            host_view.data = blk.elements
            out_view = DeviceBuffer(int(max(blk.nominal_count
                                            * out_per_elem, 8)), device.name)
            launch = LaunchConfig.for_elements(max(blk.nominal_count, 1),
                                               work.block_size)
            spec = wrapper.runtime.registry.get(work.execute_name)
            kernel_s = spec.execution_seconds(
                blk.nominal_count, launch, device.spec,
                layout=primary.layout)
            out_real_guess = blk.nominal_count  # map-style upper bound
            wire_in = blk.nbytes / device.spec.pcie_effective_bps
            wire_out = (out_real_guess * out_per_elem
                        / device.spec.pcie_effective_bps)
            # Kernel and both wire directions fully overlap.
            mapped_s = max(kernel_s, wire_in, wire_out)
            with device.compute.request() as grant:
                yield grant
                yield wrapper._jni()
                yield self.env.timeout(mapped_s)
                tracer.complete(work.execute_name, "gpu.device",
                                kernel_track, start=self.env.now - mapped_s,
                                end=self.env.now, block=blk.index,
                                mapped=True)
                obs.registry.counter(
                    "gpu.kernel.seconds", device=device.name,
                    kernel=work.execute_name).inc(kernel_s)
                obs.monitor.count("gstream.engine_busy_s", kernel_s,
                                  device=device.name)
                device.kernel_seconds += kernel_s
                device.kernels_launched += 1
                device.h2d_bytes += blk.nbytes
                in_arrays = {PRIMARY: host_view.data,
                             **{k: v.data for k, v in secondary.items()}}
                out = spec.fn(in_arrays, dict(work.params))
                if "out" not in out:
                    raise ConfigError(
                        f"kernel {work.execute_name!r} produced no 'out'")
                device.d2h_bytes += int(
                    _result_len(out["out"]) * primary.scale * out_per_elem)
                results[blk.index] = out["out"]
        for buf in self._temp_secondary:
            yield from wrapper.cuda_free(device, buf)
        self._temp_secondary = []
        return _assemble(results)

    @staticmethod
    def _out_nbytes_per_element(work: GWork, primary: HBuffer) -> float:
        if work.out_element_nbytes is not None:
            return work.out_element_nbytes
        if work.out_buffer.element_nbytes > 0:
            return work.out_buffer.element_nbytes
        return primary.element_nbytes


def _result_len(data: object) -> int:
    if data is None:
        return 0
    if isinstance(data, np.ndarray):
        return int(data.shape[0]) if data.ndim else 1
    try:
        return len(data)  # type: ignore[arg-type]
    except TypeError:
        return 1


def _assemble(results: Dict[int, object]) -> object:
    """Concatenate per-block outputs in block order."""
    ordered = [results[i] for i in sorted(results)]
    if not ordered:
        return []
    if all(isinstance(r, np.ndarray) for r in ordered):
        arrays = [r if r.ndim else r.reshape(1) for r in ordered]
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
    merged: List[object] = []
    for r in ordered:
        if isinstance(r, (list, tuple)):
            merged.extend(r)
        elif isinstance(r, np.ndarray):
            merged.extend(list(r))
        else:
            merged.append(r)
    return merged


class GStreamManager:
    """Per-worker GWork scheduler + stream pool + work pool (Fig. 4)."""

    def __init__(self, env: Environment, devices: List[GPUDevice],
                 wrapper: CUDAWrapper, gmm: GMemoryManager,
                 streams_per_gpu: int = 2,
                 block_nbytes: int = 8 * (1 << 20),
                 locality_aware: bool = True,
                 obs: Optional[Observability] = None):
        if streams_per_gpu < 1:
            raise ConfigError("streams_per_gpu must be >= 1")
        if block_nbytes <= 0:
            raise ConfigError("block_nbytes must be positive")
        self.env = env
        # A disabled stand-in keeps every call site unconditional (spans and
        # instants are no-ops; the private registry still counts).
        self.obs = obs if obs is not None else Observability(env)
        self.devices = list(devices)
        self.wrapper = wrapper
        self.gmm = gmm
        self.block_nbytes = block_nbytes
        # Ablation switch: with locality off, Algorithm 5.1's GID step is
        # skipped and work balances blindly across bulks.
        self.locality_aware = locality_aware
        self.queues: List[Deque[GWork]] = [deque() for _ in devices]
        # Fault-domain controller (the owning GPUManager); None when the
        # manager is constructed standalone (unit tests) — no fault
        # machinery runs then.
        self.faults = None
        self.blacklisted_devices: set = set()
        self.bulks: List[List[GStream]] = []
        self.idle: List[List[GStream]] = []
        for gid in range(len(devices)):
            bulk = [GStream(env, self, gid, s) for s in range(streams_per_gpu)]
            self.bulks.append(bulk)
            self.idle.append(list(bulk))
        self.works_submitted = 0
        self.works_completed = 0

    # -- producer side ------------------------------------------------------------
    def submit(self, work: GWork) -> Event:
        """Submit a GWork; returns its completion event (Algorithm 5.1)."""
        work.completion = self.env.event()
        self.works_submitted += 1
        keys = self._locality_keys(work) if self.locality_aware else []
        bl = self.blacklisted_devices
        # Blacklisted bulks present no idle streams to Algorithm 5.1, so
        # work can only land on in-service devices (unless none remain).
        idle_view = ([[] if g in bl else self.idle[g]
                      for g in range(len(self.devices))]
                     if bl and len(bl) < len(self.devices) else self.idle)
        decision = schedule_work(work, self.gmm, keys,
                                 idle_view, self.queues)
        if decision.stream is not None:
            stream = decision.stream
            self.idle[stream.device_index].remove(stream)
            stream.mailbox.put(work)
            target, dispatch = stream.device_index, "stream"
        else:
            queue_index = decision.queue_index
            if queue_index in bl and len(bl) < len(self.devices):
                healthy = [g for g in range(len(self.queues))
                           if g not in bl]
                queue_index = min(healthy,
                                  key=lambda g: (len(self.queues[g]), g))
            target, dispatch = queue_index, "queued"
            self.queues[queue_index].append(work)
        device_name = self.devices[target].name
        tracer = self.obs.tracer
        tracer.instant("gwork.submit", "gpu.schedule",
                       tracer.track(device_name, "sched"),
                       kernel=work.execute_name, work=work.work_id,
                       dispatch=dispatch)
        self.obs.registry.counter("gwork.submitted",
                                  device=device_name).inc()
        return work.completion

    def _locality_keys(self, work: GWork) -> List[Hashable]:
        return locality_keys(work, self.block_nbytes)

    # -- consumer side --------------------------------------------------------------
    def mark_idle(self, stream: GStream) -> None:
        """A stream found no work to steal and parks itself."""
        if stream not in self.idle[stream.device_index]:
            self.idle[stream.device_index].append(stream)

    # -- failure domains ------------------------------------------------------------
    def is_blacklisted(self, device_index: int) -> bool:
        return device_index in self.blacklisted_devices

    def mark_blacklisted(self, device_index: int) -> None:
        """Take a device out of service: re-route its queued work.

        Its streams stop stealing after their current work; GWorks parked in
        its pool queue migrate to the shortest surviving queue (or stay put
        when no device survives — the producer's retry will fail over to
        the CPU path instead).
        """
        if device_index in self.blacklisted_devices:
            return
        self.blacklisted_devices.add(device_index)
        healthy = [g for g in range(len(self.queues))
                   if g not in self.blacklisted_devices]
        if not healthy:
            return
        stranded = self.queues[device_index]
        while stranded:
            work = stranded.popleft()
            target = min(healthy, key=lambda g: (len(self.queues[g]), g))
            # An idle healthy stream picks it up immediately when possible.
            if self.idle[target]:
                stream = self.idle[target].pop(0)
                stream.mailbox.put(work)
            else:
                self.queues[target].append(work)

    # -- observability -------------------------------------------------------------
    @property
    def pending(self) -> int:
        """GWorks waiting in the pool."""
        return sum(len(q) for q in self.queues)

    def idle_stream_count(self) -> int:
        return sum(len(b) for b in self.idle)
