"""Published specifications of the GPUs in the paper's testbed.

Peak numbers are from NVIDIA datasheets; ``pcie_effective_bps`` and
``pcie_latency_s`` are the *measured effective* host↔device bandwidth and
per-DMA setup latency, fitted to Table 2 of the paper: with 3.0 GB/s and
1.8 µs the native column reproduces to within ~3% at every size, and the
plateau lands at ≈2.97 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import GiB


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model."""

    name: str
    sm_count: int
    sp_gflops: float              # peak single-precision GFLOP/s
    mem_bytes: int                # device memory capacity
    mem_bandwidth_bps: float      # device memory bandwidth
    pcie_effective_bps: float     # effective host<->device bandwidth
    pcie_latency_s: float         # DMA setup latency per transfer
    copy_engines: int             # 1 = half duplex, 2 = full duplex (§4.1.2)
    kernel_launch_s: float        # driver launch overhead per kernel
    max_threads_resident: int     # sm_count * max resident threads per SM

    def __post_init__(self) -> None:
        if self.copy_engines not in (1, 2):
            raise ConfigError(
                f"copy_engines must be 1 or 2, got {self.copy_engines}")
        if self.sp_gflops <= 0 or self.mem_bandwidth_bps <= 0:
            raise ConfigError("throughputs must be positive")

    @property
    def full_duplex(self) -> bool:
        """Can H2D and D2H proceed simultaneously? (paper §4.1.2)"""
        return self.copy_engines == 2


GTX750 = GPUSpec(
    name="GeForce GTX 750", sm_count=4, sp_gflops=1044.0,
    mem_bytes=1 * GiB, mem_bandwidth_bps=80.0e9,
    pcie_effective_bps=3.0e9, pcie_latency_s=1.8e-6, copy_engines=1,
    kernel_launch_s=5e-6, max_threads_resident=4 * 2048)

TESLA_C2050 = GPUSpec(
    name="Tesla C2050", sm_count=14, sp_gflops=1030.0,
    mem_bytes=3 * GiB, mem_bandwidth_bps=144.0e9,
    pcie_effective_bps=3.0e9, pcie_latency_s=1.8e-6, copy_engines=1,
    kernel_launch_s=5e-6, max_threads_resident=14 * 1536)

TESLA_K20 = GPUSpec(
    name="Tesla K20", sm_count=13, sp_gflops=3520.0,
    mem_bytes=5 * GiB, mem_bandwidth_bps=208.0e9,
    pcie_effective_bps=5.5e9, pcie_latency_s=1.8e-6, copy_engines=2,
    kernel_launch_s=5e-6, max_threads_resident=13 * 2048)

TESLA_P100 = GPUSpec(
    name="Tesla P100", sm_count=56, sp_gflops=9300.0,
    mem_bytes=16 * GiB, mem_bandwidth_bps=732.0e9,
    pcie_effective_bps=11.0e9, pcie_latency_s=1.5e-6, copy_engines=2,
    kernel_launch_s=4e-6, max_threads_resident=56 * 2048)

#: Registry keyed by the short names used in cluster configs.
SPECS: dict[str, GPUSpec] = {
    "gtx750": GTX750,
    "c2050": TESLA_C2050,
    "k20": TESLA_K20,
    "p100": TESLA_P100,
}


def get_spec(name: str) -> GPUSpec:
    """Look up a GPU spec by short name (``c2050``, ``k20``, ...)."""
    try:
        return SPECS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown GPU spec {name!r}; known: {sorted(SPECS)}") from None
