"""A small standard library of GPU kernels.

The paper's driver programs "provide CUDA kernels ... and register them as
GWork"; these are the reproduction's stock equivalents — functional NumPy
semantics plus calibrated roofline costs — used by examples, tests and
benchmarks.  Register what you need::

    from repro.gpu.kernels import SAXPY, register_standard_kernels
    session.register_kernel(SAXPY)          # one kernel
    register_standard_kernels(cluster.registry)   # or the whole library
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import KernelRegistry, KernelSpec

SAXPY = KernelSpec(
    "saxpy",
    lambda bufs, p: {"out": p.get("a", 1.0) * bufs["in"]
                     + p.get("b", 0.0)},
    flops_per_element=2.0, bytes_per_element=16.0, efficiency=0.6)

SCALE2 = KernelSpec(
    "scale2", lambda bufs, p: {"out": bufs["in"] * 2.0},
    flops_per_element=1.0, bytes_per_element=16.0, efficiency=0.6)

SUM_REDUCE = KernelSpec(
    "sum_reduce",
    lambda bufs, p: {"out": np.array([float(np.sum(bufs["in"]))])},
    flops_per_element=1.0, bytes_per_element=8.0, efficiency=0.4)

MIN_REDUCE = KernelSpec(
    "min_reduce",
    lambda bufs, p: {"out": np.array([float(np.min(bufs["in"]))])},
    flops_per_element=1.0, bytes_per_element=8.0, efficiency=0.4)

MAX_REDUCE = KernelSpec(
    "max_reduce",
    lambda bufs, p: {"out": np.array([float(np.max(bufs["in"]))])},
    flops_per_element=1.0, bytes_per_element=8.0, efficiency=0.4)

DOT_PARTIAL = KernelSpec(
    "dot_partial",
    lambda bufs, p: {"out": np.array([
        float(np.dot(bufs["in"], bufs["other"][:len(bufs["in"])]))])},
    flops_per_element=2.0, bytes_per_element=16.0, efficiency=0.5)


def _histogram(bufs, p):
    bins = int(p.get("bins", 16))
    lo = float(p.get("lo", 0.0))
    hi = float(p.get("hi", 1.0))
    counts, _ = np.histogram(bufs["in"], bins=bins, range=(lo, hi))
    return {"out": counts.astype(np.int64)}


HISTOGRAM = KernelSpec(
    "histogram", _histogram,
    flops_per_element=4.0, bytes_per_element=8.0,
    efficiency=0.25)  # atomics-bound

STANDARD_KERNELS = (SAXPY, SCALE2, SUM_REDUCE, MIN_REDUCE, MAX_REDUCE,
                    DOT_PARTIAL, HISTOGRAM)


def register_standard_kernels(registry: KernelRegistry) -> None:
    """Register every stock kernel not already present."""
    for spec in STANDARD_KERNELS:
        if spec.name not in registry:
            registry.register(spec)
