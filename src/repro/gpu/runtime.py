"""The ``cuda*`` host API — the "CUDAStub" side of the paper's stack.

Exports the runtime calls GFlink's CUDAWrapper redirects to over JNI
(§4.1.1): ``cudaMalloc``/``cudaFree``, ``cudaHostRegister``,
``cudaMemcpyH2D``/``D2H`` and their ``Async`` variants on streams,
``cudaStreamCreate``/``cudaStreamSynchronize``, kernel launch by registered
name, and ``cudaDeviceSynchronize``.

Synchronous calls are simulation generators (``yield from`` them inside a
process); asynchronous calls enqueue onto a :class:`~repro.gpu.stream.CUDAStream`
and return the completion event immediately — which is what lets the
three-stage pipeline overlap H2D, kernel and D2H across streams.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Mapping, Optional

import numpy as np

from repro.common.errors import KernelError
from repro.common.simclock import Environment, Event
from repro.gpu.device import GPUDevice
from repro.gpu.kernel import KernelRegistry, LaunchConfig
from repro.gpu.memory import DeviceBuffer, HostBuffer
from repro.gpu.stream import CUDAStream


def _snapshot(data: Any) -> Any:
    """Copy array payloads on transfer so host/device don't alias."""
    if isinstance(data, np.ndarray):
        return data.copy()
    return data


class CUDARuntime:
    """Host-side CUDA runtime over one node's GPUs."""

    #: Staging penalty for pageable (unpinned) host memory: the driver must
    #: bounce through an internal pinned buffer.
    pageable_staging_bps = 4.0e9
    #: Driver time for cudaMalloc/cudaFree.
    alloc_overhead_s = 10e-6
    #: Page-locking cost per byte (cudaHostRegister walks page tables).
    pin_bps = 20.0e9

    def __init__(self, env: Environment, devices: list[GPUDevice],
                 registry: KernelRegistry):
        self.env = env
        self.devices = list(devices)
        self.registry = registry
        self._streams: Dict[int, list[CUDAStream]] = {
            d.index: [] for d in devices}
        # The default stream per device.
        self.default_streams = {d.index: self.stream_create(d)
                                for d in devices}

    # -- memory management --------------------------------------------------------
    def malloc(self, device: GPUDevice,
               nbytes: int) -> Generator[Event, None, DeviceBuffer]:
        """``cudaMalloc``: allocate device memory (raises on OOM)."""
        yield self.env.timeout(self.alloc_overhead_s)
        return device.memory.alloc(nbytes)

    def free(self, device: GPUDevice,
             buf: DeviceBuffer) -> Generator[Event, None, None]:
        """``cudaFree``."""
        yield self.env.timeout(self.alloc_overhead_s)
        device.memory.free(buf)

    def host_register(self,
                      hbuf: HostBuffer) -> Generator[Event, None, HostBuffer]:
        """``cudaHostRegister``: page-lock a host buffer for async DMA."""
        if not hbuf.pinned:
            yield self.env.timeout(hbuf.nbytes / self.pin_bps)
            hbuf.pinned = True
        return hbuf

    # -- streams -------------------------------------------------------------------
    def stream_create(self, device: GPUDevice) -> CUDAStream:
        """``cudaStreamCreate``."""
        stream = CUDAStream(self.env, device)
        self._streams[device.index].append(stream)
        return stream

    def stream_synchronize(self, stream: CUDAStream) -> Event:
        """``cudaStreamSynchronize``: event for all enqueued work done."""
        return stream.synchronize()

    def device_synchronize(self, device: GPUDevice) -> Event:
        """``cudaDeviceSynchronize``: all streams of the device drained."""
        return self.env.all_of([s.synchronize()
                                for s in self._streams[device.index]])

    # -- transfers -----------------------------------------------------------------
    def _transfer_op(self, device: GPUDevice, direction: str, nbytes: int,
                     pinned: bool
                     ) -> Generator[Event, None, "tuple[float, float]"]:
        """One DMA transfer; returns the copy engine's occupancy window.

        The ``(start, end)`` return value is the exact interval the engine
        was *held* (wire time, excluding queue wait and pageable staging) —
        the tracer records it verbatim, which is what guarantees copy spans
        on an engine lane never overlap.
        """
        if not pinned:
            # Pageable memory: staged through the driver's bounce buffer.
            yield self.env.timeout(nbytes / self.pageable_staging_bps)
        engine = device.copy_engine(direction)
        with engine.request() as grant:
            yield grant
            held_at = self.env.now
            yield self.env.timeout(device.spec.pcie_latency_s
                                   + nbytes / device.spec.pcie_effective_bps)
            released_at = self.env.now
        if direction == "h2d":
            device.h2d_bytes += nbytes
        else:
            device.d2h_bytes += nbytes
        return held_at, released_at

    def memcpy_h2d(self, device: GPUDevice, dst: DeviceBuffer,
                   src: HostBuffer, nbytes: Optional[int] = None
                   ) -> Generator[Event, None, "tuple[float, float]"]:
        """``cudaMemcpyH2D`` (synchronous); returns the engine window."""
        n = src.nbytes if nbytes is None else nbytes
        window = yield from self._transfer_op(device, "h2d", n, src.pinned)
        dst.data = _snapshot(src.data)
        return window

    def memcpy_d2h(self, device: GPUDevice, dst: HostBuffer,
                   src: DeviceBuffer, nbytes: Optional[int] = None
                   ) -> Generator[Event, None, "tuple[float, float]"]:
        """``cudaMemcpyD2H`` (synchronous); returns the engine window."""
        n = src.nbytes if nbytes is None else nbytes
        window = yield from self._transfer_op(device, "d2h", n, dst.pinned)
        dst.data = _snapshot(src.data)
        return window

    def memcpy_h2d_async(self, device: GPUDevice, stream: CUDAStream,
                         dst: DeviceBuffer, src: HostBuffer,
                         nbytes: Optional[int] = None) -> Event:
        """``cudaMemcpyH2DAsync``: enqueue on ``stream``, return completion."""
        n = src.nbytes if nbytes is None else nbytes

        def op():
            yield from self._transfer_op(device, "h2d", n, src.pinned)
            dst.data = _snapshot(src.data)

        return stream.enqueue(op, name="h2d-async")

    def memcpy_d2h_async(self, device: GPUDevice, stream: CUDAStream,
                         dst: HostBuffer, src: DeviceBuffer,
                         nbytes: Optional[int] = None) -> Event:
        """``cudaMemcpyD2HAsync``."""
        n = src.nbytes if nbytes is None else nbytes

        def op():
            yield from self._transfer_op(device, "d2h", n, dst.pinned)
            dst.data = _snapshot(src.data)

        return stream.enqueue(op, name="d2h-async")

    def memset(self, device: GPUDevice, buf: DeviceBuffer, value: int = 0
               ) -> Generator[Event, None, None]:
        """``cudaMemset``: fill a device buffer at device-memory bandwidth."""
        yield self.env.timeout(buf.nbytes / device.spec.mem_bandwidth_bps)
        if isinstance(buf.data, np.ndarray):
            buf.data = np.full_like(buf.data, value)
        else:
            buf.data = None if value == 0 else buf.data

    # -- kernels -----------------------------------------------------------------
    def launch_kernel(self, device: GPUDevice, stream: CUDAStream,
                      kernel_name: str, n_elements: float,
                      launch: LaunchConfig,
                      inputs: Mapping[str, DeviceBuffer],
                      outputs: Mapping[str, DeviceBuffer],
                      params: Optional[Mapping[str, Any]] = None,
                      layout: Optional[Any] = None) -> Event:
        """Launch a registered kernel asynchronously on ``stream``.

        ``n_elements`` is the *nominal* element count (drives the cost
        model); the functional implementation runs on the real arrays in the
        input buffers and writes the output buffers.
        """
        def op():
            results = yield from self.kernel_op(
                device, kernel_name, n_elements, launch, inputs, outputs,
                params, layout=layout)
            return results

        return stream.enqueue(op, name=f"kernel-{kernel_name}")

    def kernel_op(self, device: GPUDevice, kernel_name: str,
                  n_elements: float, launch: LaunchConfig,
                  inputs: Mapping[str, DeviceBuffer],
                  outputs: Mapping[str, DeviceBuffer],
                  params: Optional[Mapping[str, Any]] = None,
                  layout: Optional[Any] = None
                  ) -> Generator[Event, None, Dict[str, Any]]:
        """Inline (stream-less) kernel execution for custom pipelines.

        Acquires the device's compute engine directly; callers that need
        stream ordering should use :meth:`launch_kernel` instead.
        """
        spec = self.registry.get(kernel_name)
        params = dict(params or {})
        with device.compute.request() as grant:
            yield grant
            seconds = spec.execution_seconds(n_elements, launch,
                                             device.spec, layout=layout)
            yield self.env.timeout(seconds)
            device.kernel_seconds += seconds
            device.kernels_launched += 1
            in_arrays = {name: buf.data for name, buf in inputs.items()}
            results = spec.fn(in_arrays, params)
            if results is None:
                results = {}
            for name, buf in outputs.items():
                if name not in results:
                    raise KernelError(
                        f"kernel {kernel_name!r} produced no output "
                        f"{name!r}; got {sorted(results)}")
                buf.data = results[name]
        return results
