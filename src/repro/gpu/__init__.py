"""Simulated CUDA GPUs.

A calibrated discrete-event model of the GPUs in the paper's testbed
(GeForce GTX 750, Tesla C2050, Tesla K20, Tesla P100):

* :mod:`repro.gpu.specs` — published per-device peak numbers (SM count,
  single-precision GFLOP/s, memory size/bandwidth, PCIe generation, copy
  engines);
* :mod:`repro.gpu.device` — a device with one compute engine (a fully
  occupied kernel owns the GPU; concurrent kernels queue) and one or two DMA
  copy engines (half- vs full-duplex PCIe, paper §4.1.2);
* :mod:`repro.gpu.memory` — device-memory allocator with OOM semantics;
* :mod:`repro.gpu.stream` — CUDA streams (in-order command queues that
  overlap across streams) and events;
* :mod:`repro.gpu.kernel` — a kernel registry: each kernel carries a real
  NumPy implementation (functional result) plus a roofline-style cost model
  (FLOPs- or memory-bandwidth-bound, occupancy-degraded for small launches);
* :mod:`repro.gpu.runtime` — the ``cuda*`` host API ("CUDAStub"):
  malloc/free, synchronous and asynchronous memcpy, host registration
  (pinning), stream create/sync, kernel launch.

The *control-channel* (JNI) overhead of calling into this API from the JVM
side is charged by :mod:`repro.core.channels`, not here — this package is the
"native" side of the stack.
"""

from repro.gpu.specs import GPUSpec, GTX750, TESLA_C2050, TESLA_K20, TESLA_P100, get_spec, SPECS
from repro.gpu.device import GPUDevice
from repro.gpu.memory import DeviceBuffer, DeviceMemory
from repro.gpu.stream import CUDAStream, CUDAEvent
from repro.gpu.kernel import KernelRegistry, KernelSpec, LaunchConfig
from repro.gpu.runtime import CUDARuntime

__all__ = [
    "GPUSpec",
    "GTX750",
    "TESLA_C2050",
    "TESLA_K20",
    "TESLA_P100",
    "SPECS",
    "get_spec",
    "GPUDevice",
    "DeviceBuffer",
    "DeviceMemory",
    "CUDAStream",
    "CUDAEvent",
    "KernelRegistry",
    "KernelSpec",
    "LaunchConfig",
    "CUDARuntime",
]
