"""Device memory: allocation tracking and buffer handles.

Unlike system memory, "GPU device memory is still directly controlled by
individual applications" (paper §4.2) — so the allocator exposes explicit
alloc/free with out-of-memory failures, and GFlink's GMemoryManager builds
its automatic management and cache region on top of it.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

import numpy as np

from repro.common.errors import ConfigError, MemoryExhaustedError

_buffer_ids = itertools.count()


class DeviceBuffer:
    """A handle to an allocation in a device's memory.

    ``data`` carries the functional contents (a NumPy array or None); the
    timing model only cares about ``nbytes``.
    """

    __slots__ = ("buffer_id", "nbytes", "device_name", "data", "freed")

    def __init__(self, nbytes: int, device_name: str):
        self.buffer_id = next(_buffer_ids)
        self.nbytes = int(nbytes)
        self.device_name = device_name
        self.data: Optional[np.ndarray] = None
        self.freed = False

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<DeviceBuffer #{self.buffer_id} {self.nbytes}B "
                f"on {self.device_name}{' FREED' if self.freed else ''}>")


class DeviceMemory:
    """Byte-accounted allocator for one device."""

    def __init__(self, capacity_bytes: int, device_name: str):
        if capacity_bytes <= 0:
            raise ConfigError("device memory capacity must be positive")
        self.capacity = int(capacity_bytes)
        self.device_name = device_name
        self._live: Dict[int, DeviceBuffer] = {}
        self.allocated = 0
        self.peak_allocated = 0
        self.alloc_count = 0
        self.free_count = 0

    @property
    def available(self) -> int:
        """Bytes not currently allocated."""
        return self.capacity - self.allocated

    def alloc(self, nbytes: int) -> DeviceBuffer:
        """Allocate ``nbytes``; raises :class:`MemoryExhaustedError` when full."""
        if nbytes < 0:
            raise ConfigError(f"negative allocation: {nbytes}")
        if nbytes > self.available:
            raise MemoryExhaustedError(
                f"{self.device_name}: need {nbytes} B, "
                f"{self.available} B free of {self.capacity}")
        buf = DeviceBuffer(nbytes, self.device_name)
        self._live[buf.buffer_id] = buf
        self.allocated += buf.nbytes
        self.peak_allocated = max(self.peak_allocated, self.allocated)
        self.alloc_count += 1
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """Release a buffer; double-free raises."""
        if buf.freed or buf.buffer_id not in self._live:
            raise ConfigError(f"double free of {buf!r}")
        del self._live[buf.buffer_id]
        self.allocated -= buf.nbytes
        buf.freed = True
        buf.data = None
        self.free_count += 1

    def live_buffers(self) -> list[DeviceBuffer]:
        """Currently allocated buffers (debug/metrics)."""
        return list(self._live.values())


class HostBuffer:
    """A host-side buffer ("HBuffer" in the paper) as seen by the DMA layer.

    ``pinned`` means page-locked via ``cudaHostRegister``: asynchronous DMA
    requires it, and unpinned transfers pay an extra staging copy.
    ``dma_capable`` distinguishes off-heap direct buffers (stable addresses)
    from JVM-heap arrays, which must first be copied out because the garbage
    collector may move them (paper §3.1).
    """

    __slots__ = ("nbytes", "data", "pinned", "dma_capable")

    def __init__(self, nbytes: int, data: Any = None, pinned: bool = False,
                 dma_capable: bool = True):
        self.nbytes = int(nbytes)
        self.data = data
        self.pinned = pinned
        self.dma_capable = dma_capable
