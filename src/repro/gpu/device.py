"""A GPU device: compute engine, copy engines, device memory."""

from __future__ import annotations

from repro.common.resources import Resource
from repro.common.simclock import Environment
from repro.gpu.memory import DeviceMemory
from repro.gpu.specs import GPUSpec


class GPUDevice:
    """One physical GPU in a worker node.

    Engine model:

    * ``compute`` — capacity 1: a launch-config-filling kernel owns the whole
      device, so concurrent kernels from different streams serialize (their
      *copies* still overlap — that is the three-stage pipeline's win).
    * copy engines — one per direction for two-engine devices (full duplex);
      a single shared engine for one-engine devices, making the PCIe link
      half duplex exactly as §4.1.2 describes.
    """

    def __init__(self, env: Environment, spec: GPUSpec, index: int = 0,
                 name: str | None = None):
        self.env = env
        self.spec = spec
        self.index = index
        self.name = name or f"{spec.name}#{index}"
        self.memory = DeviceMemory(spec.mem_bytes, self.name)
        self.compute = Resource(env, capacity=1)
        self._h2d_engine = Resource(env, capacity=1)
        if spec.full_duplex:
            self._d2h_engine = Resource(env, capacity=1)
        else:
            self._d2h_engine = self._h2d_engine  # shared: half duplex
        # Metrics.
        self.kernel_seconds = 0.0
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.kernels_launched = 0

    def copy_engine(self, direction: str) -> Resource:
        """The engine resource for ``"h2d"`` or ``"d2h"`` transfers."""
        if direction == "h2d":
            return self._h2d_engine
        if direction == "d2h":
            return self._d2h_engine
        raise ValueError(f"direction must be 'h2d' or 'd2h': {direction!r}")

    @property
    def busy_fraction_hint(self) -> int:
        """Queue depth on the compute engine (scheduling heuristic input)."""
        return self.compute.count + self.compute.queue_length

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GPUDevice {self.name}>"
