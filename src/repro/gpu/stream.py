"""CUDA streams and events.

"Stream is a sequence of commands that executes on the GPU in order.
Different Streams may execute their commands out of order with each other or
concurrently." (paper §4.1.2).  We get exactly those semantics from a
unit-capacity resource per stream: operations acquire the stream lock in
enqueue order (the wait queue is FIFO), hold it for their duration, and
different streams' operations interleave freely on the device's engines.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from repro.common.resources import Resource
from repro.common.simclock import Environment, Event
from repro.gpu.device import GPUDevice

_stream_ids = itertools.count(1)  # stream 0 is the default stream


class CUDAEvent:
    """A marker in a stream, signaled when the preceding work completes."""

    def __init__(self, env: Environment):
        self.env = env
        self._event = env.event()

    def record_done(self) -> None:
        """(Internal) signal the event."""
        if not self._event.triggered:
            self._event.succeed(self.env.now)

    @property
    def done(self) -> bool:
        """Has the event been signaled?"""
        return self._event.triggered

    def wait(self) -> Event:
        """Event to ``yield`` on (``cudaEventSynchronize``)."""
        return self._event


class CUDAStream:
    """An in-order command queue on one device."""

    def __init__(self, env: Environment, device: GPUDevice):
        self.env = env
        self.device = device
        self.stream_id = next(_stream_ids)
        self._order = Resource(env, capacity=1)
        self._last_op: Optional[Event] = None
        self.ops_enqueued = 0

    @property
    def idle(self) -> bool:
        """True when no operation is running or queued on this stream."""
        return self._order.count == 0 and self._order.queue_length == 0

    def enqueue(self, operation, name: str | None = None) -> Event:
        """Enqueue ``operation`` (a generator function of no args).

        Returns a process-event that fires with the operation's return value
        when it completes.  Operations on the same stream run in enqueue
        order; operations on different streams are independent.
        """
        self.ops_enqueued += 1

        def runner() -> Generator[Event, None, object]:
            with self._order.request() as turn:
                yield turn
                result = yield from operation()
            return result

        proc = self.env.process(
            runner(), name=name or f"stream{self.stream_id}-op")
        self._last_op = proc
        return proc

    def synchronize(self) -> Event:
        """Event firing once everything enqueued so far has completed."""
        if self._last_op is None or self._last_op.processed:
            done = self.env.event()
            done.succeed(self.env.now)
            return done
        return self._last_op

    def record_event(self) -> CUDAEvent:
        """``cudaEventRecord``: event fires when prior stream work finishes."""
        marker = CUDAEvent(self.env)

        def op():
            marker.record_done()
            return
            yield  # pragma: no cover - generator marker

        self.enqueue(op, name=f"stream{self.stream_id}-event")
        return marker
