"""CUDA kernels: registry, launch configuration, roofline cost model.

A registered kernel carries

* a **functional implementation** — plain NumPy code operating on the input
  buffers' arrays (the SIMT block-processing semantics: the whole block is
  processed at once, which is the entire point of the paper's bulk model);
* a **cost model** — roofline style: the kernel is either FLOP-bound or
  device-memory-bandwidth-bound; small launches are additionally degraded by
  occupancy (you cannot fill a P100 with 10 k threads), reproducing
  "the GPU is good at bulk computations" (paper §6.5).

The per-kernel ``efficiency`` expresses how far real code sits below peak
(divergence, uncoalesced access, atomics); Fig. 8b's per-kernel speedup
differences come from these efficiencies, and its per-device differences
from the specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.common.errors import ConfigError, KernelError
from repro.gpu.specs import GPUSpec


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry of a kernel launch."""

    grid_size: int
    block_size: int = 256

    def __post_init__(self) -> None:
        if self.grid_size < 1 or self.block_size < 1:
            raise ConfigError(f"invalid launch config {self!r}")
        if self.block_size > 1024:
            raise ConfigError("block_size exceeds the CUDA limit of 1024")

    @property
    def total_threads(self) -> int:
        return self.grid_size * self.block_size

    @classmethod
    def for_elements(cls, n: int, block_size: int = 256) -> "LaunchConfig":
        """One thread per element, as in the paper's Algorithm 3.1."""
        grid = max(1, -(-int(n) // block_size))
        return cls(grid_size=grid, block_size=block_size)


@dataclass(frozen=True)
class KernelSpec:
    """A registered kernel: implementation + cost declaration.

    fn
        ``fn(inputs: dict[str, ndarray], params: dict) -> dict[str, ndarray]``
        — functional semantics over whole blocks.
    flops_per_element / bytes_per_element
        Work per element for the roofline model.
    efficiency
        Fraction of device peak this kernel sustains when fully occupied.
    layout_efficiency
        Per-data-layout multiplier on ``efficiency`` (GFlink's §2.1: "The
        efficiency performance of the same GPU application may drastically
        differ due to the use of different types of data layout").  Keys are
        layout names (``"array-of-structures"`` etc. — the values of
        :class:`repro.core.gstruct.DataLayout`); missing layouts default to
        1.0.  A column-scanning kernel would declare SoA ≈ 1.0 and AoS well
        below it (uncoalesced strided loads); a whole-record kernel the
        reverse.
    """

    name: str
    fn: Callable[[Mapping[str, Any], Mapping[str, Any]], Dict[str, Any]]
    flops_per_element: float
    bytes_per_element: float = 0.0
    efficiency: float = 0.5
    layout_efficiency: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigError(f"efficiency must be in (0, 1]: {self.efficiency}")
        if self.flops_per_element < 0 or self.bytes_per_element < 0:
            raise ConfigError("per-element work must be non-negative")
        for layout, mult in self.layout_efficiency.items():
            if not 0.0 < mult <= 1.0:
                raise ConfigError(
                    f"layout efficiency for {layout!r} must be in (0, 1]: "
                    f"{mult}")

    # -- cost model ---------------------------------------------------------------
    def occupancy(self, launch: LaunchConfig, spec: GPUSpec) -> float:
        """Fraction of the device a launch can keep busy.

        Clamped to [1/max_resident, 1]: a single block still makes progress.
        """
        frac = launch.total_threads / spec.max_threads_resident
        return min(1.0, max(frac, 1.0 / spec.max_threads_resident))

    def layout_multiplier(self, layout: Optional[object]) -> float:
        """Efficiency multiplier for the input data layout (default 1.0)."""
        if layout is None:
            return 1.0
        key = getattr(layout, "value", layout)
        return float(self.layout_efficiency.get(key, 1.0))

    def execution_seconds(self, n_elements: float, launch: LaunchConfig,
                          spec: GPUSpec,
                          layout: Optional[object] = None) -> float:
        """Roofline time for ``n_elements`` (nominal) on device ``spec``.

        ``layout`` is the input's data layout; coalescing quality scales the
        sustained fraction of both FLOP and memory throughput.
        """
        occ = self.occupancy(launch, spec)
        eff = self.efficiency * self.layout_multiplier(layout)
        flop_time = (n_elements * self.flops_per_element
                     / (spec.sp_gflops * 1e9 * eff * occ))
        mem_time = (n_elements * self.bytes_per_element
                    / (spec.mem_bandwidth_bps
                       * self.layout_multiplier(layout) * occ))
        return spec.kernel_launch_s + max(flop_time, mem_time)


class KernelRegistry:
    """Name → kernel lookup, as the paper's "register them as GWork" step.

    The driver "provides CUDA kernel programs ... and registers them"; at
    execution time "the CUDA function will be found by the name provided by
    programmers" (§3.5.3).
    """

    def __init__(self) -> None:
        self._kernels: Dict[str, KernelSpec] = {}

    def register(self, spec: KernelSpec) -> KernelSpec:
        """Register a kernel; duplicate names are rejected."""
        if spec.name in self._kernels:
            raise ConfigError(f"kernel {spec.name!r} already registered")
        self._kernels[spec.name] = spec
        return spec

    def register_fn(self, name: str, flops_per_element: float,
                    bytes_per_element: float = 0.0,
                    efficiency: float = 0.5) -> Callable:
        """Decorator form of :meth:`register`."""
        def deco(fn):
            self.register(KernelSpec(name=name, fn=fn,
                                     flops_per_element=flops_per_element,
                                     bytes_per_element=bytes_per_element,
                                     efficiency=efficiency))
            return fn
        return deco

    def get(self, name: str) -> KernelSpec:
        """Look up a kernel by name; unknown names raise :class:`KernelError`."""
        try:
            return self._kernels[name]
        except KeyError:
            raise KernelError(
                f"no kernel named {name!r}; registered: "
                f"{sorted(self._kernels)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def names(self) -> list[str]:
        """Registered kernel names."""
        return sorted(self._kernels)
