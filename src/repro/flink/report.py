"""Human-readable reports from job metrics.

Two views of a :class:`~repro.flink.jobmanager.JobMetrics`:

* :func:`timeline` — a text Gantt of the operator spans (which phase ran
  when, and how parallel it was);
* :func:`breakdown` — the Eq. 1 decomposition (§6.3): per-phase times plus
  the fixed submit/schedule/IO overheads, with the overhead fraction that
  drives Observation 3.
"""

from __future__ import annotations

from typing import List

from repro.flink.jobmanager import JobMetrics


def timeline(metrics: JobMetrics, width: int = 60) -> str:
    """Render the job's operator spans as a text Gantt chart."""
    spans = sorted(metrics.operator_spans.values(), key=lambda s: s.start)
    if not spans:
        return f"{metrics.job_name}: no operator spans recorded"
    t0 = metrics.started_at
    total = max(metrics.makespan, 1e-12)
    label_w = max(len(s.name) for s in spans)
    lines = [f"{metrics.job_name}: {metrics.makespan:.3f} s "
             f"({metrics.subtasks} subtasks)"]
    for span in spans:
        begin = int((span.start - t0) / total * width)
        end = max(int((span.end - t0) / total * width), begin + 1)
        bar = " " * begin + "#" * (end - begin)
        lines.append(f"  {span.name:<{label_w}} |{bar:<{width}}| "
                     f"{span.seconds:8.3f} s  x{span.parallelism}")
    return "\n".join(lines)


def breakdown(metrics: JobMetrics) -> str:
    """Eq. 1's terms for one job, plus derived fractions."""
    io_bytes = metrics.hdfs_read_bytes + metrics.hdfs_write_bytes
    lines = [
        f"{metrics.job_name}: T_total = {metrics.makespan:.3f} s",
        f"  T_submit            {metrics.submit_s:10.3f} s",
        f"  T_schedule          {metrics.schedule_s:10.3f} s",
        f"  compute (cpu-sec)   {metrics.compute_s:10.3f} s",
        f"  gpu kernels         {metrics.gpu_kernel_s:10.3f} s",
    ]
    # Per-kernel stage timings: fused GPU chains report each member kernel
    # separately, so chained launches stay visible in the decomposition.
    for kernel_name in sorted(metrics.gpu_stage_seconds):
        seconds = metrics.gpu_stage_seconds[kernel_name]
        lines.append(f"    gpu stage {kernel_name:<16} {seconds:8.3f} s")
    lines += [
        f"  PCIe traffic        {metrics.pcie_bytes / 1e6:10.1f} MB",
        f"  shuffle traffic     {metrics.shuffle_bytes / 1e6:10.1f} MB",
        f"  HDFS read+write     {io_bytes / 1e6:10.1f} MB",
        f"  task retries        {metrics.retries:10d}",
    ]
    if metrics.shuffle_zero_copy_bytes:
        lines.append(f"  shuffle zero-copy   "
                     f"{metrics.shuffle_zero_copy_bytes / 1e6:10.1f} MB")
    if metrics.shuffle_spill_bytes:
        lines.append(f"  shuffle spilled     "
                     f"{metrics.shuffle_spill_bytes / 1e6:10.1f} MB")
    if metrics.vectorized_blocks:
        lines.append(f"  vectorized blocks   "
                     f"{metrics.vectorized_blocks:10d}")
    if metrics.pipeline_max_queue_depth or \
            metrics.pipeline_backpressure_stalls or \
            metrics.pipeline_h2d_starved:
        lines += [
            f"  pipeline max queue  "
            f"{metrics.pipeline_max_queue_depth:10d} blocks",
            f"  backpressure stalls "
            f"{metrics.pipeline_backpressure_stalls:10d} "
            f"({metrics.pipeline_backpressure_s:.3f} s)",
            f"  H2D starvation      "
            f"{metrics.pipeline_h2d_starved:10d} events",
        ]
    if metrics.makespan > 0:
        # schedule_s sums over subtasks that ran in parallel; the wall-clock
        # overhead is the submit plus one task's worth of scheduling.
        per_task_schedule = metrics.schedule_s / max(metrics.subtasks, 1)
        fixed_wall = metrics.submit_s + per_task_schedule
        fraction = min(fixed_wall / metrics.makespan, 1.0)
        lines.append(f"  fixed-overhead fraction "
                     f"{fraction:8.1%}  (Observation 3)")
    return "\n".join(lines)


def gpu_report(cluster) -> str:
    """Per-device GPU utilization: kernels, PCIe traffic, cache hit rates.

    Accepts a :class:`repro.core.runtime.GFlinkCluster` (workers without a
    GPUManager are skipped).
    """
    lines = [f"{'device':24s} {'kernels':>8} {'kernel s':>9} "
             f"{'H2D MB':>9} {'D2H MB':>9} {'cache hit%':>11}"]
    managers = getattr(cluster, "gpu_managers", lambda: [])()
    if not managers:
        return "no GPUs in this cluster"
    for gm in managers:
        cache = gm.gmm.cache_stats()
        for device in gm.devices:
            stats = cache.get(device.index)
            hit_rate = stats.hit_rate if stats is not None else None
            rate = f"{hit_rate:10.1%}" if hit_rate is not None else \
                "       n/a"
            lines.append(
                f"{device.name:24s} {device.kernels_launched:>8d} "
                f"{device.kernel_seconds:>9.3f} "
                f"{device.h2d_bytes / 1e6:>9.1f} "
                f"{device.d2h_bytes / 1e6:>9.1f} {rate:>11}")
    return "\n".join(lines)


def session_summary(history: List[JobMetrics]) -> str:
    """One line per job of a session, plus totals."""
    if not history:
        return "no jobs run"
    lines = [f"{'job':30s} {'seconds':>9} {'subtasks':>9} "
             f"{'shuffle MB':>11} {'retries':>8}"]
    for m in history:
        lines.append(f"{m.job_name:30s} {m.makespan:>9.3f} "
                     f"{m.subtasks:>9d} {m.shuffle_bytes / 1e6:>11.2f} "
                     f"{m.retries:>8d}")
    total = sum(m.makespan for m in history)
    lines.append(f"{'TOTAL (' + str(len(history)) + ' jobs)':30s} "
                 f"{total:>9.3f}")
    return "\n".join(lines)


def metrics_summary(registry) -> str:
    """Flat text rendering of a :class:`repro.obs.MetricsRegistry`."""
    return registry.render()


def profile_summary(cluster) -> dict:
    """The GProfiler summary for a traced cluster (machine-readable).

    Runs critical-path extraction, bottleneck classification and
    utilization analysis (:mod:`repro.obs.profile`) over the cluster's
    tracer.  With tracing disabled the trace is empty and the summary is
    all zeros — call sites need no enable check.
    """
    from repro.obs.profile import summarize_tracer
    return summarize_tracer(cluster.obs.tracer)


def profile_report(cluster) -> str:
    """Text rendering of :func:`profile_summary` for the same cluster."""
    from repro.obs.profile import render_text
    return render_text(profile_summary(cluster))


#: Counters surfaced by :func:`resilience_report` (name, display label).
_RESILIENCE_COUNTERS = (
    ("chaos.events", "chaos events applied"),
    ("chaos.skipped", "chaos events skipped"),
    ("worker.failures", "worker failures"),
    ("worker.declared_dead", "deaths declared"),
    ("device.blacklisted", "devices blacklisted"),
    ("task.retries", "task retries"),
    ("recovery.recomputed_partitions", "partitions recomputed"),
    ("fallback.cpu_tasks", "CPU-fallback tasks"),
    ("churn.joins", "workers joined"),
    ("churn.drains", "workers drained"),
    ("churn.leaves", "workers left"),
    ("rebalance.partitions", "partitions migrated"),
    ("autoscale.decisions", "autoscaler decisions"),
)


def resilience_report(engine, result, baseline=None, registry=None) -> str:
    """Text summary of a chaos run: faults, detection, recovery, overhead.

    ``engine`` is the run's :class:`~repro.flink.chaos.ChaosEngine`,
    ``result`` (and the optional fault-free ``baseline``) are
    :class:`~repro.workloads.base.WorkloadResult` s, and ``registry`` is the
    chaos cluster's metrics registry (for the failure-domain counters).
    """
    summary = engine.summary()
    lines = ["resilience report",
             f"  faults applied        {summary['events_applied']:>8d}"]
    for kind in sorted(summary["by_kind"]):
        lines.append(f"    {kind:<20} {summary['by_kind'][kind]:>8d}")
    if summary["workers_killed"]:
        lines.append(f"  workers killed        "
                     f"{', '.join(summary['workers_killed'])}")
    for name in sorted(summary["detection_latency_s"]):
        lines.append(f"  detection latency     {name}: "
                     f"{summary['detection_latency_s'][name]:.2f} s")
    recovery = summary.get("recovery_latency_s") or {}
    if recovery.get("count"):
        lines.append(
            f"  recovery latency      p50 {recovery['p50']:.2f} s   "
            f"p95 {recovery['p95']:.2f} s   p99 {recovery['p99']:.2f} s   "
            f"max {recovery['max']:.2f} s "
            f"({recovery['count']:.0f} events)")
    retries = sum(m.retries for m in result.job_metrics)
    recovered = sum(m.recovered_partitions for m in result.job_metrics)
    fallback = sum(m.fallback_tasks for m in result.job_metrics)
    lines += [f"  task retries          {retries:>8d}",
              f"  partitions recovered  {recovered:>8d}",
              f"  CPU-fallback tasks    {fallback:>8d}"]
    if baseline is not None and baseline.total_seconds > 0:
        overhead = result.total_seconds / baseline.total_seconds - 1.0
        lines.append(f"  makespan              {result.total_seconds:8.3f} s "
                     f"(fault-free {baseline.total_seconds:.3f} s, "
                     f"overhead {overhead:+.1%})")
    else:
        lines.append(f"  makespan              "
                     f"{result.total_seconds:8.3f} s")
    if registry is not None:
        lines.append("  counters:")
        for name, label in _RESILIENCE_COUNTERS:
            total = registry.sum_values(name)
            if total:
                lines.append(f"    {label:<22} {total:>8.0f}")
    return "\n".join(lines)
