"""The DataSet (DST) user API.

Mirrors Flink's batch API: transformations are lazy and build a logical plan;
actions (``collect``, ``count``, ``write_hdfs``) hand the plan to the session,
which compiles and executes it on the simulated cluster and returns both the
functional result and the simulated job time.

``persist()`` marks a dataset's partitions to stay resident in cluster memory
across jobs — the in-memory iteration pattern that lets the paper's iterative
workloads skip HDFS after the first pass.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.flink.iterators import vectorized as vectorized_udf
from repro.flink.plan import (
    CoGroupOp,
    CollectSink,
    CountSink,
    CrossOp,
    DistinctOp,
    FilterOp,
    FirstNOp,
    FlatMapOp,
    GroupReduceOp,
    HdfsSink,
    JoinOp,
    KeyedReduceOp,
    MapOp,
    MapPartitionOp,
    OpCost,
    Operator,
    ReduceOp,
    SortPartitionOp,
    UnionOp,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flink.runtime import FlinkSession, JobResult

__all__ = ["DataSet", "GroupedDataSet", "OpCost", "vectorized_udf"]


class DataSet:
    """A distributed collection, lazily defined by its plan operator."""

    def __init__(self, session: "FlinkSession", op: Operator):
        self.session = session
        self.op = op

    def _derive(self, op: Operator) -> "DataSet":
        """Wrap a new plan operator in the same DataSet subclass.

        GDST (:class:`repro.core.gdst.GDST`) relies on this so CPU
        transformations of a GPU dataset stay GPU-capable.
        """
        return type(self)(self.session, op)

    # -- transformations ---------------------------------------------------------
    def map(self, udf: Callable, cost: OpCost = OpCost(),
            parallelism: Optional[int] = None, name: str = "map") -> "DataSet":
        """Element-wise transform (one in, one out)."""
        return self._derive(
                       MapOp(self.op, udf, cost, parallelism, name=name))

    def filter(self, udf: Callable, cost: OpCost = OpCost(),
               parallelism: Optional[int] = None,
               name: str = "filter") -> "DataSet":
        """Keep elements for which ``udf`` is truthy."""
        return self._derive(
                       FilterOp(self.op, udf, cost, parallelism, name=name))

    def flat_map(self, udf: Callable, cost: OpCost = OpCost(),
                 parallelism: Optional[int] = None,
                 name: str = "flat-map") -> "DataSet":
        """Element-wise transform producing zero or more outputs per input."""
        return self._derive(
                       FlatMapOp(self.op, udf, cost, parallelism, name=name))

    def map_partition(self, udf: Callable, cost: OpCost = OpCost(),
                      parallelism: Optional[int] = None,
                      name: str = "map-partition") -> "DataSet":
        """Whole-partition transform (the block-processing entry point)."""
        return self._derive(
                       MapPartitionOp(self.op, udf, cost, parallelism,
                                      name=name))

    def group_by(self, key_fn: Callable) -> "GroupedDataSet":
        """Group by a key extractor; follow with ``reduce``/``reduce_group``."""
        return GroupedDataSet(self, key_fn)

    def reduce(self, reduce_fn: Callable, cost: OpCost = OpCost(),
               name: str = "reduce") -> "DataSet":
        """Global pairwise fold into a single element."""
        return self._derive(
                       ReduceOp(self.op, reduce_fn, cost, name=name))

    def join(self, other: "DataSet", left_key: Callable, right_key: Callable,
             join_fn: Callable = lambda l, r: (l, r),
             cost: OpCost = OpCost(), parallelism: Optional[int] = None,
             name: str = "join") -> "DataSet":
        """Hash equi-join with ``other``."""
        if other.session is not self.session:
            raise ValueError("cannot join datasets from different sessions")
        return self._derive(
                       JoinOp(self.op, other.op, left_key, right_key,
                              join_fn, cost, parallelism, name=name))

    def union(self, other: "DataSet", name: str = "union") -> "DataSet":
        """Concatenate with ``other`` (no shuffle: partitions are adopted)."""
        if other.session is not self.session:
            raise ValueError("cannot union datasets from different sessions")
        return self._derive(UnionOp(self.op, other.op, name=name))

    def distinct(self, key_fn: Optional[Callable] = None,
                 cost: OpCost = OpCost(),
                 parallelism: Optional[int] = None,
                 name: str = "distinct") -> "DataSet":
        """Deduplicate elements (by ``key_fn``, or by value)."""
        return self._derive(DistinctOp(self.op, key_fn, cost, parallelism,
                                       name=name))

    def first(self, n: int) -> "DataSet":
        """Any ``n`` elements of the dataset (one output partition)."""
        return self._derive(FirstNOp(self.op, n))

    def sort_partition(self, key_fn: Optional[Callable] = None,
                       reverse: bool = False, cost: OpCost = OpCost(),
                       name: str = "sort-partition") -> "DataSet":
        """Sort every partition locally (no global order, as in Flink)."""
        return self._derive(SortPartitionOp(self.op, key_fn, reverse, cost,
                                            name=name))

    def cross(self, other: "DataSet",
              cross_fn: Callable = lambda l, r: (l, r),
              cost: OpCost = OpCost(), parallelism: Optional[int] = None,
              name: str = "cross") -> "DataSet":
        """Cartesian product with ``other`` (right side broadcast)."""
        if other.session is not self.session:
            raise ValueError("cannot cross datasets from different sessions")
        return self._derive(CrossOp(self.op, other.op, cross_fn, cost,
                                    parallelism, name=name))

    def co_group(self, other: "DataSet", left_key: Callable,
                 right_key: Callable,
                 cogroup_fn: Callable, cost: OpCost = OpCost(),
                 parallelism: Optional[int] = None,
                 name: str = "co-group") -> "DataSet":
        """Group both datasets by key and apply
        ``cogroup_fn(key, left_members, right_members)`` per key."""
        if other.session is not self.session:
            raise ValueError(
                "cannot co-group datasets from different sessions")
        return self._derive(CoGroupOp(self.op, other.op, left_key,
                                      right_key, cogroup_fn, cost,
                                      parallelism, name=name))

    # -- aggregate shorthands ----------------------------------------------------
    def sum(self, value_fn: Callable = lambda x: x,
            name: str = "sum") -> "DataSet":
        """Global sum of ``value_fn(element)``."""
        return self.map(value_fn, name=f"{name}-extract") \
            .reduce(lambda a, b: a + b, name=name)

    def min(self, key_fn: Callable = lambda x: x,
            name: str = "min") -> "DataSet":
        """Global minimum by ``key_fn``."""
        return self.reduce(lambda a, b: a if key_fn(a) <= key_fn(b) else b,
                           name=name)

    def max(self, key_fn: Callable = lambda x: x,
            name: str = "max") -> "DataSet":
        """Global maximum by ``key_fn``."""
        return self.reduce(lambda a, b: a if key_fn(a) >= key_fn(b) else b,
                           name=name)

    def iterate(self, n_iterations: int,
                step_fn: Callable[["DataSet"], "DataSet"]) -> "DataSet":
        """Flink-style bulk iteration: apply ``step_fn`` ``n`` times *inside
        one job*.

        The loop body is unrolled into the plan, so a single job submission
        covers all iterations — this is how native Flink iterations avoid
        the per-iteration driver round-trip that per-job loops pay
        (``benchmarks/bench_ablation_iteration.py`` quantifies it).  Loop
        state must flow through the dataset; driver-side state (e.g. KMeans
        centers updated in Python between steps) needs the per-job pattern
        instead.
        """
        if n_iterations < 1:
            raise ValueError(
                f"iterate needs n_iterations >= 1, got {n_iterations}")
        ds: "DataSet" = self
        for _ in range(n_iterations):
            ds = step_fn(ds)
            if not isinstance(ds, DataSet):
                raise TypeError("step_fn must return a DataSet")
        return ds

    def persist(self) -> "DataSet":
        """Keep this dataset's partitions in cluster memory across jobs."""
        self.op.persisted = True
        return self

    # -- actions -------------------------------------------------------------------
    # Each action has two forms: the blocking one (drives the simulation
    # clock; for sequential drivers and tests) and a ``*_job`` generator
    # (to ``yield from`` inside a driver process, so multiple applications
    # can share the cluster concurrently).

    def collect(self, job_name: str = "collect") -> "JobResult":
        """Execute and gather all elements to the driver."""
        return self.session.execute(CollectSink(self.op), job_name=job_name)

    def collect_job(self, job_name: str = "collect"):
        """Process form of :meth:`collect`."""
        return self.session.execute_job(CollectSink(self.op),
                                        job_name=job_name)

    def count(self, job_name: str = "count") -> "JobResult":
        """Execute and return the (nominal) element count."""
        return self.session.execute(CountSink(self.op), job_name=job_name)

    def count_job(self, job_name: str = "count"):
        """Process form of :meth:`count`."""
        return self.session.execute_job(CountSink(self.op), job_name=job_name)

    def write_hdfs(self, path: str,
                   job_name: Optional[str] = None) -> "JobResult":
        """Execute and write one HDFS block per partition to ``path``."""
        return self.session.execute(
            HdfsSink(self.op, path),
            job_name=job_name or f"write({path})")

    def write_hdfs_job(self, path: str, job_name: Optional[str] = None):
        """Process form of :meth:`write_hdfs`."""
        return self.session.execute_job(
            HdfsSink(self.op, path), job_name=job_name or f"write({path})")

    def materialize(self, job_name: str = "materialize") -> "JobResult":
        """Execute the plan up to this dataset, keeping partitions on workers.

        Equivalent to persist-then-touch: useful to pay the load phase once
        before timing iterations.
        """
        self.persist()
        return self.count(job_name=job_name)

    def materialize_job(self, job_name: str = "materialize"):
        """Process form of :meth:`materialize`."""
        self.persist()
        return self.count_job(job_name=job_name)


class GroupedDataSet:
    """A dataset grouped by key — an intermediate builder, as in Flink."""

    def __init__(self, dataset: DataSet, key_fn: Callable):
        self.dataset = dataset
        self.key_fn = key_fn

    def reduce(self, reduce_fn: Callable, cost: OpCost = OpCost(),
               parallelism: Optional[int] = None, combinable: bool = True,
               name: str = "keyed-reduce") -> DataSet:
        """Pairwise fold per key (combinable on the shuffle's producer side)."""
        return self.dataset._derive(
                       KeyedReduceOp(self.dataset.op, self.key_fn, reduce_fn,
                                     cost, parallelism, combinable=combinable,
                                     name=name))

    def reduce_group(self, group_fn: Callable[[Any, list], Any],
                     cost: OpCost = OpCost(),
                     parallelism: Optional[int] = None,
                     name: str = "group-reduce") -> DataSet:
        """Full-group function ``group_fn(key, members)`` per key."""
        return self.dataset._derive(
                       GroupReduceOp(self.dataset.op, self.key_fn, group_fn,
                                     cost, parallelism, name=name))
