"""Plan optimizer: operator chaining.

Flink fuses consecutive element-wise operators into one task ("operator
chaining"), so a ``map → filter → flatMap`` pipeline deploys once per slot
and passes records function-to-function instead of materializing between
operators.  This optimizer performs the same rewrite on the logical plan:

* chainable operators: ``MapOp``, ``FilterOp``, ``FlatMapOp``,
  ``MapPartitionOp`` — single FORWARD input, default parallelism;
* a chain is broken by: a persisted operator (its materialization is
  user-visible), an operator consumed by more than one downstream, an
  explicit parallelism, or a non-chainable operator (shuffles, GPU ops,
  sinks);
* each maximal chain becomes one :class:`FusedMapOp` whose subtask charges
  every stage's iterator cost but pays scheduling/deploy overhead once.

Controlled by :attr:`repro.flink.config.FlinkConfig.enable_chaining`
(default on, as in Flink); ``benchmarks/bench_ablation_chaining.py``
measures the win.

**GPU operator chaining** is the same rewrite one level down: maximal runs
of consecutive :class:`~repro.core.gdst.GpuMapPartitionOp` (single FORWARD
input, single consumer, same app/communication mode/layout) fuse into one
:class:`~repro.core.gdst.FusedGpuOp`, whose single GWork keeps the
intermediates device-resident — each fused boundary saves a full D2H + H2D
round-trip over PCIe.  Controlled by
:attr:`repro.flink.config.FlinkConfig.enable_gpu_chaining`;
``benchmarks/bench_ablation_gpu_chaining.py`` measures the win.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.flink.partition import Partition, real_len
from repro.flink.plan import (
    FilterOp,
    FlatMapOp,
    MapOp,
    MapPartitionOp,
    OpCost,
    Operator,
    ShipStrategy,
    charge_udf_compute,
    topological_order,
)

CHAINABLE = (MapOp, FilterOp, FlatMapOp, MapPartitionOp)


class FusedMapOp(Operator):
    """A chain of element-wise operators executing as one task."""

    def __init__(self, source: Operator, stages: List[Operator]):
        name = "chain(" + "->".join(s.name for s in stages) + ")"
        super().__init__(name, [source], None, [ShipStrategy.FORWARD],
                         OpCost())
        self.stages = stages

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        current = part
        for stage in self.stages:
            yield from charge_udf_compute(
                ctx, stage.cost, current.nominal_count,
                current.nominal_nbytes, stage.udf)
            out_elements = stage._transform(current.elements) \
                if hasattr(stage, "_transform") else stage.udf(
                    current.elements)
            current = self._stage_output(stage, current, out_elements, ctx)
        current.index = ctx.subtask_index
        current.worker = ctx.worker.name
        return current

    @staticmethod
    def _stage_output(stage: Operator, part: Partition, out_elements,
                      ctx) -> Partition:
        out_real = real_len(out_elements)
        if isinstance(stage, MapPartitionOp):
            if stage.cost.selectivity is not None and out_real:
                scale = (part.nominal_count * stage.cost.selectivity
                         / out_real)
            elif out_real == part.real_count:
                scale = part.scale
            else:
                scale = 1.0
        elif hasattr(stage, "_output_scale"):
            scale = stage._output_scale(part, out_elements)
        else:  # pragma: no cover - CHAINABLE covers both branches
            scale = part.scale
        return Partition(index=part.index, elements=out_elements,
                         element_nbytes=stage.out_element_nbytes(part),
                         scale=scale, worker=part.worker)


def pipeline_regions(order: List[Operator]) -> List[List[Operator]]:
    """Group a topological operator order into pipeline regions.

    A pipeline region is a maximal set of operators connected by streaming
    edges (forward/union — :attr:`ShipStrategy.is_streaming`): within one
    region the pipelined executor can flow individual blocks end to end.
    Barrier edges (hash, gather, broadcast, rebalance) cut regions: they
    need every producer partition before any consumer record is routable —
    the hash-shuffle build sides and iteration-superstep boundaries.

    An operator with *any* barrier input belongs to a fresh region (it
    cannot start before all its inputs finish, even on its streaming
    edges).
    """
    regions: List[List[Operator]] = []
    region_of: Dict[int, int] = {}
    for op in order:
        upstream = set()
        if op.inputs and all(s.is_streaming for s in op.strategies):
            upstream = {region_of[inp.uid] for inp in op.inputs
                        if inp.uid in region_of}
        if not upstream:
            region_of[op.uid] = len(regions)
            regions.append([op])
            continue
        keep = min(upstream)
        for other in upstream - {keep}:
            regions[keep].extend(regions[other])
            regions[other] = []
            for uid, r in region_of.items():
                if r == other:
                    region_of[uid] = keep
        regions[keep].append(op)
        region_of[op.uid] = keep
    return [r for r in regions if r]


def _chainable(op: Operator, consumers: Counter) -> bool:
    """Chain members: element-wise, default parallelism, privately
    consumed, not persisted (persisted datasets keep their identity for
    cross-job reuse)."""
    return (isinstance(op, CHAINABLE)
            and type(op) is not FusedMapOp
            and op.parallelism is None
            and consumers[op.uid] == 1
            and not op.persisted)


def _consumer_maps(order: List[Operator]
                   ) -> Tuple[Counter, Dict[int, List[Operator]]]:
    consumers: Counter = Counter()
    consumer_ops: Dict[int, List[Operator]] = {}
    for op in order:
        for parent in op.inputs:
            consumers[parent.uid] += 1
            consumer_ops.setdefault(parent.uid, []).append(op)
    return consumers, consumer_ops


def _gpu_chainable(op: Operator, consumers: Counter) -> bool:
    """GPU chain members: a plain GpuMapPartitionOp with default
    parallelism, privately consumed, not persisted, not mapped-memory
    (zero-copy execution has no device-resident intermediates to share)."""
    from repro.core.gdst import GpuMapPartitionOp
    return (type(op) is GpuMapPartitionOp
            and op.parallelism is None
            and consumers[op.uid] == 1
            and not op.persisted
            and not op.mapped_memory)


def _gpu_compatible(producer: Operator, consumer: Operator) -> bool:
    """Both ops must target the same cache regions, transfer path and
    device data layout to share one GWork."""
    return (producer.app_id == consumer.app_id
            and producer.comm_mode is consumer.comm_mode
            and producer.layout is consumer.layout)


def _fuse_gpu_chains(order: List[Operator], consumers: Counter,
                     consumer_ops: Dict[int, List[Operator]]) -> None:
    """Fuse maximal compatible runs of GPU operators into FusedGpuOps.

    Walks runs head-first (a head is a chainable op whose producer is not
    chainable *into it*), so a compatibility break mid-run still leaves
    both sub-runs fusable on their own.
    """
    from repro.core.gdst import FusedGpuOp
    fused_uids: set = set()
    for op in order:
        if op.uid in fused_uids or not _gpu_chainable(op, consumers):
            continue
        prev = op.inputs[0]
        if _gpu_chainable(prev, consumers) and _gpu_compatible(prev, op):
            continue  # not a head: the head's walk collects this op
        run: List[Operator] = [op]
        while True:
            (consumer,) = consumer_ops.get(run[-1].uid, [None])
            if (consumer is not None
                    and _gpu_chainable(consumer, consumers)
                    and _gpu_compatible(run[-1], consumer)):
                run.append(consumer)
            else:
                break
        if len(run) < 2:
            continue
        fused_uids.update(o.uid for o in run)
        fused = FusedGpuOp(run[0].inputs[0], run)
        for consumer in consumer_ops.get(run[-1].uid, []):
            consumer.inputs = [fused if parent is run[-1] else parent
                               for parent in consumer.inputs]


def apply_chaining(sinks: List[Operator], cpu: bool = True,
                   gpu: bool = True) -> List[Operator]:
    """Rewrite the plan reachable from ``sinks``, fusing maximal chains.

    ``cpu`` fuses element-wise CPU chains into :class:`FusedMapOp`;
    ``gpu`` fuses consecutive GPU operators into
    :class:`~repro.core.gdst.FusedGpuOp`.  Rewrites consumer ``inputs``
    edges in place; the fused operators are stable objects, so a driver
    that reuses the same plan across jobs keeps stable fused uids.
    Returns ``sinks``.
    """
    if cpu:
        order = topological_order(sinks)
        consumers, _ = _consumer_maps(order)

        # For each consumer edge, absorb the maximal chain of chainable
        # producers ending at that edge.  Edges whose consumer is itself a
        # chain member are skipped: that consumer's own consumer absorbs
        # the whole chain in one piece.
        for op in order:
            if _chainable(op, consumers):
                continue
            for k, parent in enumerate(list(op.inputs)):
                chain: List[Operator] = []
                cursor = parent
                while _chainable(cursor, consumers):
                    chain.insert(0, cursor)
                    cursor = cursor.inputs[0]
                if len(chain) >= 2:
                    op.inputs[k] = FusedMapOp(chain[0].inputs[0], chain)
    if gpu:
        # Recompute after the CPU pass: it may have rewired the consumers
        # of a GPU run's tail.
        order = topological_order(sinks)
        consumers, consumer_ops = _consumer_maps(order)
        _fuse_gpu_chains(order, consumers, consumer_ops)
    return sinks
