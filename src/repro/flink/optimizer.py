"""Plan optimizer: operator chaining.

Flink fuses consecutive element-wise operators into one task ("operator
chaining"), so a ``map → filter → flatMap`` pipeline deploys once per slot
and passes records function-to-function instead of materializing between
operators.  This optimizer performs the same rewrite on the logical plan:

* chainable operators: ``MapOp``, ``FilterOp``, ``FlatMapOp``,
  ``MapPartitionOp`` — single FORWARD input, default parallelism;
* a chain is broken by: a persisted operator (its materialization is
  user-visible), an operator consumed by more than one downstream, an
  explicit parallelism, or a non-chainable operator (shuffles, GPU ops,
  sinks);
* each maximal chain becomes one :class:`FusedMapOp` whose subtask charges
  every stage's iterator cost but pays scheduling/deploy overhead once.

Controlled by :attr:`repro.flink.config.FlinkConfig.enable_chaining`
(default on, as in Flink); ``benchmarks/bench_ablation_chaining.py``
measures the win.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.flink.partition import Partition, real_len
from repro.flink.plan import (
    FilterOp,
    FlatMapOp,
    MapOp,
    MapPartitionOp,
    OpCost,
    Operator,
    ShipStrategy,
    topological_order,
)

CHAINABLE = (MapOp, FilterOp, FlatMapOp, MapPartitionOp)


class FusedMapOp(Operator):
    """A chain of element-wise operators executing as one task."""

    def __init__(self, source: Operator, stages: List[Operator]):
        name = "chain(" + "->".join(s.name for s in stages) + ")"
        super().__init__(name, [source], None, [ShipStrategy.FORWARD],
                         OpCost())
        self.stages = stages

    def execute_subtask(self, ctx, inputs):
        (part,) = inputs
        current = part
        for stage in self.stages:
            yield from ctx.charge_compute(
                current.nominal_count, stage.cost.flops_per_element,
                stage.cost.element_overhead_s)
            out_elements = stage._transform(current.elements) \
                if hasattr(stage, "_transform") else stage.udf(
                    current.elements)
            current = self._stage_output(stage, current, out_elements, ctx)
        current.index = ctx.subtask_index
        current.worker = ctx.worker.name
        return current

    @staticmethod
    def _stage_output(stage: Operator, part: Partition, out_elements,
                      ctx) -> Partition:
        out_real = real_len(out_elements)
        if isinstance(stage, MapPartitionOp):
            if stage.cost.selectivity is not None and out_real:
                scale = (part.nominal_count * stage.cost.selectivity
                         / out_real)
            elif out_real == part.real_count:
                scale = part.scale
            else:
                scale = 1.0
        elif hasattr(stage, "_output_scale"):
            scale = stage._output_scale(part, out_elements)
        else:  # pragma: no cover - CHAINABLE covers both branches
            scale = part.scale
        return Partition(index=part.index, elements=out_elements,
                         element_nbytes=stage.out_element_nbytes(part),
                         scale=scale, worker=part.worker)


def _chainable(op: Operator, consumers: Counter) -> bool:
    """Chain members: element-wise, default parallelism, privately
    consumed, not persisted (persisted datasets keep their identity for
    cross-job reuse)."""
    return (isinstance(op, CHAINABLE)
            and type(op) is not FusedMapOp
            and op.parallelism is None
            and consumers[op.uid] == 1
            and not op.persisted)


def apply_chaining(sinks: List[Operator]) -> List[Operator]:
    """Rewrite the plan reachable from ``sinks``, fusing maximal chains.

    Rewrites consumer ``inputs`` edges in place; the fused operators are
    stable objects, so a driver that reuses the same plan across jobs keeps
    stable fused uids.  Returns ``sinks``.
    """
    order = topological_order(sinks)
    consumers: Counter = Counter()
    for op in order:
        for parent in op.inputs:
            consumers[parent.uid] += 1

    # For each consumer edge, absorb the maximal chain of chainable
    # producers ending at that edge.  Edges whose consumer is itself a
    # chain member are skipped: that consumer's own consumer absorbs the
    # whole chain in one piece.
    for op in order:
        if _chainable(op, consumers):
            continue
        for k, parent in enumerate(list(op.inputs)):
            chain: List[Operator] = []
            cursor = parent
            while _chainable(cursor, consumers):
                chain.insert(0, cursor)
                cursor = cursor.inputs[0]
            if len(chain) >= 2:
                op.inputs[k] = FusedMapOp(chain[0].inputs[0], chain)
    return sinks
