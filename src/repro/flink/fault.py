"""Fault tolerance: failure injection and the task-failure exception.

Flink's reliability ("replication and error detection to schedule around
failures", paper §1.1) is the reason GFlink is built on top of it.  We model
the visible contract: a subtask attempt may fail; the JobManager re-executes
it up to ``max_task_retries`` times; the job fails only when an attempt
budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.common.errors import JobExecutionError


class TaskFailure(JobExecutionError):
    """A single subtask attempt failed (retryable)."""

    def __init__(self, op_name: str, subtask: int, attempt: int,
                 cause: str = "injected failure"):
        super().__init__(
            f"task {op_name}[{subtask}] attempt {attempt} failed: {cause}")
        self.op_name = op_name
        self.subtask = subtask
        self.attempt = attempt
        self.cause = cause


@dataclass
class FailureInjector:
    """Deterministic failure injection for tests and resilience benchmarks.

    ``plan`` maps ``(op_name, subtask_index)`` to the number of attempts that
    should fail before one succeeds.  ``should_fail`` may also be supplied for
    arbitrary policies; it wins when both are present.
    """

    plan: dict = field(default_factory=dict)
    should_fail: Optional[Callable[[str, int, int], bool]] = None
    #: Attribution log: one ``(op_name, subtask, attempt)`` per injection,
    #: in injection order — lines up with the trace's fault instants.
    injected: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def failures_injected(self) -> int:
        """Number of injected failures (derived from the ``injected`` log)."""
        return len(self.injected)

    def check(self, op_name: str, subtask: int, attempt: int) -> bool:
        """True if this attempt must fail."""
        if self.should_fail is not None:
            verdict = self.should_fail(op_name, subtask, attempt)
        else:
            verdict = attempt < self.plan.get((op_name, subtask), 0)
        if verdict:
            self.injected.append((op_name, subtask, attempt))
        return verdict
